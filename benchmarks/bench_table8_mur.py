"""Table 8: memory utilization ratios (prealloc vs steady usage).

Paper: FW 100.0%, DPI 100.0%, NAT 72.3%, LB 30.2%, LPM 100.0%, Mon 68.3%.
"""

from _common import bench_main, print_table

from repro.cost.profiles import mur_table

PAPER_MUR = {"FW": 100.0, "DPI": 100.0, "NAT": 72.3, "LB": 30.2,
             "LPM": 100.0, "Mon": 68.3}


def compute_table8():
    return [
        (name, row["prealloc_mb"], row["used_mb"], 100.0 * row["mur"])
        for name, row in mur_table().items()
    ]


def test_table8(benchmark):
    rows = benchmark(compute_table8)
    print_table(
        "Table 8 — memory utilization ratios",
        ["NF", "prealloc MB", "used MB", "MUR %"],
        rows,
    )
    for name, _, _, mur in rows:
        assert abs(mur - PAPER_MUR[name]) < 0.5


def run(quick: bool = False) -> dict:
    """Harness entry point: memory utilization ratios (Table 8)."""
    rows = compute_table8()
    print_table(
        "Table 8 — memory utilization ratios",
        ["NF", "prealloc MB", "used MB", "MUR %"],
        rows,
    )
    return {name: mur for name, _, _, mur in rows}


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
