"""Table 7: accelerator memory profiles and estimated TLB entries.

Paper: DPI 101.90 MB → 54 entries, ZIP 132.24 MB → 70, RAID 8.13 MB → 5.
"""

from _common import bench_main, print_table

from repro.cost.pages import EQUAL_MENU, MB
from repro.cost.profiles import ACCEL_PROFILES

PAPER = {"DPI": 54, "ZIP": 70, "RAID": 5}


def compute_table7():
    rows = []
    for name, profile in ACCEL_PROFILES.items():
        region_text = ", ".join(
            f"{rname}={size // 1024}K" if size < MB else f"{rname}={size / MB:.2f}M"
            for rname, size in profile.regions
        )
        rows.append(
            (name, region_text, profile.total / MB, profile.tlb_entries(EQUAL_MENU))
        )
    return rows


def test_table7(benchmark):
    rows = benchmark(compute_table7)
    print_table(
        "Table 7 — accelerator memory profiles",
        ["accel", "regions", "total MB", "TLB entries"],
        rows,
    )
    for name, _, _, entries in rows:
        assert entries == PAPER[name]


def run(quick: bool = False) -> dict:
    """Harness entry point: accelerator memory profiles (Table 7)."""
    rows = compute_table7()
    print_table(
        "Table 7 — accelerator memory profiles",
        ["accel", "regions", "total MB", "TLB entries"],
        rows,
    )
    return {
        name: {"total_mb": total_mb, "tlb_entries": entries}
        for name, _, total_mb, entries in rows
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
