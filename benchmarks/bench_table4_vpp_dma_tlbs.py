"""Table 4: TLB banks for virtual packet pipelines + DMA controller.

VPPs need 3 entries (PB/PDB/ODB), DMA banks 2 (PB + instruction queue);
both land on McPAT's minimum-bank floor, so "2 TLB entries have the same
cost estimation as 3".  48 programmable cores at {4, 8, 16} cores/NF give
{12, 6, 3} banks.  Paper: 12 banks → 0.037/0.017 each.
"""

from _common import bench_main, print_table

from repro.cost.mcpat import TLBCostModel
from repro.cost.pages import EQUAL_MENU
from repro.cost.profiles import DMA_REGIONS, VPP_REGIONS
from repro.cost.pages import entries_for

N_CORES = 48
CORES_PER_NF = (4, 8, 16)
PAPER = {12: (0.037, 0.017), 6: (0.019, 0.009), 3: (0.009, 0.004)}


def compute_table4():
    model = TLBCostModel()
    vpp_entries = entries_for(VPP_REGIONS, EQUAL_MENU)
    dma_entries = entries_for(DMA_REGIONS, EQUAL_MENU)
    rows = []
    for per_nf in CORES_PER_NF:
        banks = N_CORES // per_nf
        vpp_area, vpp_power = model.io_tlb_banks(vpp_entries, banks)
        dma_area, dma_power = model.io_tlb_banks(dma_entries, banks)
        rows.append(
            (banks, per_nf, vpp_entries, vpp_area, vpp_power,
             dma_entries, dma_area, dma_power)
        )
    return rows


def test_table4(benchmark):
    rows = benchmark(compute_table4)
    print_table(
        "Table 4 — VPP + DMA TLB banks",
        ["banks", "cores/NF", "VPP entries", "VPP mm²", "VPP W",
         "DMA entries", "DMA mm²", "DMA W"],
        rows,
    )
    for banks, _, _, vpp_area, vpp_power, _, dma_area, dma_power in rows:
        paper_area, paper_power = PAPER[banks]
        for area, power in ((vpp_area, vpp_power), (dma_area, dma_power)):
            assert abs(area - paper_area) < 0.001
            assert abs(power - paper_power) < 0.001


def run(quick: bool = False) -> dict:
    """Harness entry point: VPP + DMA TLB bank costs (Table 4)."""
    rows = compute_table4()
    print_table(
        "Table 4 — VPP + DMA TLB banks",
        ["banks", "cores/NF", "VPP entries", "VPP mm²", "VPP W",
         "DMA entries", "DMA mm²", "DMA W"],
        rows,
    )
    return {
        str(banks): {"vpp_area_mm2": vpp_area, "vpp_power_w": vpp_power,
                     "dma_area_mm2": dma_area, "dma_power_w": dma_power}
        for banks, _, _, vpp_area, vpp_power, _, dma_area, dma_power in rows
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
