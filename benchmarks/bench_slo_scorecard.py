"""SLO scorecard at scale (DESIGN.md §1.11, paper §4.5 as pass/fail).

Runs the per-tenant SLO scorecard — Zipf-skewed tenants under each bus
arbiter, sim-time windowed aggregation, burn-rate alerting — and prints
the headline pass/fail table.  The assertions are the paper's isolation
story: temporal partitioning attributes zero cross-tenant wait, so every
tenant's interference budget passes; fcfs under identical load does not.
"""

from _common import bench_main, print_table


def compute_scorecard(n_tenants: int, quick: bool) -> dict:
    from repro.obs.scorecard import run_scorecard

    return run_scorecard(n_tenants=n_tenants, seed=7, quick=quick)


def run(quick: bool = False) -> dict:
    """Harness entry point: the arbiter-sweep scorecard."""
    n_tenants = 32 if quick else 128
    report = compute_scorecard(n_tenants, quick=True)
    print_table(
        f"SLO scorecard — {n_tenants} tenants per arbiter",
        ["arbiter", "pass", "fail", "pages", "tickets",
         "cross-tenant wait ns"],
        [[row["arbiter"], row["n_pass"], row["n_fail"], row["pages"],
          row["tickets"], row["cross_tenant_wait_ns"]]
         for row in report["summary"]])

    by_arbiter = {row["arbiter"]: row for row in report["summary"]}
    temporal = by_arbiter["temporal"]
    fcfs = by_arbiter["fcfs"]
    assert temporal["cross_tenant_wait_ns"] == 0.0, (
        "temporal partitioning must attribute zero cross-tenant wait")
    assert temporal["n_fail"] == 0, (
        "every tenant must pass all objectives under temporal")
    assert fcfs["n_fail"] > 0, (
        "fcfs under scorecard load must fail tenants on interference")
    assert fcfs["pages"] + fcfs["tickets"] > 0, (
        "fcfs interference must fire burn-rate alerts")

    return {
        "n_tenants": n_tenants,
        "summary": report["summary"],
        "temporal_n_pass": temporal["n_pass"],
        "fcfs_n_fail": fcfs["n_fail"],
        "fcfs_alerts": fcfs["pages"] + fcfs["tickets"],
    }


def test_slo_scorecard(benchmark):
    outputs = benchmark.pedantic(
        lambda: compute_scorecard(16, quick=True), rounds=1, iterations=1)
    temporal = next(row for row in outputs["summary"]
                    if row["arbiter"] == "temporal")
    assert temporal["cross_tenant_wait_ns"] == 0.0
    assert temporal["n_fail"] == 0
    benchmark.extra_info["summary"] = outputs["summary"]


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
