"""Supplementary Appendix-B analogue: profiling this repo's own NFs.

Applies the Table 6 methodology (drive with a trace, measure state,
size the locked TLB budget) to the Python NF implementations.  Absolute
sizes differ from the Rust binaries; the structural findings must hold:
Monitor grows with distinct flows, NAT saturates at its port pool, and
the TLB budgets stay tiny next to a 512-entry core TLB.
"""

from _common import print_table

from repro.cost.pyprofile import profile_all

KB = 1024


def compute_profiles():
    return profile_all(n_packets=2_500)


def test_pyprofiles(benchmark):
    profiles = benchmark.pedantic(compute_profiles, rounds=1, iterations=1)
    rows = [
        (
            name,
            profile.packets,
            f"{profile.peak_state_bytes / KB:.1f}",
            f"{profile.final_state_bytes / KB:.1f}",
            f"{profile.growth_ratio:.2f}x",
            profile.tlb_entries(),
        )
        for name, profile in profiles.items()
    ]
    print_table(
        "Appendix-B analogue — this repo's NFs (state KB, TLB entries)",
        ["NF", "packets", "peak state", "final state", "growth", "TLB entries"],
        rows,
    )
    # Structural findings mirroring the paper: Monitor's state grows
    # with distinct flows (Table 6's only unbounded NF), while LB and
    # LPM are dominated by static tables that do not grow.
    assert profiles["Mon"].growth_ratio > 10
    assert profiles["Mon"].growth_ratio > profiles["LB"].growth_ratio
    assert profiles["LPM"].growth_ratio == 1.0
    for profile in profiles.values():
        assert profile.tlb_entries() <= 512            # fits a core TLB
