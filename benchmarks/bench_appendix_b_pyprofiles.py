"""Supplementary Appendix-B analogue: profiling this repo's own NFs.

Applies the Table 6 methodology (drive with a trace, measure state,
size the locked TLB budget) to the Python NF implementations.  Absolute
sizes differ from the Rust binaries; the structural findings must hold:
Monitor grows with distinct flows, NAT saturates at its port pool, and
the TLB budgets stay tiny next to a 512-entry core TLB.
"""

from _common import bench_main, print_table

from repro.cost.pyprofile import profile_all

KB = 1024


def compute_profiles(n_packets=2_500):
    return profile_all(n_packets=n_packets)


def test_pyprofiles(benchmark):
    profiles = benchmark.pedantic(compute_profiles, rounds=1, iterations=1)
    rows = [
        (
            name,
            profile.packets,
            f"{profile.peak_state_bytes / KB:.1f}",
            f"{profile.final_state_bytes / KB:.1f}",
            f"{profile.growth_ratio:.2f}x",
            profile.tlb_entries(),
        )
        for name, profile in profiles.items()
    ]
    print_table(
        "Appendix-B analogue — this repo's NFs (state KB, TLB entries)",
        ["NF", "packets", "peak state", "final state", "growth", "TLB entries"],
        rows,
    )
    # Structural findings mirroring the paper: Monitor's state grows
    # with distinct flows (Table 6's only unbounded NF), while LB and
    # LPM are dominated by static tables that do not grow.
    assert profiles["Mon"].growth_ratio > 10
    assert profiles["Mon"].growth_ratio > profiles["LB"].growth_ratio
    assert profiles["LPM"].growth_ratio == 1.0
    for profile in profiles.values():
        assert profile.tlb_entries() <= 512            # fits a core TLB


def run(quick: bool = False) -> dict:
    """Harness entry point: this repo's own NF memory profiles."""
    profiles = compute_profiles(n_packets=500 if quick else 2_500)
    print_table(
        "Appendix-B analogue — this repo's NFs (state KB, TLB entries)",
        ["NF", "packets", "peak state", "final state", "growth", "TLB entries"],
        [
            (name, p.packets, f"{p.peak_state_bytes / KB:.1f}",
             f"{p.final_state_bytes / KB:.1f}", f"{p.growth_ratio:.2f}x",
             p.tlb_entries())
            for name, p in profiles.items()
        ],
    )
    return {
        name: {
            "peak_state_bytes": p.peak_state_bytes,
            "growth_ratio": p.growth_ratio,
            "tlb_entries": p.tlb_entries(),
        }
        for name, p in profiles.items()
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
