"""§5.2 TCO analysis: three-year per-core cost and the advantage ratio.

Paper: LiquidIO $38.97/core, host $163.56/core, S-NIC $42.53/core;
the NIC's TCO advantage drops 8.37% (91.6% preserved).
"""

from _common import bench_main, print_table

from repro.cost.tco import paper_tco_analysis


def compute_tco():
    return paper_tco_analysis().results()


def test_tco(benchmark):
    results = benchmark(compute_tco)
    print_table(
        "§5.2 — three-year TCO",
        ["quantity", "reproduced", "paper"],
        [
            ("LiquidIO $/core", results["nic_tco_per_core"], 38.97),
            ("Host $/core", results["host_tco_per_core"], 163.56),
            ("S-NIC $/core", results["snic_tco_per_core"], 42.53),
            ("advantage before (x)", results["advantage_before"], 4.20),
            ("advantage after (x)", results["advantage_after"], 3.85),
            ("advantage reduction %", results["advantage_reduction_pct"], 8.37),
            ("benefit preserved %", results["benefit_preserved_pct"], 91.6),
        ],
    )
    assert abs(results["nic_tco_per_core"] - 38.97) < 0.05
    assert abs(results["snic_tco_per_core"] - 42.53) < 0.05
    assert abs(results["advantage_reduction_pct"] - 8.37) < 0.1


def run(quick: bool = False) -> dict:
    """Harness entry point: three-year TCO analysis (§5.2)."""
    results = compute_tco()
    print_table(
        "§5.2 — three-year TCO",
        ["quantity", "reproduced"],
        [(k, v) for k, v in results.items()],
    )
    return dict(results)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
