"""Ablation: the §4.8 price of strict isolation (underutilization).

Replays a fleet of function launches under S-NIC's allocation model
(whole cores, preallocated peak memory, nothing returned mid-lifetime)
and under a hypothetical elastic allocator, quantifying the utilization
gap the paper calls "fundamental, given the lack of trust between the
different code on the NIC".
"""

from _common import bench_main, print_table

from repro.cost.utilization import generate_workload, isolation_price


def compute_ablation(n_requests=300):
    workload = generate_workload(n_requests=n_requests, seed=11)
    return isolation_price(workload)


def test_ablation_utilization(benchmark):
    results = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    rows = [
        (
            result.policy,
            f"{100 * result.core_utilization:.1f}%",
            f"{100 * result.memory_utilization:.1f}%",
            f"{100 * result.admission_rate:.1f}%",
            result.rejected,
        )
        for result in results.values()
    ]
    print_table(
        "Ablation — §4.8 underutilization (time-averaged)",
        ["policy", "core util", "memory util", "admission", "rejected"],
        rows,
    )
    snic, ideal = results["snic"], results["ideal"]
    # The price of isolation is real but bounded.
    assert ideal.core_utilization >= snic.core_utilization
    assert snic.memory_utilization > 0.5  # Table 8 MURs keep it sane
    assert snic.admission_rate > 0.5


def run(quick: bool = False) -> dict:
    """Harness entry point: §4.8 underutilization ablation."""
    results = compute_ablation(n_requests=80 if quick else 300)
    print_table(
        "Ablation — §4.8 underutilization (time-averaged)",
        ["policy", "core util", "memory util", "admission", "rejected"],
        [
            (r.policy, f"{100 * r.core_utilization:.1f}%",
             f"{100 * r.memory_utilization:.1f}%",
             f"{100 * r.admission_rate:.1f}%", r.rejected)
            for r in results.values()
        ],
    )
    return {
        policy: {
            "core_utilization": result.core_utilization,
            "memory_utilization": result.memory_utilization,
            "admission_rate": result.admission_rate,
            "rejected": result.rejected,
        }
        for policy, result in results.items()
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
