"""Figure 5a: IPC degradation vs L2 cache size (2 colocated NFs).

For every focal NF and every L2 size from 8 KB to 16 MB, run all six
colocations and report the median (with p1/p99).  Paper shape: small
degradation (fractions of a percent) at large caches, rising toward a
few percent at small caches, FW/DPI/NAT worst.
"""

from _common import bench_main, print_table

from repro.perf.colocation import cache_size_sweep

KB = 1024
MB = 1024 * KB
L2_SIZES = [8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB,
            512 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB]
QUICK_L2_SIZES = [64 * KB, 512 * KB, 4 * MB, 16 * MB]


def compute_fig5a(l2_sizes=L2_SIZES):
    return cache_size_sweep(l2_sizes, cotenancy=2)


def test_fig5a(benchmark):
    results = benchmark.pedantic(compute_fig5a, rounds=1, iterations=1)
    headers = ["NF"] + [
        f"{s // KB}K" if s < MB else f"{s // MB}M" for s in L2_SIZES
    ]
    rows = [
        [nf] + [f"{r.median:.2f}" for r in series]
        for nf, series in results.items()
    ]
    print_table("Figure 5a — median IPC degradation % vs L2 size (2 NFs)",
                headers, rows)

    # Shape assertions.
    for nf, series in results.items():
        medians = [r.median for r in series]
        assert all(m >= 0.0 for m in medians)
        # Large caches are near-free: at 16 MB degradation < 1%.
        assert medians[-1] < 1.0
    # FW/DPI/NAT dominate the small-cache regime (the paper's worst trio).
    small_heavy = max(results[n][3].median for n in ("FW", "DPI", "NAT"))
    small_light = results["LB"][3].median
    assert small_heavy > small_light


def run(quick: bool = False) -> dict:
    """Harness entry point: Figure 5a IPC degradation vs L2 size."""
    sizes = QUICK_L2_SIZES if quick else L2_SIZES
    results = compute_fig5a(sizes)
    headers = ["NF"] + [
        f"{s // KB}K" if s < MB else f"{s // MB}M" for s in sizes
    ]
    print_table(
        "Figure 5a — median IPC degradation % vs L2 size (2 NFs)",
        headers,
        [[nf] + [f"{r.median:.2f}" for r in series]
         for nf, series in results.items()],
    )
    return {
        "l2_sizes": list(sizes),
        "median_degradation_pct": {
            nf: [r.median for r in series] for nf, series in results.items()
        },
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
