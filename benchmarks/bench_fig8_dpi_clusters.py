"""Figure 8: DPI accelerator throughput vs cluster size and frame size.

Paper setup: 16/32/48 hardware threads; 64 B / 512 B / 1.5 KB / 9 KB
frames; random payloads from 16 programmable cores.  Takeaway: "as
packet sizes grow, per-packet processing costs increase and a function
benefits from access to more hardware threads" — small frames saturate
the frontend scheduler (flat), jumbo frames scale with threads.
"""

import pytest
from _common import bench_main, print_table

from repro.hw.accelerator import AcceleratorCluster, AcceleratorKind

THREAD_COUNTS = (16, 32, 48)
FRAME_SIZES = (64, 512, 1536, 9000)


def compute_fig8(n_requests=1500):
    analytic = {}
    measured = {}
    for threads in THREAD_COUNTS:
        cluster = AcceleratorCluster(AcceleratorKind.DPI, 0, n_threads=threads)
        analytic[threads] = {
            size: cluster.throughput_mpps(size) for size in FRAME_SIZES
        }
        measured[threads] = {
            size: cluster.measure_throughput_mpps(size, n_requests=n_requests)
            for size in FRAME_SIZES
        }
    return analytic, measured


def test_fig8(benchmark):
    table, measured = benchmark(compute_fig8)
    rows = [
        [f"{size}B"]
        + [f"{table[t][size]:.3f}/{measured[t][size]:.3f}" for t in THREAD_COUNTS]
        for size in FRAME_SIZES
    ]
    print_table(
        "Figure 8 — DPI throughput (Mpps, analytic/event-driven)",
        ["frame"] + [f"{t} threads" for t in THREAD_COUNTS],
        rows,
    )
    # The two evaluation paths agree within 5% (finite-run edge effects).
    for t in THREAD_COUNTS:
        for size in FRAME_SIZES:
            assert measured[t][size] == pytest.approx(table[t][size], rel=0.05)
    # 64 B frames: frontend-bound, flat across thread counts.
    small = [table[t][64] for t in THREAD_COUNTS]
    assert max(small) - min(small) < 1e-9
    # 9 KB frames: thread-bound, scaling linearly with cluster size.
    jumbo = [table[t][9000] for t in THREAD_COUNTS]
    assert jumbo[1] / jumbo[0] == pytest.approx(2.0, rel=0.01)
    assert jumbo[2] / jumbo[0] == pytest.approx(3.0, rel=0.01)
    # Throughput falls with frame size at fixed threads.
    for t in THREAD_COUNTS:
        series = [table[t][s] for s in FRAME_SIZES]
        assert series == sorted(series, reverse=True)


def run(quick: bool = False) -> dict:
    """Harness entry point: DPI throughput vs cluster and frame size."""
    table, measured = compute_fig8(n_requests=300 if quick else 1500)
    print_table(
        "Figure 8 — DPI throughput (Mpps, analytic/event-driven)",
        ["frame"] + [f"{t} threads" for t in THREAD_COUNTS],
        [
            [f"{size}B"] + [
                f"{table[t][size]:.3f}/{measured[t][size]:.3f}"
                for t in THREAD_COUNTS
            ]
            for size in FRAME_SIZES
        ],
    )
    return {
        "analytic_mpps": {
            str(t): {str(s): table[t][s] for s in FRAME_SIZES}
            for t in THREAD_COUNTS
        },
        "measured_mpps": {
            str(t): {str(s): measured[t][s] for s in FRAME_SIZES}
            for t in THREAD_COUNTS
        },
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
