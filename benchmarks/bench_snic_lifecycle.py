"""Supplementary: S-NIC control-plane operation costs (wall clock).

Benchmarks the simulator's nf_launch / nf_attest / nf_teardown and the
end-to-end packet path, to keep the core device model fast as it grows.
(The paper's *simulated* latencies are covered by bench_fig6.)
"""

import time

import pytest
from _common import bench_main, print_table

from repro.core import NFConfig, NICOS, SNIC
from repro.core.vpp import VPPConfig
from repro.crypto.dh import DHParams
from repro.net.packet import Packet
from repro.net.rules import MatchRule

MB = 1024 * 1024
SMALL_DH = DHParams(g=2, p=0xFFFFFFFB)


def test_launch_teardown_cycle(benchmark):
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=31)

    def cycle():
        nf_id = snic.nf_launch(
            NFConfig(name="bench", core_ids=(0,), memory_bytes=4 * MB,
                     initial_image=b"x" * 4096)
        )
        snic.nf_teardown(nf_id)

    benchmark(cycle)


def test_attest_quote(benchmark):
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=32)
    nf_id = snic.nf_launch(
        NFConfig(name="bench", core_ids=(0,), memory_bytes=4 * MB)
    )
    benchmark(lambda: snic.nf_attest(nf_id, b"\x01" * 16, params=SMALL_DH))


def test_packet_path(benchmark):
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=33)
    nic_os = NICOS(snic)
    vnic = nic_os.NF_create(
        NFConfig(name="bench", core_ids=(0,), memory_bytes=4 * MB,
                 vpp=VPPConfig(rules=[MatchRule()]))
    )
    frame = Packet.make("10.0.0.1", "8.8.8.8", src_port=1, dst_port=2)

    def roundtrip():
        snic.rx_port.wire_arrival(frame.copy())
        snic.process_ingress()
        packet = vnic.receive()
        vnic.transmit(packet)
        snic.process_egress()

    benchmark(roundtrip)
    assert snic.tx_port.transmitted


def _timed(fn, rounds):
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - started) / rounds


def run(quick: bool = False) -> dict:
    """Harness entry point: wall-clock cost of control-plane ops."""
    rounds = 3 if quick else 10
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=31)

    def cycle():
        nf_id = snic.nf_launch(
            NFConfig(name="bench", core_ids=(0,), memory_bytes=4 * MB,
                     initial_image=b"x" * 4096))
        snic.nf_teardown(nf_id)

    cycle_s = _timed(cycle, rounds)

    attest_snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=32)
    nf_id = attest_snic.nf_launch(
        NFConfig(name="bench", core_ids=(0,), memory_bytes=4 * MB))
    attest_s = _timed(
        lambda: attest_snic.nf_attest(nf_id, b"\x01" * 16, params=SMALL_DH),
        rounds)

    pkt_snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=33)
    nic_os = NICOS(pkt_snic)
    vnic = nic_os.NF_create(
        NFConfig(name="bench", core_ids=(0,), memory_bytes=4 * MB,
                 vpp=VPPConfig(rules=[MatchRule()])))
    frame = Packet.make("10.0.0.1", "8.8.8.8", src_port=1, dst_port=2)

    def roundtrip():
        pkt_snic.rx_port.wire_arrival(frame.copy())
        pkt_snic.process_ingress()
        vnic.transmit(vnic.receive())
        pkt_snic.process_egress()

    packet_s = _timed(roundtrip, rounds * 20)
    print_table(
        "S-NIC control-plane wall-clock costs",
        ["operation", "mean s"],
        [("launch+teardown", cycle_s), ("attest", attest_s),
         ("packet roundtrip", packet_s)],
    )
    return {
        "launch_teardown_s": cycle_s,
        "attest_s": attest_s,
        "packet_roundtrip_s": packet_s,
        "rounds": rounds,
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
