"""Table 5: TLB cost vs supported page sizes (48 programmable cores).

For each menu the TLB is sized for the worst NF (max entries across the
six profiles).  Paper: Equal 183×16... (entries per core: 183 / 51 / 13;
48 cores: 0.538/0.311, 0.214/0.106, 0.150/0.069).

This bench doubles as the page-size-menu ablation called out in
DESIGN.md §4.
"""

from _common import bench_main, print_table

from repro.cost.mcpat import TLBCostModel
from repro.cost.pages import EQUAL_MENU, FLEX_HIGH_MENU, FLEX_LOW_MENU
from repro.cost.profiles import NF_PROFILES

N_CORES = 48
PAPER = {"Equal": (183, 0.538, 0.311), "Flex-high": (51, 0.214, 0.106),
         "Flex-low": (13, 0.150, 0.069)}
# NOTE: the paper's Table 5 labels the 51-entry row "Flex-high
# (128KB,2MB,64MB)" and the 13-entry row "Flex-low (2MB,32MB,128MB)" —
# i.e. its row labels are swapped relative to its own Table 6 column
# names.  We follow the Table 6 naming (Flex-low = small pages) and
# match rows by entry count.


def compute_table5():
    model = TLBCostModel()
    rows = []
    for menu in (EQUAL_MENU, FLEX_LOW_MENU, FLEX_HIGH_MENU):
        worst = max(p.tlb_entries(menu) for p in NF_PROFILES.values())
        area, power = model.core_tlbs(worst, N_CORES)
        rows.append((menu.name, [s // 1024 for s in menu.sizes], worst, area, power))
    return rows


def test_table5(benchmark):
    rows = benchmark(compute_table5)
    print_table(
        "Table 5 — TLB cost vs page-size menu (48 cores)",
        ["menu", "page sizes (KB)", "entries/core", "area mm²", "power W"],
        rows,
    )
    by_entries = {entries: (area, power) for _, _, entries, area, power in rows}
    for _, (entries, paper_area, paper_power) in PAPER.items():
        assert entries in by_entries
        area, power = by_entries[entries]
        # ±15%: the 51/13-entry points interpolate the calibrated model.
        assert abs(area - paper_area) / paper_area < 0.20
        assert abs(power - paper_power) / paper_power < 0.40


def run(quick: bool = False) -> dict:
    """Harness entry point: TLB cost vs page-size menu (Table 5)."""
    rows = compute_table5()
    print_table(
        "Table 5 — TLB cost vs page-size menu (48 cores)",
        ["menu", "page sizes (KB)", "entries/core", "area mm²", "power W"],
        rows,
    )
    return {
        name: {"entries_per_core": entries, "area_mm2": area, "power_w": power}
        for name, _, entries, area, power in rows
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
