"""§3.3 attack matrix: commodity NICs vs S-NIC.

Regenerates the paper's core security result as a table: each
proof-of-concept attack succeeds on its commodity target and is blocked
by construction on S-NIC.
"""

import pytest
from _common import bench_main, print_table

from repro.commodity.agilio import AgilioNIC
from repro.commodity.attacks import (
    bus_dos_attack,
    run_dpi_stealing_experiment,
    run_packet_corruption_experiment,
)
from repro.core import IsolationViolation, NFConfig, NICOS, SNIC
from repro.core.vpp import VPPConfig
from repro.net.packet import Packet
from repro.net.rules import MatchRule

MB = 1024 * 1024


def _snic_pair():
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=21)
    nic_os = NICOS(snic)
    victim = nic_os.NF_create(
        NFConfig(name="victim", core_ids=(0,), memory_bytes=4 * MB,
                 initial_image=b"VICTIM-STATE" * 8,
                 vpp=VPPConfig(rules=[MatchRule()]))
    )
    attacker = nic_os.NF_create(
        NFConfig(name="attacker", core_ids=(1,), memory_bytes=4 * MB)
    )
    return snic, nic_os, victim, attacker


def run_attack_matrix():
    outcomes = []

    # 1. Packet corruption.
    result, clean, attacked = run_packet_corruption_experiment(n_packets=8)
    outcomes.append(
        ("packet-corruption", "LiquidIO SE-S",
         "SUCCEEDS" if result.succeeded and attacked < clean else "failed",
         f"{clean} -> {attacked} NAT translations")
    )
    snic, _, victim, attacker = _snic_pair()
    snic.rx_port.wire_arrival(Packet.make("10.0.0.1", "8.8.8.8"))
    snic.process_ingress()
    frame_addr, _ = snic.record(victim.nf_id).vpp.rx_ring.peek_descriptors()[0]
    try:
        attacker.write(frame_addr, b"\xff")
        snic_outcome = "SUCCEEDS"
    except IsolationViolation:
        snic_outcome = "BLOCKED"
    outcomes.append(
        ("packet-corruption", "S-NIC", snic_outcome,
         "attacker cannot address victim buffers")
    )

    # 2. DPI ruleset stealing.
    result, ruleset = run_dpi_stealing_experiment(ruleset=b"SIG" * 40)
    outcomes.append(
        ("dpi-ruleset-stealing", "LiquidIO SE-S",
         "SUCCEEDS" if result.succeeded and result.evidence[0] == ruleset else "failed",
         result.details)
    )
    snic, nic_os, victim, attacker = _snic_pair()
    try:
        attacker.read(snic.record(victim.nf_id).extent_base, 64)
        snic_outcome = "SUCCEEDS"
    except IsolationViolation:
        snic_outcome = "BLOCKED"
    outcomes.append(
        ("dpi-ruleset-stealing", "S-NIC", snic_outcome,
         "locked TLB has no mapping for foreign pages")
    )

    # 2b. Traffic stealing via switching-rule tampering (§3.2).
    from repro.commodity.attacks import run_traffic_stealing_experiment

    result, victim_got, attacker_got = run_traffic_stealing_experiment()
    outcomes.append(
        ("traffic-stealing", "LiquidIO SE-S",
         "SUCCEEDS" if result.succeeded and attacker_got > 0 else "failed",
         f"victim got {victim_got}, attacker got {attacker_got}")
    )
    snic, nic_os, victim, attacker = _snic_pair()
    record = snic.record(victim.nf_id)
    try:
        nic_os.os_write(record.extent_base + record.extent_bytes - 4096,
                        b"\x00" * 16)
        snic_outcome = "SUCCEEDS"
    except IsolationViolation:
        snic_outcome = "BLOCKED"
    outcomes.append(
        ("traffic-stealing", "S-NIC", snic_outcome,
         "rules live in denylisted memory; covered by the launch hash")
    )

    # 3. Bus denial-of-service.
    result = bus_dos_attack(AgilioNIC())
    outcomes.append(
        ("bus-dos", "Agilio", "SUCCEEDS" if result.succeeded else "failed",
         "hard crash; power cycle required")
    )
    snic, _, victim, attacker = _snic_pair()
    baseline = victim.bus_transfer(1024, now_ns=0.0)
    for _ in range(2000):
        attacker.bus_transfer(8, now_ns=0.0)
    outcomes.append(
        ("bus-dos", "S-NIC", "BLOCKED",
         "attacker confined to its own epochs; no crash")
    )
    return outcomes


def test_attack_matrix(benchmark):
    outcomes = benchmark.pedantic(run_attack_matrix, rounds=1, iterations=1)
    print_table(
        "§3.3 attack matrix",
        ["attack", "platform", "outcome", "notes"],
        outcomes,
    )
    by_key = {(a, p): o for a, p, o, _ in outcomes}
    for attack in ("packet-corruption", "dpi-ruleset-stealing",
                   "traffic-stealing", "bus-dos"):
        commodity_platform = next(
            p for a, p, _, _ in outcomes if a == attack and p != "S-NIC"
        )
        assert by_key[(attack, commodity_platform)] == "SUCCEEDS"
        assert by_key[(attack, "S-NIC")] == "BLOCKED"


def run(quick: bool = False) -> dict:
    """Harness entry point: the §3.3 attack matrix outcomes."""
    outcomes = run_attack_matrix()
    print_table(
        "§3.3 attack matrix",
        ["attack", "platform", "outcome", "notes"],
        outcomes,
    )
    return {
        f"{attack}/{platform}": outcome
        for attack, platform, outcome, _ in outcomes
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
