"""Table 3: TLB-bank costs for virtualized accelerators.

Per-cluster TLB sizes come from the Table 7 memory profiles (DPI 54,
ZIP 70, RAID 5 entries); cluster counts are 16/8/4 over 64 hardware
threads.  Paper values at 16 clusters: DPI 0.074/0.037, ZIP 0.091/0.044,
RAID 0.050/0.023.
"""

from _common import bench_main, print_table

from repro.cost.mcpat import TLBCostModel
from repro.cost.pages import EQUAL_MENU
from repro.cost.profiles import ACCEL_PROFILES

CLUSTER_CONFIGS = [(16, 4), (8, 8), (4, 16)]  # (clusters, threads each)
PAPER_16 = {"DPI": (0.074, 0.037), "ZIP": (0.091, 0.044), "RAID": (0.050, 0.023)}


def compute_table3():
    model = TLBCostModel()
    entries = {
        name: profile.tlb_entries(EQUAL_MENU)
        for name, profile in ACCEL_PROFILES.items()
    }
    rows = []
    for clusters, threads in CLUSTER_CONFIGS:
        for name, n_entries in entries.items():
            area, power = model.io_tlb_banks(n_entries, clusters)
            rows.append((clusters, threads, name, n_entries, area, power))
    return rows


def test_table3(benchmark):
    rows = benchmark(compute_table3)
    print_table(
        "Table 3 — accelerator TLB banks",
        ["clusters", "threads/cluster", "accel", "TLB entries", "area mm²", "power W"],
        rows,
    )
    for clusters, _, name, _, area, power in rows:
        if clusters == 16:
            paper_area, paper_power = PAPER_16[name]
            assert abs(area - paper_area) < 0.002
            assert abs(power - paper_power) < 0.002


def run(quick: bool = False) -> dict:
    """Harness entry point: accelerator TLB bank costs (Table 3)."""
    rows = compute_table3()
    print_table(
        "Table 3 — accelerator TLB banks",
        ["clusters", "threads/cluster", "accel", "TLB entries",
         "area mm²", "power W"],
        rows,
    )
    return {
        f"{name}@{clusters}": {"entries": entries, "area_mm2": area,
                               "power_w": power}
        for clusters, _, name, entries, area, power in rows
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
