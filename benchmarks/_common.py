"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows next to the paper's values, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the entire evaluation section.  The printed series are also
written as the benchmark's ``extra_info`` for machine consumption.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one reproduced table to stdout."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
