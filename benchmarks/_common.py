"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Each
script exposes three entry points:

* ``test_*(benchmark)`` — the pytest-benchmark path
  (``pytest benchmarks/ --benchmark-only -s``) with the paper-value
  assertions;
* ``run(quick: bool = False) -> dict`` — the unified-harness path
  (``python -m repro bench``): prints the reproduced tables and returns
  the scenario's key model outputs as a JSON-safe dict, with ``quick``
  selecting CI-sized parameters;
* ``python benchmarks/bench_<name>.py [--quick]`` — standalone
  execution via :func:`bench_main`, printing the tables plus the
  returned outputs as JSON.

The printed series are also written as the benchmark's ``extra_info``
for machine consumption.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one reproduced table to stdout."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def quick_param(quick: bool, full, reduced):
    """The scenario parameter for this mode: ``reduced`` under --quick."""
    return reduced if quick else full


def bench_main(run: Callable[..., Dict[str, object]]) -> int:
    """Standalone ``__main__`` driver shared by every bench script.

    Parses ``--quick``, invokes the script's ``run`` entry point (which
    prints its own tables), then prints the returned outputs as JSON —
    the same dict the unified harness records in ``BENCH_*.json``.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description=(run.__doc__ or "run this benchmark scenario").strip())
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized parameters")
    args = parser.parse_args()

    outputs = run(quick=args.quick)
    try:
        from repro.obs.bench import jsonable
        outputs = jsonable(outputs)
    except ImportError:
        pass
    print("\n[outputs] " + json.dumps(outputs, default=repr))
    return 0
