"""Figure 6: trusted-instruction execution latency per NF.

nf_launch is dominated by SHA-256 digesting of the function image
(LB 29.62 ms ... Monitor 763.52 ms); nf_destroy by memory scrubbing
(2.11–54.23 ms); nf_attest is a size-independent ~5.6 ms.
"""

from _common import bench_main, print_table

from repro.core.timing import DEFAULT_TIMING
from repro.cost.profiles import NF_PROFILES

PAPER_LAUNCH_SHA = {"LB": 29.62, "Mon": 763.52}
PAPER_DESTROY = {"LB": 2.11, "Mon": 54.23}


def compute_fig6():
    rows = []
    for name, profile in NF_PROFILES.items():
        launch = DEFAULT_TIMING.nf_launch_breakdown_ms(profile.total)
        destroy = DEFAULT_TIMING.nf_destroy_breakdown_ms(profile.total)
        rows.append(
            (
                name,
                launch["tlb_setup_config_read"],
                launch["denylisting"],
                launch["sha256_digesting"],
                sum(launch.values()),
                destroy["allowlisting"],
                destroy["memory_scrubbing"],
                sum(destroy.values()),
            )
        )
    return rows


def test_fig6(benchmark):
    rows = benchmark(compute_fig6)
    print_table(
        "Figure 6 — instruction latency (ms)",
        ["NF", "TLB setup", "denylist", "SHA-256", "nf_launch total",
         "allowlist", "scrub", "nf_destroy total"],
        rows,
    )
    attest = DEFAULT_TIMING.nf_attest_breakdown_ms()
    print(
        f"nf_attest: RSA {attest['rsa_signing']:.3f} ms + "
        f"SHA {attest['sha256_digesting']:.3f} ms "
        f"= {sum(attest.values()):.3f} ms (paper ~5.6 ms, size-independent)"
    )
    by_name = {row[0]: row for row in rows}
    for name, paper_sha in PAPER_LAUNCH_SHA.items():
        assert abs(by_name[name][3] - paper_sha) / paper_sha < 0.02
    for name, paper_destroy in PAPER_DESTROY.items():
        assert abs(by_name[name][7] - paper_destroy) / paper_destroy < 0.05
    # Ordering: latency tracks memory size, Monitor worst.
    totals = [row[4] for row in rows]
    assert max(totals) == by_name["Mon"][4]


def run(quick: bool = False) -> dict:
    """Harness entry point: trusted-instruction latency per NF."""
    rows = compute_fig6()
    print_table(
        "Figure 6 — instruction latency (ms)",
        ["NF", "TLB setup", "denylist", "SHA-256", "nf_launch total",
         "allowlist", "scrub", "nf_destroy total"],
        rows,
    )
    attest = DEFAULT_TIMING.nf_attest_breakdown_ms()
    return {
        "nf_launch_total_ms": {row[0]: row[4] for row in rows},
        "nf_destroy_total_ms": {row[0]: row[7] for row in rows},
        "nf_attest_total_ms": sum(attest.values()),
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
