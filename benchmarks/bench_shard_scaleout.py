"""Shard scale-out: monolithic vs 4-shard co-simulation (DESIGN §1.12).

Runs the hundreds-of-tenants SLO scorecard (the OSMOSIS-scale workload)
twice on the same seeded spec: once through the monolithic builder (one
event kernel over every tenant) and once through the sharded engine
(four tenant partitions, each its own event kernel in its own worker
process, conservative virtual-time grants between them).

The speedup is *algorithmic*, not just parallel: the monolithic kernel's
poll-loop work grows with tenants × horizon, so four quarter-size
partitions on compressed schedules do strictly less total work — which
is why the wall-clock win survives even a single-core host.  Full mode
asserts the headline ≥2× at 4 shards; quick mode records the ratio
without gating on it (CI machines are noisy).

Wall-clock timing is the point of this scenario, as in the harness
itself — these numbers are measurements, never byte-compared.
"""

import time

from _common import bench_main, print_table, quick_param

WORKERS = 4
ARBITER = "fcfs"
SEED = 7


def _monolithic(n_tenants: int, quick: bool) -> dict:
    from repro.obs.scorecard import run_scorecard

    return run_scorecard(n_tenants=n_tenants, seed=SEED, quick=quick,
                         arbiters=(ARBITER,))


def _sharded(n_tenants: int, quick: bool) -> dict:
    from repro.shard.engine import run_scorecard_sharded

    return run_scorecard_sharded(n_tenants=n_tenants, seed=SEED,
                                 quick=quick, arbiters=(ARBITER,),
                                 workers=WORKERS)


def run(quick: bool = False) -> dict:
    """Harness entry point: time monolithic vs sharded on one spec."""
    n_tenants = quick_param(quick, 512, 192)

    # Warm both paths at toy scale so import/JIT costs don't pollute
    # the measured runs (first-call skew is real on cold processes).
    _monolithic(8, quick=True)
    _sharded(8, quick=True)

    started = time.perf_counter()
    mono = _monolithic(n_tenants, quick=quick)
    mono_wall_s = time.perf_counter() - started

    started = time.perf_counter()
    sharded = _sharded(n_tenants, quick=quick)
    sharded_wall_s = time.perf_counter() - started

    speedup = mono_wall_s / sharded_wall_s if sharded_wall_s else 0.0
    mono_row = mono["summary"][0]
    shard_row = sharded["summary"][0]
    shard_block = sharded["arbiters"][ARBITER]

    print_table(
        f"shard scale-out — {n_tenants} tenants, {ARBITER}, "
        f"{WORKERS} shard workers",
        ["path", "wall s", "tenants judged", "pass", "fail",
         "packets"],
        [["monolithic", mono_wall_s, n_tenants, mono_row["n_pass"],
          mono_row["n_fail"], mono_row["packets_completed"]],
         ["sharded x4", sharded_wall_s, n_tenants, shard_row["n_pass"],
          shard_row["n_fail"], shard_row["packets_completed"]]])
    print(f"\nspeedup: {speedup:.2f}x "
          f"({shard_block['partitions']} partitions, "
          f"lookahead {sharded['sharded']['link_latency_ns']} ns)")

    # Structural parity: the sharded path judged every tenant, in spec
    # order, with an intact audit chain.
    assert len(shard_block["tenants"]) == n_tenants
    assert shard_block["audit"]["chain_ok"] is True
    assert shard_row["n_pass"] + shard_row["n_fail"] == n_tenants
    if not quick:
        assert speedup >= 2.0, (
            f"expected >=2x at {WORKERS} shards on {n_tenants} tenants, "
            f"measured {speedup:.2f}x")

    return {
        "n_tenants": n_tenants,
        "arbiter": ARBITER,
        "shard_workers": WORKERS,
        "partitions": shard_block["partitions"],
        "monolithic_wall_s": mono_wall_s,
        "sharded_wall_s": sharded_wall_s,
        "speedup": speedup,
        "monolithic_n_pass": mono_row["n_pass"],
        "sharded_n_pass": shard_row["n_pass"],
        "sharded_packets_completed": shard_row["packets_completed"],
        "audit_chain_ok": shard_block["audit"]["chain_ok"],
    }


def test_shard_scaleout(benchmark):
    outputs = benchmark.pedantic(lambda: run(quick=True), rounds=1,
                                 iterations=1)
    assert outputs["audit_chain_ok"] is True
    benchmark.extra_info["speedup"] = outputs["speedup"]


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
