"""Ablation: bus arbitration scheme (DESIGN.md §4).

Compares FCFS (commodity) against temporal partitioning (S-NIC, §4.5) on
two axes:

* throughput cost — the per-access expected arbitration wait a tenant
  pays (TP trades bandwidth for isolation; the paper cites <5% slowdown
  at four domains);
* leakage — how much a victim's observed latency shifts when a co-tenant
  floods the bus (zero for TP, by construction).
"""

from _common import bench_main, print_table

from repro.hw.bus import FCFSArbiter, TemporalPartitioningArbiter
from repro.perf.ipc import BusModel


def measure_leakage(make_arbiter):
    """Victim latency shift (ns) induced by an attacker burst."""
    quiet = make_arbiter()
    quiet_latency = quiet.request(1, 1024, 0.0) - 0.0
    noisy = make_arbiter()
    for _ in range(200):
        noisy.request(0, 4096, 0.0)
    noisy_latency = noisy.request(1, 1024, 0.0) - 0.0
    return noisy_latency - quiet_latency


def compute_ablation(domain_counts=(2, 4, 8, 16)):
    bus = BusModel()
    rows = []
    for n_domains in domain_counts:
        tp_wait = bus.temporal_partition_wait_ns(n_domains)
        fcfs_wait = bus.fcfs_wait_ns(0.002 * n_domains)
        tp_leak = measure_leakage(
            lambda n=n_domains: TemporalPartitioningArbiter(
                domains=list(range(n)), epoch_ns=1000.0, dead_time_ns=100.0
            )
        )
        fcfs_leak = measure_leakage(FCFSArbiter)
        rows.append((n_domains, fcfs_wait, tp_wait, fcfs_leak, tp_leak))
    return rows


def test_ablation_bus(benchmark):
    rows = benchmark(compute_ablation)
    print_table(
        "Ablation — bus arbitration (per-access wait ns / victim latency shift ns)",
        ["domains", "FCFS wait", "TP wait", "FCFS leak", "TP leak"],
        rows,
    )
    for n_domains, fcfs_wait, tp_wait, fcfs_leak, tp_leak in rows:
        assert tp_leak == 0.0          # non-interference is exact
        assert fcfs_leak > 0.0         # the commodity side channel
        assert tp_wait > fcfs_wait     # the price of isolation
    waits = [row[2] for row in rows]
    assert waits == sorted(waits)      # cost grows with domain count


def run(quick: bool = False) -> dict:
    """Harness entry point: bus-arbitration ablation key outputs."""
    rows = compute_ablation(domain_counts=(2, 4) if quick else (2, 4, 8, 16))
    print_table(
        "Ablation — bus arbitration (per-access wait ns / victim latency shift ns)",
        ["domains", "FCFS wait", "TP wait", "FCFS leak", "TP leak"],
        rows,
    )
    return {
        "domains": [r[0] for r in rows],
        "fcfs_wait_ns": [r[1] for r in rows],
        "tp_wait_ns": [r[2] for r in rows],
        "fcfs_leak_ns": [r[3] for r in rows],
        "tp_leak_ns": [r[4] for r in rows],
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
