"""Side-channel matrix: watermarking + covert channels, commodity vs S-NIC.

Quantifies the channels the §3.3 exploits only hint at:

* the Bates-et-al. flow-watermarking channel through bus contention,
  which §4.5 claims temporal partitioning eliminates; and
* a prime/flush+reload covert channel through the shared cache, which
  §4.2 claims only *hard* partitioning (not CAT-style soft partitioning)
  closes.

Reported as channel accuracy: 1.0 = perfect channel, ~0.5 = noise.
"""

from _common import bench_main, print_table

from repro.commodity.sidechannels import (
    bus_watermark_on_fcfs,
    bus_watermark_on_snic,
    cache_covert_channel,
)
from repro.hw.cache import HARD, SOFT


def compute_matrix(n_bits=64):
    rows = []
    fcfs = bus_watermark_on_fcfs(n_bits=n_bits)
    snic = bus_watermark_on_snic(n_bits=n_bits)
    rows.append(("bus-watermark", "FCFS (commodity)", fcfs.accuracy,
                 "OPEN" if fcfs.channel_works else "closed"))
    rows.append(("bus-watermark", "temporal partitioning (S-NIC)",
                 snic.accuracy, "open" if snic.channel_works else "CLOSED"))
    for mode, label in (("shared", "shared LRU (commodity)"),
                        (SOFT, "soft partition (Intel CAT)"),
                        (HARD, "hard partition (S-NIC)")):
        result = cache_covert_channel(mode, n_bits=n_bits)
        status = "OPEN" if result.channel_works else (
            "CLOSED" if result.channel_closed else "degraded")
        rows.append(("cache-covert", label, result.accuracy, status))
    return rows


def test_sidechannel_matrix(benchmark):
    rows = benchmark.pedantic(compute_matrix, rounds=1, iterations=1)
    print_table(
        "Side-channel matrix (decode accuracy; 0.5 = noise)",
        ["channel", "mechanism", "accuracy", "status"],
        rows,
    )
    by_key = {(c, m): s for c, m, _, s in rows}
    assert by_key[("bus-watermark", "FCFS (commodity)")] == "OPEN"
    assert by_key[("bus-watermark", "temporal partitioning (S-NIC)")] == "CLOSED"
    assert by_key[("cache-covert", "shared LRU (commodity)")] == "OPEN"
    assert by_key[("cache-covert", "soft partition (Intel CAT)")] == "OPEN"
    assert by_key[("cache-covert", "hard partition (S-NIC)")] == "CLOSED"


def run(quick: bool = False) -> dict:
    """Harness entry point: side-channel decode-accuracy matrix."""
    rows = compute_matrix(n_bits=24 if quick else 64)
    print_table(
        "Side-channel matrix (decode accuracy; 0.5 = noise)",
        ["channel", "mechanism", "accuracy", "status"],
        rows,
    )
    return {
        f"{channel}/{mechanism}": {"accuracy": accuracy, "status": status}
        for channel, mechanism, accuracy, status in rows
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
