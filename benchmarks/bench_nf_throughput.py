"""Supplementary: behavioral packet-processing throughput of the six NFs.

Not a paper table — a regression benchmark over the real NF
implementations processing the ICTF-like Zipf(1.1) stream, so changes to
the data structures (flow caches, Aho–Corasick, DIR-24-8, Maglev) show
up as throughput deltas.
"""

import time

import pytest
from _common import bench_main, print_table

from repro.net.rules import Prefix
from repro.net.traces import make_ictf_like_trace
from repro.nf import (
    Backend,
    DIR24_8,
    DPIEngine,
    Firewall,
    MaglevLoadBalancer,
    Monitor,
    NAT,
    make_emerging_threats_rules,
    make_random_routes,
    make_snort_like_patterns,
)

N_PACKETS = 2_000


@pytest.fixture(scope="module")
def packets():
    trace = make_ictf_like_trace(scale=0.01)
    return list(trace.packets(N_PACKETS, payload_size=64))


def _drain(nf, packets):
    for packet in packets:
        nf.process(packet)
    return nf.stats.received


def test_firewall_throughput(benchmark, packets):
    fw = Firewall(make_emerging_threats_rules(643))
    assert benchmark(_drain, fw, packets) >= N_PACKETS


def test_dpi_throughput(benchmark, packets):
    dpi = DPIEngine(make_snort_like_patterns(500))
    assert benchmark(_drain, dpi, packets) >= N_PACKETS


def test_nat_throughput(benchmark, packets):
    nat = NAT("100.0.0.1")
    assert benchmark(_drain, nat, packets) >= N_PACKETS


def test_lb_throughput(benchmark, packets):
    lb = MaglevLoadBalancer(
        [Backend(f"b{i}", f"1.0.0.{i + 1}") for i in range(8)], table_size=65537
    )
    assert benchmark(_drain, lb, packets) >= N_PACKETS


def test_lpm_throughput(benchmark, packets):
    lpm = DIR24_8(max_tbl8_groups=1024)
    for prefix, hop in make_random_routes(4_000):
        lpm.add_route(prefix, hop)
    lpm.add_route(Prefix.parse("0.0.0.0/0"), 1)  # default route
    assert benchmark(_drain, lpm, packets) >= N_PACKETS


def test_monitor_throughput(benchmark, packets):
    mon = Monitor()
    assert benchmark(_drain, mon, packets) >= N_PACKETS


def _make_nfs():
    lpm = DIR24_8(max_tbl8_groups=1024)
    for prefix, hop in make_random_routes(4_000):
        lpm.add_route(prefix, hop)
    lpm.add_route(Prefix.parse("0.0.0.0/0"), 1)
    return {
        "FW": Firewall(make_emerging_threats_rules(643)),
        "DPI": DPIEngine(make_snort_like_patterns(500)),
        "NAT": NAT("100.0.0.1"),
        "LB": MaglevLoadBalancer(
            [Backend(f"b{i}", f"1.0.0.{i + 1}") for i in range(8)],
            table_size=65537),
        "LPM": lpm,
        "Mon": Monitor(),
    }


def run(quick: bool = False) -> dict:
    """Harness entry point: packets/second through each real NF."""
    n_packets = 400 if quick else N_PACKETS
    trace = make_ictf_like_trace(scale=0.01)
    packets = list(trace.packets(n_packets, payload_size=64))
    rows = []
    pps = {}
    for name, nf in _make_nfs().items():
        started = time.perf_counter()
        received = _drain(nf, packets)
        elapsed = time.perf_counter() - started
        pps[name] = received / elapsed if elapsed else 0.0
        rows.append((name, received, f"{pps[name] / 1e3:.1f}"))
    print_table(
        "NF behavioral throughput (host wall clock)",
        ["NF", "packets", "kpps"],
        rows,
    )
    return {"packets": n_packets, "kpps": {n: v / 1e3 for n, v in pps.items()}}


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
