"""§5.2 headline: aggregate S-NIC silicon overheads.

Paper: "S-NIC's additional TLB entries add 8.89% more chip area and
11.45% more power consumption compared to a baseline 4-core A9."
"""

from _common import bench_main, print_table

from repro.cost.mcpat import snic_headline_overheads


def test_headline(benchmark):
    results = benchmark(snic_headline_overheads)
    print_table(
        "§5.2 — headline silicon overheads",
        ["component", "area mm²", "power W"],
        [
            ("core TLBs (4×512e)", results["core_tlb_area_mm2"],
             results["core_tlb_power_w"]),
            ("accelerator TLB banks", results["accel_tlb_area_mm2"],
             results["accel_tlb_power_w"]),
            ("VPP + DMA banks", results["vpp_dma_area_mm2"],
             results["vpp_dma_power_w"]),
            ("total added", results["total_added_area_mm2"],
             results["total_added_power_w"]),
        ],
    )
    print(
        f"area overhead: {results['area_overhead_pct']:.2f}% (paper 8.89%)   "
        f"power overhead: {results['power_overhead_pct']:.2f}% (paper 11.45%)"
    )
    assert abs(results["area_overhead_pct"] - 8.89) < 0.15
    assert abs(results["power_overhead_pct"] - 11.45) < 0.15


def run(quick: bool = False) -> dict:
    """Harness entry point: headline silicon overheads."""
    results = snic_headline_overheads()
    print_table(
        "§5.2 — headline silicon overheads",
        ["component", "area mm²", "power W"],
        [
            ("core TLBs (4×512e)", results["core_tlb_area_mm2"],
             results["core_tlb_power_w"]),
            ("accelerator TLB banks", results["accel_tlb_area_mm2"],
             results["accel_tlb_power_w"]),
            ("VPP + DMA banks", results["vpp_dma_area_mm2"],
             results["vpp_dma_power_w"]),
            ("total added", results["total_added_area_mm2"],
             results["total_added_power_w"]),
        ],
    )
    return {
        "area_overhead_pct": results["area_overhead_pct"],
        "power_overhead_pct": results["power_overhead_pct"],
        "total_added_area_mm2": results["total_added_area_mm2"],
        "total_added_power_w": results["total_added_power_w"],
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
