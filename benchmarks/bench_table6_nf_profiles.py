"""Table 6: NF memory profiles and TLB entries under three page menus.

Paper entry counts (Equal / Flex-low / Flex-high):
FW 11/34/11, DPI 28/51/13, NAT 25/37/10, LB 10/22/10, LPM 37/23/7,
Mon 183/46/12.  (Our FW Flex-low is 33 — see EXPERIMENTS.md.)
"""

from _common import bench_main, print_table

from repro.cost.pages import EQUAL_MENU, FLEX_HIGH_MENU, FLEX_LOW_MENU, MB
from repro.cost.profiles import NF_PROFILES

PAPER = {
    "FW": (11, 34, 11), "DPI": (28, 51, 13), "NAT": (25, 37, 10),
    "LB": (10, 22, 10), "LPM": (37, 23, 7), "Mon": (183, 46, 12),
}


def compute_table6():
    rows = []
    for name, profile in NF_PROFILES.items():
        rows.append(
            (
                name,
                profile.text / MB,
                profile.data / MB,
                profile.code / MB,
                profile.heap_stack / MB,
                profile.total / MB,
                profile.tlb_entries(EQUAL_MENU),
                profile.tlb_entries(FLEX_LOW_MENU),
                profile.tlb_entries(FLEX_HIGH_MENU),
                100.0 * profile.mur,
            )
        )
    return rows


def test_table6(benchmark):
    rows = benchmark(compute_table6)
    print_table(
        "Table 6 — NF memory profiles",
        ["NF", "text MB", "data MB", "code MB", "heap MB", "total MB",
         "Equal", "Flex-low", "Flex-high", "MUR %"],
        rows,
    )
    for row in rows:
        name, equal, flex_low, flex_high = row[0], row[6], row[7], row[8]
        paper_equal, paper_low, paper_high = PAPER[name]
        assert equal == paper_equal
        assert abs(flex_low - paper_low) <= 1  # FW: 33 vs 34
        assert flex_high == paper_high


def run(quick: bool = False) -> dict:
    """Harness entry point: NF memory profiles + TLB entries (Table 6)."""
    rows = compute_table6()
    print_table(
        "Table 6 — NF memory profiles",
        ["NF", "text MB", "data MB", "code MB", "heap MB", "total MB",
         "Equal", "Flex-low", "Flex-high", "MUR %"],
        rows,
    )
    return {
        row[0]: {"total_mb": row[5], "equal_entries": row[6],
                 "flex_low_entries": row[7], "flex_high_entries": row[8],
                 "mur_pct": row[9]}
        for row in rows
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
