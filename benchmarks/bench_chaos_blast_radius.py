"""Blast-radius matrix: fault injection, commodity vs S-NIC (§3.3 / §4.6).

Reproduces the fate-sharing argument as a falsifiable experiment: every
fault class in the taxonomy is injected into the faulty tenant twice —
once on a commodity-style shared device, once on the S-NIC partitioned
configuration — and the *victim* co-tenant's observables (completions,
latency, corruption) are diffed against a clean run with the same seed.

The paper's claim reproduces when commodity disruption is nonzero for
every class (the device is the blast radius) while S-NIC disruption and
cross-tenant attributed wait are exactly zero (the tenant is).
"""

from _common import bench_main, print_table

from repro.faults.chaos import run_chaos


def compute_matrix(quick=False, seed=0):
    report = run_chaos(seed=seed, quick=quick, matrix=True)
    rows = []
    for kind_name in sorted(report["kinds"]):
        entry = report["kinds"][kind_name]
        commodity = entry["commodity"]["disruption_total"]
        snic = entry["snic"]["disruption_total"]
        cross = entry["snic"]["cross_tenant_wait_ns"]
        blast = "tenant" if (snic == 0.0 and cross == 0.0) else "DEVICE"
        rows.append((kind_name, commodity, snic, cross, blast))
    return report, rows


def test_chaos_blast_radius(benchmark):
    report, rows = benchmark.pedantic(
        compute_matrix, kwargs={"quick": True}, rounds=1, iterations=1)
    print_table(
        "Blast radius per fault class (victim-observable disruption)",
        ["fault class", "commodity disrupt", "snic disrupt",
         "snic x-wait ns", "blast radius"],
        rows,
    )
    assert report["verdict"]["pass"], report["verdict"]["reasons"]
    for kind_name, commodity, snic, cross, blast in rows:
        assert commodity != 0.0, f"{kind_name}: commodity fate-sharing missing"
        assert snic == 0.0 and cross == 0.0, f"{kind_name}: S-NIC leaked"
        assert blast == "tenant"


def run(quick: bool = False) -> dict:
    """Harness entry point: the chaos blast-radius matrix."""
    report, rows = compute_matrix(quick=quick)
    print_table(
        "Blast radius per fault class (victim-observable disruption)",
        ["fault class", "commodity disrupt", "snic disrupt",
         "snic x-wait ns", "blast radius"],
        rows,
    )
    outputs = {
        kind_name: {
            "commodity_disruption": commodity,
            "snic_disruption": snic,
            "snic_cross_tenant_wait_ns": cross,
            "blast_radius": blast,
        }
        for kind_name, commodity, snic, cross, blast in rows
    }
    outputs["verdict_pass"] = report["verdict"]["pass"]
    outputs["seed"] = report["seed"]
    return outputs


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
