"""Figure 5b + §5.3 headline: IPC degradation vs cotenancy (4 MB L2).

Paper (mean of per-NF medians / worst p99):
  2 NFs: 0.24%        4 NFs: 0.93% / 1.66%
  8 NFs: 3.41% / 5.12%   16 NFs: 9.44% / 13.71%
Headline: "decrease function throughput by less than 1.7% in the worst
case" (4 NFs).

As a side effect this bench also writes ``fig5b_cotenancy_trace.json``
(Chrome ``trace_event`` format — load it in https://ui.perfetto.dev):
a two-tenant run with the ``repro.obs`` tracer enabled, showing both
tenants' spans interleaving on the shared-bus track.
"""

import os

from _common import bench_main, print_table

from repro.obs.scenario import run_cotenancy_scenario
from repro.perf.colocation import cotenancy_sweep, summary_across_nfs

COTENANCIES = (2, 3, 4, 8, 16)
QUICK_COTENANCIES = (2, 4)

TRACE_PATH = os.path.join(os.path.dirname(__file__),
                          "fig5b_cotenancy_trace.json")
TIMESERIES_PATH = os.path.join(os.path.dirname(__file__),
                               "fig5b_cotenancy_timeseries.csv")


def compute_fig5b(cotenancies=COTENANCIES, max_sets=24):
    return cotenancy_sweep(cotenancies=cotenancies, max_sets=max_sets)


def test_fig5b(benchmark):
    results = benchmark.pedantic(compute_fig5b, rounds=1, iterations=1)
    rows = [
        [nf] + [f"{r.median:.2f}" for r in series]
        for nf, series in results.items()
    ]
    print_table(
        "Figure 5b — median IPC degradation % vs cotenancy (4 MB L2)",
        ["NF"] + [f"{n} NFs" for n in COTENANCIES],
        rows,
    )
    paper = {2: (0.24, None), 4: (0.93, 1.66), 8: (3.41, 5.12), 16: (9.44, 13.71)}
    summary_rows = []
    for index, n in enumerate(COTENANCIES):
        s = summary_across_nfs(results, index)
        expected = paper.get(n, (None, None))
        summary_rows.append(
            (n, f"{s['mean_of_medians_pct']:.2f}", expected[0] or "-",
             f"{s['worst_p99_pct']:.2f}", expected[1] or "-")
        )
    print_table(
        "§5.3 summary — mean of medians / worst p99",
        ["NFs", "median %", "paper", "p99 %", "paper"],
        summary_rows,
    )

    # The headline claim: <1.7% worst case at 4 NFs / 4 MB L2.
    four = summary_across_nfs(results, COTENANCIES.index(4))
    assert four["worst_p99_pct"] < 1.7 + 0.5
    assert 0.3 < four["mean_of_medians_pct"] < 1.7
    # Monotone growth with cotenancy, ending near the paper's 9.44%.
    medians = [
        summary_across_nfs(results, i)["mean_of_medians_pct"]
        for i in range(len(COTENANCIES))
    ]
    assert medians == sorted(medians)
    assert 6.0 < medians[-1] < 16.0

    # Emit the observability companion: the same co-tenancy story as a
    # Perfetto-loadable trace, with both tenants' transfers interleaved
    # on the shared "bus" track (the interference Figure 5b quantifies).
    summary = run_cotenancy_scenario(out_path=TRACE_PATH, n_packets=40)
    bus_tenants = {
        event["args"]["tenant"]
        for event in _load_trace_events(TRACE_PATH)
        if event.get("ph") == "X" and event.get("cat") == "bus"
    }
    assert len(bus_tenants) >= 2, "expected cross-tenant spans on the bus"
    print(f"\nwrote {summary['trace_path']} "
          f"({summary['spans']} spans, tenants {summary['tenants']}) — "
          "open in https://ui.perfetto.dev")


def _load_trace_events(path):
    import json

    with open(path) as fh:
        return json.load(fh)["traceEvents"]


def run(quick: bool = False) -> dict:
    """Harness entry point: Figure 5b + the co-tenancy trace demo."""
    cotenancies = QUICK_COTENANCIES if quick else COTENANCIES
    results = compute_fig5b(cotenancies, max_sets=8 if quick else 24)
    print_table(
        "Figure 5b — median IPC degradation % vs cotenancy (4 MB L2)",
        ["NF"] + [f"{n} NFs" for n in cotenancies],
        [[nf] + [f"{r.median:.2f}" for r in series]
         for nf, series in results.items()],
    )
    summaries = {
        n: summary_across_nfs(results, index)
        for index, n in enumerate(cotenancies)
    }
    scenario = run_cotenancy_scenario(
        out_path=TRACE_PATH, n_packets=16 if quick else 40,
        timeseries_path=TIMESERIES_PATH)
    print(f"\nwrote {scenario['trace_path']} ({scenario['spans']} spans, "
          f"tenants {scenario['tenants']})")
    print(f"wrote {scenario['timeseries_path']} "
          f"({scenario['timeseries_samples']} kernel-driven samples)")
    return {
        "cotenancies": list(cotenancies),
        "mean_of_medians_pct": {
            n: s["mean_of_medians_pct"] for n, s in summaries.items()
        },
        "worst_p99_pct": {n: s["worst_p99_pct"] for n, s in summaries.items()},
        "trace_spans": scenario["spans"],
        "trace_tenants": scenario["tenants"],
        "timeseries_samples": scenario["timeseries_samples"],
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
