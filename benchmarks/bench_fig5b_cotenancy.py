"""Figure 5b + §5.3 headline: IPC degradation vs cotenancy (4 MB L2).

Paper (mean of per-NF medians / worst p99):
  2 NFs: 0.24%        4 NFs: 0.93% / 1.66%
  8 NFs: 3.41% / 5.12%   16 NFs: 9.44% / 13.71%
Headline: "decrease function throughput by less than 1.7% in the worst
case" (4 NFs).
"""

from _common import print_table

from repro.perf.colocation import cotenancy_sweep, summary_across_nfs

COTENANCIES = (2, 3, 4, 8, 16)


def compute_fig5b():
    return cotenancy_sweep(cotenancies=COTENANCIES, max_sets=24)


def test_fig5b(benchmark):
    results = benchmark.pedantic(compute_fig5b, rounds=1, iterations=1)
    rows = [
        [nf] + [f"{r.median:.2f}" for r in series]
        for nf, series in results.items()
    ]
    print_table(
        "Figure 5b — median IPC degradation % vs cotenancy (4 MB L2)",
        ["NF"] + [f"{n} NFs" for n in COTENANCIES],
        rows,
    )
    paper = {2: (0.24, None), 4: (0.93, 1.66), 8: (3.41, 5.12), 16: (9.44, 13.71)}
    summary_rows = []
    for index, n in enumerate(COTENANCIES):
        s = summary_across_nfs(results, index)
        expected = paper.get(n, (None, None))
        summary_rows.append(
            (n, f"{s['mean_of_medians_pct']:.2f}", expected[0] or "-",
             f"{s['worst_p99_pct']:.2f}", expected[1] or "-")
        )
    print_table(
        "§5.3 summary — mean of medians / worst p99",
        ["NFs", "median %", "paper", "p99 %", "paper"],
        summary_rows,
    )

    # The headline claim: <1.7% worst case at 4 NFs / 4 MB L2.
    four = summary_across_nfs(results, COTENANCIES.index(4))
    assert four["worst_p99_pct"] < 1.7 + 0.5
    assert 0.3 < four["mean_of_medians_pct"] < 1.7
    # Monotone growth with cotenancy, ending near the paper's 9.44%.
    medians = [
        summary_across_nfs(results, i)["mean_of_medians_pct"]
        for i in range(len(COTENANCIES))
    ]
    assert medians == sorted(medians)
    assert 6.0 < medians[-1] < 16.0
