"""Ablation: cache partitioning policy (DESIGN.md §4, paper §4.2).

Compares shared LRU, soft (Intel-CAT-style) partitioning, and hard
partitioning on (a) a prime+probe leakage experiment and (b) the
victim's own hit rate.  The paper's argument: soft partitioning "provides
insufficient isolation" — this bench shows exactly why (the probe still
hits), while hard partitioning closes the channel at a modest hit-rate
cost.
"""

from _common import bench_main, print_table

from repro.hw.cache import Cache, CacheConfig, HARD, SOFT
from repro.perf.workloads import NF_ACCESS_MODELS

KB = 1024
ATTACKER, VICTIM = 1, 2


def probe_leakage(mode):
    """1.0 when the attacker's probe observes the victim's line."""
    cache = Cache(CacheConfig(size_bytes=64 * KB, line_bytes=64, ways=8))
    if mode != "shared":
        cache.set_partitions({ATTACKER: 4, VICTIM: 4}, mode=mode)
    secret_addr = 0xA000
    cache.access(secret_addr, owner=VICTIM)  # victim touches its secret
    return 1.0 if cache.access(secret_addr, owner=ATTACKER) else 0.0


def victim_hit_rate(mode, n_refs=30_000):
    cache = Cache(CacheConfig(size_bytes=256 * KB, line_bytes=64, ways=8))
    if mode != "shared":
        cache.set_partitions({ATTACKER: 4, VICTIM: 4}, mode=mode)
    stream = NF_ACCESS_MODELS["FW"].generate_stream(n_refs, seed=5)
    attacker_stream = NF_ACCESS_MODELS["Mon"].generate_stream(
        n_refs, seed=6, base_addr=1 << 30
    )
    hits = 0
    for v_addr, a_addr in zip(stream, attacker_stream):
        cache.access(int(a_addr), owner=ATTACKER)
        hits += cache.access(int(v_addr), owner=VICTIM)
    return hits / n_refs


def compute_ablation(n_refs=30_000):
    rows = []
    for mode in ("shared", SOFT, HARD):
        rows.append((mode, probe_leakage(mode),
                     victim_hit_rate(mode, n_refs=n_refs)))
    return rows


def test_ablation_cache(benchmark):
    rows = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation — cache policy (probe leak / victim hit rate)",
        ["policy", "probe observes victim", "victim hit rate"],
        rows,
    )
    by_mode = {mode: (leak, hit) for mode, leak, hit in rows}
    assert by_mode["shared"][0] == 1.0  # fully leaky
    assert by_mode[SOFT][0] == 1.0      # the §4.2 criticism of CAT
    assert by_mode[HARD][0] == 0.0      # S-NIC's choice closes it
    # Hard partitioning costs some hit rate vs shared — but bounded.
    assert by_mode[HARD][1] > 0.5 * by_mode["shared"][1]


def run(quick: bool = False) -> dict:
    """Harness entry point: cache-partitioning ablation key outputs."""
    rows = compute_ablation(n_refs=4_000 if quick else 30_000)
    print_table(
        "Ablation — cache policy (probe leak / victim hit rate)",
        ["policy", "probe observes victim", "victim hit rate"],
        rows,
    )
    return {
        "probe_leak": {mode: leak for mode, leak, _ in rows},
        "victim_hit_rate": {mode: hit for mode, _, hit in rows},
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
