"""Figure 7: Monitor's memory usage over a five-minute trace window.

Paper: preallocation must cover the 360.54 MB peak (hugepage-init and
HashMap-resize spikes) while steady-state use is 246.31 MB.
"""

import os

from _common import bench_main, print_table

from repro.cost.profiles import MonitorMemoryModel
from repro.obs.timeseries import merge_series_csv

CSV_PATH = os.path.join(os.path.dirname(__file__), "fig7_monitor_memory.csv")


def compute_fig7(step_s=0.5):
    """The memory curve as a ``repro.obs.timeseries.Series`` plus the
    calibration summary (the ad-hoc stepping loop this bench used to
    carry now lives behind ``MonitorMemoryModel.sample``)."""
    model = MonitorMemoryModel()
    return model.sample(step_s=step_s), model.summary()


def test_fig7(benchmark):
    series, summary = benchmark(compute_fig7)
    # Render a coarse sparkline-style table (every 10 s).
    rows = [
        (f"{t:.0f}s", f"{m:.1f}")
        for t, m in series.points()
        if abs(t - round(t / 10) * 10) < 0.25
    ]
    print_table("Figure 7 — Monitor memory usage (MB)", ["time", "MB"], rows)
    print(
        f"min prealloc: {summary['prealloc_min_mb']:.2f} MB (paper 360.54)  "
        f"steady: {summary['steady_mb']:.2f} MB (paper 246.31)  "
        f"resizes: {summary['n_resizes']}"
    )
    assert abs(summary["prealloc_min_mb"] - 360.54) < 1.0
    assert abs(summary["steady_mb"] - 246.31) < 1.0
    assert summary["n_resizes"] >= 3


def run(quick: bool = False) -> dict:
    """Harness entry point: Monitor memory time series summary."""
    series, summary = compute_fig7(step_s=2.0 if quick else 0.5)
    print_table(
        "Figure 7 — Monitor memory usage (MB)",
        ["time", "MB"],
        [(f"{t:.0f}s", f"{m:.1f}") for t, m in series.points()
         if abs(t - round(t / 30) * 30) < 0.25],
    )
    with open(CSV_PATH, "w", encoding="utf-8") as fh:
        fh.write(merge_series_csv([series], time_label="time_s"))
    print(f"wrote {CSV_PATH} ({len(series)} samples)")
    return {
        "prealloc_min_mb": summary["prealloc_min_mb"],
        "steady_mb": summary["steady_mb"],
        "n_resizes": summary["n_resizes"],
        "series_points": len(series),
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
