"""Table 2: TLB hardware costs for programmable cores.

Regenerates area (mm²) and power (W) for every (per-core memory, core
count) cell, plus the 4-core relative overheads shown in parentheses.

Paper values (4-core column): 183 entries → 0.045 / 0.026 (0.90%/1.36%),
256 → 0.060 / 0.035 (1.20%/1.81%), 512 → 0.163 / 0.088 (3.19%/4.45%).
"""

from _common import bench_main, print_table

from repro.cost.mcpat import (
    TABLE2_CORE_COUNTS,
    TABLE2_MEMORY_CONFIGS,
    TLBCostModel,
)

PAPER_4CORE = {
    183: (0.045, 0.026),
    256: (0.060, 0.035),
    512: (0.163, 0.088),
}


def compute_table2():
    model = TLBCostModel()
    rows = []
    for label, entries in TABLE2_MEMORY_CONFIGS.items():
        area_cells = []
        power_cells = []
        for cores in TABLE2_CORE_COUNTS:
            area, power = model.core_tlbs(entries, cores)
            area_cells.append(area)
            power_cells.append(power)
        rel_area, rel_power = model.core_tlbs_relative(entries)
        rows.append((label, entries, area_cells, power_cells, rel_area, rel_power))
    return rows


def test_table2(benchmark):
    rows = benchmark(compute_table2)
    printable = []
    for label, entries, areas, powers, rel_area, rel_power in rows:
        printable.append(
            [f"{label}/core ({entries} entries)", "area"]
            + [f"{a:.3f}" for a in areas]
            + [f"({100 * rel_area:.2f}%)"]
        )
        printable.append(
            ["", "power"] + [f"{p:.3f}" for p in powers] + [f"({100 * rel_power:.2f}%)"]
        )
    print_table(
        "Table 2 — core TLB costs (mm² / W)",
        ["memory", "metric", "4-core", "8-core", "16-core", "48-core", "rel(4c)"],
        printable,
    )
    for label, entries, areas, powers, _, _ in rows:
        paper_area, paper_power = PAPER_4CORE[entries]
        assert abs(areas[0] - paper_area) < 0.002
        assert abs(powers[0] - paper_power) < 0.002


def run(quick: bool = False) -> dict:
    """Harness entry point: core TLB silicon costs (Table 2)."""
    rows = compute_table2()
    print_table(
        "Table 2 — core TLB costs, 4-core column (mm² / W)",
        ["memory", "entries", "area", "power", "rel area", "rel power"],
        [(label, entries, areas[0], powers[0],
          f"{100 * rel_area:.2f}%", f"{100 * rel_power:.2f}%")
         for label, entries, areas, powers, rel_area, rel_power in rows],
    )
    return {
        str(entries): {"area_mm2_4core": areas[0], "power_w_4core": powers[0]}
        for _, entries, areas, powers, _, _ in rows
    }


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
