#!/usr/bin/env python3
"""The §3.3 attacks, live: commodity smart NICs vs S-NIC.

Replays all three proof-of-concept attacks from the paper against the
commodity NIC models (where they succeed) and against S-NIC (where the
same attacker actions are blocked by trusted hardware).

Run:  python examples/attack_demo.py
"""

from repro.commodity.agilio import AgilioNIC
from repro.commodity.attacks import (
    bus_dos_attack,
    run_dpi_stealing_experiment,
    run_packet_corruption_experiment,
)
from repro.commodity.bluefield import BlueFieldNIC
from repro.core import IsolationViolation, NFConfig, NICOS, SNIC
from repro.core.vpp import VPPConfig
from repro.net.packet import Packet
from repro.net.rules import MatchRule

MB = 1024 * 1024


def banner(text: str) -> None:
    print(f"\n{'=' * 66}\n{text}\n{'=' * 66}")


def demo_packet_corruption() -> None:
    banner("Attack 1 — packet corruption (LiquidIO SE-S)")
    result, clean, attacked = run_packet_corruption_experiment(n_packets=8)
    print(f"commodity: {result.details}")
    print(f"  NAT translations without attack: {clean}; with attack: {attacked}")

    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=1)
    nic_os = NICOS(snic)
    victim = nic_os.NF_create(
        NFConfig(name="mazunat", core_ids=(0,), memory_bytes=4 * MB,
                 vpp=VPPConfig(rules=[MatchRule()]))
    )
    attacker = nic_os.NF_create(
        NFConfig(name="malicious", core_ids=(1,), memory_bytes=4 * MB)
    )
    snic.rx_port.wire_arrival(Packet.make("10.0.0.1", "8.8.8.8"))
    snic.process_ingress()
    frame_addr, _ = snic.record(victim.nf_id).vpp.rx_ring.peek_descriptors()[0]
    try:
        attacker.write(frame_addr, b"\xff\xff\xff\xff")
        print("S-NIC: ATTACK SUCCEEDED (this should never print)")
    except IsolationViolation as blocked:
        print(f"S-NIC: blocked — {blocked}")


def demo_ruleset_stealing() -> None:
    banner("Attack 2 — DPI ruleset stealing (LiquidIO)")
    result, ruleset = run_dpi_stealing_experiment(ruleset=b"alert tcp any -> any 445\n" * 20)
    print(f"commodity: {result.details}")
    print(f"  recovered ruleset matches original: {result.evidence[0] == ruleset}")

    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=2)
    nic_os = NICOS(snic)
    victim = nic_os.NF_create(
        NFConfig(name="ids", core_ids=(0,), memory_bytes=4 * MB,
                 initial_image=b"alert tcp any -> any 445\n" * 20)
    )
    attacker = nic_os.NF_create(
        NFConfig(name="thief", core_ids=(1,), memory_bytes=4 * MB)
    )
    try:
        attacker.read(snic.record(victim.nf_id).extent_base, 64)
        print("S-NIC: ATTACK SUCCEEDED (this should never print)")
    except IsolationViolation as blocked:
        print(f"S-NIC: blocked — {blocked}")
    # Even the *datacenter's own* NIC OS cannot read the ruleset:
    try:
        nic_os.attempt_function_state_read(victim.nf_id)
    except IsolationViolation as blocked:
        print(f"S-NIC: NIC OS also blocked — {blocked}")


def demo_bus_dos() -> None:
    banner("Attack 3 — IO bus denial-of-service (Agilio)")
    result = bus_dos_attack(AgilioNIC())
    print(f"commodity: {result.details}")

    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=3)
    nic_os = NICOS(snic)
    victim = nic_os.NF_create(
        NFConfig(name="victim", core_ids=(0,), memory_bytes=4 * MB)
    )
    attacker = nic_os.NF_create(
        NFConfig(name="dos", core_ids=(1,), memory_bytes=4 * MB)
    )
    before = victim.bus_transfer(1024, now_ns=0.0)
    for _ in range(5000):
        attacker.bus_transfer(8, now_ns=0.0)
    after = victim.bus_transfer(1024, now_ns=1e6)
    print(f"S-NIC: no crash after 5000 back-to-back attacker ops; "
          f"victim latencies {before:.0f} ns / {after:.0f} ns "
          "(temporal partitioning confines the attacker to its own epochs)")


def demo_bluefield_gap() -> None:
    banner("Bonus — the BlueField TrustZone gap (§3.2)")
    nic = BlueFieldNIC()
    trustlet = nic.install_trustlet(4096)
    nic.trustlet_write(trustlet, 0, b"tls-session-keys")
    leaked = nic.secure_os_read_trustlet(trustlet.trustlet_id)
    print(f"BlueField secure-world OS reads trustlet state: {leaked[:16]!r}")
    print("S-NIC: the equivalent read is the denylisted NIC-OS access "
          "blocked in Attack 2 above — functions are isolated even from "
          "the management OS.")


def main() -> None:
    demo_packet_corruption()
    demo_ruleset_stealing()
    demo_bus_dos()
    demo_bluefield_gap()
    print("\nAll commodity attacks succeeded; all S-NIC replays were blocked.")


if __name__ == "__main__":
    main()
