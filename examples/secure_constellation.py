#!/usr/bin/env python3
"""Figure 4: trusted computations in an untrusted cloud.

Builds both of the paper's §4.7 use cases:

(a) a *detour route*: two enterprises outsource intrusion detection for
    a cross-enterprise flow to an attested S-NIC function; VXLAN keeps
    the tenant's L2 topology private, and the attested tunnel hides
    packet contents from the cloud operator;
(b) a *constellation*: S-NIC functions and host SGX enclaves attest
    pairwise and exchange encrypted messages while the operator's PCIe
    tap sees only ciphertext.

Run:  python examples/secure_constellation.py
"""

from repro.core import (
    Constellation,
    NFConfig,
    NICOS,
    PCIeTap,
    SGXEnclave,
    SNIC,
    Verifier,
)
from repro.core.vpp import VPPConfig
from repro.crypto.dh import DHParams
from repro.crypto.keys import VendorCA
from repro.net.packet import Packet, ip_to_int
from repro.net.rules import MatchRule
from repro.net.vxlan import vxlan_decapsulate, vxlan_encapsulate
from repro.nf import DPIEngine, make_snort_like_patterns

MB = 1024 * 1024
SMALL_DH = DHParams(g=2, p=0xFFFFFFFB)


def detour_route() -> None:
    print("=== Use case (a): detour route through a trusted function ===")
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=41)
    nic_os = NICOS(snic)

    # The enterprises audited this IDS image offline.
    ids_image = b"ids-image-v2:" + b"".join(make_snort_like_patterns(50))
    ids = nic_os.NF_create(
        NFConfig(
            name="outsourced-ids",
            core_ids=(0,),
            memory_bytes=8 * MB,
            initial_image=ids_image,
            # Tenant VNI 4100 traffic is steered to this function (§4.4).
            vpp=VPPConfig(rules=[MatchRule(vni=4100)]),
        )
    )

    # Client gateway attests the function before sending any traffic.
    verifier = Verifier(snic.vendor_ca.public_key, seed=5)
    nonce = verifier.hello()
    session = ids.attest(nonce, params=SMALL_DH)
    gy, gateway_key = verifier.complete_exchange(
        session.quote, expected_state_hash=ids.state_hash
    )
    function_key = session.session_key(gy)
    assert function_key == gateway_key
    print(f"gateway attested the IDS (hash {ids.state_hash.hex()[:16]}…); "
          f"tunnel key established")

    # The attested tunnel hides the tenant packet from the cloud.
    from repro.core.tunnel import TunnelEndpoint

    gateway_end = TunnelEndpoint(gateway_key)
    function_end = TunnelEndpoint(function_key)
    inner = Packet.make(
        "192.168.10.5", "192.168.20.9", src_port=443, dst_port=8443,
        payload=b"GET /ledger",
    )
    envelope = gateway_end.seal(inner)
    print(f"tunnel envelope on the cloud path: {len(envelope)} bytes, "
          f"payload visible? {b'GET /ledger' in envelope}")
    recovered = function_end.open(envelope)

    # Inside the tenant's virtual L2, the flow rides VXLAN to the IDS.
    outer = vxlan_encapsulate(
        recovered, vni=4100,
        outer_src_ip=ip_to_int("100.64.0.1"), outer_dst_ip=ip_to_int("100.64.0.2"),
    )
    snic.rx_port.wire_arrival(outer)  # the NIC's VTEP decapsulates (§4.4)
    snic.process_ingress()

    engine = DPIEngine(make_snort_like_patterns(50))
    processed = ids.run(engine)
    snic.process_egress()
    print(f"IDS inspected {processed} tenant packet(s) "
          f"({engine.alerts} alerts); forwarded on toward the destination\n")


def constellation() -> None:
    print("=== Use case (b): constellation of secure computations ===")
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=42)
    nic_os = NICOS(snic)
    middlebox = nic_os.NF_create(
        NFConfig(name="tls-middlebox", core_ids=(0,), memory_bytes=4 * MB,
                 initial_image=b"mcTLS-middlebox-v1")
    )

    sgx_service = VendorCA(name="sgx-attestation-service", key_bits=512, seed=77)
    tap = PCIeTap()  # the operator snooping on the NIC/host bus
    system = Constellation(snic.vendor_ca, sgx_service, tap=tap, seed=6)
    system.add_function("middlebox", middlebox)

    database = SGXEnclave("database", b"encrypted-db-v3", sgx_service, seed=8)
    cache = SGXEnclave("cache", b"kv-cache-v1", sgx_service, seed=9)
    system.add_enclave("database", database)
    system.add_enclave("cache", cache)

    for a, b in (("middlebox", "database"), ("middlebox", "cache"),
                 ("database", "cache")):
        channel = system.link(a, b)
        print(f"  attested link {a} <-> {b}: key {channel.key_at_a.hex()[:16]}…")

    secret = b"session-ticket: user=alice key=0xDEADBEEF"
    received = system.send("middlebox", "database", secret)
    assert received == secret
    database.seal("ticket", received)

    wire = tap.captured[0][2]
    print(f"operator's PCIe tap captured {len(wire)} bytes: {wire[:20].hex()}…")
    print(f"  equals plaintext? {wire == secret}")
    host_view = database.host_os_view()
    print(f"host OS view of sealed enclave state: {host_view['ticket'].hex()[:24]}… "
          "(opaque)")


def main() -> None:
    detour_route()
    constellation()
    print("\nStrongly-isolated, NIC-accelerated application assembled: the "
          "operator never saw keys, rulesets, or plaintext.")


if __name__ == "__main__":
    main()
