#!/usr/bin/env python3
"""Multi-tenant S-NIC: six tenants, six network functions, one NIC.

The paper's motivating deployment (§1): a datacenter smart NIC hosting
network functions from mutually-distrusting tenants.  This example
launches all six §5.1 workloads side by side, drives them with the
synthetic ICTF-like trace, and shows per-tenant accounting plus the
churn pattern §4.8 recommends (destroy/relaunch in response to load).

Run:  python examples/multi_tenant_pipeline.py
"""

from repro.core import NFConfig, NICOS, SNIC
from repro.core.vpp import VPPConfig
from repro.hw.accelerator import AcceleratorKind
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.net.rules import MatchRule, PortRange, Prefix
from repro.net.traces import make_ictf_like_trace
from repro.nf import (
    Backend,
    DIR24_8,
    DPIEngine,
    Firewall,
    MaglevLoadBalancer,
    Monitor,
    NAT,
    make_emerging_threats_rules,
    make_random_routes,
    make_snort_like_patterns,
)

MB = 1024 * 1024


def build_functions():
    """The six evaluation NFs with their §5.1 parameters (scaled)."""
    lpm = DIR24_8(max_tbl8_groups=1024)
    for prefix, hop in make_random_routes(2_000):
        lpm.add_route(prefix, hop)
    lpm.add_route(Prefix.parse("0.0.0.0/0"), 1)
    return {
        "FW": Firewall(make_emerging_threats_rules(643)),
        "DPI": DPIEngine(make_snort_like_patterns(400)),
        "NAT": NAT("100.0.0.1"),
        "LB": MaglevLoadBalancer(
            [Backend(f"web{i}", f"1.0.0.{i + 1}") for i in range(4)],
            table_size=65537,
        ),
        "LPM": lpm,
        "Mon": Monitor(),
    }


def tenant_configs():
    """One tenant slice per NF: cores, memory, steering, accelerators."""
    return {
        "FW": NFConfig(
            name="tenant-a/fw", core_ids=(0,), memory_bytes=18 * MB,
            vpp=VPPConfig(rules=[MatchRule(dst_ports=PortRange(22, 53))]),
        ),
        "DPI": NFConfig(
            name="tenant-b/dpi", core_ids=(1,), memory_bytes=52 * MB,
            vpp=VPPConfig(rules=[MatchRule(dst_ports=PortRange(8080, 8080))]),
            accelerators=((AcceleratorKind.DPI, 1),),
        ),
        "NAT": NFConfig(
            name="tenant-c/nat", core_ids=(2,), memory_bytes=44 * MB,
            vpp=VPPConfig(rules=[MatchRule(src_prefix=Prefix.parse("10.0.0.0/8"),
                                           proto=PROTO_TCP)]),
        ),
        "LB": NFConfig(
            name="tenant-d/lb", core_ids=(3,), memory_bytes=14 * MB,
            vpp=VPPConfig(rules=[MatchRule(dst_ports=PortRange(3306, 3306))]),
        ),
        "LPM": NFConfig(
            name="tenant-e/router", core_ids=(4,), memory_bytes=68 * MB,
            vpp=VPPConfig(rules=[MatchRule(proto=PROTO_UDP)]),
        ),
        "Mon": NFConfig(
            name="tenant-f/monitor", core_ids=(5,), memory_bytes=64 * MB,
            vpp=VPPConfig(rules=[MatchRule()]),  # catch-all (last match)
        ),
    }


def main() -> None:
    snic = SNIC(n_cores=8, dram_bytes=1024 * MB, key_seed=51)
    nic_os = NICOS(snic)
    functions = build_functions()
    vnics = {name: nic_os.NF_create(cfg) for name, cfg in tenant_configs().items()}
    print(f"{len(vnics)} tenants live on one S-NIC; "
          f"L2 ways per tenant: {snic.l2.ways_for(vnics['FW'].nf_id)}; "
          f"bus domains: {snic.bus.arbiter.domains}")

    trace = make_ictf_like_trace(scale=0.01)
    n_packets = 3_000
    batch = 500
    delivered_totals = {}
    sent = 0
    stream = trace.packets(n_packets, payload_size=64)
    # Realistic operation: ingress, per-core processing, and egress are
    # interleaved so RX rings never back up.
    for packet in stream:
        snic.rx_port.wire_arrival(packet)
        if len(snic.rx_port._staged) >= batch:
            for nf_id, count in snic.process_ingress().items():
                delivered_totals[nf_id] = delivered_totals.get(nf_id, 0) + count
            for name, vnic in vnics.items():
                vnic.run(functions[name])
            sent += snic.process_egress()
    for nf_id, count in snic.process_ingress().items():
        delivered_totals[nf_id] = delivered_totals.get(nf_id, 0) + count
    for name, vnic in vnics.items():
        vnic.run(functions[name])
    sent += snic.process_egress()

    print(f"ingress classified {n_packets} packets: "
          + ", ".join(
              f"{name}={delivered_totals.get(vnic.nf_id, 0)}"
              for name, vnic in vnics.items()
          ))
    print("\nper-tenant processing:")
    for name, vnic in vnics.items():
        stats = functions[name].stats
        print(f"  {vnic.name:18s} received={stats.received:5d} "
              f"forwarded={stats.forwarded:5d} dropped={stats.dropped:4d}")
    print(f"egress: {sent} packets on the wire")

    # §4.8: adapt to load by destroying and relaunching functions.
    print("\nload drops: tenant-e scales in; tenant-g takes the slice")
    nic_os.NF_destroy(vnics["LPM"].nf_id)
    replacement = nic_os.NF_create(
        NFConfig(name="tenant-g/burst-monitor", core_ids=(4,),
                 memory_bytes=16 * MB, vpp=VPPConfig(rules=[MatchRule()]))
    )
    print(f"  relaunched on core 4 as NF {replacement.nf_id}; "
          f"live functions: {snic.live_functions}")

    mon = functions["Mon"]
    print(f"\ntenant-f heavy hitters: ")
    for five_tuple, count in mon.top_flows(3):
        print(f"  {count:4d} packets  {five_tuple}")


if __name__ == "__main__":
    main()
