#!/usr/bin/env python3
"""Function chaining across isolated virtual NICs (§4.8 extension).

Commodity NICs chain NFs by sharing packet buffers — which is exactly
what the §3.3 packet-corruption attack abuses.  S-NIC's extension keeps
every function in its own virtual NIC and moves packets between chained
functions through trusted cross-VPP hardware, so "information leakage
between two communicating VPPs [is restricted] to just the information
revealed via overt traffic timings and packet content."

This example builds the classic NAT → firewall → monitor chain and
shows (a) packets flowing down the chain, (b) stage isolation holding.

Run:  python examples/function_chain.py
"""

from repro.core import (
    FunctionChain,
    IsolationViolation,
    NFConfig,
    NICOS,
    SNIC,
    VirtualNIC,
)
from repro.core.vpp import VPPConfig
from repro.net.packet import Packet, ip_to_str
from repro.net.rules import MatchRule, PortRange, RuleAction, RuleTable
from repro.nf import Firewall, Monitor, NAT

MB = 1024 * 1024


def main() -> None:
    snic = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=71)
    nic_os = NICOS(snic)

    # Stage 1 receives from the wire; stages 2-3 receive via the chain.
    stage_configs = [
        NFConfig(name="chain/nat", core_ids=(0,), memory_bytes=8 * MB,
                 vpp=VPPConfig(rules=[MatchRule()])),
        NFConfig(name="chain/fw", core_ids=(1,), memory_bytes=8 * MB),
        NFConfig(name="chain/mon", core_ids=(2,), memory_bytes=8 * MB),
    ]
    vnics = [nic_os.NF_create(cfg) for cfg in stage_configs]
    chain = FunctionChain(snic, [v.nf_id for v in vnics])

    nat = NAT("100.0.0.1")
    firewall = Firewall(
        RuleTable([MatchRule(dst_ports=PortRange(23, 23),
                             action=RuleAction.DROP)])
    )
    monitor = Monitor()
    stages = {
        vnics[0].nf_id: nat,
        vnics[1].nf_id: firewall,
        vnics[2].nf_id: monitor,
    }

    # Traffic: web flows plus one telnet flow the firewall will kill.
    for i in range(6):
        snic.rx_port.wire_arrival(
            Packet.make("10.0.0.5", "8.8.8.8", src_port=40_000 + i, dst_port=80)
        )
    snic.rx_port.wire_arrival(
        Packet.make("10.0.0.5", "8.8.8.8", src_port=50_000, dst_port=23)
    )
    snic.process_ingress()

    emitted = chain.run(stages, rounds=4)
    print(f"chain emitted {emitted} packets "
          f"(7 in; firewall dropped {firewall.stats.dropped})")
    print(f"  NAT translated {nat.translations}; "
          f"monitor saw {monitor.distinct_flows} flows post-firewall")
    owner, sample = snic.tx_port.transmitted[0]
    print(f"  wire packet src (NATted): {ip_to_str(sample.ip.src_ip)}")

    # Isolation holds across chain membership: stage 2 cannot touch
    # stage 1's memory even though they exchange packets.
    vnics[0].write(0x500, b"nat-bindings")
    target = snic.record(vnics[0].nf_id).extent_base + 0x500
    try:
        leaked = vnics[1].read(target, 12)
    except IsolationViolation:
        leaked = None
    if leaked == b"nat-bindings":
        print("  ISOLATION BROKEN (should never print)")
    else:
        print("  chained stages remain memory-isolated: stage 2 cannot "
              "name stage 1's physical pages (only overt packet content "
              "crosses the link)")

    for link in chain.links:
        print(f"  link {link.upstream_nf}->{link.downstream_nf}: "
              f"{link.stats.frames_moved} frames, "
              f"{link.stats.bytes_moved} bytes, "
              f"{link.stats.drops_backpressure} backpressure drops")


if __name__ == "__main__":
    main()
