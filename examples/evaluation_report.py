#!/usr/bin/env python3
"""Reproduce the paper's headline evaluation in one run.

Prints a compact paper-vs-reproduced report covering §5's headline
claims.  The logic lives in :mod:`repro.report` (also reachable as
``python -m repro report``); per-table detail lives in
``pytest benchmarks/``.

Run:  python examples/evaluation_report.py
"""

from repro.report import main

if __name__ == "__main__":
    main()
