#!/usr/bin/env python3
"""Quickstart: launch an isolated network function on an S-NIC.

Walks the full Table 1 lifecycle:

1. the NIC OS creates a function on a virtual smart NIC (``nf_launch``),
2. packets matching its switching rules flow through its private VPP,
3. a remote verifier attests the function (``nf_attest``),
4. the function is destroyed and its resources scrubbed (``nf_teardown``).

Run:  python examples/quickstart.py
"""

from repro.core import NFConfig, NICOS, SNIC, Verifier
from repro.core.vpp import VPPConfig
from repro.crypto.dh import DHParams
from repro.net.packet import Packet, ip_to_str
from repro.net.rules import MatchRule, PortRange
from repro.nf import Monitor

MB = 1024 * 1024


def main() -> None:
    # --- the datacenter provisions an S-NIC ---------------------------
    snic = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=2024)
    nic_os = NICOS(snic)
    print(f"S-NIC up: {len(snic.cores)} cores, "
          f"{snic.memory.size_bytes // MB} MB DRAM, "
          f"vendor CA fingerprint {snic.vendor_ca.public_key.fingerprint().hex()[:16]}")

    # --- a tenant launches a flow monitor -----------------------------
    config = NFConfig(
        name="flow-monitor",
        core_ids=(0, 1),
        memory_bytes=16 * MB,
        initial_image=b"monitor-v1.0-code-and-data",
        vpp=VPPConfig(rules=[MatchRule(dst_ports=PortRange(80, 80))]),
    )
    vnic = nic_os.NF_create(config)
    print(f"launched NF {vnic.nf_id} ({vnic.name}) on cores {vnic.core_ids}, "
          f"{vnic.memory_bytes // MB} MB private RAM")
    print(f"  launch hash: {vnic.state_hash.hex()[:32]}…")
    launch_ms = snic.timing.nf_launch_ms(vnic.memory_bytes)
    print(f"  modelled nf_launch latency: {launch_ms:.2f} ms (Figure 6)")

    # --- traffic arrives; only port-80 flows reach the function -------
    for i in range(5):
        snic.rx_port.wire_arrival(
            Packet.make("10.0.0.1", "20.0.0.1", src_port=40_000 + i, dst_port=80)
        )
    snic.rx_port.wire_arrival(
        Packet.make("10.0.0.1", "20.0.0.1", src_port=50_000, dst_port=22)
    )
    delivered = snic.process_ingress()
    print(f"ingress: {delivered}  (-1 = dropped: no switching rule matched)")

    monitor = Monitor()
    processed = vnic.run(monitor)
    snic.process_egress()
    print(f"monitor processed {processed} packets, "
          f"{monitor.distinct_flows} distinct flows; "
          f"{len(snic.tx_port.transmitted)} packets back on the wire")

    # --- a remote party attests the function --------------------------
    verifier = Verifier(snic.vendor_ca.public_key, seed=1)
    nonce = verifier.hello()
    session = vnic.attest(nonce, params=DHParams(g=2, p=0xFFFFFFFB))
    gy, verifier_key = verifier.complete_exchange(
        session.quote, expected_state_hash=vnic.state_hash
    )
    function_key = session.session_key(gy)
    assert function_key == verifier_key
    print(f"attestation OK — shared session key {function_key.hex()[:32]}…")

    # --- teardown scrubs everything ------------------------------------
    base = snic.record(vnic.nf_id).extent_base
    nic_os.NF_destroy(vnic.nf_id)
    assert snic.memory.read(base, 64) == b"\x00" * 64
    print(f"NF destroyed; memory scrubbed; free cores: {snic.free_cores()}")


if __name__ == "__main__":
    main()
