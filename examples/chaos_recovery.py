#!/usr/bin/env python3
"""Chaos scenario: crash a network function, recover it, spare the victim.

Two tenants share an S-NIC.  A seeded :class:`~repro.faults.FaultPlan`
schedules an ``NF_CRASH`` against one of them mid-traffic; the
:class:`~repro.faults.FaultInjector` turns that plan entry into a real
``FatalFunctionError`` out of the runtime's poll loop; and the
:class:`~repro.faults.NFSupervisor` runs the §4.6 recovery sequence —
``nf_teardown`` scrubs the crashed function's extent, the scrub is
*verified* from page metadata, and the same config relaunches as a
fresh identity.  The co-tenant keeps processing packets throughout:
the blast radius is the faulty tenant, not the device.

Run:  python examples/chaos_recovery.py
"""

from repro.analysis.isosan import sanitized
from repro.core import NFConfig, NICOS, SNIC
from repro.core.errors import FatalFunctionError
from repro.core.runtime import SNICRuntime
from repro.core.vpp import VPPConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, NFSupervisor
from repro.net.packet import Packet
from repro.net.rules import MatchRule, Prefix
from repro.nf import Monitor

MB = 1024 * 1024


def main() -> None:
    snic = SNIC(n_cores=4, dram_bytes=64 * MB, key_seed=7)
    nic_os = NICOS(snic)

    victim = nic_os.NF_create(NFConfig(
        name="steady-monitor", core_ids=(0,), memory_bytes=4 * MB,
        vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("20.0.0.0/8"))]),
    ))
    faulty = nic_os.NF_create(NFConfig(
        name="crashy-monitor", core_ids=(1,), memory_bytes=4 * MB,
        vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("30.0.0.0/8"))]),
    ))
    print(f"victim NF {victim.nf_id} ({victim.name}), "
          f"faulty NF {faulty.nf_id} ({faulty.name})")

    runtime = SNICRuntime(snic)
    runtime.attach(victim.nf_id, Monitor())
    runtime.attach(faulty.nf_id, Monitor())

    packets = []
    for i in range(24):
        for dst, offset in (("20.0.0.9", 0), ("30.0.0.9", 200)):
            packet = Packet.make("10.0.0.1", dst, src_port=4_000 + i,
                                 dst_port=80, payload=b"x" * 64)
            packet.arrival_ns = (i + 1) * 400 + offset
            packets.append(packet)
    runtime.inject(packets)

    # The fault plan: one crash against the faulty tenant at t = 4 µs.
    plan = FaultPlan(seed=42)
    plan.at(4_000, FaultKind.NF_CRASH, tenant=faulty.nf_id)
    supervisor = NFSupervisor(nic_os, runtime)

    with sanitized():
        injector = FaultInjector(plan).install()
        try:
            injector.arm_all()
            crashes = 0
            while True:
                try:
                    runtime.run()
                    break
                except FatalFunctionError:
                    crashes += 1
                    crashed = injector.records[-1].tenant
                    print(f"NF {crashed} crashed at "
                          f"{runtime.sim.now_ns:.0f} ns — recovering")
                    vnic = supervisor.on_crash(crashed)
                    print(f"  scrub verified; relaunched as NF {vnic.nf_id} "
                          f"({vnic.name})")
        finally:
            injector.uninstall()

    by_nf = {}
    for timing in runtime.stats.timings:
        by_nf.setdefault(timing.nf_id, []).append(timing)
    print(f"\ncrashes: {crashes}, restarts: {len(supervisor.restarts)}")
    for nf_id in sorted(by_nf):
        timings = by_nf[nf_id]
        worst = max(t.departure_ns - t.arrival_ns for t in timings)
        print(f"  NF {nf_id}: {len(timings)} packets completed, "
              f"worst latency {worst:.0f} ns")
    victim_done = len(by_nf.get(victim.nf_id, []))
    assert victim_done == 24, f"victim lost packets: {victim_done}/24"
    print("\nvictim completed every packet — the blast radius was the "
          "faulty tenant, not the device")


if __name__ == "__main__":
    main()
