"""Shard-safety fixture: module-level mutables with and without
function-scope writes.  SNIC010 fires on ``FLOW_TABLE`` (subscript
stores from ``pipeline.py`` — a cross-module alias — and a ``del``
here) and ``SEEN`` (mutator call from function scope); the constants
and the import-time-only dict stay shard-safe."""

RULE_IDS = ("SNIC009", "SNIC010")  # immutable -> shard-safe

DEFAULTS = {"mtu": 1500}  # mutable but only written at import time
DEFAULTS["window"] = 64

FLOW_TABLE = {}  # shard-unsafe: written from pipeline.steal_and_forward

SEEN = set()  # shard-unsafe: mutated below, from function scope


def remember(key):
    SEEN.add(key)


def forget(key):
    del FLOW_TABLE[key]
