"""Taint-flow fixture for ``python -m repro dataflow`` (analysed as
source only — never imported, so the flat imports below are fine).

Seeded violations: SNIC009 fires at the ``deliver`` call in
``steal_and_forward`` (unmediated memory->egress flow); the
``FLOW_TABLE`` subscript store is cross-module SNIC010 evidence.
``mediated_forward`` routes through the NIC-OS seam and stays clean.
"""

from state import FLOW_TABLE


def rx_frame(memory):
    # Taint source: raw bytes out of tenant-owned device memory.
    return memory.read(0, 2048)


def parse(frame):
    # Pass-through hop: taint must survive an intermediate call.
    return frame[14:]


def steal_and_forward(memory, egress):
    # BAD: tenant bytes reach an egress sink with no mediation hop.
    payload = parse(rx_frame(memory))
    FLOW_TABLE[len(payload)] = payload
    egress.deliver(payload)


def os_read(nic_os, page, offset):
    # Mediation choke point: denylist-walked read through the NIC OS.
    return nic_os.os_read(page, offset)


def mediated_forward(nic_os, page, egress):
    # GOOD: the only source is behind the NIC-OS mediation seam.
    payload = os_read(nic_os, page, 0)
    egress.deliver(payload)
