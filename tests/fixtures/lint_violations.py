# Seeded lint fixture: every SNIC rule must fire at least once on this
# file.  It is parsed by the lint engine in tests, never imported or
# executed — the code only has to be syntactically valid.
#
# ruff/mypy skip this file (see pyproject.toml): the violations are the
# point.

import random
import time

memory = None
sim = None
tracer = None
registry = None
ScenarioSpec = None
AttestationError = None

PACKETS_SEEN = 0


def isolation_bypass(nf_id, pages):
    # SNIC001: ownership call + raw access outside any mediation layer.
    memory.claim_pages(nf_id, pages)
    return memory.read(0, 64)


def wall_clock_latency():
    # SNIC002: wall-clock read in simulation code.
    start = time.time()
    return time.time() - start


def unseeded_jitter():
    # SNIC002: module-level draw on the shared unseeded RNG.
    return random.random() * 100


def schedule_from_set(flows):
    # SNIC002: set iteration order escapes into schedule() arguments.
    for flow in set(flows):
        sim.schedule(10, lambda f=flow: f.poll())


def on_packet():
    # SNIC003: kernel-scheduled callback mutating a module global.
    global PACKETS_SEEN
    PACKETS_SEEN += 1


def arm_callback():
    sim.schedule(100, on_packet)


def emit_telemetry(n_bytes):
    # SNIC004: tracer emission and registry mint with no tenant tag.
    tracer.instant("fixture.event", track="fixture")
    registry.counter("fixture_bytes_total", kind="rx").inc(n_bytes)


def emit_half_attributed_interference(victim):
    # SNIC004 (strict form): interference_* metrics must carry BOTH
    # tenant= (the victim) and culprit= — a victim-only edge is
    # half-attributed blame.
    registry.counter("interference_wait_ns_total", resource="bus",
                     tenant=victim).inc(100.0)
    registry.counter("interference_events_total", resource="bus").inc(1)


def emit_unattributable_slo(latency_ns):
    # SNIC004 (slo_* form): SLO metrics are per-tenant by definition,
    # so the tenant=None infrastructure escape hatch is rejected and a
    # missing tenant= is equally bad.
    registry.histogram("slo_latency_ns", tenant=None).observe(latency_ns)
    registry.counter("slo_alerts_total").inc()


def float_delay(latency_ns):
    # SNIC005: provably float-valued delay reaching the kernel.
    sim.schedule(latency_ns / 2, on_packet)
    sim.schedule(1.5, on_packet)


def chaos_fault_jitter(plan):
    # SNIC006: fault/chaos code must draw from the plan's seeded RNG —
    # an unseeded Random() and the process-global random module both
    # make the fault schedule unreplayable.
    rng = random.Random()
    random.seed(1234)
    return rng.random() + plan.jitter_ns


def implicit_seed_spec():
    # SNIC007: ScenarioSpec without an explicit seed= keyword — the
    # determinism source must be visible at the call site.
    return ScenarioSpec(name="fixture-demo")


def scenario_report_stamp(report):
    # SNIC007: wall-clock read in scenario-scoped code — one host
    # timestamp and same-seed matrix reports stop being byte-identical.
    report["created"] = time.strftime("%Y-%m-%dT%H:%M:%SZ")
    return report


def scrub_extent_quietly(owner):
    # SNIC008: scrubbing/releasing tenant pages without an audit emit —
    # the teardown witness trail has a hole.
    return memory.release_pages(owner, scrub=True)


class ShadowTLB:
    def __init__(self):
        self.entries = []

    def install(self, entry):
        # SNIC008: TLB mutation defined without an audit emit — installs
        # must be witnessed at the choke point.
        self.entries.append(entry)


def reject_stale_quote(nonce, outstanding):
    # SNIC008: attestation rejection without an audit verdict record.
    if nonce not in outstanding:
        raise AttestationError("stale or replayed nonce")
    return True


def flight_snapshot_stamp(entries):
    # SNIC008: wall-clock read in forensics-scoped code — post-mortem
    # bundles must be byte-identical across same-seed runs.
    return {"captured": time.time(), "n": len(entries)}


def shard_result_push(conn, ResultFrame, built):
    # SNIC011: live simulation objects crossing a shard boundary — the
    # registry through the frame constructor, the runtime through the
    # pipe directly.  Frames carry serialized payloads only.
    conn.send(ResultFrame(index=0, data={"metrics": registry}))
    conn.send(built.runtime)
