"""Isolation property tests: the S-NIC analogues of the §3.3 attacks.

Every attack that succeeds on the commodity models must be structurally
impossible here — blocked by locked TLBs, memory denylisting, cluster
ownership, hard cache partitions, and temporal bus partitioning.
"""

import pytest

from repro.core import (
    IsolationViolation,
    NFConfig,
    NICOS,
    SNIC,
)
from repro.core.vpp import VPPConfig
from repro.hw.accelerator import AcceleratorKind, AcceleratorRequest
from repro.hw.memory import AccessFault
from repro.hw.mmu import TLBLockedError
from repro.net.packet import Packet
from repro.net.rules import MatchRule, Prefix

MB = 1024 * 1024


@pytest.fixture
def snic():
    return SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=7)


@pytest.fixture
def nic_os(snic):
    return NICOS(snic)


def launch(nic_os, name, cores, **kwargs):
    return nic_os.NF_create(
        NFConfig(name=name, core_ids=cores, memory_bytes=4 * MB, **kwargs)
    )


class TestManagementCoreBlocked:
    def test_os_cannot_read_function_pages(self, nic_os):
        vnic = launch(nic_os, "victim", (0,), initial_image=b"SECRET")
        with pytest.raises(IsolationViolation):
            nic_os.attempt_function_state_read(vnic.nf_id)

    def test_os_cannot_write_function_pages(self, nic_os):
        vnic = launch(nic_os, "victim", (0,))
        base = nic_os.snic.record(vnic.nf_id).extent_base
        with pytest.raises(IsolationViolation):
            nic_os.os_write(base, b"tamper")

    def test_os_cannot_map_function_pages(self, nic_os):
        """§4.2: the trusted hardware walks the denylist on every
        attempted TLB install by the management core."""
        vnic = launch(nic_os, "victim", (0,))
        page = nic_os.snic.record(vnic.nf_id).pages[0]
        with pytest.raises(IsolationViolation):
            nic_os.try_install_mapping(vpage=100, ppage=page)

    def test_os_can_map_its_own_pages(self, nic_os):
        nic_os.try_install_mapping(vpage=100, ppage=0)  # NIC OS page: fine

    def test_os_reads_own_and_free_memory(self, nic_os):
        launch(nic_os, "victim", (0,))
        nic_os.os_read(0, 64)  # NIC OS region still accessible

    def test_metadata_scan_finds_no_function_pages(self, nic_os):
        """The S-NIC analogue of the LiquidIO allocator-metadata walk:
        a full scan only ever reaches OS/free pages."""
        vnic = launch(nic_os, "victim", (0,), initial_image=b"RULESET")
        readable = nic_os.scan_for_foreign_buffers(
            scan_pages=nic_os.snic.memory.n_pages
        )
        function_pages = set(nic_os.snic.record(vnic.nf_id).pages)
        assert function_pages.isdisjoint(readable)

    def test_os_regains_access_after_teardown(self, nic_os):
        vnic = launch(nic_os, "victim", (0,), initial_image=b"SECRET")
        base = nic_os.snic.record(vnic.nf_id).extent_base
        nic_os.NF_destroy(vnic.nf_id)
        # Accessible again — but scrubbed to zeros.
        assert nic_os.os_read(base, 6) == b"\x00" * 6


class TestCrossFunctionBlocked:
    def test_function_cannot_reach_other_functions_memory(self, nic_os):
        victim = launch(nic_os, "victim", (0,), initial_image=b"SECRET")
        attacker = launch(nic_os, "attacker", (1,))
        # The attacker's virtual address space simply has no mapping
        # beyond its own extent: the packet-corruption scan is impossible.
        with pytest.raises(IsolationViolation):
            attacker.read(attacker.memory_bytes + 4096, 16)

    def test_attacker_tlb_covers_only_own_extent(self, nic_os):
        victim = launch(nic_os, "victim", (0,))
        attacker = launch(nic_os, "attacker", (1,))
        snic = nic_os.snic
        attacker_pages = snic.cores[1].tlb.physical_pages(snic.memory.page_size)
        victim_pages = set(snic.record(victim.nf_id).pages)
        assert attacker_pages.isdisjoint(victim_pages)

    def test_locked_tlb_rejects_new_mappings(self, nic_os):
        launch(nic_os, "victim", (0,))
        from repro.hw.mmu import TLBEntry

        with pytest.raises(TLBLockedError):
            nic_os.snic.cores[0].tlb.install(
                TLBEntry(vbase=1 << 30, pbase=0, size=2 * MB)
            )

    def test_writes_confined_to_own_extent(self, nic_os):
        victim = launch(nic_os, "victim", (0,), initial_image=b"VICTIM")
        attacker = launch(nic_os, "attacker", (1,))
        attacker.write(0, b"ATTACKER")  # fine: own memory
        victim_base = nic_os.snic.record(victim.nf_id).extent_base
        assert nic_os.snic.memory.read(victim_base, 6) == b"VICTIM"


class TestAcceleratorIsolation:
    def test_cluster_rejects_foreign_requests(self, nic_os):
        victim = launch(
            nic_os, "victim", (0,), accelerators=((AcceleratorKind.DPI, 1),)
        )
        cluster = nic_os.snic.record(victim.nf_id).clusters[0]
        with pytest.raises(AccessFault):
            cluster.submit(
                AcceleratorRequest(owner=999, n_bytes=64, issue_ns=0.0)
            )

    def test_no_shared_path_remains(self, nic_os):
        with pytest.raises(AccessFault):
            nic_os.snic.engines[AcceleratorKind.DPI].submit_shared(
                AcceleratorRequest(owner=1, n_bytes=64, issue_ns=0.0)
            )

    def test_accelerator_latency_isolated(self, nic_os):
        """The Agilio crypto-contention channel is gone: a tenant's
        accelerator latency is independent of co-tenant activity."""
        a = launch(nic_os, "a", (0,), accelerators=((AcceleratorKind.CRYPTO, 1),))
        b = launch(nic_os, "b", (1,), accelerators=((AcceleratorKind.CRYPTO, 1),))
        quiet = a.accelerate(AcceleratorKind.CRYPTO, 100, issue_ns=0.0).latency_ns
        for _ in range(10):
            b.accelerate(AcceleratorKind.CRYPTO, 100_000, issue_ns=1000.0)
        contended = a.accelerate(
            AcceleratorKind.CRYPTO, 100, issue_ns=1e9
        ).latency_ns
        assert contended == pytest.approx(quiet)

    def test_cluster_tlb_confined_to_owner(self, nic_os):
        victim = launch(nic_os, "v", (0,))
        user = launch(
            nic_os, "u", (1,), accelerators=((AcceleratorKind.DPI, 1),)
        )
        snic = nic_os.snic
        cluster = snic.record(user.nf_id).clusters[0]
        cluster_pages = cluster.tlb.physical_pages(snic.memory.page_size)
        victim_pages = set(snic.record(victim.nf_id).pages)
        assert cluster_pages.isdisjoint(victim_pages)


class TestCacheIsolation:
    def test_hard_partition_blocks_probe(self, nic_os):
        victim = launch(nic_os, "v", (0,))
        attacker = launch(nic_os, "a", (1,))
        snic = nic_os.snic
        snic.l2.access(0xBEEF00, owner=victim.nf_id)
        # Prime+probe from the attacker cannot observe the line.
        assert snic.l2.access(0xBEEF00, owner=attacker.nf_id) is False

    def test_partition_survives_colocation_churn(self, nic_os):
        a = launch(nic_os, "a", (0,))
        b = launch(nic_os, "b", (1,))
        nic_os.NF_destroy(b.nf_id)
        c = launch(nic_os, "c", (1,))
        snic = nic_os.snic
        assert snic.l2.ways_for(a.nf_id) >= 1
        assert snic.l2.ways_for(c.nf_id) >= 1


class TestBusIsolation:
    def test_bus_dos_does_not_crash_or_delay_victim(self, nic_os):
        """The Agilio DoS replayed on S-NIC: the attacker only saturates
        its own epochs; the victim's latency is bit-identical and the
        NIC never crashes."""
        victim = launch(nic_os, "victim", (0,))
        attacker = launch(nic_os, "attacker", (1,))
        baseline = victim.bus_transfer(1024, now_ns=0.0)
        for _ in range(5000):
            attacker.bus_transfer(8, now_ns=0.0)
        # Fresh victim request at a later instant: compare against a
        # quiet twin system at the same instant.
        quiet = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=7)
        quiet_os = NICOS(quiet)
        quiet_victim = launch(quiet_os, "victim", (0,))
        launch(quiet_os, "attacker", (1,))
        t = 1_000_000.0
        assert victim.bus_transfer(1024, now_ns=t) == pytest.approx(
            quiet_victim.bus_transfer(1024, now_ns=t)
        )

    def test_victim_first_transfer_unaffected(self, nic_os):
        victim = launch(nic_os, "victim", (0,))
        assert victim.bus_transfer(1024, now_ns=0.0) > 0


class TestSchedulerConfinement:
    def test_scheduler_rejects_dma_outside_owner(self, nic_os):
        vnic = launch(
            nic_os,
            "nf",
            (0,),
            vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("1.1.1.1/32"))]),
        )
        scheduler = nic_os.snic.record(vnic.nf_id).vpp.scheduler
        with pytest.raises(AccessFault):
            scheduler.check_dma(0x0, 64)  # NIC OS region

    def test_scheduler_locked(self, nic_os):
        vnic = launch(nic_os, "nf", (0,))
        scheduler = nic_os.snic.record(vnic.nf_id).vpp.scheduler
        assert scheduler.locked
        with pytest.raises(AccessFault):
            scheduler.install_window(0, 64)


class TestPacketPathIsolation:
    def test_packets_only_reach_matching_function(self, nic_os):
        a = launch(
            nic_os, "a", (0,),
            vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("1.0.0.0/8"))]),
        )
        b = launch(
            nic_os, "b", (1,),
            vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("2.0.0.0/8"))]),
        )
        snic = nic_os.snic
        snic.rx_port.wire_arrival(Packet.make("9.9.9.9", "1.2.3.4"))
        snic.rx_port.wire_arrival(Packet.make("9.9.9.9", "2.3.4.5"))
        snic.process_ingress()
        assert len(a.receive_all()) == 1
        assert len(b.receive_all()) == 1

    def test_queued_packets_uncorruptable_by_os(self, nic_os):
        """The packet-corruption attack target: queued packets live in
        denylisted function memory, so the OS (or anyone else) cannot
        rewrite headers in place."""
        vnic = launch(
            nic_os, "nf", (0,),
            vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("1.0.0.0/8"))]),
        )
        snic = nic_os.snic
        snic.rx_port.wire_arrival(Packet.make("9.9.9.9", "1.2.3.4"))
        snic.process_ingress()
        ring = snic.record(vnic.nf_id).vpp.rx_ring
        frame_addr, _ = ring.peek_descriptors()[0]
        with pytest.raises(IsolationViolation):
            nic_os.os_write(frame_addr + 26, b"\xff\xff\xff\xff")

    def test_teardown_removes_packet_steering(self, nic_os):
        vnic = launch(
            nic_os, "nf", (0,),
            vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("1.0.0.0/8"))]),
        )
        nic_os.NF_destroy(vnic.nf_id)
        snic = nic_os.snic
        snic.rx_port.wire_arrival(Packet.make("9.9.9.9", "1.2.3.4"))
        delivered = snic.process_ingress()
        assert delivered == {-1: 1}  # dropped
