"""Tests for repro.obs: the span/event tracer and Chrome-trace export."""

import json

import pytest

from repro.obs.chrome_trace import INFRA_PID, to_chrome_trace, write_chrome_trace
from repro.obs.tracer import NOOP_SPAN, TraceEvent, Tracer, get_tracer


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert Tracer().enabled is False
        assert get_tracer().enabled is False

    def test_disabled_span_is_shared_noop_singleton(self):
        """The disabled path must not allocate: every span() call returns
        the same module-level singleton."""
        tracer = Tracer(enabled=False)
        first = tracer.span("a", tenant=1)
        second = tracer.span("b", tenant=2, cat="x")
        assert first is NOOP_SPAN
        assert second is NOOP_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("s", tenant=1):
            pass
        tracer.complete("c", 0.0, 10.0)
        tracer.instant("i")
        tracer.counter_sample("n", 3)
        assert len(tracer) == 0

    def test_noop_span_accepts_annotations(self):
        with Tracer(enabled=False).span("s") as span:
            span.annotate(key="value")  # must not raise


class TestSpans:
    def test_span_nesting_containment(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", tenant=1, track="t"):
            with tracer.span("inner", tenant=1, track="t"):
                pass
        inner, outer = tracer.events  # inner exits (and records) first
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.ts_ns <= inner.ts_ns
        assert inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns

    def test_span_annotations_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", tenant=4, frames=3) as span:
            span.annotate(bytes=64)
        event = tracer.events[0]
        assert event.args == {"frames": 3, "bytes": 64}
        assert event.tenant == 4

    def test_complete_with_explicit_timestamps(self):
        tracer = Tracer(enabled=True)
        tracer.complete("bus.transfer", 100.0, 40.0, tenant=2, track="bus",
                        cat="bus", bytes=512)
        event = tracer.events[0]
        assert event.ph == "X"
        assert event.ts_ns == 100.0 and event.dur_ns == 40.0
        assert event.track == "bus" and event.args["bytes"] == 512

    def test_negative_duration_clamped(self):
        tracer = Tracer(enabled=True)
        tracer.complete("x", 10.0, -5.0)
        assert tracer.events[0].dur_ns == 0.0

    def test_instant_and_counter(self):
        tracer = Tracer(enabled=True)
        tracer.instant("drop", tenant=1, track="rx")
        tracer.counter_sample("depth", 7, tenant=1, track="rx")
        drop, depth = tracer.events
        assert drop.ph == "i"
        assert depth.ph == "C" and depth.args == {"value": 7}

    def test_bound_clock_drives_timestamps(self):
        now = {"t": 500.0}
        tracer = Tracer(enabled=True, clock=lambda: now["t"])
        with tracer.span("s"):
            now["t"] = 800.0
        event = tracer.events[0]
        assert event.ts_ns == 500.0 and event.dur_ns == 300.0

    def test_fallback_clock_is_monotonic_ticks(self):
        tracer = Tracer(enabled=True)
        first, second = tracer.now(), tracer.now()
        assert second > first

    def test_drain_and_clear(self):
        tracer = Tracer(enabled=True)
        tracer.instant("a")
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0
        tracer.instant("b")
        tracer.clear()
        assert len(tracer) == 0

    def test_query_helpers(self):
        tracer = Tracer(enabled=True)
        tracer.complete("a", 0, 1, tenant=2, track="bus")
        tracer.complete("b", 0, 1, tenant=1, track="l2")
        tracer.instant("c", track="bus")
        assert [e.name for e in tracer.spans()] == ["a", "b"]
        assert [e.name for e in tracer.spans("a")] == ["a"]
        assert tracer.tracks() == ["bus", "l2"]
        assert tracer.tenants() == [1, 2, None]


class TestChromeExport:
    def _demo_tracer(self):
        tracer = Tracer(enabled=True)
        tracer.complete("bus.transfer", 1000.0, 250.0, tenant=1, track="bus",
                        cat="bus", bytes=64)
        tracer.complete("bus.transfer", 2000.0, 250.0, tenant=2, track="bus",
                        cat="bus", bytes=64)
        tracer.instant("cache.scrub", ts_ns=3000.0, tenant=1, track="l2")
        tracer.counter_sample("depth", 3, ts_ns=3500.0, tenant=2, track="ring")
        tracer.complete("boot", 0.0, 10.0, track="mgmt")  # infra, no tenant
        return tracer

    def test_schema_fields(self):
        doc = to_chrome_trace(self._demo_tracer())
        assert "traceEvents" in doc
        for event in doc["traceEvents"]:
            assert event["ph"] in {"X", "i", "C", "M"}
            assert isinstance(event["name"], str)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] != "M":
                assert isinstance(event["ts"], float)
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_ns_converted_to_us(self):
        doc = to_chrome_trace(self._demo_tracer())
        spans = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "bus.transfer"]
        assert spans[0]["ts"] == pytest.approx(1.0)   # 1000 ns = 1 µs
        assert spans[0]["dur"] == pytest.approx(0.25)

    def test_tenants_become_processes_with_names(self):
        doc = to_chrome_trace(self._demo_tracer())
        names = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names[INFRA_PID] == "nic-infra"
        assert "tenant-1" in names.values()
        assert "tenant-2" in names.values()
        # tenant pids never collide with the infra pid
        assert all(pid != INFRA_PID for pid, name in names.items()
                   if name.startswith("tenant-"))

    def test_per_tenant_labels_in_args(self):
        doc = to_chrome_trace(self._demo_tracer())
        spans = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "bus.transfer"]
        assert {s["args"]["tenant"] for s in spans} == {1, 2}

    def test_same_track_same_tid_across_tenants(self):
        """Shared-resource tracks keep one tid so interference lines up."""
        doc = to_chrome_trace(self._demo_tracer())
        spans = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "bus.transfer"]
        assert len({s["tid"] for s in spans}) == 1
        assert len({s["pid"] for s in spans}) == 2

    def test_round_trips_through_json(self, tmp_path):
        path = write_chrome_trace(self._demo_tracer(),
                                  str(tmp_path / "trace.json"))
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["otherData"]["generator"] == "repro.obs"
        assert len(doc["traceEvents"]) > 0

    def test_export_accepts_raw_event_list(self):
        events = [TraceEvent(ph="X", name="e", ts_ns=0.0, dur_ns=5.0,
                             tenant=3, track="t")]
        doc = to_chrome_trace(events)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestInstrumentationHooks:
    """End-to-end: enabling the global tracer makes the hw layers emit."""

    def setup_method(self):
        self.tracer = get_tracer()
        self.tracer.clear()
        self.tracer.enable(clock=None)

    def teardown_method(self):
        self.tracer.disable()
        self.tracer.use_clock(None)
        self.tracer.clear()

    def test_cache_miss_spans_are_tenant_tagged(self):
        from repro.hw.cache import Cache, CacheConfig

        cache = Cache(CacheConfig(size_bytes=8192, ways=4), name="l2t")
        cache.access(0, owner=1)
        cache.access(64, owner=2)
        spans = self.tracer.spans("cache.miss")
        assert {s.tenant for s in spans} == {1, 2}
        assert all(s.track == "l2t" for s in spans)

    def test_bus_transfer_spans(self):
        from repro.hw.bus import FCFSArbiter, IOBus

        bus = IOBus(FCFSArbiter(bandwidth_bytes_per_ns=1.0))
        bus.transfer(5, 100, now_ns=0.0)
        (span,) = self.tracer.spans("bus.transfer")
        assert span.tenant == 5 and span.dur_ns == pytest.approx(100.0)

    def test_accelerator_spans(self):
        from repro.hw.accelerator import (
            AcceleratorCluster, AcceleratorKind, AcceleratorRequest)

        cluster = AcceleratorCluster(AcceleratorKind.DPI, 0, n_threads=2)
        cluster.bind(9)
        cluster.submit(AcceleratorRequest(owner=9, n_bytes=256, issue_ns=0.0))
        (span,) = self.tracer.spans("accel.dpi")
        assert span.tenant == 9 and span.dur_ns > 0

    def test_lifecycle_spans_from_snic(self):
        from repro.core import NFConfig, SNIC

        snic = SNIC(n_cores=2, dram_bytes=64 * 1024 * 1024, key_seed=3)
        nf_id = snic.nf_launch(NFConfig(name="t", core_ids=(0,),
                                        memory_bytes=4 * 1024 * 1024))
        snic.nf_teardown(nf_id)
        names = {s.name for s in self.tracer.spans()}
        assert {"nf_launch", "nf_teardown"} <= names
        launch = self.tracer.spans("nf_launch")[0]
        assert launch.tenant == nf_id and launch.dur_ns > 0


class TestScenario:
    def test_cotenancy_scenario_meets_acceptance(self, tmp_path):
        """The `python -m repro trace` payload: valid Chrome JSON with
        spans from >= 3 hardware layers, all tenant-labelled."""
        from repro.obs.scenario import run_cotenancy_scenario

        out = str(tmp_path / "trace.json")
        summary = run_cotenancy_scenario(out_path=out, n_packets=20)
        with open(out) as fh:
            doc = json.load(fh)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        layers = {e["cat"] for e in spans}
        assert {"cache", "bus", "accel"} <= layers
        tenant_labels = {e["args"]["tenant"] for e in spans
                         if "args" in e and "tenant" in e["args"]}
        assert len(tenant_labels) >= 2
        assert summary["events"] == sum(
            1 for e in doc["traceEvents"] if e["ph"] != "M")
        assert not get_tracer().enabled  # scenario restores disabled state
