"""Tests for the Appendix-B-style profiler over this repo's NFs."""

import pytest

from repro.cost.pages import EQUAL_MENU
from repro.cost.pyprofile import (
    PyNFProfile,
    build_default_nfs,
    profile_all,
    profile_nf,
)
from repro.net.traces import make_ictf_like_trace
from repro.nf import Monitor


class TestProfileNF:
    def test_samples_and_peak(self):
        trace = make_ictf_like_trace(scale=0.005)
        profile = profile_nf(
            "Mon", Monitor(), trace.packets(500, payload_size=64),
            sample_every=100,
        )
        assert profile.packets == 500
        assert profile.peak_state_bytes >= profile.final_state_bytes
        assert len(profile.samples) >= 5
        # Samples are (count, bytes) with counts increasing.
        counts = [c for c, _ in profile.samples]
        assert counts == sorted(counts)

    def test_monitor_grows(self):
        trace = make_ictf_like_trace(scale=0.005)
        profile = profile_nf(
            "Mon", Monitor(), trace.packets(1500, payload_size=64)
        )
        assert profile.growth_ratio > 2

    def test_tlb_entries_positive(self):
        profile = PyNFProfile(
            name="x", packets=1, peak_state_bytes=1024,
            final_state_bytes=1024, samples=[(0, 1024)],
        )
        assert profile.tlb_entries(EQUAL_MENU) >= 2  # image + state


class TestProfileAll:
    @pytest.fixture(scope="class")
    def profiles(self):
        return profile_all(n_packets=800)

    def test_all_six_present(self, profiles):
        assert set(profiles) == {"FW", "DPI", "NAT", "LB", "LPM", "Mon"}

    def test_static_structures_do_not_grow(self, profiles):
        assert profiles["LPM"].growth_ratio == pytest.approx(1.0)
        assert profiles["DPI"].growth_ratio == pytest.approx(1.0)

    def test_flow_keyed_structures_grow(self, profiles):
        assert profiles["Mon"].growth_ratio > profiles["LPM"].growth_ratio
        assert profiles["NAT"].growth_ratio > 1.0

    def test_default_nfs_buildable(self):
        nfs = build_default_nfs()
        assert len(nfs) == 6
