"""The determinism checker: digests, divergence reporting, and the
co-tenancy double-run gate."""

from __future__ import annotations

import json

import pytest

from repro.analysis.determinism import (
    DeterminismReport,
    RunDigest,
    check_cotenancy_determinism,
    check_determinism,
    digest_events,
    main as sanitize_main,
)
from repro.obs.tracer import TraceEvent, get_tracer


def _event(name="e", ts=10.0, dur=5.0, tenant=1, track="t", **args):
    return TraceEvent(ph="X", name=name, ts_ns=ts, dur_ns=dur,
                      tenant=tenant, track=track, args=args)


class TestDigests:
    def test_identical_streams_digest_identically(self):
        a = digest_events([_event(), _event(name="f", ts=20.0)])
        b = digest_events([_event(), _event(name="f", ts=20.0)])
        assert a == b

    def test_value_drift_flips_the_stream_hash(self):
        a = digest_events([_event(ts=10.0)])
        b = digest_events([_event(ts=11.0)])
        assert a.stream_sha256 != b.stream_sha256

    def test_reordering_flips_the_stream_hash(self):
        e1, e2 = _event(name="a"), _event(name="b")
        a = digest_events([e1, e2])
        b = digest_events([e2, e1])
        assert a.stream_sha256 != b.stream_sha256
        # ...but the span tree, which sorts, is order-insensitive:
        assert a.span_tree_sha256 == b.span_tree_sha256

    def test_counts_and_final_ts(self):
        d = digest_events([
            _event(ts=10.0, dur=5.0),
            TraceEvent(ph="i", name="x", ts_ns=100.0),
        ])
        assert d.event_count == 2
        assert d.span_count == 1
        assert d.final_ts_ns == 100.0

    def test_diff_names_the_diverging_fields(self):
        a = digest_events([_event()])
        b = digest_events([_event(), _event(name="extra")])
        lines = a.diff(b)
        assert any("event count" in line for line in lines)
        assert any("stream sha256" in line for line in lines)


class TestCheckDeterminism:
    def test_deterministic_run_passes(self):
        def run():
            tracer = get_tracer()
            tracer.enable()
            tracer.complete("step", 10.0, 5.0, tenant=1, track="x")
            tracer.disable()
            return {"ok": True}

        report = check_determinism(run, scenario="unit")
        assert report.deterministic
        assert report.divergence == []
        assert len(report.digests) == 2
        assert report.summaries[0] == {"ok": True}
        assert "PASS" in report.render()

    def test_nondeterministic_run_fails(self):
        counter = iter(range(100))

        def run():
            tracer = get_tracer()
            tracer.enable()
            tracer.complete("step", float(next(counter)), 5.0, tenant=1,
                            track="x")
            tracer.disable()
            return None

        report = check_determinism(run, scenario="unit")
        assert not report.deterministic
        assert report.divergence
        assert "FAIL" in report.render()

    def test_report_as_dict_is_json_serializable(self):
        report = DeterminismReport(
            scenario="s",
            digests=[digest_events([]), digest_events([])])
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["deterministic"] is True

    def test_globals_are_reset_between_and_after_runs(self):
        def run():
            tracer = get_tracer()
            assert len(tracer.events) == 0, "previous run leaked events"
            tracer.enable()
            tracer.instant("x", tenant=None)
            tracer.disable()
            return None

        check_determinism(run, scenario="unit")
        assert len(get_tracer().events) == 0
        assert not get_tracer().enabled


class TestCotenancyGate:
    def test_cotenancy_demo_is_deterministic(self):
        report = check_cotenancy_determinism(n_packets=16)
        assert report.deterministic, "\n".join(report.divergence)
        assert report.digests[0].event_count > 0
        assert report.digests[0].span_count > 0

    def test_cli_exit_code(self, capsys):
        assert sanitize_main(["--packets", "8"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_cli_json_output(self, capsys):
        assert sanitize_main(["--packets", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deterministic"] is True
        assert len(payload["digests"]) == 2
