"""Tests for nf_launch / nf_teardown lifecycle (§4.1, §4.6)."""

import pytest

from repro.core import LaunchError, NFConfig, SNIC, TeardownError
from repro.core.vpp import VPPConfig
from repro.hw.accelerator import AcceleratorKind
from repro.net.rules import MatchRule, Prefix

MB = 1024 * 1024


def config(name="nf", cores=(0,), memory=4 * MB, **kwargs):
    return NFConfig(
        name=name, core_ids=tuple(cores), memory_bytes=memory, **kwargs
    )


@pytest.fixture
def snic():
    return SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=7)


class TestLaunchSuccess:
    def test_returns_monotonic_ids(self, snic):
        a = snic.nf_launch(config(cores=(0,)))
        b = snic.nf_launch(config(cores=(1,)))
        assert b == a + 1
        assert snic.live_functions == [a, b]

    def test_cores_bound(self, snic):
        nf_id = snic.nf_launch(config(cores=(0, 1)))
        assert snic.cores[0].owner == nf_id
        assert snic.cores[1].owner == nf_id
        assert snic.free_cores() == [2, 3]

    def test_pages_claimed_and_denylisted(self, snic):
        nf_id = snic.nf_launch(config())
        record = snic.record(nf_id)
        assert record.pages
        for page in record.pages:
            assert snic.memory.owner_of(page) == nf_id
            assert not snic.denylist.check_page(page)

    def test_image_placed_at_va_zero(self, snic):
        image = b"INITIAL-CODE" * 16
        nf_id = snic.nf_launch(config(initial_image=image))
        record = snic.record(nf_id)
        assert snic.memory.read(record.extent_base, len(image)) == image

    def test_core_tlbs_locked(self, snic):
        nf_id = snic.nf_launch(config(cores=(0,)))
        assert snic.cores[0].tlb.locked
        assert len(snic.cores[0].tlb) >= 1

    def test_accelerator_clusters_bound_and_locked(self, snic):
        nf_id = snic.nf_launch(
            config(accelerators=((AcceleratorKind.DPI, 2),))
        )
        record = snic.record(nf_id)
        assert len(record.clusters) == 2
        for cluster in record.clusters:
            assert cluster.owner == nf_id
            assert cluster.tlb.locked

    def test_cache_partitioned_per_function(self, snic):
        a = snic.nf_launch(config(cores=(0,)))
        b = snic.nf_launch(config(cores=(1,)))
        assert snic.l2.ways_for(a) >= 1
        assert snic.l2.ways_for(b) >= 1

    def test_bus_domains_track_live_functions(self, snic):
        a = snic.nf_launch(config(cores=(0,)))
        assert a in snic.bus.arbiter.domains
        b = snic.nf_launch(config(cores=(1,)))
        assert set(snic.bus.arbiter.domains) >= {0, a, b}

    def test_instruction_log(self, snic):
        nf_id = snic.nf_launch(config())
        names = [entry[0] for entry in snic.instruction_log]
        assert "nf_launch" in names


class TestLaunchValidation:
    def test_busy_core_rejected(self, snic):
        snic.nf_launch(config(cores=(0,)))
        with pytest.raises(LaunchError):
            snic.nf_launch(config(cores=(0,)))

    def test_unknown_core_rejected(self, snic):
        with pytest.raises(LaunchError):
            snic.nf_launch(config(cores=(99,)))

    def test_duplicate_cores_rejected(self, snic):
        with pytest.raises(LaunchError):
            snic.nf_launch(config(cores=(0, 0)))

    def test_no_cores_rejected(self, snic):
        with pytest.raises(LaunchError):
            snic.nf_launch(config(cores=()))

    def test_zero_memory_rejected(self, snic):
        with pytest.raises(LaunchError):
            snic.nf_launch(
                NFConfig(name="x", core_ids=(0,), memory_bytes=0, ring_data_bytes=0,
                         vpp=VPPConfig(ring_capacity=0))
            )

    def test_cluster_exhaustion_rejected(self, snic):
        # Each engine has 64 threads in 16-thread clusters = 4 clusters.
        snic.nf_launch(config(cores=(0,), accelerators=((AcceleratorKind.ZIP, 4),)))
        with pytest.raises(LaunchError):
            snic.nf_launch(
                config(cores=(1,), accelerators=((AcceleratorKind.ZIP, 1),))
            )

    def test_failed_launch_leaves_no_state(self, snic):
        """Atomicity: a rejected launch must not leak cores or pages."""
        snic.nf_launch(config(cores=(1,)))
        before_pages = sum(
            1 for i in range(snic.memory.n_pages)
            if snic.memory.owner_of(i) is not None
        )
        with pytest.raises(LaunchError):
            snic.nf_launch(
                config(cores=(0, 1))  # core 1 busy -> must fail up front
            )
        after_pages = sum(
            1 for i in range(snic.memory.n_pages)
            if snic.memory.owner_of(i) is not None
        )
        assert after_pages == before_pages
        assert not snic.cores[0].allocated

    def test_memory_exhaustion(self):
        tiny = SNIC(n_cores=2, dram_bytes=32 * MB, key_seed=7)
        with pytest.raises(LaunchError):
            tiny.nf_launch(config(memory=64 * MB))


class TestStateHash:
    def test_deterministic(self):
        a = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=7)
        b = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=7)
        cfg = config(initial_image=b"same-image")
        assert a.record(a.nf_launch(cfg)).state_hash == b.record(
            b.nf_launch(cfg)
        ).state_hash

    def test_image_changes_hash(self, snic):
        h1 = snic.record(
            snic.nf_launch(config(cores=(0,), initial_image=b"image-A"))
        ).state_hash
        h2 = snic.record(
            snic.nf_launch(config(cores=(1,), initial_image=b"image-B"))
        ).state_hash
        assert h1 != h2

    def test_rules_change_hash(self, snic):
        """The hash covers the switching rules (§4.6) so a tampered
        packet-steering setup is detectable via attestation."""
        vpp_a = VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("1.1.1.1/32"))])
        vpp_b = VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("2.2.2.2/32"))])
        h1 = snic.record(snic.nf_launch(config(cores=(0,), vpp=vpp_a))).state_hash
        h2 = snic.record(snic.nf_launch(config(cores=(1,), vpp=vpp_b))).state_hash
        assert h1 != h2


class TestTeardown:
    def test_releases_everything(self, snic):
        nf_id = snic.nf_launch(
            config(cores=(0, 1), accelerators=((AcceleratorKind.DPI, 1),))
        )
        record = snic.record(nf_id)
        snic.nf_teardown(nf_id)
        assert snic.live_functions == []
        assert not snic.cores[0].allocated and not snic.cores[1].allocated
        for page in record.pages:
            assert snic.memory.owner_of(page) is None
            assert snic.denylist.check_page(page)
        assert all(c.owner is None for c in record.clusters)
        assert snic.dma.banks_for_owner(nf_id) == []

    def test_scrubs_memory(self, snic):
        nf_id = snic.nf_launch(config(initial_image=b"SECRET" * 100))
        base = snic.record(nf_id).extent_base
        snic.nf_teardown(nf_id)
        assert snic.memory.read(base, 600) == b"\x00" * 600

    def test_scrubs_cache_lines(self, snic):
        nf_id = snic.nf_launch(config())
        snic.l2.access(0x1000, owner=nf_id)
        snic.nf_teardown(nf_id)
        assert snic.l2.occupancy(nf_id) == 0

    def test_resources_reusable_after_teardown(self, snic):
        nf_id = snic.nf_launch(config(cores=(0,)))
        snic.nf_teardown(nf_id)
        again = snic.nf_launch(config(cores=(0,)))
        assert again != nf_id
        assert snic.cores[0].owner == again

    def test_unknown_function_rejected(self, snic):
        with pytest.raises(TeardownError):
            snic.nf_teardown(999)

    def test_double_teardown_rejected(self, snic):
        nf_id = snic.nf_launch(config())
        snic.nf_teardown(nf_id)
        with pytest.raises(TeardownError):
            snic.nf_teardown(nf_id)

    def test_many_launch_teardown_cycles(self, snic):
        """Resource bookkeeping survives churn (the §4.8 usage model:
        'creating or destroying functions in response to load')."""
        for _ in range(10):
            a = snic.nf_launch(config(cores=(0, 1)))
            b = snic.nf_launch(config(cores=(2,)))
            snic.nf_teardown(a)
            snic.nf_teardown(b)
        assert snic.live_functions == []
        assert len(snic.free_cores()) == 4
