"""Tests for ports, rings, and packet input/output modules."""

import pytest

from repro.hw.memory import AccessFault, PhysicalMemory
from repro.hw.packet_io import (
    PacketInputModule,
    PacketOutputModule,
    PacketRing,
    RXPort,
    TXPort,
)
from repro.net.packet import Packet
from repro.net.rules import MatchRule, Prefix, SwitchingRule


def make_ring(memory, capacity=8):
    return PacketRing(
        memory,
        data_base=0x10000,
        data_size=64 * 1024,
        desc_base=0x30000,
        capacity=capacity,
    )


class TestPorts:
    def test_reserve_and_release(self):
        port = RXPort(capacity_bytes=1000)
        r = port.reserve(owner=1, size=400)
        assert r.offset == 0 and r.size == 400
        r2 = port.reserve(owner=2, size=400)
        assert r2.offset == 400
        port.release(1)
        assert 1 not in port.reservations

    def test_reserve_exhaustion(self):
        port = RXPort(capacity_bytes=100)
        port.reserve(owner=1, size=80)
        with pytest.raises(AccessFault):
            port.reserve(owner=2, size=40)

    def test_double_reserve_rejected(self):
        port = RXPort(capacity_bytes=1000)
        port.reserve(owner=1, size=100)
        with pytest.raises(AccessFault):
            port.reserve(owner=1, size=100)

    def test_free_bytes(self):
        port = TXPort(capacity_bytes=1000)
        port.reserve(owner=1, size=300)
        assert port.free_bytes() == 700

    def test_full_release_resets_offsets(self):
        port = RXPort(capacity_bytes=1000)
        port.reserve(owner=1, size=900)
        port.release(1)
        assert port.reserve(owner=2, size=900).offset == 0

    def test_rx_staging(self):
        port = RXPort()
        p = Packet.make("1.1.1.1", "2.2.2.2")
        port.wire_arrival(p)
        assert port.drain() == [p]
        assert port.drain() == []


class TestPacketRing:
    def test_push_pop_roundtrip(self):
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        ring = make_ring(memory)
        frame = Packet.make("1.1.1.1", "2.2.2.2", payload=b"abc").to_bytes()
        ring.push(frame)
        assert ring.pop() == frame

    def test_fifo_order(self):
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        ring = make_ring(memory)
        frames = [bytes([i]) * 60 for i in range(5)]
        for f in frames:
            ring.push(f)
        assert [ring.pop() for _ in range(5)] == frames

    def test_pop_empty_returns_none(self):
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        assert make_ring(memory).pop() is None

    def test_full_ring_rejects(self):
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        ring = make_ring(memory, capacity=2)
        ring.push(b"a" * 64)
        ring.push(b"b" * 64)
        with pytest.raises(AccessFault):
            ring.push(b"c" * 64)

    def test_oversized_frame_rejected(self):
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        ring = make_ring(memory)
        with pytest.raises(AccessFault):
            ring.push(b"x" * (64 * 1024 + 1))

    def test_descriptors_in_memory(self):
        """Ring state is ordinary DRAM — an attacker who can read it sees
        (address, length) pairs, which is the §3.3 attack surface."""
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        ring = make_ring(memory)
        addr = ring.push(b"z" * 100)
        descs = ring.peek_descriptors()
        assert descs == [(addr, 100)]
        # And the raw frame bytes sit at that physical address.
        assert memory.read(addr, 100) == b"z" * 100

    def test_data_wraps(self):
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        ring = make_ring(memory, capacity=100)
        for _ in range(5):
            ring.push(b"q" * 20000)
            assert ring.pop() == b"q" * 20000


def _rule_for(nf_id, dst):
    return SwitchingRule(
        match=MatchRule(dst_prefix=Prefix.parse(dst)), nf_id=nf_id
    )


class TestInputModule:
    def _setup(self):
        memory = PhysicalMemory(4 * 1024 * 1024, page_size=4096)
        rx = RXPort()
        pim = PacketInputModule(rx)
        ring1 = PacketRing(memory, 0x10000, 32 * 1024, 0x40000, 16)
        ring2 = PacketRing(memory, 0x80000, 32 * 1024, 0xC0000, 16)
        pim.attach_ring(1, ring1)
        pim.attach_ring(2, ring2)
        pim.configure_rules([_rule_for(1, "1.0.0.0/8"), _rule_for(2, "2.0.0.0/8")])
        return rx, pim, ring1, ring2

    def test_classify(self):
        _, pim, _, _ = self._setup()
        assert pim.classify(Packet.make("9.9.9.9", "1.2.3.4")) == 1
        assert pim.classify(Packet.make("9.9.9.9", "2.2.2.2")) == 2
        assert pim.classify(Packet.make("9.9.9.9", "3.3.3.3")) is None

    def test_process_routes_to_rings(self):
        rx, pim, ring1, ring2 = self._setup()
        rx.wire_arrival(Packet.make("9.9.9.9", "1.2.3.4"))
        rx.wire_arrival(Packet.make("9.9.9.9", "2.2.2.2"))
        rx.wire_arrival(Packet.make("9.9.9.9", "3.3.3.3"))
        moved = pim.process()
        assert moved == 2
        assert pim.dropped == 1
        assert ring1.occupancy == 1 and ring2.occupancy == 1
        assert pim.delivered == {1: 1, 2: 1}

    def test_remove_rules_for(self):
        rx, pim, _, _ = self._setup()
        pim.remove_rules_for(1)
        assert pim.classify(Packet.make("9.9.9.9", "1.2.3.4")) is None

    def test_first_match_wins(self):
        rx, pim, _, _ = self._setup()
        pim.configure_rules(
            [_rule_for(2, "1.2.3.4/32"), _rule_for(1, "1.0.0.0/8")]
        )
        assert pim.classify(Packet.make("9.9.9.9", "1.2.3.4")) == 2


class TestOutputModule:
    def test_drains_to_wire(self):
        memory = PhysicalMemory(1024 * 1024, page_size=4096)
        tx = TXPort()
        pom = PacketOutputModule(tx)
        ring = make_ring(memory)
        pom.attach_ring(5, ring)
        ring.push(Packet.make("1.1.1.1", "2.2.2.2").to_bytes())
        ring.push(Packet.make("1.1.1.1", "3.3.3.3").to_bytes())
        sent = pom.process()
        assert sent == 2
        assert len(tx.transmitted) == 2
        assert tx.transmitted[0][0] == 5
