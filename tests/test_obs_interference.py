"""Per-tenant contention attribution: every shared resource blames the
right culprit for hand-computable waits, and the S-NIC configurations
attribute exactly zero cross-tenant nanoseconds."""

from __future__ import annotations

import pytest

from repro.hw.bus import FCFSArbiter, TemporalPartitioningArbiter
from repro.hw.cache import HARD, Cache, CacheConfig
from repro.hw.cores import ProgrammableCore
from repro.hw.dma import DMAController, DMAWindow
from repro.hw.dram import DRAMChannel
from repro.hw.memory import HostMemory, PhysicalMemory
from repro.obs.interference import (
    RESOURCE_BUS,
    RESOURCE_CACHE,
    RESOURCE_CORES,
    FCFSWaitAttributor,
    blame_matrix,
    cross_tenant_events,
    cross_tenant_wait_ns,
    format_matrix,
    get_accountant,
)

VICTIM = 1
AGGRESSOR = 2


def cell(resource: str, victim: int, culprit: int):
    """The (victim, culprit) cell of the current registry's matrix."""
    matrix = blame_matrix(resource=resource)
    return matrix.get(resource, {}).get((str(victim), str(culprit)))


# ----------------------------------------------------------------------
# The accountant and matrix plumbing
# ----------------------------------------------------------------------

class TestAccountant:
    def test_blame_lands_in_both_counter_families(self):
        get_accountant().blame("bus", victim=VICTIM, culprit=AGGRESSOR,
                               wait_ns=42.0)
        entry = cell("bus", VICTIM, AGGRESSOR)
        assert entry == {"wait_ns": 42.0, "events": 1.0}

    def test_blame_accumulates(self):
        acc = get_accountant()
        acc.blame("bus", victim=VICTIM, culprit=AGGRESSOR, wait_ns=10.0)
        acc.blame("bus", victim=VICTIM, culprit=AGGRESSOR, wait_ns=5.0,
                  events=3)
        entry = cell("bus", VICTIM, AGGRESSOR)
        assert entry == {"wait_ns": 15.0, "events": 4.0}

    def test_zero_blame_is_dropped(self):
        get_accountant().blame("bus", victim=VICTIM, culprit=AGGRESSOR,
                               wait_ns=0.0, events=0)
        assert blame_matrix(resource="bus") == {}

    def test_cross_tenant_totals_exclude_self_waits(self):
        acc = get_accountant()
        acc.blame("bus", victim=VICTIM, culprit=VICTIM, wait_ns=100.0)
        acc.blame("bus", victim=VICTIM, culprit=AGGRESSOR, wait_ns=30.0)
        acc.blame("dram", victim=AGGRESSOR, culprit=VICTIM, wait_ns=7.0)
        matrix = blame_matrix()
        assert cross_tenant_wait_ns(matrix) == 37.0
        assert cross_tenant_events(matrix) == 2.0
        assert cross_tenant_wait_ns(matrix, resource="dram") == 7.0

    def test_format_matrix_renders_cells(self):
        get_accountant().blame("bus", victim=VICTIM, culprit=AGGRESSOR,
                               wait_ns=90.0)
        text = format_matrix(blame_matrix())
        assert "[bus]" in text and "90ns/1ev" in text

    def test_format_matrix_empty(self):
        assert "no interference recorded" in format_matrix({})


class TestFCFSWaitAttributor:
    def test_wait_is_split_across_occupying_clients(self):
        att = FCFSWaitAttributor("bus")
        att.occupy(AGGRESSOR, 0.0, 100.0)
        # Victim issues at t=10 and cannot start before t=100: the
        # remaining 90 ns of the aggressor's segment are its fault.
        att.attribute(VICTIM, 10.0, 100.0)
        assert cell("bus", VICTIM, AGGRESSOR) == {"wait_ns": 90.0,
                                                  "events": 1.0}

    def test_expired_segments_are_not_blamed(self):
        att = FCFSWaitAttributor("bus")
        att.occupy(AGGRESSOR, 0.0, 100.0)
        att.occupy(VICTIM, 100.0, 150.0)
        # At t=120 the aggressor's segment has fully drained; only the
        # victim's own in-flight transfer still covers the wait.
        att.attribute(VICTIM, 120.0, 150.0)
        assert cell("bus", VICTIM, AGGRESSOR) is None
        assert cell("bus", VICTIM, VICTIM) == {"wait_ns": 30.0,
                                               "events": 1.0}

    def test_no_wait_no_blame(self):
        att = FCFSWaitAttributor("bus")
        att.occupy(AGGRESSOR, 0.0, 100.0)
        att.attribute(VICTIM, 200.0, 200.0)
        assert blame_matrix(resource="bus") == {}


# ----------------------------------------------------------------------
# The bus: FCFS blames the queue owners; temporal partitioning never
# blames across domains.
# ----------------------------------------------------------------------

class TestBusAttribution:
    def test_fcfs_queueing_is_blamed_on_the_aggressor(self):
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=1.0)
        arbiter.request(AGGRESSOR, 100, 0.0)   # occupies [0, 100)
        done = arbiter.request(VICTIM, 50, 10.0)
        assert done == 150.0  # waited until 100, then 50 ns of wire time
        assert cell(RESOURCE_BUS, VICTIM, AGGRESSOR) == {"wait_ns": 90.0,
                                                         "events": 1.0}

    def test_fcfs_self_queueing_is_blamed_on_self(self):
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=1.0)
        arbiter.request(VICTIM, 100, 0.0)
        arbiter.request(VICTIM, 10, 40.0)  # waits 60 ns behind itself
        entry = cell(RESOURCE_BUS, VICTIM, VICTIM)
        assert entry == {"wait_ns": 60.0, "events": 1.0}
        assert cross_tenant_wait_ns(blame_matrix()) == 0.0

    def test_temporal_partitioning_attributes_zero_cross_tenant(self):
        arbiter = TemporalPartitioningArbiter(
            domains=[VICTIM, AGGRESSOR], bandwidth_bytes_per_ns=1.0,
            epoch_ns=1000.0, dead_time_ns=100.0)
        # The aggressor saturates its own epochs...
        for i in range(8):
            arbiter.request(AGGRESSOR, 2000, i * 500.0)
        # ...and the victim's completions never blame it.
        arbiter.request(VICTIM, 100, 0.0)
        arbiter.request(VICTIM, 100, 2500.0)
        matrix = blame_matrix(resource=RESOURCE_BUS)
        assert cross_tenant_wait_ns(matrix) == 0.0
        assert cross_tenant_events(matrix) == 0.0

    def test_temporal_partitioning_epoch_gap_is_self_blame(self):
        arbiter = TemporalPartitioningArbiter(
            domains=[VICTIM, AGGRESSOR], bandwidth_bytes_per_ns=1.0,
            epoch_ns=1000.0, dead_time_ns=100.0)
        # Issued during the OTHER domain's epoch [1000, 2000): the victim
        # waits until its next epoch at t=2000 — purely structural.
        done = arbiter.request(VICTIM, 100, 1000.0)
        assert done == 2100.0
        entry = cell(RESOURCE_BUS, VICTIM, VICTIM)
        assert entry is not None
        assert entry["wait_ns"] == pytest.approx(1000.0)


# ----------------------------------------------------------------------
# The cache: shared-mode conflict misses blame the evictor; hard
# partitioning makes cross-tenant eviction impossible.
# ----------------------------------------------------------------------

def one_set_cache() -> Cache:
    """ways=2, one set: the smallest geometry where eviction is forced."""
    return Cache(CacheConfig(size_bytes=128, line_bytes=64, ways=2),
                 name="tiny")


class TestCacheAttribution:
    def test_conflict_miss_blames_the_evictor(self):
        cache = one_set_cache()
        cache.access(0, owner=VICTIM)      # tag 0 resident
        cache.access(64, owner=VICTIM)     # tag 1 resident, set full
        cache.access(128, owner=AGGRESSOR)  # evicts the LRU line (tag 0)
        assert cell(RESOURCE_CACHE, VICTIM, AGGRESSOR) is None  # not yet
        hit = cache.access(0, owner=VICTIM)  # the conflict miss
        assert not hit
        entry = cell(RESOURCE_CACHE, VICTIM, AGGRESSOR)
        assert entry == {"wait_ns": 60.0, "events": 1.0}

    def test_cold_misses_are_not_interference(self):
        cache = one_set_cache()
        cache.access(0, owner=VICTIM)
        cache.access(64, owner=AGGRESSOR)
        assert blame_matrix(resource=RESOURCE_CACHE) == {}

    def test_self_eviction_is_not_blamed(self):
        cache = one_set_cache()
        for tag in range(3):               # victim thrashes its own set
            cache.access(tag * 64, owner=VICTIM)
        cache.access(0, owner=VICTIM)      # misses on its own eviction
        assert blame_matrix(resource=RESOURCE_CACHE) == {}

    def test_hard_partitioning_attributes_zero_cross_tenant(self):
        cache = Cache(CacheConfig(size_bytes=4096, line_bytes=64, ways=4),
                      name="part")
        cache.set_partitions({VICTIM: 2, AGGRESSOR: 2}, mode=HARD)
        stride = cache.config.n_sets * 64
        victim_ws = [k * stride for k in range(2)]
        for addr in victim_ws:
            cache.access(addr, owner=VICTIM)
        for round_index in range(4):       # aggressor thrashes every set
            for k in range(6):
                cache.access((8 + k) * stride, owner=AGGRESSOR)
            for addr in victim_ws:
                assert cache.access(addr, owner=VICTIM)  # still resident
        assert cross_tenant_wait_ns(blame_matrix()) == 0.0

    def test_scrub_voids_pending_blame(self):
        cache = one_set_cache()
        cache.access(0, owner=VICTIM)
        cache.access(64, owner=VICTIM)
        cache.access(128, owner=AGGRESSOR)  # eviction remembered
        cache.flush_owner(VICTIM)           # teardown scrub
        cache.access(0, owner=VICTIM)       # cold again, not a conflict
        assert blame_matrix(resource=RESOURCE_CACHE) == {}


# ----------------------------------------------------------------------
# DRAM: one shared channel vs per-tenant bandwidth reservations.
# ----------------------------------------------------------------------

class TestDRAMAttribution:
    def test_shared_channel_blames_the_occupant(self):
        channel = DRAMChannel()
        # 1280 B at 12.8 B/ns + 50 ns access = occupies [0, 150).
        channel.access(AGGRESSOR, 1280, 0.0)
        done = channel.access(VICTIM, 0, 0.0)
        assert done == 200.0  # 150 queue + 50 access latency
        entry = cell("dram", VICTIM, AGGRESSOR)
        assert entry == {"wait_ns": 150.0, "events": 1.0}

    def test_partitioned_channel_attributes_zero_cross_tenant(self):
        channel = DRAMChannel()
        channel.partition([VICTIM, AGGRESSOR])
        channel.access(AGGRESSOR, 64_000, 0.0)
        done = channel.access(VICTIM, 0, 0.0)
        assert done == 50.0  # pure access latency: aggressor invisible
        assert cross_tenant_wait_ns(blame_matrix()) == 0.0

    def test_unreserved_tenant_is_rejected_when_partitioned(self):
        channel = DRAMChannel()
        channel.partition([VICTIM])
        with pytest.raises(KeyError):
            channel.access(AGGRESSOR, 64, 0.0)


# ----------------------------------------------------------------------
# DMA: a shared commodity engine serializes banks; per-bank engines
# (S-NIC) are independent by construction.
# ----------------------------------------------------------------------

def configured_controller(shared_engine: bool) -> DMAController:
    controller = DMAController(2, shared_engine=shared_engine)
    window = 16 * 1024
    for bank_id, owner in ((0, VICTIM), (1, AGGRESSOR)):
        controller.bank_for_core(bank_id).configure(
            owner,
            nic_window=DMAWindow(base=bank_id * window, size=window),
            host_window=DMAWindow(base=(2 + bank_id) * window, size=window),
        )
    return controller


class TestDMAAttribution:
    def test_shared_engine_blames_the_other_bank(self):
        controller = configured_controller(shared_engine=True)
        host, nic = HostMemory(1 << 16), PhysicalMemory(1 << 16)
        window = 16 * 1024
        # Aggressor: 8000 B at 8 B/ns occupies the engine for [0, 1000).
        controller.bank_for_core(1).to_nic(
            host, nic, host_addr=3 * window, nic_addr=window,
            n_bytes=8000, now_ns=0.0)
        done = controller.bank_for_core(0).to_nic(
            host, nic, host_addr=2 * window, nic_addr=0,
            n_bytes=800, now_ns=0.0)
        assert done == 1100.0  # 1000 queue + 100 wire
        entry = cell("dma", VICTIM, AGGRESSOR)
        assert entry == {"wait_ns": 1000.0, "events": 1.0}

    def test_per_bank_engines_attribute_zero_cross_tenant(self):
        controller = configured_controller(shared_engine=False)
        host, nic = HostMemory(1 << 16), PhysicalMemory(1 << 16)
        window = 16 * 1024
        controller.bank_for_core(1).to_nic(
            host, nic, host_addr=3 * window, nic_addr=window,
            n_bytes=8000, now_ns=0.0)
        done = controller.bank_for_core(0).to_nic(
            host, nic, host_addr=2 * window, nic_addr=0,
            n_bytes=800, now_ns=0.0)
        assert done == 100.0  # pure wire time, aggressor invisible
        assert cross_tenant_wait_ns(blame_matrix()) == 0.0

    def test_untimed_transfers_skip_the_queueing_model(self):
        controller = configured_controller(shared_engine=True)
        host, nic = HostMemory(1 << 16), PhysicalMemory(1 << 16)
        window = 16 * 1024
        done = controller.bank_for_core(0).to_nic(
            host, nic, host_addr=2 * window, nic_addr=0, n_bytes=64)
        assert done is None
        assert blame_matrix(resource="dma") == {}


# ----------------------------------------------------------------------
# Cores: explicitly attributed stall cycles.
# ----------------------------------------------------------------------

class TestCoreAttribution:
    def test_attributed_stalls_convert_cycles_to_ns(self):
        core = ProgrammableCore(0, PhysicalMemory(4096))
        core.bind(VICTIM)
        core.record_stalls(120.0, culprit=AGGRESSOR)
        entry = cell(RESOURCE_CORES, VICTIM, AGGRESSOR)
        assert entry is not None
        # 120 cycles at 1.2 GHz is exactly 100 ns.
        assert entry["wait_ns"] == pytest.approx(100.0)
        assert entry["events"] == 1.0
        assert core.stall_cycles == 120

    def test_unattributed_stalls_do_not_blame(self):
        core = ProgrammableCore(0, PhysicalMemory(4096))
        core.bind(VICTIM)
        core.record_stalls(500.0)
        assert blame_matrix(resource=RESOURCE_CORES) == {}
        assert core.stall_cycles == 500

    def test_unbound_core_does_not_blame(self):
        core = ProgrammableCore(0, PhysicalMemory(4096))
        core.record_stalls(500.0, culprit=AGGRESSOR)
        assert blame_matrix(resource=RESOURCE_CORES) == {}
