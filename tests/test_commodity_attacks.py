"""End-to-end tests for the three §3.3 attacks on commodity NICs."""

import pytest

from repro.commodity.agilio import AgilioNIC
from repro.commodity.attacks import (
    bus_dos_attack,
    dpi_ruleset_stealing_attack,
    packet_corruption_attack,
    run_dpi_stealing_experiment,
    run_packet_corruption_experiment,
)
from repro.commodity.liquidio import LiquidIONIC
from repro.nf.monitor import Monitor


class TestPacketCorruption:
    def test_attack_succeeds_on_liquidio(self):
        result, clean, attacked = run_packet_corruption_experiment(n_packets=8)
        assert result.succeeded
        assert clean == 8
        # The corrupted source addresses no longer match the NAT's
        # internal prefix: translations collapse.
        assert attacked < clean

    def test_attack_reports_buffers(self):
        result, _, _ = run_packet_corruption_experiment(n_packets=4)
        assert len(result.evidence) == 4

    def test_attack_without_victim_buffers(self):
        nic = LiquidIONIC(n_cores=2)
        nic.install_function(Monitor(), core_id=0)
        result = packet_corruption_attack(nic, victim_nf_id=1, attacker_core_id=1)
        assert not result.succeeded


class TestDPIStealing:
    def test_ruleset_recovered_exactly(self):
        result, original = run_dpi_stealing_experiment(ruleset=b"RULES" * 100)
        assert result.succeeded
        assert result.evidence[0] == b"RULES" * 100

    def test_attack_on_fresh_victim_finds_nothing(self):
        nic = LiquidIONIC(n_cores=2)
        victim = nic.install_function(Monitor(), core_id=0)
        result = dpi_ruleset_stealing_attack(
            nic, victim_nf_id=victim.nf_id, attacker_core_id=1
        )
        assert not result.succeeded

    def test_attacker_only_steals_victim_buffers(self):
        nic = LiquidIONIC(n_cores=3)
        victim = nic.install_function(Monitor(), core_id=0)
        bystander = nic.install_function(Monitor(), core_id=1)
        nic.store_function_data(victim.nf_id, b"victim-data")
        nic.store_function_data(bystander.nf_id, b"bystander")
        result = dpi_ruleset_stealing_attack(
            nic, victim_nf_id=victim.nf_id, attacker_core_id=2
        )
        assert result.evidence == [b"victim-data"]


class TestBusDoS:
    def test_dos_crashes_agilio(self):
        result = bus_dos_attack(AgilioNIC())
        assert result.succeeded
        assert "hard-crashed" in result.details

    def test_gentle_traffic_survives(self):
        nic = AgilioNIC()
        result = bus_dos_attack(nic, max_iterations=10)
        assert not result.succeeded
        assert not nic.crashed
