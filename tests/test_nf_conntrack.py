"""Tests for TCP connection tracking and the strict stateful firewall."""

import pytest

from repro.net.packet import (
    PROTO_UDP,
    Packet,
    TCP_FLAG_ACK,
    TCP_FLAG_FIN,
    TCP_FLAG_RST,
    TCP_FLAG_SYN,
)
from repro.net.rules import RuleTable
from repro.nf import ConnState, ConnectionTracker, StatefulFirewall, Verdict


def tcp(src="10.0.0.1", dst="20.0.0.1", sport=1000, dport=80, flags=TCP_FLAG_ACK):
    packet = Packet.make(src, dst, src_port=sport, dst_port=dport)
    packet.l4.flags = flags
    return packet


def reply(flags):
    return tcp(src="20.0.0.1", dst="10.0.0.1", sport=80, dport=1000, flags=flags)


def handshake(tracker):
    assert tracker.update(tcp(flags=TCP_FLAG_SYN)) is Verdict.NEW
    assert tracker.update(reply(TCP_FLAG_SYN | TCP_FLAG_ACK)) is Verdict.VALID
    assert tracker.update(tcp(flags=TCP_FLAG_ACK)) is Verdict.VALID


class TestHandshake:
    def test_three_way_handshake(self):
        tracker = ConnectionTracker()
        handshake(tracker)
        assert tracker.state_of(tcp().five_tuple) is ConnState.ESTABLISHED

    def test_state_visible_from_both_directions(self):
        tracker = ConnectionTracker()
        handshake(tracker)
        assert tracker.state_of(reply(0).five_tuple) is ConnState.ESTABLISHED

    def test_syn_retransmission_valid(self):
        tracker = ConnectionTracker()
        tracker.update(tcp(flags=TCP_FLAG_SYN))
        assert tracker.update(tcp(flags=TCP_FLAG_SYN)) is Verdict.VALID

    def test_synack_retransmission_valid(self):
        tracker = ConnectionTracker()
        tracker.update(tcp(flags=TCP_FLAG_SYN))
        tracker.update(reply(TCP_FLAG_SYN | TCP_FLAG_ACK))
        assert (
            tracker.update(reply(TCP_FLAG_SYN | TCP_FLAG_ACK)) is Verdict.VALID
        )


class TestInvalidTraffic:
    def test_unsolicited_ack_invalid(self):
        tracker = ConnectionTracker()
        assert tracker.update(tcp(flags=TCP_FLAG_ACK)) is Verdict.INVALID
        assert tracker.invalid_packets == 1

    def test_unsolicited_synack_invalid(self):
        tracker = ConnectionTracker()
        assert (
            tracker.update(tcp(flags=TCP_FLAG_SYN | TCP_FLAG_ACK))
            is Verdict.INVALID
        )

    def test_traffic_after_close_invalid(self):
        tracker = ConnectionTracker()
        handshake(tracker)
        tracker.update(tcp(flags=TCP_FLAG_RST))
        assert tracker.update(tcp(flags=TCP_FLAG_ACK)) is Verdict.INVALID

    def test_udp_untracked(self):
        tracker = ConnectionTracker()
        packet = Packet.make("1.1.1.1", "2.2.2.2", proto=PROTO_UDP,
                             src_port=1, dst_port=2)
        assert tracker.update(packet) is Verdict.VALID
        assert len(tracker) == 0


class TestTeardown:
    def test_fin_fin_closes(self):
        tracker = ConnectionTracker()
        handshake(tracker)
        tracker.update(tcp(flags=TCP_FLAG_FIN | TCP_FLAG_ACK))
        assert tracker.state_of(tcp().five_tuple) is ConnState.FIN_WAIT
        tracker.update(reply(TCP_FLAG_FIN | TCP_FLAG_ACK))
        assert tracker.state_of(tcp().five_tuple) is ConnState.CLOSED

    def test_rst_closes_immediately(self):
        tracker = ConnectionTracker()
        handshake(tracker)
        tracker.update(reply(TCP_FLAG_RST))
        assert tracker.state_of(tcp().five_tuple) is ConnState.CLOSED

    def test_purge_closed(self):
        tracker = ConnectionTracker()
        handshake(tracker)
        tracker.update(tcp(flags=TCP_FLAG_RST))
        assert tracker.purge_closed() == 1
        assert len(tracker) == 0

    def test_eviction_replaces_closed(self):
        tracker = ConnectionTracker(max_connections=1)
        handshake(tracker)
        tracker.update(tcp(flags=TCP_FLAG_RST))
        # A second connection evicts the closed one rather than failing.
        assert tracker.update(tcp(sport=2000, flags=TCP_FLAG_SYN)) is Verdict.NEW
        assert len(tracker) == 1

    def test_table_full_of_live_connections(self):
        tracker = ConnectionTracker(max_connections=1)
        handshake(tracker)
        with pytest.raises(MemoryError):
            tracker.update(tcp(sport=2000, flags=TCP_FLAG_SYN))


class TestStatefulFirewall:
    def test_accepts_proper_connection(self):
        fw = StatefulFirewall(RuleTable())
        assert fw.process(tcp(flags=TCP_FLAG_SYN)) is not None
        assert fw.process(reply(TCP_FLAG_SYN | TCP_FLAG_ACK)) is not None
        assert fw.process(tcp(flags=TCP_FLAG_ACK)) is not None
        assert fw.invalid_drops == 0

    def test_drops_unsolicited_midstream_segment(self):
        """The discipline a plain rule firewall cannot express: even an
        ACCEPT-all ruleset drops out-of-state TCP."""
        fw = StatefulFirewall(RuleTable())
        assert fw.process(tcp(flags=TCP_FLAG_ACK)) is None
        assert fw.invalid_drops == 1

    def test_drops_after_rst(self):
        fw = StatefulFirewall(RuleTable())
        fw.process(tcp(flags=TCP_FLAG_SYN))
        fw.process(reply(TCP_FLAG_SYN | TCP_FLAG_ACK))
        fw.process(tcp(flags=TCP_FLAG_ACK))
        fw.process(tcp(flags=TCP_FLAG_RST))
        assert fw.process(tcp(flags=TCP_FLAG_ACK)) is None

    def test_rule_drop_happens_before_tracking(self):
        from repro.net.rules import MatchRule, PortRange, RuleAction

        rules = RuleTable(
            [MatchRule(dst_ports=PortRange(80, 80), action=RuleAction.DROP)]
        )
        fw = StatefulFirewall(rules)
        assert fw.process(tcp(flags=TCP_FLAG_SYN)) is None
        assert len(fw.conntrack) == 0  # dropped packets are not tracked

    def test_reset_clears_conntrack(self):
        fw = StatefulFirewall(RuleTable())
        fw.process(tcp(flags=TCP_FLAG_SYN))
        fw.reset()
        assert len(fw.conntrack) == 0 and fw.invalid_drops == 0

    def test_state_bytes_includes_connections(self):
        fw = StatefulFirewall(RuleTable())
        before = fw.state_bytes()
        fw.process(tcp(flags=TCP_FLAG_SYN))
        assert fw.state_bytes() > before
