"""Scenario specs: validation, derived seeds, dict/JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.scenario.spec import (
    ArbiterSpec,
    FaultSpec,
    NFSpec,
    ScenarioSpec,
    SpecError,
    TenantSpec,
    TopologySpec,
    TrafficSpec,
    derive_seed,
)


def demo_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="spec-demo",
        seed=11,
        description="round-trip fixture",
        tags=("test",),
        topology=TopologySpec(nic_model="commodity", n_cores=4,
                              arbiter=ArbiterSpec(policy="fcfs")),
        tenants=(
            TenantSpec(name="a", nf=NFSpec(kind="firewall",
                                           params={"rules": 16}),
                       dst_prefix="20.0.0.0/8"),
            TenantSpec(name="b", nf=NFSpec(kind="monitor"),
                       dst_prefix="30.0.0.0/8", dpi_units=1),
        ),
        traffic=TrafficSpec(n_packets=8),
        fault=FaultSpec(kind="bus_babble", start_ns=1_000, count=2),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValidation:
    def test_unknown_nf_kind_rejected(self):
        with pytest.raises(SpecError):
            NFSpec(kind="quantum_router")

    def test_unknown_nic_model_rejected(self):
        with pytest.raises(SpecError):
            TopologySpec(nic_model="fpga")

    def test_unknown_arbiter_rejected(self):
        with pytest.raises(SpecError):
            ArbiterSpec(policy="lottery")

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SpecError):
            FaultSpec(kind="gamma_ray")

    def test_bool_seed_rejected(self):
        with pytest.raises(SpecError):
            demo_spec(seed=True)

    def test_duplicate_tenant_names_rejected(self):
        tenants = (
            TenantSpec(name="a", nf=NFSpec(kind="monitor"),
                       dst_prefix="20.0.0.0/8"),
            TenantSpec(name="a", nf=NFSpec(kind="monitor"),
                       dst_prefix="30.0.0.0/8"),
        )
        with pytest.raises(SpecError):
            demo_spec(tenants=tenants, fault=None)

    def test_core_overcommit_rejected(self):
        tenants = tuple(
            TenantSpec(name=f"t{i}", nf=NFSpec(kind="monitor"),
                       dst_prefix=f"{20 + i}.0.0.0/8", cores=3)
            for i in range(2))
        with pytest.raises(SpecError):
            demo_spec(tenants=tenants, fault=None,
                      topology=TopologySpec(n_cores=4))

    def test_fault_targeting_unknown_tenant_rejected(self):
        with pytest.raises(SpecError):
            demo_spec(fault=FaultSpec(kind="dma_error", tenant="ghost"))


class TestDerivedSeeds:
    def test_derive_seed_is_stable(self):
        # sha256-derived, so stable across processes and PYTHONHASHSEED.
        assert derive_seed(7, "nf", "fw") == derive_seed(7, "nf", "fw")
        assert derive_seed(7, "nf", "fw") != derive_seed(7, "nf", "mon")
        assert derive_seed(7, "nf", "fw") != derive_seed(8, "nf", "fw")

    def test_sub_seed_uses_spec_seed_and_name(self):
        spec = demo_spec()
        assert spec.sub_seed("traffic") == \
            derive_seed(11, "spec-demo", "traffic")
        assert demo_spec(seed=12).sub_seed("traffic") != \
            spec.sub_seed("traffic")


class TestRoundTrip:
    def test_dict_round_trip_identity(self):
        spec = demo_spec()
        data = spec.to_dict()
        assert ScenarioSpec.from_dict(data) == spec
        assert ScenarioSpec.from_dict(data).to_dict() == data

    def test_json_round_trip_identity(self):
        spec = demo_spec()
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(data) == spec

    def test_faultless_spec_round_trips(self):
        spec = demo_spec(fault=None)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = demo_spec().to_dict()
        data["flux_capacitor"] = 1.21
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(data)

    def test_from_dict_requires_seed(self):
        data = demo_spec().to_dict()
        del data["seed"]
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(data)

    def test_params_render_as_dict_but_hash_as_tuple(self):
        nf = NFSpec(kind="firewall", params={"rules": 16})
        assert nf.to_dict()["params"] == {"rules": 16}
        assert nf.param("rules") == 16
        assert nf.param("missing", 5) == 5
        hash(nf)  # frozen + tuple-backed params stay hashable


class TestTenantSLO:
    def _slo_dict(self):
        return {"objectives": [
            {"kind": "p99_latency_ns", "threshold": 5000.0, "target": 0.99},
            {"kind": "interference_budget_ns", "threshold": 0.0,
             "target": 1.0},
        ]}

    def test_slo_dict_coerced_to_tenant_slo(self):
        from repro.obs.slo import TenantSLO

        tenant = TenantSpec(name="a", nf=NFSpec(kind="monitor"),
                            dst_prefix="20.0.0.0/8", slo=self._slo_dict())
        assert isinstance(tenant.slo, TenantSLO)
        assert tenant.slo.objective("p99_latency_ns").threshold == 5000.0

    def test_bad_slo_names_the_tenant(self):
        with pytest.raises(SpecError, match="tenant 'a'"):
            TenantSpec(name="a", nf=NFSpec(kind="monitor"),
                       dst_prefix="20.0.0.0/8",
                       slo={"objectives": [
                           {"kind": "availability", "threshold": 0.999}]})

    def test_slo_round_trips_through_json(self):
        tenants = (
            TenantSpec(name="a", nf=NFSpec(kind="monitor"),
                       dst_prefix="20.0.0.0/8", slo=self._slo_dict()),
            TenantSpec(name="b", nf=NFSpec(kind="monitor"),
                       dst_prefix="30.0.0.0/8"),
        )
        spec = demo_spec(tenants=tenants, fault=None)
        data = json.loads(json.dumps(spec.to_dict()))
        clone = ScenarioSpec.from_dict(data)
        assert clone == spec
        assert clone.tenants[0].slo == spec.tenants[0].slo
        assert clone.tenants[1].slo is None


class TestL2Ways:
    def test_l2_ways_round_trips(self):
        topo = TopologySpec(nic_model="snic", n_cores=4,
                            arbiter=ArbiterSpec(policy="temporal"),
                            l2_ways=12)
        spec = demo_spec(topology=topo)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_l2_ways_floor_enforced(self):
        with pytest.raises(SpecError, match="l2_ways"):
            TopologySpec(nic_model="snic", n_cores=4, l2_ways=1)
