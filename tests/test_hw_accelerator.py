"""Tests for accelerator engines, clusters, and the contention channel."""

import pytest

from repro.hw.accelerator import (
    AcceleratorCluster,
    AcceleratorEngine,
    AcceleratorKind,
    AcceleratorRequest,
    FRONTEND_DISPATCH_RATE_RPS,
    ServiceModel,
    _ThreadPool,
)
from repro.hw.memory import AccessFault


class TestServiceModel:
    def test_linear_in_bytes(self):
        model = ServiceModel(setup_ns=100.0, ns_per_byte=2.0)
        assert model.service_ns(50) == pytest.approx(200.0)

    def test_zero_bytes_costs_setup(self):
        assert ServiceModel(100.0, 2.0).service_ns(0) == 100.0


class TestThreadPool:
    def test_parallel_service(self):
        pool = _ThreadPool(2)
        a = pool.serve(0.0, 100.0)
        b = pool.serve(0.0, 100.0)
        assert a == b == 100.0  # two threads run concurrently

    def test_queueing_beyond_threads(self):
        pool = _ThreadPool(1)
        pool.serve(0.0, 100.0)
        assert pool.serve(0.0, 100.0) == 200.0

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            _ThreadPool(0)


class TestSharedEngine:
    def test_contention_side_channel(self):
        """Agilio-style shared accelerator: a victim's latency reveals
        whether a co-tenant was using the engine (§3.2)."""
        quiet = AcceleratorEngine(AcceleratorKind.CRYPTO, n_threads=1)
        request = AcceleratorRequest(owner=2, n_bytes=100, issue_ns=0.0)
        quiet.submit_shared(request)
        quiet_latency = request.latency_ns

        noisy = AcceleratorEngine(AcceleratorKind.CRYPTO, n_threads=1)
        noisy.submit_shared(AcceleratorRequest(owner=1, n_bytes=100_000, issue_ns=0.0))
        request = AcceleratorRequest(owner=2, n_bytes=100, issue_ns=0.0)
        noisy.submit_shared(request)
        assert request.latency_ns > quiet_latency

    def test_work_callback_runs(self):
        engine = AcceleratorEngine(AcceleratorKind.DPI)
        request = AcceleratorRequest(
            owner=1, n_bytes=10, issue_ns=0.0, work=lambda: "matched"
        )
        engine.submit_shared(request)
        assert request.result == "matched"

    def test_split_disables_shared_path(self):
        engine = AcceleratorEngine(AcceleratorKind.DPI, n_threads=64)
        engine.split_clusters(16)
        with pytest.raises(AccessFault):
            engine.submit_shared(AcceleratorRequest(owner=1, n_bytes=1, issue_ns=0.0))


class TestClusters:
    def test_split_geometry(self):
        engine = AcceleratorEngine(AcceleratorKind.DPI, n_threads=64)
        clusters = engine.split_clusters(16)
        assert len(clusters) == 4
        assert all(c.n_threads == 16 for c in clusters)

    def test_split_requires_divisibility(self):
        engine = AcceleratorEngine(AcceleratorKind.DPI, n_threads=64)
        with pytest.raises(ValueError):
            engine.split_clusters(48)

    def test_allocate_and_ownership(self):
        engine = AcceleratorEngine(AcceleratorKind.ZIP, n_threads=64)
        engine.split_clusters(16)
        chosen = engine.allocate_clusters(nf_id=7, count=2)
        assert all(c.owner == 7 for c in chosen)
        assert len(engine.free_clusters()) == 2

    def test_allocate_insufficient(self):
        engine = AcceleratorEngine(AcceleratorKind.ZIP, n_threads=64)
        engine.split_clusters(16)
        engine.allocate_clusters(nf_id=1, count=3)
        with pytest.raises(AccessFault):
            engine.allocate_clusters(nf_id=2, count=2)

    def test_double_bind_rejected(self):
        cluster = AcceleratorCluster(AcceleratorKind.DPI, 0, n_threads=4)
        cluster.bind(1)
        with pytest.raises(AccessFault):
            cluster.bind(2)

    def test_foreign_request_rejected(self):
        cluster = AcceleratorCluster(AcceleratorKind.DPI, 0, n_threads=4)
        cluster.bind(1)
        with pytest.raises(AccessFault):
            cluster.submit(AcceleratorRequest(owner=2, n_bytes=10, issue_ns=0.0))

    def test_unbind_resets(self):
        cluster = AcceleratorCluster(AcceleratorKind.DPI, 0, n_threads=4)
        cluster.bind(1)
        cluster.submit(AcceleratorRequest(owner=1, n_bytes=10, issue_ns=0.0))
        cluster.unbind()
        assert cluster.owner is None
        assert cluster.completed == 0
        assert not cluster.tlb.locked

    def test_isolated_latency_independent_of_other_clusters(self):
        """S-NIC's fix: per-NF clusters see no cross-tenant contention."""
        engine = AcceleratorEngine(AcceleratorKind.CRYPTO, n_threads=8)
        mine, other = engine.split_clusters(4)[:2]
        mine.bind(1)
        other.bind(2)
        other.submit(AcceleratorRequest(owner=2, n_bytes=1_000_000, issue_ns=0.0))
        request = mine.submit(AcceleratorRequest(owner=1, n_bytes=100, issue_ns=0.0))
        expected = mine.service.service_ns(100)
        assert request.latency_ns == pytest.approx(expected)


class TestThroughputModel:
    def _cluster(self, threads):
        return AcceleratorCluster(AcceleratorKind.DPI, 0, n_threads=threads)

    def test_small_frames_hit_frontend_cap(self):
        cluster = self._cluster(threads=16)
        assert cluster.throughput_mpps(64) == pytest.approx(
            FRONTEND_DISPATCH_RATE_RPS / 1e6
        )

    def test_large_frames_scale_with_threads(self):
        small = self._cluster(threads=16).throughput_mpps(9000)
        large = self._cluster(threads=48).throughput_mpps(9000)
        assert large == pytest.approx(3 * small)

    def test_throughput_decreases_with_frame_size(self):
        cluster = self._cluster(threads=16)
        rates = [cluster.throughput_mpps(size) for size in (64, 512, 1500, 9000)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
