"""Micro-tests for the disabled-tracer fast path.

The tracing discipline (see :mod:`repro.obs.tracer`) promises that a
disabled tracer costs one attribute load and a falsy branch on the hot
path — no event allocation, no clock read.  These tests pin that down
two ways: a real scenario run with tracing off must record *zero*
events, and a timed hot loop against the disabled tracer must stay
within a few percent of the same loop against a tracer-free stub.
"""

from __future__ import annotations

from time import perf_counter_ns

from repro.core import NFConfig, NICOS, SNIC
from repro.core.runtime import SNICRuntime
from repro.core.vpp import VPPConfig
from repro.net.packet import Packet
from repro.net.rules import MatchRule
from repro.nf import Monitor
from repro.obs import get_tracer
from repro.obs.tracer import Tracer

MB = 1024 * 1024


def run_small_scenario(n_packets: int = 10):
    snic = SNIC(n_cores=2, dram_bytes=64 * MB, key_seed=5)
    nic_os = NICOS(snic)
    vnic = nic_os.NF_create(NFConfig(
        name="mon", core_ids=(0,), memory_bytes=4 * MB,
        vpp=VPPConfig(rules=[MatchRule()])))
    runtime = SNICRuntime(snic)
    runtime.attach(vnic.nf_id, Monitor())
    packets = []
    for i in range(n_packets):
        p = Packet.make("10.0.0.1", "20.0.0.1", src_port=1000 + i,
                        dst_port=80)
        p.arrival_ns = (i + 1) * 1_000
        packets.append(p)
    runtime.inject(packets)
    stats = runtime.run()
    nic_os.NF_destroy(vnic.nf_id)
    return stats


class TestDisabledPathAllocatesNothing:
    def test_full_scenario_records_zero_events(self):
        tracer = get_tracer()
        tracer.disable()
        tracer.clear()
        stats = run_small_scenario()
        assert stats.completed == 10
        # The hot layers (cores, cache, bus, dma, accelerators, runtime,
        # NIC OS lifecycle) all ran — and allocated no trace events.
        assert len(tracer.events) == 0

    def test_disabled_span_is_one_shared_object(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("x", tenant=1)
        b = tracer.span("y", tenant=2, track="other")
        assert a is b  # shared no-op singleton: zero per-call allocation

    def test_disabled_complete_and_instant_record_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.complete("op", ts_ns=0, dur_ns=5, tenant=1)
        tracer.instant("mark", tenant=1)
        tracer.counter_sample("v", 1.0)
        assert tracer.events == []


class _StubSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_STUB_SPAN = _StubSpan()


class _StubTracer:
    """Tracer-free baseline: same interface, no enabled check beyond
    the one the hot-path discipline itself performs."""

    enabled = False

    def complete(self, name, ts_ns, dur_ns, **kw):
        raise AssertionError("stub must never record")


def hot_loop(tracer, n: int) -> int:
    """A hot loop instrumented exactly like the simulation layers:
    ``if tracer.enabled:`` guarding every emission."""
    acc = 0
    for i in range(n):
        if tracer.enabled:
            tracer.complete("op", i, 10.0, tenant=1, track="t", cat="core")
        acc += (i * 3) ^ (i >> 2)
    return acc


class TestDisabledPathTiming:
    def test_disabled_tracer_within_5pct_of_stub(self):
        real = Tracer(enabled=False)
        stub = _StubTracer()
        n = 50_000

        # Warm up both paths so the comparison sees steady-state code.
        hot_loop(real, n)
        hot_loop(stub, n)

        # Interleaved min-of-N: alternate the two variants within each
        # round so scheduler noise hits both equally; the minimum over
        # rounds estimates the noise-free cost of each path.  Retry the
        # whole measurement a few times before declaring failure so one
        # noisy CI machine burst cannot flake the suite.
        for attempt in range(4):
            best_real = best_stub = float("inf")
            for _ in range(9):
                t0 = perf_counter_ns()
                hot_loop(real, n)
                best_real = min(best_real, perf_counter_ns() - t0)
                t0 = perf_counter_ns()
                hot_loop(stub, n)
                best_stub = min(best_stub, perf_counter_ns() - t0)
            if best_real <= best_stub * 1.05:
                break
        assert best_real <= best_stub * 1.05, (
            f"disabled tracer {best_real} ns vs stub {best_stub} ns "
            f"({100.0 * (best_real / best_stub - 1.0):+.1f}%)")

    def test_enabled_tracer_actually_records_in_same_loop(self):
        # Sanity check that the loop above is really on the emit path.
        tracer = Tracer(enabled=True)
        hot_loop(tracer, 100)
        assert len(tracer.events) == 100


class _StubFlight:
    """Flight-recorder-free baseline: same guard attribute, no hooks."""

    enabled = False

    def record(self, kind, name, **kw):
        raise AssertionError("stub must never record")


def flight_hot_loop(flight, n: int) -> int:
    """A hot loop instrumented exactly like the audit/flight hooks:
    ``if flight.enabled:`` guarding every emission."""
    acc = 0
    for i in range(n):
        if flight.enabled:
            flight.record("audit", "memory.scrub", ts_ns=float(i),
                          tenant=1, args={"pages": 4})
        acc += (i * 3) ^ (i >> 2)
    return acc


class TestDisabledFlightRecorder:
    def test_disabled_recorder_records_nothing(self):
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder()
        flight_hot_loop(flight, 100)
        flight.record("audit", "x")
        flight.note_metrics()
        assert len(flight) == 0

    def test_disabled_recorder_within_5pct_of_stub(self):
        """The flight recorder inherits the tracer's overhead contract:
        disabled, its guard is one attribute load and a falsy branch."""
        from repro.obs.flight import FlightRecorder

        real = FlightRecorder()
        stub = _StubFlight()
        n = 50_000

        flight_hot_loop(real, n)
        flight_hot_loop(stub, n)

        # Same interleaved min-of-N + retry discipline as the tracer
        # bound above.
        for attempt in range(4):
            best_real = best_stub = float("inf")
            for _ in range(9):
                t0 = perf_counter_ns()
                flight_hot_loop(real, n)
                best_real = min(best_real, perf_counter_ns() - t0)
                t0 = perf_counter_ns()
                flight_hot_loop(stub, n)
                best_stub = min(best_stub, perf_counter_ns() - t0)
            if best_real <= best_stub * 1.05:
                break
        assert best_real <= best_stub * 1.05, (
            f"disabled flight recorder {best_real} ns vs stub "
            f"{best_stub} ns "
            f"({100.0 * (best_real / best_stub - 1.0):+.1f}%)")

    def test_enabled_recorder_actually_records_in_same_loop(self):
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder(capacity=1024)
        flight.enable()
        flight_hot_loop(flight, 100)
        assert len(flight) == 100

    def test_inactive_audit_emitter_is_one_attribute_load(self):
        """The instrumentation sites guard with ``if _AUDIT.active:`` —
        with both sinks off the flag is plain False (no property, no
        call)."""
        from repro.obs.auditlog import AuditEmitter, get_emitter

        emitter = get_emitter()
        assert emitter.active is False
        assert "active" in AuditEmitter.__slots__
