"""Tests for the mini-McPAT model, profiles, Figure 7, and TCO —
asserting the paper's published numbers (Tables 2–4, 6–8, §5.2)."""

import pytest

from repro.cost.mcpat import (
    A9_BASELINE,
    CORE_TLB_CAL,
    IO_TLB_CAL,
    TLBCostModel,
    snic_headline_overheads,
)
from repro.cost.pages import EQUAL_MENU, FLEX_HIGH_MENU, FLEX_LOW_MENU, MB
from repro.cost.profiles import (
    ACCEL_PROFILES,
    DMA_REGIONS,
    MonitorMemoryModel,
    NF_PROFILES,
    VPP_REGIONS,
    mur_table,
)
from repro.cost.pages import entries_for
from repro.cost.tco import (
    LIQUIDIO_12CORE,
    XEON_E5_2680V3,
    paper_tco_analysis,
)


@pytest.fixture
def model():
    return TLBCostModel()


class TestTable2:
    """Programmable-core TLB costs (4-core column, exact fit points)."""

    @pytest.mark.parametrize(
        "entries,area,power",
        [(183, 0.045, 0.026), (256, 0.060, 0.035), (512, 0.163, 0.088)],
    )
    def test_four_core_points(self, model, entries, area, power):
        got_area, got_power = model.core_tlbs(entries, 4)
        assert got_area == pytest.approx(area, abs=0.001)
        assert got_power == pytest.approx(power, abs=0.001)

    def test_scales_linearly_with_cores(self, model):
        area4, power4 = model.core_tlbs(256, 4)
        area48, power48 = model.core_tlbs(256, 48)
        assert area48 == pytest.approx(12 * area4)
        assert power48 == pytest.approx(12 * power4)

    def test_48_core_monitor_row(self, model):
        area, power = model.core_tlbs(183, 48)
        assert area == pytest.approx(0.538, abs=0.005)
        assert power == pytest.approx(0.311, abs=0.005)

    def test_relative_overheads(self, model):
        # The parenthesised 4-core percentages: 0.90% area, 1.36% power
        # at 183 entries; 3.19% / 4.45% at 512.
        rel_area, rel_power = model.core_tlbs_relative(183)
        assert rel_area == pytest.approx(0.0090, abs=0.0002)
        assert rel_power == pytest.approx(0.0136, abs=0.0003)
        rel_area, rel_power = model.core_tlbs_relative(512)
        assert rel_area == pytest.approx(0.0319, abs=0.0003)
        assert rel_power == pytest.approx(0.0445, abs=0.0005)

    def test_baseline_consistency(self):
        # All Table 2 rows back out the same A9 baseline.
        assert A9_BASELINE.area_mm2 == pytest.approx(4.939)
        assert A9_BASELINE.power_w == pytest.approx(1.883)

    def test_monotone_in_entries(self, model):
        areas = [model.core_tlbs(n, 4)[0] for n in (64, 128, 256, 512)]
        assert areas == sorted(areas)

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            CORE_TLB_CAL.bank_area_mm2(0)


class TestTable3:
    """Accelerator TLB banks (16-cluster column)."""

    @pytest.mark.parametrize(
        "name,entries,area,power",
        [("DPI", 54, 0.074, 0.037), ("ZIP", 70, 0.091, 0.044), ("RAID", 5, 0.050, 0.023)],
    )
    def test_sixteen_cluster_points(self, model, name, entries, area, power):
        got_area, got_power = model.io_tlb_banks(entries, 16)
        assert got_area == pytest.approx(area, abs=0.001)
        assert got_power == pytest.approx(power, abs=0.001)

    def test_fewer_clusters_cost_less(self, model):
        a16 = model.io_tlb_banks(54, 16)[0]
        a4 = model.io_tlb_banks(54, 4)[0]
        assert a4 == pytest.approx(a16 / 4)

    def test_raid_hits_bank_floor(self):
        # RAID's 5 entries land on the minimum-bank cost.
        assert IO_TLB_CAL.bank_area_mm2(5) == IO_TLB_CAL.area_floor_mm2


class TestTable4:
    """VPP + DMA TLB banks; 2 and 3 entries cost the same (floor)."""

    def test_twelve_bank_row(self, model):
        for entries in (2, 3):
            area, power = model.io_tlb_banks(entries, 12)
            assert area == pytest.approx(0.037, abs=0.001)
            assert power == pytest.approx(0.017, abs=0.001)

    def test_two_equals_three_entries(self, model):
        assert model.io_tlb_banks(2, 12) == model.io_tlb_banks(3, 12)

    @pytest.mark.parametrize("banks,area", [(12, 0.037), (6, 0.019), (3, 0.009)])
    def test_bank_scaling(self, model, banks, area):
        assert model.io_tlb_banks(3, banks)[0] == pytest.approx(area, abs=0.001)


class TestHeadline:
    def test_area_and_power_overheads(self):
        """§5.2: '+8.89% more chip area and 11.45% more power'."""
        results = snic_headline_overheads()
        assert results["area_overhead_pct"] == pytest.approx(8.89, abs=0.15)
        assert results["power_overhead_pct"] == pytest.approx(11.45, abs=0.15)

    def test_components_match_paper_sections(self):
        results = snic_headline_overheads()
        # Accelerators: "up to 4.2% more die area and 5.3% more power".
        base_area = A9_BASELINE.area_mm2 + results["core_tlb_area_mm2"]
        assert results["accel_tlb_area_mm2"] / base_area == pytest.approx(
            0.042, abs=0.002
        )
        # VPP+DMA: "1.5% increase in chip area, and 1.7% additional power".
        assert results["vpp_dma_area_mm2"] / base_area == pytest.approx(
            0.015, abs=0.001
        )


class TestTable6:
    PAPER_ENTRIES = {
        "FW": (11, 34, 11),
        "DPI": (28, 51, 13),
        "NAT": (25, 37, 10),
        "LB": (10, 22, 10),
        "LPM": (37, 23, 7),
        "Mon": (183, 46, 12),
    }

    @pytest.mark.parametrize("name", list(PAPER_ENTRIES))
    def test_equal_menu_entries_exact(self, name):
        assert NF_PROFILES[name].tlb_entries(EQUAL_MENU) == self.PAPER_ENTRIES[name][0]

    @pytest.mark.parametrize("name", list(PAPER_ENTRIES))
    def test_flex_low_entries(self, name):
        got = NF_PROFILES[name].tlb_entries(FLEX_LOW_MENU)
        # FW is one below the paper's 34 (a rounding artifact in the
        # paper's profile); every other NF is exact.
        assert abs(got - self.PAPER_ENTRIES[name][1]) <= 1

    @pytest.mark.parametrize("name", list(PAPER_ENTRIES))
    def test_flex_high_entries_exact(self, name):
        assert (
            NF_PROFILES[name].tlb_entries(FLEX_HIGH_MENU)
            == self.PAPER_ENTRIES[name][2]
        )

    def test_totals(self):
        assert NF_PROFILES["FW"].total / MB == pytest.approx(17.20, abs=0.01)
        # The paper's own components sum to 360.53 (its total rounds up).
        assert NF_PROFILES["Mon"].total / MB == pytest.approx(360.54, abs=0.02)

    def test_monitor_is_largest(self):
        assert max(NF_PROFILES.values(), key=lambda p: p.total).name == "Mon"

    def test_table5_max_entries(self):
        """Table 5: the worst NF needs 183 / 51 / 13 entries under
        Equal / Flex-low / Flex-high."""
        assert max(p.tlb_entries(EQUAL_MENU) for p in NF_PROFILES.values()) == 183
        assert max(p.tlb_entries(FLEX_LOW_MENU) for p in NF_PROFILES.values()) == 51
        assert max(p.tlb_entries(FLEX_HIGH_MENU) for p in NF_PROFILES.values()) == 13


class TestTable7:
    PAPER = {"DPI": (101.90, 54), "ZIP": (132.24, 70), "RAID": (8.13, 5)}

    @pytest.mark.parametrize("name", list(PAPER))
    def test_totals_and_entries(self, name):
        profile = ACCEL_PROFILES[name]
        total_mb, entries = self.PAPER[name]
        assert profile.total / MB == pytest.approx(total_mb, abs=0.02)
        assert profile.tlb_entries(EQUAL_MENU) == entries

    def test_vpp_needs_three_entries(self):
        assert entries_for(VPP_REGIONS, EQUAL_MENU) == 3

    def test_dma_needs_two_entries(self):
        assert entries_for(DMA_REGIONS, EQUAL_MENU) == 2


class TestTable8:
    PAPER_MUR = {
        "FW": 1.000, "DPI": 1.000, "NAT": 0.723,
        "LB": 0.302, "LPM": 1.000, "Mon": 0.683,
    }

    @pytest.mark.parametrize("name", list(PAPER_MUR))
    def test_murs(self, name):
        assert NF_PROFILES[name].mur == pytest.approx(
            self.PAPER_MUR[name], abs=0.005
        )

    def test_mur_table_rows(self):
        rows = mur_table()
        assert rows["NAT"]["used_mb"] == pytest.approx(31.72, abs=0.01)
        assert rows["LB"]["prealloc_mb"] == pytest.approx(13.80, abs=0.01)


class TestFigure7:
    def test_calibration_targets(self):
        summary = MonitorMemoryModel().summary()
        assert summary["prealloc_min_mb"] == pytest.approx(360.54, abs=0.5)
        assert summary["steady_mb"] == pytest.approx(246.31, abs=0.5)

    def test_series_shape(self):
        model = MonitorMemoryModel()
        series = model.series()
        times = [t for t, _ in series]
        assert times[0] == 0.0 and times[-1] >= model.duration_s - 1
        values = [m for _, m in series]
        # Spiky staircase: the max exceeds the final steady state.
        assert max(values) > values[-1]

    def test_multiple_resizes(self):
        assert len(MonitorMemoryModel().resize_times()) >= 3

    def test_hugepage_spike_present(self):
        model = MonitorMemoryModel()
        series = dict(model.series(step_s=0.5))
        during = series[model.hugepage_init_at_s + 0.5]
        after = series[model.hugepage_init_at_s + 2.0]
        assert during > after  # the transient doubling

    def test_inconsistent_targets_rejected(self):
        with pytest.raises(ValueError):
            MonitorMemoryModel(steady_target_mb=100.0, peak_target_mb=400.0)


class TestTCO:
    def test_per_core_tcos(self):
        """§5.2: $38.97 (LiquidIO), $163.56 (host), $42.53 (S-NIC)."""
        results = paper_tco_analysis().results()
        assert results["nic_tco_per_core"] == pytest.approx(38.97, abs=0.05)
        assert results["host_tco_per_core"] == pytest.approx(163.56, abs=0.05)
        assert results["snic_tco_per_core"] == pytest.approx(42.53, abs=0.05)

    def test_advantage_reduction(self):
        """§5.2: 'decreases TCO advantage by up to 8.37%' / '91.6%'."""
        results = paper_tco_analysis().results()
        assert results["advantage_reduction_pct"] == pytest.approx(8.37, abs=0.1)
        assert results["benefit_preserved_pct"] == pytest.approx(91.6, abs=0.1)

    def test_device_constants(self):
        assert LIQUIDIO_12CORE.power_w == 24.7
        assert XEON_E5_2680V3.price_usd == 1745.0

    def test_energy_cost(self):
        # 24.7 W for 3 years at $0.0733/kWh ≈ $47.6.
        assert LIQUIDIO_12CORE.energy_cost_usd() == pytest.approx(47.62, abs=0.1)

    def test_overheads_raise_tco(self):
        snic = LIQUIDIO_12CORE.with_snic_overheads(8.89, 11.45)
        assert snic.tco_per_core() > LIQUIDIO_12CORE.tco_per_core()
        assert snic.power_w == pytest.approx(24.7 * 1.1145)
