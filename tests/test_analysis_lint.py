"""The lint engine: rules fire on the seeded fixture, the repo is clean,
suppressions and output formats behave."""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    LintEngine,
    ModuleSource,
    call_name,
    default_rules,
    format_github,
    format_json,
    format_text,
    main as lint_main,
    module_name_for,
    receiver_token,
    run_lint,
    source_root,
)

FIXTURE = Path(__file__).parent / "fixtures" / "lint_violations.py"

ALL_RULES = {"SNIC001", "SNIC002", "SNIC003", "SNIC004", "SNIC005",
             "SNIC006", "SNIC007", "SNIC008", "SNIC011"}


def lint_source(text: str, modname: str = "scratch") -> list:
    """Run every rule over an in-memory module (no suppressions applied
    unless present in the text)."""
    module = ModuleSource(path=Path(f"{modname}.py"), modname=modname,
                         text=text, tree=ast.parse(text),
                         lines=text.splitlines())
    findings = []
    for rule in default_rules():
        for finding in rule.check(module):
            silenced = module.suppressed_rules_at(finding.line)
            if silenced is not None and (
                    not silenced or finding.rule in silenced):
                finding.suppressed = True
            findings.append(finding)
    return findings


# ----------------------------------------------------------------------
# The acceptance criteria: fixture dirty, repo clean
# ----------------------------------------------------------------------

class TestSeededFixture:
    def test_every_rule_fires_on_the_fixture(self):
        engine = LintEngine()
        findings = engine.lint_file(FIXTURE)
        fired = {f.rule for f in findings if not f.suppressed}
        assert fired == ALL_RULES

    def test_fixture_exit_code_is_nonzero(self):
        _findings, code = run_lint([FIXTURE])
        assert code == 1

    def test_findings_carry_hints_and_positions(self):
        findings, _ = run_lint([FIXTURE])
        for f in findings:
            assert f.rule in ALL_RULES
            assert f.line >= 1 and f.col >= 1
            assert f.hint, f"rule {f.rule} must ship a fix-it hint"


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        findings, code = run_lint()
        active = [f for f in findings if not f.suppressed]
        assert code == 0, "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}" for f in active)

    def test_repo_suppressions_are_justified(self):
        """Every suppression in the tree carries prose beyond the tag."""
        findings, _ = run_lint()
        suppressed = [f for f in findings if f.suppressed]
        assert suppressed, "expected justified suppressions in the tree"
        for f in suppressed:
            lines = Path(f.path).read_text().splitlines()
            block = " ".join(lines[max(0, f.line - 4):f.line])
            assert "snic: ignore" in block


# ----------------------------------------------------------------------
# Individual rules on minimal sources
# ----------------------------------------------------------------------

class TestRuleBehaviour:
    def test_snic001_whitelisted_module_is_exempt(self):
        text = "def f(mem):\n    mem.claim_pages(1, [0])\n"
        findings = lint_source(text, modname="repro.hw.mmu")
        assert not [f for f in findings if f.rule == "SNIC001"]
        findings = lint_source(text, modname="repro.core.runtime")
        assert [f for f in findings if f.rule == "SNIC001"]

    def test_snic001_commodity_prefix_is_excluded(self):
        text = "def f(memory):\n    memory.read(0, 8)\n"
        findings = lint_source(text, modname="repro.commodity.attacks")
        assert not [f for f in findings if f.rule == "SNIC001"]

    def test_snic001_ignores_non_memory_receivers(self):
        text = "def f(sock):\n    sock.read(0, 8)\n"
        assert not [f for f in lint_source(text) if f.rule == "SNIC001"]

    def test_snic002_seeded_rng_is_fine(self):
        clean = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert not [f for f in lint_source(clean) if f.rule == "SNIC002"]
        dirty = "import random\nx = random.random()\n"
        assert [f for f in lint_source(dirty) if f.rule == "SNIC002"]

    def test_snic002_set_iteration_into_schedule(self):
        text = textwrap.dedent("""
            def f(sim, items):
                for item in set(items):
                    sim.schedule(1, item)
                for item in sorted(set(items)):
                    sim.schedule(1, item)
        """)
        findings = [f for f in lint_source(text) if f.rule == "SNIC002"]
        assert len(findings) == 1  # the sorted() loop is the fix

    def test_snic003_callback_global_write(self):
        text = textwrap.dedent("""
            COUNT = 0
            def cb():
                global COUNT
                COUNT += 1
            def arm(sim):
                sim.schedule(5, cb)
        """)
        assert [f for f in lint_source(text) if f.rule == "SNIC003"]

    def test_snic003_unscheduled_global_write_not_flagged(self):
        text = textwrap.dedent("""
            COUNT = 0
            def not_a_callback():
                global COUNT
                COUNT += 1
        """)
        assert not [f for f in lint_source(text) if f.rule == "SNIC003"]

    def test_snic004_explicit_tenant_none_is_sanctioned(self):
        dirty = "def f(tracer):\n    tracer.instant('x')\n"
        clean = "def f(tracer):\n    tracer.instant('x', tenant=None)\n"
        assert [f for f in lint_source(dirty) if f.rule == "SNIC004"]
        assert not [f for f in lint_source(clean) if f.rule == "SNIC004"]

    def test_snic004_interference_metric_needs_both_edges(self):
        victim_only = ("def f(registry):\n"
                       "    registry.counter('interference_wait_ns_total',\n"
                       "                     resource='bus', tenant=1)\n")
        findings = [f for f in lint_source(victim_only)
                    if f.rule == "SNIC004"]
        assert findings and "culprit=" in findings[0].message

        neither = ("def f(registry):\n"
                   "    registry.counter('interference_events_total',\n"
                   "                     resource='bus')\n")
        findings = [f for f in lint_source(neither) if f.rule == "SNIC004"]
        assert findings
        assert "tenant=" in findings[0].message
        assert "culprit=" in findings[0].message

        both = ("def f(registry):\n"
                "    registry.counter('interference_wait_ns_total',\n"
                "                     resource='bus', tenant=1, culprit=2)\n")
        assert not [f for f in lint_source(both) if f.rule == "SNIC004"]

    def test_snic004_non_interference_mint_only_needs_tenant(self):
        text = ("def f(registry):\n"
                "    registry.counter('bytes_total', tenant=1)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC004"]

    def test_snic004_slo_metric_rejects_tenant_none(self):
        none_tenant = ("def f(registry):\n"
                       "    registry.histogram('slo_latency_ns',\n"
                       "                       tenant=None)\n")
        findings = [f for f in lint_source(none_tenant)
                    if f.rule == "SNIC004"]
        assert findings and "slo_latency_ns" in findings[0].message

        missing = ("def f(registry):\n"
                   "    registry.counter('slo_alerts_total')\n")
        findings = [f for f in lint_source(missing) if f.rule == "SNIC004"]
        assert findings and "slo_alerts_total" in findings[0].message

        real = ("def f(registry, nf_id):\n"
                "    registry.histogram('slo_latency_ns', tenant=nf_id)\n")
        assert not [f for f in lint_source(real) if f.rule == "SNIC004"]

    def test_snic005_float_delay(self):
        dirty = "def f(sim, ns):\n    sim.schedule(ns / 2, f)\n"
        clean = "def f(sim, ns):\n    sim.schedule(ns // 2, f)\n"
        assert [f for f in lint_source(dirty) if f.rule == "SNIC005"]
        assert not [f for f in lint_source(clean) if f.rule == "SNIC005"]

    def test_snic006_unseeded_random_in_fault_module(self):
        dirty = "import random\nrng = random.Random()\n"
        findings = lint_source(dirty, modname="repro.faults.plan")
        assert [f for f in findings if f.rule == "SNIC006"]
        seeded = "import random\nrng = random.Random(7)\n"
        findings = lint_source(seeded, modname="repro.faults.plan")
        assert not [f for f in findings if f.rule == "SNIC006"]

    def test_snic006_module_level_random_in_chaos_function(self):
        text = ("import random\n"
                "def chaos_delay():\n"
                "    return random.seed(1)\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC006"]
        assert findings and "process-global" in findings[0].message

    def test_snic006_out_of_scope_code_is_exempt(self):
        text = ("import random\n"
                "def default_delay():\n"
                "    return random.Random()\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC006"]

    def test_snic006_plan_rng_draws_are_fine(self):
        text = ("def fault_jitter(plan):\n"
                "    return plan.rng.randint(0, 10)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC006"]

    def test_snic007_spec_without_seed_fires_anywhere(self):
        # Call-site explicitness is not scope-limited.
        text = ("from repro.scenario.spec import ScenarioSpec\n"
                "def make():\n"
                "    return ScenarioSpec(name='demo')\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC007"]
        assert findings and "seed" in findings[0].message

    def test_snic007_explicit_seed_is_clean(self):
        text = ("from repro.scenario.spec import ScenarioSpec\n"
                "def make():\n"
                "    return ScenarioSpec(name='demo', seed=7)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC007"]

    def test_snic007_kwargs_spread_assumed_seeded(self):
        text = ("from repro.scenario.spec import ScenarioSpec\n"
                "def make(fields):\n"
                "    return ScenarioSpec(**fields)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC007"]

    def test_snic007_wall_clock_in_scenario_module(self):
        text = ("import time\n"
                "def stamp(report):\n"
                "    report['at'] = time.strftime('%H:%M')\n")
        findings = lint_source(text, modname="repro.scenario.matrix")
        assert [f for f in findings if f.rule == "SNIC007"]

    def test_snic007_wall_clock_in_scenario_function(self):
        text = ("import time\n"
                "def run_scenario():\n"
                "    return time.perf_counter()\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC007"]
        assert findings and "wall-clock" in findings[0].message

    def test_snic007_wall_clock_out_of_scope_is_exempt(self):
        text = ("import time\n"
                "def default_stamp():\n"
                "    return time.time()\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC007"]

    def test_snic008_scrub_without_emit(self):
        text = ("def teardown(memory, owner):\n"
                "    memory.release_pages(owner, scrub=True)\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC008"]
        assert findings and "audit record" in findings[0].message

    def test_snic008_scrub_with_emit_is_clean(self):
        text = ("def teardown(memory, owner, _AUDIT):\n"
                "    released = memory.release_pages(owner, scrub=True)\n"
                "    if _AUDIT.active:\n"
                "        _AUDIT.emit('memory.scrub', tenant=owner,\n"
                "                    pages=released)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC008"]

    def test_snic008_tlb_method_without_emit(self):
        text = ("class CoreTLB:\n"
                "    def install(self, entry):\n"
                "        self.entries.append(entry)\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC008"]
        assert findings and "choke point" in findings[0].message

    def test_snic008_tlb_method_with_emit_is_clean(self):
        text = ("class CoreTLB:\n"
                "    def install(self, entry):\n"
                "        self.entries.append(entry)\n"
                "        if _AUDIT.active:\n"
                "            _AUDIT.emit('tlb.install', bank=self.name)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC008"]

    def test_snic008_non_tlb_install_is_exempt(self):
        # install/clear on a class without a TLB-ish name is out of scope.
        text = ("class PluginHost:\n"
                "    def install(self, plugin):\n"
                "        self.plugins.append(plugin)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC008"]

    def test_snic008_attestation_raise_without_emit(self):
        text = ("def verify(quote, expected):\n"
                "    if quote.state_hash != expected:\n"
                "        raise AttestationError('bad state hash')\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC008"]
        assert findings and "witnessed" in findings[0].message

    def test_snic008_attestation_raise_with_emit_is_clean(self):
        text = ("def _reject(reason):\n"
                "    if _AUDIT.active:\n"
                "        _AUDIT.emit('attest.verdict', ok=False,\n"
                "                    reason=reason)\n"
                "    raise AttestationError(reason)\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC008"]

    def test_snic008_wall_clock_in_forensics_module(self):
        text = ("import time\n"
                "def stamp(bundle):\n"
                "    bundle['at'] = time.time()\n")
        findings = lint_source(text, modname="repro.obs.postmortem")
        assert [f for f in findings if f.rule == "SNIC008"]

    def test_snic008_wall_clock_in_flight_function(self):
        text = ("import time\n"
                "def flight_snapshot():\n"
                "    return time.perf_counter()\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC008"]
        assert findings and "byte-identical" in findings[0].message

    def test_snic008_wall_clock_out_of_scope_is_exempt(self):
        text = ("import time\n"
                "def bench_stamp():\n"
                "    return time.time()\n")
        assert not [f for f in lint_source(text) if f.rule == "SNIC008"]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_inline_suppression(self):
        text = ("def f(memory):\n"
                "    memory.read(0, 8)  # snic: ignore[SNIC001] -- why\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC001"]
        assert findings and all(f.suppressed for f in findings)

    def test_comment_block_above(self):
        text = ("def f(memory):\n"
                "    # snic: ignore[SNIC001] -- a justification that\n"
                "    # runs over several comment lines.\n"
                "    memory.read(0, 8)\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC001"]
        assert findings and all(f.suppressed for f in findings)

    def test_blanket_ignore_suppresses_every_rule(self):
        text = ("import time\n"
                "def f(memory):\n"
                "    memory.read(0, int(time.time()))  # snic: ignore\n")
        findings = lint_source(text)
        flagged = [f for f in findings if f.line == 3]
        assert flagged and all(f.suppressed for f in flagged)

    def test_wrong_rule_id_does_not_suppress(self):
        text = ("def f(memory):\n"
                "    memory.read(0, 8)  # snic: ignore[SNIC005]\n")
        findings = [f for f in lint_source(text) if f.rule == "SNIC001"]
        assert findings and not any(f.suppressed for f in findings)

    def test_suppressed_findings_do_not_affect_exit_code(self):
        findings, code = run_lint()
        assert code == 0
        assert any(f.suppressed for f in findings)


# ----------------------------------------------------------------------
# Formats & CLI plumbing
# ----------------------------------------------------------------------

class TestOutputFormats:
    @pytest.fixture()
    def findings(self):
        return LintEngine().lint_file(FIXTURE)

    def test_json_format_round_trips(self, findings):
        payload = json.loads(format_json(findings))
        assert payload["n_active"] == len(
            [f for f in findings if not f.suppressed])
        assert {f["rule"] for f in payload["findings"]} == ALL_RULES

    def test_github_format_emits_error_annotations(self, findings):
        out = format_github(findings)
        assert out.count("::error ") == len(
            [f for f in findings if not f.suppressed])
        assert "line=" in out and "title=SNIC001" in out

    def test_github_format_escapes_newlines(self):
        from repro.analysis.lint import Finding

        f = Finding(rule="SNIC001", message="a\nb", path="x.py",
                    line=1, col=1)
        assert "%0A" in format_github([f]) and "\nb" not in format_github([f])

    def test_text_format_counts(self, findings):
        out = format_text(findings)
        assert "finding(s)" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out

    def test_rule_selection(self):
        findings, _ = run_lint([FIXTURE], rules=["SNIC002"])
        assert {f.rule for f in findings} == {"SNIC002"}

    def test_module_name_for(self):
        assert module_name_for(
            source_root() / "hw" / "cache.py") == "repro.hw.cache"
        assert module_name_for(
            source_root() / "hw" / "__init__.py") == "repro.hw"


class TestAstHelpers:
    def _call(self, text: str) -> ast.Call:
        return ast.parse(text).body[0].value

    def test_receiver_token(self):
        assert receiver_token(
            self._call("self.vnic._snic.memory.read(0, 1)")) == "memory"
        assert receiver_token(self._call("host.read(0, 1)")) == "host"
        assert receiver_token(
            self._call("get_registry().gauge('x')")) == "get_registry"
        assert receiver_token(self._call("read(0, 1)")) == ""

    def test_call_name(self):
        assert call_name(self._call("a.b.claim_pages(1)")) == "claim_pages"
        assert call_name(self._call("print(1)")) == "print"
