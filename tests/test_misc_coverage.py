"""Coverage for smaller surfaces: cores, DRAM, flows, VirtualNIC edges,
NIC-OS host DMA, and accelerators carrying real behavioural work."""

import pytest

from repro.core import NFConfig, NICOS, SNIC, IsolationViolation
from repro.core.vpp import VPPConfig
from repro.hw.accelerator import AcceleratorKind
from repro.hw.cores import CoreTimingConfig, ProgrammableCore
from repro.hw.dram import DRAMModel
from repro.hw.memory import AccessFault, HostMemory, PhysicalMemory
from repro.hw.mmu import TLBEntry
from repro.net.flows import Flow
from repro.net.packet import FiveTuple, PROTO_TCP, Packet
from repro.net.rules import MatchRule
from repro.nf.dpi import AhoCorasick

MB = 1024 * 1024


class TestProgrammableCore:
    def _core(self):
        memory = PhysicalMemory(16 * MB, page_size=4096)
        return ProgrammableCore(0, memory), memory

    def test_bind_unbind(self):
        core, _ = self._core()
        assert not core.allocated
        core.bind(7)
        assert core.allocated and core.owner == 7
        core.unbind()
        assert core.owner is None

    def test_double_bind_rejected(self):
        core, _ = self._core()
        core.bind(1)
        with pytest.raises(AccessFault):
            core.bind(2)

    def test_unbind_clears_tlb(self):
        core, _ = self._core()
        core.bind(1)
        core.tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        core.tlb.lock()
        core.unbind()
        assert len(core.tlb) == 0 and not core.tlb.locked

    def test_load_store_through_tlb(self):
        core, memory = self._core()
        core.tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        core.store(0x10, b"core-data")
        assert core.load(0x10, 9) == b"core-data"
        assert memory.read(2 * MB + 0x10, 9) == b"core-data"

    def test_retire_counter(self):
        core, _ = self._core()
        core.retire(100)
        core.retire(50)
        assert core.instructions_retired == 150
        core.unbind()
        assert core.instructions_retired == 0

    def test_timing_config(self):
        timing = CoreTimingConfig(frequency_ghz=2.0)
        assert timing.cycle_ns == pytest.approx(0.5)


class TestDRAMModel:
    def test_transfer_time(self):
        dram = DRAMModel(access_latency_ns=50.0, bandwidth_bytes_per_ns=10.0)
        assert dram.transfer_ns(100) == pytest.approx(60.0)

    def test_line_fill(self):
        dram = DRAMModel()
        assert dram.line_fill_ns(64) == dram.transfer_ns(64)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel().transfer_ns(-1)


class TestFlow:
    def test_make_packet_fields(self):
        ft = FiveTuple(0x0A000001, 0x0A000002, PROTO_TCP, 1000, 80)
        flow = Flow(five_tuple=ft)
        packet = flow.make_packet(payload=b"xy", arrival_ns=77)
        assert packet.five_tuple == ft
        assert packet.payload == b"xy"
        assert packet.arrival_ns == 77


class TestVirtualNICEdges:
    @pytest.fixture
    def system(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=81)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(
                name="edge", core_ids=(0,), memory_bytes=4 * MB,
                vpp=VPPConfig(rules=[MatchRule()]),
                accelerators=((AcceleratorKind.DPI, 1), (AcceleratorKind.ZIP, 1)),
            )
        )
        return snic, vnic

    def test_properties(self, system):
        snic, vnic = system
        assert vnic.name == "edge"
        assert vnic.core_ids == [0]
        assert vnic.memory_bytes >= 4 * MB

    def test_receive_empty(self, system):
        _, vnic = system
        assert vnic.receive() is None
        assert vnic.receive_all() == []

    def test_run_respects_max_packets(self, system):
        snic, vnic = system
        from repro.nf import Monitor

        for i in range(5):
            snic.rx_port.wire_arrival(
                Packet.make("1.1.1.1", "2.2.2.2", src_port=i + 1)
            )
        snic.process_ingress()
        assert vnic.run(Monitor(), max_packets=3) == 3
        assert len(vnic.receive_all()) == 2

    def test_clusters_by_kind(self, system):
        _, vnic = system
        assert len(vnic.clusters(AcceleratorKind.DPI)) == 1
        assert len(vnic.clusters(AcceleratorKind.ZIP)) == 1
        assert vnic.clusters(AcceleratorKind.RAID) == []

    def test_accelerate_wrong_kind_raises(self, system):
        _, vnic = system
        with pytest.raises(IsolationViolation):
            vnic.accelerate(AcceleratorKind.RAID, 100)

    def test_accelerator_runs_real_work(self, system):
        """The behavioural payload: a DPI request actually executes an
        Aho–Corasick scan over the packet bytes."""
        _, vnic = system
        automaton = AhoCorasick([b"malware", b"exploit"])
        payload = b"___exploit___malware___"
        request = vnic.accelerate(
            AcceleratorKind.DPI,
            len(payload),
            work=lambda: automaton.search(payload),
        )
        matched_ids = {pid for _, pid in request.result}
        assert matched_ids == {0, 1}
        assert request.latency_ns > 0


class TestNICOSHostDMA:
    def test_image_pull_from_host(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=82)
        nic_os = NICOS(snic)
        host = HostMemory(16 * MB, page_size=4096)
        image = b"function-image-on-host" * 10
        host.write(0x4000, image)
        pulled = nic_os.load_image_from_host(host, 0x4000, len(image))
        assert pulled == image
        vnic = nic_os.NF_create(
            NFConfig(name="from-host", core_ids=(0,), memory_bytes=4 * MB,
                     initial_image=pulled)
        )
        assert vnic.read(0, 22) == image[:22]

    def test_function_dma_windows(self):
        """End to end: a launched function's DMA bank moves data to the
        host-sanctioned window and nowhere else."""
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=83)
        nic_os = NICOS(snic)
        from repro.hw.dma import DMAWindow

        host = HostMemory(16 * MB, page_size=4096)
        vnic = nic_os.NF_create(
            NFConfig(name="dma", core_ids=(0,), memory_bytes=4 * MB,
                     host_window=DMAWindow(base=1 * MB, size=1 * MB))
        )
        vnic.write(0x100, b"results")
        bank = snic.dma.bank_for_core(0)
        record = snic.record(vnic.nf_id)
        bank.to_host(snic.memory, host,
                     nic_addr=record.extent_base + 0x100,
                     host_addr=1 * MB + 0x40, n_bytes=7)
        assert host.read(1 * MB + 0x40, 7) == b"results"
        with pytest.raises(AccessFault):
            bank.to_host(snic.memory, host,
                         nic_addr=record.extent_base, host_addr=0, n_bytes=8)


class TestSNICEdges:
    def test_classify_no_functions(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=84)
        assert snic.classify(Packet.make("1.1.1.1", "2.2.2.2")) is None

    def test_ingress_backpressure_counts_drops(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=85)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="small-ring", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule()], ring_capacity=4))
        )
        for i in range(10):
            snic.rx_port.wire_arrival(
                Packet.make("1.1.1.1", "2.2.2.2", src_port=i + 1)
            )
        delivered = snic.process_ingress()
        assert delivered[vnic.nf_id] == 4
        assert delivered[-1] == 6

    def test_core_mask_helper(self):
        config = NFConfig(name="x", core_ids=(0, 2, 5), memory_bytes=MB)
        assert config.core_mask() == 0b100101

    def test_instruction_log_grows(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=86)
        nf_id = snic.nf_launch(
            NFConfig(name="log", core_ids=(0,), memory_bytes=4 * MB)
        )
        snic.nf_teardown(nf_id)
        names = [name for name, _, _ in snic.instruction_log]
        assert names == ["nf_launch", "nf_teardown"]
        latencies = [latency for _, _, latency in snic.instruction_log]
        assert all(latency > 0 for latency in latencies)
