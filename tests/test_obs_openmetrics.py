"""Tests for repro.obs.openmetrics: exporter, merging, and checker."""

import pytest

from repro.hw.events import Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    main as checker_main,
    merge_families,
    registry_families,
    render,
    render_families,
    validate_text,
    window_families,
    write,
)
from repro.obs.windows import WindowedAggregator


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("slo_alerts_total", tenant=1).inc(3)
    reg.gauge("slo_budget_fraction", tenant=1).set(0.25)
    hist = reg.histogram("slo_latency_ns", tenant=1)
    hist.observe(500.0)
    hist.observe(90_000.0)
    return reg


class TestRendering:
    def test_counter_family_drops_total_suffix(self, registry):
        text = render(registry=registry)
        assert "# TYPE slo_alerts counter" in text
        assert 'slo_alerts_total{tenant="1"} 3' in text

    def test_gauge_family(self, registry):
        text = render(registry=registry)
        assert "# TYPE slo_budget_fraction gauge" in text
        assert 'slo_budget_fraction{tenant="1"} 0.25' in text

    def test_histogram_cumulative_buckets(self, registry):
        text = render(registry=registry)
        assert "# TYPE slo_latency_ns histogram" in text
        assert 'le="+Inf"' in text
        assert 'slo_latency_ns_count{tenant="1"} 2' in text
        assert 'slo_latency_ns_sum{tenant="1"} 90500' in text
        # Buckets are cumulative: the +Inf bucket equals the count.
        inf_lines = [ln for ln in text.splitlines()
                     if ln.startswith("slo_latency_ns_bucket")
                     and 'le="+Inf"' in ln]
        assert inf_lines and inf_lines[0].endswith(" 2")

    def test_ends_with_eof(self, registry):
        text = render(registry=registry)
        assert text.endswith("# EOF\n")

    def test_extra_labels_applied(self, registry):
        families = registry_families(registry,
                                     extra_labels={"arbiter": "fcfs"})
        samples = [s for _, _, sams in families for s in sams]
        assert all(s[1].get("arbiter") == "fcfs" for s in samples)

    def test_deterministic_output(self, registry):
        assert render(registry=registry) == render(registry=registry)

    def test_write_and_check_file(self, registry, tmp_path, capsys):
        path = tmp_path / "metrics.om"
        write(str(path), registry=registry)
        assert checker_main([str(path)]) == 0
        assert "openmetrics: OK" in capsys.readouterr().out

    def test_checker_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.om"
        path.write_text("slo_x_total{tenant=\"1\"} nope\n# EOF\n")
        assert checker_main([str(path)]) == 1


class TestWindowFamilies:
    def _windows(self, registry):
        sim = Simulator()
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        registry.counter("slo_alerts_total", tenant=1).inc(2)
        agg.rotate(now_ns=100)
        registry.histogram("slo_latency_ns", tenant=1).observe(700.0)
        agg.rotate(now_ns=200)
        return agg.snapshots

    def test_window_series_render_and_validate(self, registry):
        snapshots = self._windows(registry)
        text = render(registry=registry, windows=snapshots)
        assert "slo_window_end_ns" in text
        assert "slo_window_delta" in text
        assert "slo_window_p99_ns" in text
        assert validate_text(text) == []

    def test_window_delta_values(self, registry):
        snapshots = self._windows(registry)
        families = window_families(snapshots)
        by_name = {name: samples for name, _, samples in families}
        deltas = by_name["slo_window_delta"]
        hit = [s for s in deltas
               if s[1]["metric"] == "slo_alerts_total"
               and s[1]["window"] == "0"]
        assert hit and hit[0][2] == 2.0


class TestMergeFamilies:
    def test_merges_same_family_across_exports(self, registry):
        first = registry_families(registry,
                                  extra_labels={"arbiter": "fcfs"})
        second = registry_families(registry,
                                   extra_labels={"arbiter": "drr"})
        merged = merge_families(list(first) + list(second))
        names = [name for name, _, _ in merged]
        assert len(names) == len(set(names))
        text = render_families(merged)
        assert validate_text(text) == []
        assert 'arbiter="fcfs"' in text and 'arbiter="drr"' in text

    def test_kind_conflict_rejected(self):
        with pytest.raises(ValueError):
            merge_families([("x", "counter", [("x_total", {}, 1.0)]),
                            ("x", "gauge", [("x", {}, 1.0)])])


class TestValidator:
    def test_valid_document(self, registry):
        assert validate_text(render(registry=registry)) == []

    def test_missing_eof(self):
        errors = validate_text("# TYPE a gauge\na 1\n")
        assert any("EOF" in e for e in errors)

    def test_duplicate_family(self):
        text = "# TYPE a gauge\na 1\n# TYPE a gauge\na 2\n# EOF\n"
        assert any("duplicate" in e.lower() for e in validate_text(text))

    def test_sample_without_type(self):
        text = "mystery_metric 1\n# EOF\n"
        assert validate_text(text)

    def test_counter_must_be_total_and_nonnegative(self):
        bad_name = "# TYPE a counter\na 1\n# EOF\n"
        assert validate_text(bad_name)
        negative = "# TYPE a counter\na_total -1\n# EOF\n"
        assert validate_text(negative)

    def test_bucket_order_enforced(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="10"} 5\n'
                'h_bucket{le="5"} 1\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_count 5\n"
                "h_sum 12\n"
                "# EOF\n")
        assert validate_text(text)

    def test_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="10"} 5\n'
                "h_count 5\n"
                "h_sum 12\n"
                "# EOF\n")
        assert any("+Inf" in e for e in validate_text(text))

    def test_non_cumulative_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="5"} 5\n'
                'h_bucket{le="10"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_count 5\n"
                "h_sum 12\n"
                "# EOF\n")
        assert validate_text(text)
