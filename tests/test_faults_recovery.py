"""Recovery under injected faults: the §4.6 lifecycle keeps its
guarantees when functions die mid-flight.

Three scenarios the issue tracker demands stay pinned:

* ``nf_teardown`` scrubs correctly even with a DMA transfer in flight
  (partial bytes already landed in the extent);
* ``NF_destroy`` of a *crashed* NF still releases and scrubs everything;
* a supervisor restart of the same tenant rebuilds core binding, TLB
  lockdown, and page ownership exactly.
"""

from __future__ import annotations

import pytest

from repro.core import NFConfig, NICOS, SNIC
from repro.core.errors import FaultInjected, FatalFunctionError
from repro.core.runtime import SNICRuntime
from repro.core.vpp import VPPConfig
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    NFSupervisor,
)
from repro.faults.recovery import CommodityRecovery, verify_scrubbed
from repro.hw.dma import DMAWindow
from repro.hw.memory import HostMemory
from repro.net.packet import Packet
from repro.net.rules import MatchRule, Prefix
from repro.nf import Monitor

MB = 1024 * 1024


def _crashy_rig(n_packets=8, crash_at_ns=1_000):
    snic = SNIC(n_cores=2, dram_bytes=32 * MB, key_seed=3)
    nic_os = NICOS(snic)
    vnic = nic_os.NF_create(NFConfig(
        name="crashy", core_ids=(0,), memory_bytes=4 * MB,
        vpp=VPPConfig(
            rules=[MatchRule(dst_prefix=Prefix.parse("20.0.0.0/8"))])))
    runtime = SNICRuntime(snic)
    runtime.attach(vnic.nf_id, Monitor())
    packets = []
    for i in range(n_packets):
        packet = Packet.make("10.0.0.1", "20.0.0.9", src_port=4_000 + i,
                             dst_port=80, payload=b"x" * 32)
        packet.arrival_ns = (i + 1) * 400
        packets.append(packet)
    runtime.inject(packets)
    plan = FaultPlan(seed=9)
    plan.at(crash_at_ns, FaultKind.NF_CRASH, tenant=vnic.nf_id)
    return snic, nic_os, vnic, runtime, plan


class TestTeardownWithInflightDMA:
    def test_scrub_survives_partial_transfer(self):
        snic = SNIC(n_cores=2, dram_bytes=32 * MB, key_seed=3)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(NFConfig(
            name="dma-nf", core_ids=(0,), memory_bytes=4 * MB,
            host_window=DMAWindow(0, 1 * MB)))
        record = snic.record(vnic.nf_id)
        host = HostMemory(1 * MB)
        host.write(0, b"\xAB" * 8_192)

        plan = FaultPlan(seed=5)
        plan.at(0, FaultKind.DMA_PARTIAL, tenant=vnic.nf_id, fraction=0.5)
        with FaultInjector(plan) as injector:
            injector.arm_all()
            bank = snic.dma.bank_for_core(0)
            with pytest.raises(FaultInjected) as exc_info:
                bank.to_nic(host, snic.memory, 0, record.extent_base,
                            8_192, now_ns=0.0)
            # half the transfer really landed inside the extent...
            assert exc_info.value.bytes_done == 4_096
            assert snic.memory.read(
                record.extent_base, 4_096) == b"\xAB" * 4_096

            # ...and teardown still scrubs and frees every page.
            pages = list(record.pages)
            nic_os.NF_destroy(vnic.nf_id)
            assert verify_scrubbed(snic.memory, pages) == []
            assert snic.live_functions == []
            bank = snic.dma.bank_for_core(0)
            assert bank.owner is None and bank.nic_window is None


class TestDestroyCrashedNF:
    def test_destroy_after_crash_releases_everything(self):
        snic, nic_os, vnic, runtime, plan = _crashy_rig()
        with FaultInjector(plan) as injector:
            injector.arm_all()
            with pytest.raises(FatalFunctionError):
                runtime.run()
            assert injector.records[-1].kind is FaultKind.NF_CRASH

            pages = list(snic.record(vnic.nf_id).pages)
            nic_os.NF_destroy(vnic.nf_id)
            assert verify_scrubbed(snic.memory, pages) == []
            assert snic.live_functions == []
            core = snic.cores[0]
            assert core.owner is None
            assert len(core.tlb) == 0 and not core.tlb.locked


class TestSameTenantRestart:
    def test_tlb_and_page_state_after_restart(self):
        snic, nic_os, vnic, runtime, plan = _crashy_rig()
        supervisor = NFSupervisor(nic_os, runtime)
        old_pages = list(snic.record(vnic.nf_id).pages)
        old_entries = snic.cores[0].tlb.entries

        with FaultInjector(plan) as injector:
            injector.arm_all()
            restarted = None
            while True:
                try:
                    runtime.run()
                    break
                except FatalFunctionError:
                    restarted = supervisor.on_crash(
                        injector.records[-1].tenant)

        assert restarted is not None
        assert supervisor.restarts == [(vnic.nf_id, restarted.nf_id)]
        assert restarted.nf_id != vnic.nf_id  # a fresh identity

        # Core binding and TLB lockdown rebuilt for the new identity.
        core = snic.cores[0]
        assert core.owner == restarted.nf_id
        assert core.tlb.locked
        assert core.tlb.entries == old_entries  # same extent, same map

        # Page ownership is the new identity's, uniformly.
        record = snic.record(restarted.nf_id)
        assert record.pages == old_pages  # extent was reallocated whole
        assert {snic.memory.owner_of(p) for p in record.pages} == \
            {restarted.nf_id}

        # The runtime kept serving after the restart.
        assert runtime.stats.timings
        assert all(t.nf_id in (vnic.nf_id, restarted.nf_id)
                   for t in runtime.stats.timings)

    def test_restart_budget_is_enforced(self):
        from repro.core.errors import RecoveryExhausted

        snic, nic_os, vnic, runtime, _plan = _crashy_rig()
        supervisor = NFSupervisor(nic_os, runtime, max_restarts=1)
        second = supervisor.on_crash(vnic.nf_id)
        with pytest.raises(RecoveryExhausted):
            supervisor.on_crash(second.nf_id)


class TestCommodityDegradation:
    def test_power_cycle_halts_the_device(self):
        recovery = CommodityRecovery(reboot_ns=10_000)
        ready = recovery.power_cycle(2_500.0)
        assert ready == 12_500.0
        assert recovery.cycles == [(2_500.0, 12_500.0)]
