"""Smoke test: every ``examples/*.py`` main path runs to completion.

The examples are documentation that executes; a refactor that breaks
one breaks the README's promises.  Each script runs via ``runpy`` with
``run_name="__main__"`` so its ``if __name__ == "__main__":`` block
fires, stdout captured.  IsoSan is opted out: the attack demo
*demonstrates* commodity isolation violations on purpose, and the
examples manage their own process-global state end to end.
"""

from __future__ import annotations

import contextlib
import io
import runpy
from pathlib import Path

import pytest

pytestmark = pytest.mark.no_isosan

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _reset_globals() -> None:
    from repro.hw import events as hw_events
    from repro.obs import metrics, tracer

    metrics.reset()
    hw_events.reset_kernel_stats()
    t = tracer.get_tracer()
    t.disable()
    t.use_clock(None)
    t.clear()


def test_examples_exist():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path: Path, tmp_path, monkeypatch):
    # Run from a scratch directory so examples that write artifacts
    # (traces, reports) don't litter the repo root.
    monkeypatch.chdir(tmp_path)
    _reset_globals()
    buffer = io.StringIO()
    try:
        with contextlib.redirect_stdout(buffer):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        _reset_globals()
    assert buffer.getvalue().strip(), f"{path.name} printed nothing"
