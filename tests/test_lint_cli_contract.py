"""CLI contract for ``python -m repro lint`` / ``python -m repro
dataflow``: exit codes (clean=0, findings=1, usage=2), the three output
formats, the suppression round-trip, and ``--stats``.

Driven through ``runpy`` with ``run_name="__main__"`` (like the
examples smoke tests) so the whole ``__main__`` dispatch — argv
parsing, command table, ``sys.exit`` plumbing — is under test, not
just the inner ``main()`` functions.
"""

from __future__ import annotations

import contextlib
import io
import json
import runpy
import sys
from pathlib import Path
from typing import List, Tuple
from unittest import mock

import pytest

pytestmark = pytest.mark.no_isosan

REPO_ROOT = Path(__file__).parent.parent
LINT_FIXTURE = Path(__file__).parent / "fixtures" / "lint_violations.py"
DATAFLOW_FIXTURES = Path(__file__).parent / "fixtures" / "dataflow"


def run_cli(*argv: str) -> Tuple[int, str, str]:
    """``python -m repro <argv...>`` in-process; (code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with mock.patch.object(sys, "argv", ["repro", *argv]), \
            contextlib.redirect_stdout(out), \
            contextlib.redirect_stderr(err):
        try:
            runpy.run_module("repro", run_name="__main__")
            code = 0
        except SystemExit as exc:
            code = exc.code if isinstance(exc.code, int) else 1
    return code, out.getvalue(), err.getvalue()


# ----------------------------------------------------------------------
# Exit codes
# ----------------------------------------------------------------------

class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "clean.py").write_text("GREETING = 'hi'\n")
        code, out, _ = run_cli("lint", str(tmp_path))
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one(self):
        code, out, _ = run_cli("lint", str(LINT_FIXTURE))
        assert code == 1
        assert "SNIC001" in out

    def test_usage_error_exits_two(self):
        code, _, err = run_cli("lint", "--format", "bogus")
        assert code == 2
        assert "invalid choice" in err

    def test_unknown_command_exits_two(self):
        code, _, err = run_cli("frobnicate")
        assert code == 2
        assert "unknown command" in err

    def test_dataflow_findings_exit_one(self):
        code, out, _ = run_cli("dataflow", "--no-baseline",
                               str(DATAFLOW_FIXTURES))
        assert code == 1
        assert "SNIC009" in out and "SNIC010" in out

    def test_dataflow_usage_error_exits_two(self):
        code, _, _ = run_cli("dataflow", "--format", "bogus")
        assert code == 2

    def test_unknown_rule_id_exits_two(self):
        # A typo'd --rules filter must not pass vacuously.
        code, _, err = run_cli("lint", "--rules", "SNIC999")
        assert code == 2
        assert "SNIC999" in err

    def test_lint_rejects_program_rule_ids_with_hint(self):
        code, _, err = run_cli("lint", "--rules", "SNIC009")
        assert code == 2
        assert "repro dataflow" in err

    def test_dataflow_unknown_rule_id_exits_two(self):
        code, _, err = run_cli("dataflow", "--rules", "SNIC999")
        assert code == 2
        assert "SNIC999" in err

    def test_rule_filter_is_case_insensitive(self):
        code, out, _ = run_cli("lint", "--rules", "snic001",
                               str(LINT_FIXTURE))
        assert code == 1
        assert "SNIC001" in out


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------

class TestFormats:
    def test_text_format_summarises(self):
        code, out, _ = run_cli("lint", "--format", "text",
                               str(LINT_FIXTURE))
        assert code == 1
        assert "finding(s)" in out.splitlines()[-1]

    def test_json_format_parses_with_counts(self):
        _, out, _ = run_cli("lint", "--format", "json",
                            str(LINT_FIXTURE))
        payload = json.loads(out)
        assert payload["n_active"] == len(
            [f for f in payload["findings"]
             if not f["suppressed"] and not f["baselined"]])
        assert payload["n_active"] > 0

    def test_github_format_emits_error_annotations(self):
        _, out, _ = run_cli("lint", "--format", "github",
                            str(LINT_FIXTURE))
        lines = [ln for ln in out.splitlines() if ln]
        assert lines and all(ln.startswith("::error file=")
                             for ln in lines)

    def test_dataflow_json_format(self):
        _, out, _ = run_cli("dataflow", "--format", "json",
                            "--no-baseline", str(DATAFLOW_FIXTURES))
        payload = json.loads(out)
        assert payload["n_active"] == 3
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"SNIC009", "SNIC010"}

    def test_list_rules_covers_whole_catalog(self):
        code, out, _ = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_id in [f"SNIC{n:03d}" for n in range(1, 11)]:
            assert rule_id in out, f"{rule_id} missing from catalog"
        assert "whole-program" in out


# ----------------------------------------------------------------------
# Suppression round-trip
# ----------------------------------------------------------------------

VIOLATION = (
    "def peek(memory):\n"
    "    return memory.read(0, 64)\n"
)


class TestSuppressionRoundTrip:
    def test_tag_silences_and_removal_reinstates(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATION)
        code, _, _ = run_cli("lint", str(bad))
        assert code == 1

        lines = VIOLATION.splitlines()
        lines.insert(1, "    # snic: ignore[SNIC001] -- test fixture")
        bad.write_text("\n".join(lines) + "\n")
        code, out, _ = run_cli("lint", str(bad))
        assert code == 0
        assert "1 suppressed" in out

        bad.write_text(VIOLATION)
        code, _, _ = run_cli("lint", str(bad))
        assert code == 1

    def test_wrong_rule_id_does_not_silence(self, tmp_path):
        bad = tmp_path / "bad.py"
        lines: List[str] = VIOLATION.splitlines()
        lines.insert(1, "    # snic: ignore[SNIC999]")
        bad.write_text("\n".join(lines) + "\n")
        code, _, _ = run_cli("lint", str(bad))
        assert code == 1

    def test_dataflow_suppression_round_trip(self, tmp_path):
        for name in ("pipeline.py", "state.py"):
            (tmp_path / name).write_text(
                (DATAFLOW_FIXTURES / name).read_text())
        code, _, _ = run_cli("dataflow", "--no-baseline", str(tmp_path))
        assert code == 1

        for name, tag in (("pipeline.py", "SNIC009"),
                          ("state.py", "SNIC010")):
            path = tmp_path / name
            tagged = []
            for line in path.read_text().splitlines():
                if "egress.deliver(payload)" in line and "BAD" not in line \
                        or line.startswith(("FLOW_TABLE", "SEEN")):
                    line += f"  # snic: ignore[{tag}] -- test"
                tagged.append(line)
            path.write_text("\n".join(tagged) + "\n")
        code, out, _ = run_cli("dataflow", "--no-baseline", str(tmp_path))
        assert code == 0, out


# ----------------------------------------------------------------------
# --stats
# ----------------------------------------------------------------------

class TestStats:
    def test_used_tags_pass(self, tmp_path):
        bad = tmp_path / "bad.py"
        lines = VIOLATION.splitlines()
        lines.insert(1, "    # snic: ignore[SNIC001] -- measured")
        bad.write_text("\n".join(lines) + "\n")
        code, out, _ = run_cli("lint", "--stats", str(tmp_path))
        assert code == 0
        assert "0 unused" in out
        assert "SNIC001" in out

    def test_stale_tag_fails_and_is_named(self, tmp_path):
        stale = tmp_path / "stale.py"
        stale.write_text("X = 1  # snic: ignore[SNIC001]\n")
        code, out, _ = run_cli("lint", "--stats", str(tmp_path))
        assert code == 1
        assert "UNUSED" in out and "stale.py:1" in out

    def test_repo_tree_has_no_stale_tags(self):
        code, out, _ = run_cli("lint", "--stats")
        assert code == 0, out
