"""Tests for repro.obs.scorecard: spec factories, demo, CLI, determinism."""

import json

import pytest

from repro.obs.openmetrics import validate_text
from repro.obs.scorecard import (
    EXPECTED_DEMO_ALERTS,
    format_csv,
    format_json,
    format_text,
    main as scorecard_main,
    make_scorecard_spec,
    make_violation_spec,
    run_scorecard,
    run_violation_demo,
)


class TestSpecFactories:
    def test_scorecard_spec_scales_with_tenant_count(self):
        spec = make_scorecard_spec("temporal", 16, seed=7, quick=True)
        assert len(spec.tenants) == 16
        assert spec.topology.n_cores == 16
        assert spec.topology.l2_ways == 16 + 8
        assert spec.topology.dram_mb == 2 * 16 + 64
        assert spec.topology.arbiter.policy == "temporal"
        # Every tenant carries the default SLO contract.
        assert all(t.slo is not None for t in spec.tenants)

    def test_scorecard_spec_seed_derivation_separates_arbiters(self):
        fcfs = make_scorecard_spec("fcfs", 8, seed=7, quick=True)
        drr = make_scorecard_spec("drr", 8, seed=7, quick=True)
        assert fcfs.seed != drr.seed
        again = make_scorecard_spec("fcfs", 8, seed=7, quick=True)
        assert again.seed == fcfs.seed

    def test_violation_spec_shape(self):
        spec = make_violation_spec(seed=7)
        names = [t.name for t in spec.tenants]
        assert names == ["t1", "t2", "t3", "t4"]
        assert spec.topology.arbiter.policy == "fcfs"
        # t1 is the tight-latency victim, t2 the zero-interference one.
        t1, t2 = spec.tenants[0], spec.tenants[1]
        assert t1.slo.objective("p99_latency_ns").threshold == 1000.0
        assert t2.slo.objective("interference_budget_ns").threshold == 0.0


class TestViolationDemo:
    def test_demo_fires_exactly_the_expected_alerts(self):
        report = run_violation_demo(seed=7)
        assert report["alerts_match"] is True
        assert report["observed_alerts"] == \
            sorted(list(a) for a in EXPECTED_DEMO_ALERTS)

    def test_demo_audit_chain_intact(self):
        report = run_violation_demo(seed=7)
        (result,) = report["arbiters"].values()
        assert result["audit"]["chain_ok"] is True
        assert result["audit"]["records"] > 0


class TestScorecard:
    @pytest.fixture(scope="class")
    def report(self):
        return run_scorecard(n_tenants=8, seed=7, quick=True,
                             arbiters=("fcfs", "temporal"))

    def test_report_schema(self, report):
        assert report["schema"] == "repro.slo"
        assert report["n_tenants"] == 8
        assert set(report["arbiters"]) == {"fcfs", "temporal"}
        for result in report["arbiters"].values():
            assert len(result["tenants"]) == 8

    def test_temporal_isolates_where_fcfs_interferes(self, report):
        rows = {r["arbiter"]: r for r in report["summary"]}
        assert rows["temporal"]["cross_tenant_wait_ns"] == 0.0
        assert rows["temporal"]["n_fail"] == 0
        assert rows["fcfs"]["cross_tenant_wait_ns"] > 0.0

    def test_deterministic_for_fixed_seed(self, report):
        again = run_scorecard(n_tenants=8, seed=7, quick=True,
                              arbiters=("fcfs", "temporal"))
        assert format_json(again) == format_json(report)

    def test_formatters_render(self, report):
        assert json.loads(format_json(report))["n_tenants"] == 8
        csv_lines = format_csv(report).strip().splitlines()
        assert len(csv_lines) == 1 + 2 * 8  # header + tenants x arbiters
        assert format_text(report).startswith("repro slo — quick mode")


class TestCLI:
    def test_cli_json_and_openmetrics_export(self, tmp_path, capsys):
        out = tmp_path / "slo.json"
        om = tmp_path / "slo.om"
        code = scorecard_main(["--quick", "--tenants", "8",
                               "--arbiters", "temporal",
                               "--format", "json",
                               "--openmetrics", str(om),
                               "-o", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["n_tenants"] == 8
        assert validate_text(om.read_text()) == []
        capsys.readouterr()

    def test_cli_violation_demo_self_check(self, capsys):
        assert scorecard_main(["--violation-demo"]) == 0
        assert "alerts_match" not in capsys.readouterr().err

    def test_cli_rejects_unknown_arbiter(self, capsys):
        assert scorecard_main(["--quick", "--tenants", "4",
                               "--arbiters", "lottery"]) == 2
        capsys.readouterr()
