"""Integration tests: full multi-tenant scenarios across subsystems."""

import pytest

from repro.commodity.agilio import AgilioNIC
from repro.commodity.attacks import bus_dos_attack, run_packet_corruption_experiment
from repro.core import (
    Constellation,
    IsolationViolation,
    NFConfig,
    NICOS,
    SGXEnclave,
    SNIC,
    Verifier,
)
from repro.core.vpp import VPPConfig
from repro.crypto.dh import DHParams
from repro.crypto.keys import VendorCA
from repro.hw.accelerator import AcceleratorKind
from repro.net.packet import Packet, ip_to_int, ip_to_str
from repro.net.rules import MatchRule, PortRange, Prefix, RuleAction, RuleTable
from repro.net.vxlan import vxlan_decapsulate, vxlan_encapsulate
from repro.nf import Firewall, Monitor, NAT

MB = 1024 * 1024
SMALL_DH = DHParams(g=2, p=0xFFFFFFFB)


class TestMultiTenantPipeline:
    """Three tenants (NAT, Firewall, Monitor) sharing one S-NIC."""

    @pytest.fixture
    def system(self):
        snic = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=11)
        nic_os = NICOS(snic)
        nat_vnic = nic_os.NF_create(
            NFConfig(
                name="nat", core_ids=(0,), memory_bytes=8 * MB,
                vpp=VPPConfig(rules=[MatchRule(src_prefix=Prefix.parse("10.0.0.0/8"))]),
            )
        )
        fw_vnic = nic_os.NF_create(
            NFConfig(
                name="fw", core_ids=(1,), memory_bytes=8 * MB,
                vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("20.0.0.0/8"))]),
            )
        )
        mon_vnic = nic_os.NF_create(
            NFConfig(
                name="mon", core_ids=(2,), memory_bytes=8 * MB,
                vpp=VPPConfig(rules=[MatchRule()]),  # catch-all, lowest
            )
        )
        return snic, nic_os, nat_vnic, fw_vnic, mon_vnic

    def test_traffic_separation_and_processing(self, system):
        snic, _, nat_vnic, fw_vnic, mon_vnic = system
        snic.rx_port.wire_arrival(
            Packet.make("10.1.1.1", "99.0.0.1", src_port=1111, dst_port=80)
        )
        snic.rx_port.wire_arrival(
            Packet.make("50.1.1.1", "20.0.0.5", src_port=2222, dst_port=22)
        )
        snic.rx_port.wire_arrival(
            Packet.make("60.1.1.1", "70.0.0.1", src_port=3333, dst_port=443)
        )
        snic.process_ingress()

        nat = NAT("100.0.0.1")
        fw = Firewall(
            RuleTable([MatchRule(dst_ports=PortRange(22, 22), action=RuleAction.DROP)])
        )
        mon = Monitor()
        assert nat_vnic.run(nat) == 1
        assert fw_vnic.run(fw) == 1
        assert mon_vnic.run(mon) == 1

        assert nat.translations == 1
        assert fw.stats.dropped == 1  # the ssh packet died
        assert mon.distinct_flows == 1

        sent = snic.process_egress()
        assert sent == 2  # NAT + Monitor output; firewall dropped its one
        owners = [owner for owner, _ in snic.tx_port.transmitted]
        assert fw_vnic.nf_id not in owners

    def test_tenants_isolated_despite_shared_nic(self, system):
        snic, nic_os, nat_vnic, fw_vnic, _ = system
        nat_vnic.write(0x100, b"nat-secret")
        # The firewall cannot reach the NAT's bytes: interpreting the
        # NAT's physical base as a virtual address either faults or
        # resolves into the firewall's *own* extent — never the secret.
        target = snic.record(nat_vnic.nf_id).extent_base + 0x100
        try:
            leaked = fw_vnic.read(target, 10)
        except IsolationViolation:
            leaked = None
        assert leaked != b"nat-secret"
        with pytest.raises(IsolationViolation):
            nic_os.attempt_function_state_read(nat_vnic.nf_id)

    def test_churn_then_full_reuse(self, system):
        snic, nic_os, nat_vnic, fw_vnic, mon_vnic = system
        for vnic in (nat_vnic, fw_vnic, mon_vnic):
            nic_os.NF_destroy(vnic.nf_id)
        assert snic.live_functions == []
        fresh = nic_os.NF_create(
            NFConfig(name="fresh", core_ids=(0, 1, 2, 3), memory_bytes=16 * MB)
        )
        assert len(fresh.core_ids) == 4


class TestVXLANDetour:
    """Figure 4a: a tenant directs VXLAN flows to a trusted function."""

    def test_vni_steering(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=12)
        nic_os = NICOS(snic)
        tenant_a = nic_os.NF_create(
            NFConfig(
                name="tenant-a-ids", core_ids=(0,), memory_bytes=4 * MB,
                vpp=VPPConfig(rules=[MatchRule(vni=100)]),
            )
        )
        tenant_b = nic_os.NF_create(
            NFConfig(
                name="tenant-b-ids", core_ids=(1,), memory_bytes=4 * MB,
                vpp=VPPConfig(rules=[MatchRule(vni=200)]),
            )
        )
        inner = Packet.make("192.168.0.1", "192.168.0.2", src_port=1, dst_port=2)
        outer = vxlan_encapsulate(
            inner, vni=100,
            outer_src_ip=ip_to_int("1.1.1.1"), outer_dst_ip=ip_to_int("2.2.2.2"),
        )
        # The NIC's VTEP decapsulates; switching rules match the VNI.
        _, decapsulated = vxlan_decapsulate(outer)
        snic.rx_port.wire_arrival(decapsulated)
        delivered = snic.process_ingress()
        assert delivered == {tenant_a.nf_id: 1}
        assert tenant_b.receive() is None
        received = tenant_a.receive()
        assert received.five_tuple == inner.five_tuple


class TestSecureOutsourcing:
    """Figure 4b: attested constellation across NIC and host enclaves."""

    def test_end_to_end_trusted_pipeline(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=13)
        nic_os = NICOS(snic)
        middlebox = nic_os.NF_create(
            NFConfig(
                name="tls-middlebox", core_ids=(0,), memory_bytes=4 * MB,
                initial_image=b"audited-middlebox-v1",
            )
        )
        # The tenant audited this exact image; it knows the hash.
        twin = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=99)
        twin_os = NICOS(twin)
        expected_hash = twin_os.NF_create(
            NFConfig(
                name="tls-middlebox", core_ids=(0,), memory_bytes=4 * MB,
                initial_image=b"audited-middlebox-v1",
            )
        ).state_hash
        verifier = Verifier(snic.vendor_ca.public_key, seed=2)
        nonce = verifier.hello()
        session = middlebox.attest(nonce, params=SMALL_DH)
        gy, key = verifier.complete_exchange(
            session.quote, expected_state_hash=expected_hash
        )
        assert session.session_key(gy) == key

        # Build the constellation with a host enclave.
        service_ca = VendorCA(key_bits=512, seed=44)
        constellation = Constellation(snic.vendor_ca, service_ca, seed=3)
        enclave = SGXEnclave("backend", b"db-code", service_ca, seed=4)
        constellation.add_function("mb", middlebox)
        constellation.add_enclave("backend", enclave)
        constellation.link("mb", "backend")
        plaintext = b"decrypted-flow-records"
        assert constellation.send("mb", "backend", plaintext) == plaintext
        assert constellation.tap.captured[0][2] != plaintext


class TestAttackMatrix:
    """The paper's core claim, as one table: attacks succeed on
    commodity NICs and are blocked on S-NIC."""

    def test_packet_corruption_matrix(self):
        result, clean, attacked = run_packet_corruption_experiment(n_packets=6)
        assert result.succeeded and attacked < clean  # commodity: wins

        # S-NIC: the equivalent scan primitive does not exist; a
        # malicious NF can only address its own extent.
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=14)
        nic_os = NICOS(snic)
        victim = nic_os.NF_create(
            NFConfig(
                name="nat", core_ids=(0,), memory_bytes=4 * MB,
                vpp=VPPConfig(rules=[MatchRule()]),
            )
        )
        attacker = nic_os.NF_create(
            NFConfig(name="evil", core_ids=(1,), memory_bytes=4 * MB)
        )
        snic.rx_port.wire_arrival(Packet.make("10.0.0.1", "8.8.8.8"))
        snic.process_ingress()
        ring = snic.record(victim.nf_id).vpp.rx_ring
        frame_addr, _ = ring.peek_descriptors()[0]
        # The attacker cannot even *name* that physical address.
        with pytest.raises(IsolationViolation):
            attacker.write(frame_addr, b"\xff")

    def test_bus_dos_matrix(self):
        assert bus_dos_attack(AgilioNIC()).succeeded  # commodity: crash

        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=15)
        nic_os = NICOS(snic)
        victim = nic_os.NF_create(
            NFConfig(name="victim", core_ids=(0,), memory_bytes=4 * MB)
        )
        attacker = nic_os.NF_create(
            NFConfig(name="dos", core_ids=(1,), memory_bytes=4 * MB)
        )
        for _ in range(2000):
            attacker.bus_transfer(8, now_ns=0.0)
        # No crash, and a twin quiet system gives identical latency.
        quiet = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=15)
        quiet_os = NICOS(quiet)
        quiet_victim = quiet_os.NF_create(
            NFConfig(name="victim", core_ids=(0,), memory_bytes=4 * MB)
        )
        quiet_os.NF_create(NFConfig(name="dos", core_ids=(1,), memory_bytes=4 * MB))
        assert victim.bus_transfer(1024, 1e6) == pytest.approx(
            quiet_victim.bus_transfer(1024, 1e6)
        )

    def test_state_stealing_matrix(self):
        from repro.commodity.attacks import run_dpi_stealing_experiment

        result, ruleset = run_dpi_stealing_experiment(ruleset=b"R" * 64)
        assert result.succeeded and result.evidence[0] == ruleset

        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=16)
        nic_os = NICOS(snic)
        victim = nic_os.NF_create(
            NFConfig(
                name="dpi", core_ids=(0,), memory_bytes=4 * MB,
                initial_image=b"R" * 64,
            )
        )
        attacker = nic_os.NF_create(
            NFConfig(name="thief", core_ids=(1,), memory_bytes=4 * MB)
        )
        with pytest.raises(IsolationViolation):
            attacker.read(snic.record(victim.nf_id).extent_base, 64)
        with pytest.raises(IsolationViolation):
            nic_os.attempt_function_state_read(victim.nf_id)
