"""Tests for repro.net.flows and repro.net.traces."""

import numpy as np
import pytest

from repro.net.flows import Flow, FlowGenerator, zipf_weights
from repro.net.traces import (
    CAIDA_2016_FLOWS,
    SyntheticTrace,
    TraceConfig,
    make_caida_like_trace,
    make_ictf_like_trace,
)


class TestZipfWeights:
    def test_normalized(self):
        assert abs(zipf_weights(1000, 1.1).sum() - 1.0) < 1e-12

    def test_monotone_decreasing(self):
        w = zipf_weights(100, 1.1)
        assert all(w[i] >= w[i + 1] for i in range(99))

    def test_skew_concentrates_head(self):
        flat = zipf_weights(1000, 0.5)[0]
        steep = zipf_weights(1000, 2.0)[0]
        assert steep > flat

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.1)


class TestFlowGenerator:
    def test_deterministic(self):
        a = FlowGenerator(100, seed=5)
        b = FlowGenerator(100, seed=5)
        assert [f.five_tuple for f in a.flows] == [f.five_tuple for f in b.flows]

    def test_distinct_seeds_differ(self):
        a = FlowGenerator(100, seed=5)
        b = FlowGenerator(100, seed=6)
        assert [f.five_tuple for f in a.flows] != [f.five_tuple for f in b.flows]

    def test_flows_unique(self):
        gen = FlowGenerator(500, seed=1)
        assert len({f.five_tuple for f in gen.flows}) == 500

    def test_sample_respects_zipf(self):
        gen = FlowGenerator(1000, zipf_skew=1.1, seed=2)
        indices = gen.sample_indices(20_000)
        # Rank 0 should dominate any mid-tail rank.
        head = int((indices == 0).sum())
        mid = int((indices == 500).sum())
        assert head > mid

    def test_packets_have_flow_tuples(self):
        gen = FlowGenerator(50, seed=3)
        tuples = {f.five_tuple for f in gen.flows}
        for packet in gen.packets(100):
            assert packet.five_tuple in tuples

    def test_packets_fixed_payload_size(self):
        gen = FlowGenerator(10, seed=4)
        for packet in gen.packets(20, payload_size=99):
            assert len(packet.payload) == 99

    def test_packets_arrival_monotone(self):
        gen = FlowGenerator(10, seed=4)
        arrivals = [p.arrival_ns for p in gen.packets(50)]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_subsample(self):
        gen = FlowGenerator(200, seed=7)
        child = gen.subsample(50)
        assert child.n_flows == 50
        parent_tuples = {f.five_tuple for f in gen.flows}
        assert all(f.five_tuple in parent_tuples for f in child.flows)

    def test_subsample_too_large(self):
        with pytest.raises(ValueError):
            FlowGenerator(10, seed=1).subsample(11)

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            FlowGenerator(0)


class TestTraces:
    def test_caida_like_scaling(self):
        trace = make_caida_like_trace(scale=1e-5)
        assert trace.config.modeled_flows == CAIDA_2016_FLOWS
        assert trace.config.generated_flows == int(CAIDA_2016_FLOWS * 1e-5)
        assert len(trace.flows) == trace.config.generated_flows

    def test_ictf_like_default_models_100k(self):
        trace = make_ictf_like_trace(scale=0.005)
        assert trace.config.modeled_flows == 100_000
        assert trace.config.zipf_skew == 1.1

    def test_packets_default_count(self):
        trace = make_ictf_like_trace(scale=0.002)
        packets = list(trace.packets(50))
        assert len(packets) == 50

    def test_window_flow_counts(self):
        trace = make_ictf_like_trace(scale=0.005)
        counts = trace.window_flow_counts(4)
        assert len(counts) == 4
        assert all(c > 0 for c in counts)
        # Each window sees at most the generated flow count.
        assert max(counts) <= trace.config.generated_flows

    def test_deterministic_by_seed(self):
        a = make_ictf_like_trace(scale=0.002, seed=9)
        b = make_ictf_like_trace(scale=0.002, seed=9)
        assert [f.five_tuple for f in a.flows] == [f.five_tuple for f in b.flows]
