"""The repro.shard subsystem: partition plan, message frames, and the
worker-count-invariant engine.

The headline contract under test: for a fixed seed, a sharded run's
merged report is byte-identical for ANY worker count — the partition
plan is a pure function of the spec, the engine only schedules it.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.scenario.matrix import cell_spec, default_axes, expand, load_spec
from repro.scenario.spec import ScenarioSpec, ShardSpec, SpecError
from repro.shard.engine import (
    _grants_for,
    run_cell_sharded,
    run_scorecard_sharded,
    run_sharded_partitions,
)
from repro.shard.frames import (
    ShardError,
    TaskFrame,
    packet_from_frame,
    packet_to_frame,
    registry_from_frame,
    registry_to_frame,
)
from repro.shard.partition import (
    effective_partitions,
    link_latency_ns,
    partition_specs,
)

EXAMPLES = Path(__file__).parent.parent / "examples"


def quick_cell(index: int = 0):
    return expand(default_axes(quick=True), base_seed=7, reps=1)[index]


# ----------------------------------------------------------------------
# ShardSpec schema
# ----------------------------------------------------------------------

class TestShardSpec:
    def test_defaults(self):
        shard = ShardSpec()
        assert shard.partitions == 4
        assert shard.link_latency_ns == 800

    @pytest.mark.parametrize("kwargs", [
        {"partitions": 0},
        {"partitions": -1},
        {"partitions": True},
        {"partitions": 2.0},
        {"link_latency_ns": 0},
        {"link_latency_ns": False},
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(SpecError):
            ShardSpec(**kwargs)

    def test_round_trip(self):
        shard = ShardSpec(partitions=8, link_latency_ns=1200)
        assert ShardSpec.from_dict(shard.to_dict()) == shard

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError):
            ShardSpec.from_dict({"partitions": 2, "workers": 4})

    def test_scenario_spec_round_trips_shard_block(self):
        spec = cell_spec(quick_cell(), quick=True)
        sharded = dataclasses.replace(
            spec, shard=ShardSpec(partitions=2, link_latency_ns=900))
        again = ScenarioSpec.from_dict(sharded.to_dict())
        assert again.shard == sharded.shard
        # Absent block stays absent.
        assert ScenarioSpec.from_dict(spec.to_dict()).shard is None


# ----------------------------------------------------------------------
# The partition plan
# ----------------------------------------------------------------------

class TestPartitionPlan:
    def test_partition_count_clamps_to_tenants(self):
        spec = cell_spec(quick_cell(), quick=True)  # 2 tenants
        assert effective_partitions(spec) == 2
        assert effective_partitions(
            dataclasses.replace(spec, shard=ShardSpec(partitions=1))) == 1

    def test_chunks_are_contiguous_in_spec_order(self):
        spec = cell_spec(quick_cell(1), quick=True)
        parts = partition_specs(spec)
        flattened = [t.name for p in parts for t in p.tenants]
        assert flattened == [t.name for t in spec.tenants]

    def test_packet_shares_sum_exactly(self):
        spec = cell_spec(quick_cell(1), quick=True)
        parts = partition_specs(spec)
        assert sum(p.traffic.n_packets for p in parts) \
            == spec.traffic.n_packets

    def test_partition_seeds_are_distinct_and_deterministic(self):
        spec = cell_spec(quick_cell(), quick=True)
        seeds = [p.seed for p in partition_specs(spec)]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [p.seed for p in partition_specs(spec)]

    def test_fault_lands_only_on_its_targets_chunk(self):
        spec = cell_spec(quick_cell(), quick=True)
        assert spec.fault is not None
        target = spec.fault.tenant or spec.tenants[-1].name
        parts = partition_specs(spec)
        with_fault = [p for p in parts if p.fault is not None]
        assert len(with_fault) == 1
        assert target in {t.name for t in with_fault[0].tenants}

    def test_plan_never_depends_on_worker_count(self):
        # There is no worker-count input to take: the plan is a pure
        # function of the spec, which is the invariance argument.
        spec = cell_spec(quick_cell(), quick=True)
        a = [p.to_dict() for p in partition_specs(spec)]
        b = [p.to_dict() for p in partition_specs(spec)]
        assert a == b

    def test_partitions_validate_as_specs(self):
        spec = cell_spec(quick_cell(1), quick=True)
        for part in partition_specs(spec):
            ScenarioSpec.from_dict(part.to_dict())  # re-validates
            assert part.shard is None  # no recursive decomposition

    def test_grants_respect_lookahead_windows(self):
        spec = partition_specs(cell_spec(quick_cell(), quick=True))[0]
        lookahead = link_latency_ns(cell_spec(quick_cell(), quick=True))
        grants = _grants_for(spec, lookahead, 0)
        assert grants, "expected at least one grant window"
        previous_horizon = 0
        for grant in grants:
            assert grant.horizon_ns > previous_horizon
            for entry in grant.packets:
                # No packet may arrive after its grant's horizon (it
                # would be an event in some shard's future)...
                assert entry["arrival_ns"] < grant.horizon_ns
                # ...nor before the previous horizon (an event in the
                # shard's past).
                assert entry["arrival_ns"] >= previous_horizon
            previous_horizon = grant.horizon_ns


# ----------------------------------------------------------------------
# Frames: everything crossing the boundary is plain data
# ----------------------------------------------------------------------

class TestFrames:
    def test_packet_round_trip_keeps_sideband_fields(self):
        from repro.net.packet import Packet

        packet = Packet.make("10.0.0.1", "10.0.1.9", src_port=4001,
                             dst_port=80, payload=b"x" * 64)
        packet.arrival_ns = 12_345
        packet.vni = 7
        frame = packet_to_frame(packet)
        assert isinstance(frame["raw"], bytes)
        again = packet_from_frame(frame)
        assert again.arrival_ns == 12_345
        assert again.vni == 7
        assert again.to_bytes() == packet.to_bytes()

    def test_registry_round_trip_preserves_instruments(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("pkts_total", tenant="t1").inc(3)
        registry.gauge("depth", tenant="t1").set(9)
        hist = registry.histogram("lat_ns", tenant="t1")
        for value in (10.0, 200.0, 3000.0):
            hist.observe(value)
        again = registry_from_frame(registry_to_frame(registry))
        assert again.snapshot() == registry.snapshot()

    def test_frames_pickle_cleanly(self):
        import pickle

        task = TaskFrame(index=1, spec={"name": "x"}, mode="cell")
        assert pickle.loads(pickle.dumps(task)) == task


# ----------------------------------------------------------------------
# The engine: worker-count invariance, end to end
# ----------------------------------------------------------------------

class TestEngineInvariance:
    def test_cell_record_is_byte_identical_across_worker_counts(self):
        cell = quick_cell()
        rendered = [
            json.dumps(run_cell_sharded(cell, quick=True,
                                        workers=n).as_dict(),
                       sort_keys=True)
            for n in (1, 2, 4)
        ]
        assert rendered[0] == rendered[1] == rendered[2]
        record = json.loads(rendered[0])
        assert record["status"] == "ok"
        assert record["outputs"]["packets_completed"] > 0

    def test_slo_report_is_byte_identical_across_worker_counts(self):
        rendered = [
            json.dumps(run_scorecard_sharded(
                n_tenants=4, seed=7, quick=True, arbiters=("fcfs",),
                workers=n), sort_keys=True)
            for n in (1, 3)
        ]
        assert rendered[0] == rendered[1]
        report = json.loads(rendered[0])
        block = report["arbiters"]["fcfs"]
        assert [row["tenant"] for row in block["tenants"]] \
            == ["t001", "t002", "t003", "t004"]
        assert block["audit"]["chain_ok"] is True

    def test_unknown_mode_raises_shard_error(self):
        spec = partition_specs(cell_spec(quick_cell(), quick=True))[0]
        task = TaskFrame(index=0, spec=spec.to_dict(), mode="bogus")
        with pytest.raises(ShardError):
            run_sharded_partitions([(task, None)], workers=1)

    def test_checker_asserts_shard_invariance(self):
        from repro.analysis.determinism import check_shard_invariance

        report = check_shard_invariance(worker_counts=(1, 2))
        assert report.deterministic, report.render()


# ----------------------------------------------------------------------
# YAML spec loading (satellite: --spec file.yaml)
# ----------------------------------------------------------------------

class TestYamlSpecs:
    def test_yaml_and_json_paths_load_identical_specs(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        json_path = EXAMPLES / "slo_scenario.json"
        spec = load_spec(str(json_path))
        yaml_path = tmp_path / "spec.yaml"
        yaml_path.write_text(yaml.safe_dump(
            json.loads(json_path.read_text())))
        assert load_spec(str(yaml_path)) == spec

    def test_example_yaml_spec_carries_shard_block(self):
        pytest.importorskip("yaml")
        spec = load_spec(str(EXAMPLES / "shard_scenario.yaml"))
        assert spec.shard == ShardSpec(partitions=2, link_latency_ns=800)
        assert effective_partitions(spec) == 2

    def test_non_mapping_yaml_is_rejected(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "list.yaml"
        path.write_text("- just\n- a\n- list\n")
        with pytest.raises(ValueError):
            load_spec(str(path))
