"""Kernel-driven time-series sampling: deterministic cadence,
cooperative shutdown, aligned export."""

from __future__ import annotations

import json

import pytest

from repro.hw.events import Simulator
from repro.obs.timeseries import (
    Series,
    TimeSeriesSampler,
    merge_series_csv,
    sample_function,
)


class TestSeries:
    def test_points_and_latest(self):
        series = Series("x")
        assert series.latest() is None
        series.append(0.0, 1.0)
        series.append(10.0, 2.0)
        assert series.points() == [(0.0, 1.0), (10.0, 2.0)]
        assert series.latest() == (10.0, 2.0)
        assert len(series) == 2

    def test_ring_drops_the_oldest(self):
        series = Series("x", capacity=3)
        for i in range(5):
            series.append(float(i), float(i * i))
        assert series.times == [2.0, 3.0, 4.0]
        assert series.values == [4.0, 9.0, 16.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Series("x", capacity=0)


def drain(sim: Simulator) -> None:
    while sim.pending:
        sim.step()


def workload(sim: Simulator, counter: dict, at_ns) -> None:
    for t in at_ns:
        sim.schedule(t, lambda: counter.__setitem__(
            "n", counter["n"] + 1))


class TestSampler:
    def test_samples_on_the_grid_and_stops_when_idle(self):
        sim = Simulator()
        counter = {"n": 0}
        workload(sim, counter, [300, 1300, 2300, 3300, 4300])
        sampler = TimeSeriesSampler(sim, interval_ns=1000)
        series = sampler.watch("events_seen", lambda: float(counter["n"]))
        sampler.start()
        drain(sim)  # terminates: the sampler stops rescheduling itself
        assert not sampler.running
        assert series.times == [0.0, 1000.0, 2000.0, 3000.0, 4000.0, 5000.0]
        assert series.values == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_until_horizon_keeps_sampling_without_other_work(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_ns=500)
        series = sampler.watch("const", lambda: 7.0)
        sampler.start(until_ns=2000)
        drain(sim)
        assert series.times == [0.0, 500.0, 1000.0, 1500.0, 2000.0]
        assert all(v == 7.0 for v in series.values)

    def test_two_runs_are_byte_identical(self):
        def one_run() -> str:
            sim = Simulator()
            counter = {"n": 0}
            workload(sim, counter, [300, 1300, 2300])
            sampler = TimeSeriesSampler(sim, interval_ns=1000)
            sampler.watch("events_seen", lambda: float(counter["n"]))
            sampler.start()
            drain(sim)
            sampler.sample_now()
            return sampler.to_csv()

        assert one_run() == one_run()

    def test_duplicate_name_rejected(self):
        sampler = TimeSeriesSampler(Simulator(), interval_ns=100)
        sampler.watch("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.watch("x", lambda: 1.0)

    def test_double_start_rejected(self):
        sampler = TimeSeriesSampler(Simulator(), interval_ns=100)
        sampler.start(until_ns=1000)
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(Simulator(), interval_ns=0)

    def test_csv_rows_are_aligned_and_sorted(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_ns=100)
        sampler.watch("b_metric", lambda: 2.0)
        sampler.watch("a_metric", lambda: 1.0)
        sampler.start(until_ns=200)
        drain(sim)
        header, rows = sampler.rows()
        assert header == ["time_ns", "a_metric", "b_metric"]
        assert rows == [[0.0, 1.0, 2.0], [100.0, 1.0, 2.0],
                        [200.0, 1.0, 2.0]]
        csv = sampler.to_csv()
        assert csv.splitlines()[0] == "time_ns,a_metric,b_metric"
        assert csv.splitlines()[1] == "0,1,2"

    def test_json_export_round_trips(self, tmp_path):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_ns=100)
        sampler.watch("x", lambda: 3.5)
        sampler.start(until_ns=100)
        drain(sim)
        path = tmp_path / "series.json"
        sampler.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["interval_ns"] == 100
        assert payload["series"]["x"]["values"] == [3.5, 3.5]

    def test_stop_cancels_the_pending_tick(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_ns=100)
        series = sampler.watch("x", lambda: 1.0)
        sampler.start(until_ns=10_000)
        sampler.stop()
        assert not sampler.running
        drain(sim)  # the cancelled tick must not fire
        assert series.times == [0.0]


class TestSampleFunction:
    def test_grid_is_inclusive_and_accumulation_free(self):
        series = sample_function(lambda t: t, start=0.0, stop=150.0,
                                 step=0.5)
        assert len(series) == 301
        assert series.times[0] == 0.0
        assert series.times[-1] == 150.0  # exact, no fp drift
        assert series.values[100] == series.times[100]

    def test_step_must_be_positive(self):
        with pytest.raises(ValueError):
            sample_function(lambda t: t, 0.0, 1.0, 0.0)


class TestMergeSeriesCsv:
    def test_shared_grid_merges_into_columns(self):
        a = sample_function(lambda t: t, 0.0, 2.0, 1.0, name="a")
        b = sample_function(lambda t: t * 10, 0.0, 2.0, 1.0, name="b")
        csv = merge_series_csv([a, b], time_label="time_s")
        assert csv.splitlines() == ["time_s,a,b", "0,0,0", "1,1,10",
                                    "2,2,20"]

    def test_mismatched_grids_are_rejected(self):
        a = sample_function(lambda t: t, 0.0, 2.0, 1.0, name="a")
        b = sample_function(lambda t: t, 0.0, 2.0, 0.5, name="b")
        with pytest.raises(ValueError):
            merge_series_csv([a, b])

    def test_empty_input(self):
        assert merge_series_csv([]) == "t\n"
