"""The flight recorder: ring semantics, sim-time windowing, tracer
mirroring, metric deltas, and the strict disabled no-op."""

from __future__ import annotations

from repro.obs import auditlog, flight, metrics
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.tracer import get_tracer


class TestRingSemantics:
    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=8)
        recorder.enable()
        for i in range(50):
            recorder.record("event", f"e{i}", ts_ns=float(i))
        assert len(recorder) == 8
        assert [e.name for e in recorder.entries()] == \
            [f"e{i}" for i in range(42, 50)]

    def test_window_evicts_by_sim_age(self):
        recorder = FlightRecorder(capacity=100, window_ns=10.0)
        recorder.enable()
        for ts in (0.0, 2.0, 5.0, 11.0, 14.0):
            recorder.record("event", f"t{ts}", ts_ns=ts)
        # now=14, window=10 → entries with ts < 4 are gone.
        assert [e.ts_ns for e in recorder.entries()] == [5.0, 11.0, 14.0]

    def test_tail_returns_json_ready_dicts(self):
        recorder = FlightRecorder()
        recorder.enable()
        recorder.record("audit", "tlb.install", ts_ns=3.0, tenant=1,
                        track="audit", args={"bank": "c0"})
        (entry,) = recorder.tail()
        assert entry == {"kind": "audit", "name": "tlb.install",
                         "ts_ns": 3.0, "tenant": 1, "track": "audit",
                         "args": {"bank": "c0"}}

    def test_tail_n_takes_the_most_recent(self):
        recorder = FlightRecorder()
        recorder.enable()
        for i in range(10):
            recorder.record("event", f"e{i}", ts_ns=float(i))
        assert [e["name"] for e in recorder.tail(3)] == ["e7", "e8", "e9"]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_internal_tick_advances_without_a_clock(self):
        recorder = FlightRecorder()
        recorder.enable()
        recorder.record("event", "a")
        recorder.record("event", "b")
        ts = [e.ts_ns for e in recorder.entries()]
        assert ts == sorted(ts) and len(set(ts)) == 2


class TestDisabledNoOp:
    def test_disabled_record_is_a_no_op(self):
        recorder = FlightRecorder()
        recorder.record("event", "x", ts_ns=1.0)
        recorder.record_trace(object())  # not even attribute-touched
        assert len(recorder) == 0

    def test_disabled_note_metrics_reads_nothing(self):
        recorder = FlightRecorder()
        assert recorder.note_metrics() == 0
        assert recorder._metric_baseline == {}


class TestTracerMirror:
    def test_enable_attaches_mirror_and_disable_detaches(self):
        flight.enable_flight_recording()
        assert get_tracer().mirror is flight.get_flight_recorder()
        flight.disable_flight_recording()
        assert get_tracer().mirror is None

    def test_tracer_events_are_mirrored_into_the_ring(self):
        from repro.obs.tracer import enable_tracing, disable_tracing

        flight.enable_flight_recording()
        tracer = enable_tracing(clock=lambda: 100)
        try:
            tracer.instant("pkt.drop", tenant=3, track="net")
            tracer.complete("dma.xfer", ts_ns=50, dur_ns=10, tenant=1)
            tracer.counter_sample("queue_depth", 4.0)
        finally:
            disable_tracing()
            get_tracer().clear()
        kinds = [(e.kind, e.name) for e in
                 flight.get_flight_recorder().entries()]
        assert ("event", "pkt.drop") in kinds
        assert ("span", "dma.xfer") in kinds
        assert ("counter", "queue_depth") in kinds

    def test_mirror_keeps_only_the_tail_while_tracer_keeps_all(self):
        from repro.obs.tracer import enable_tracing, disable_tracing

        flight.enable_flight_recording(capacity=4)
        tracer = enable_tracing(clock=lambda: 0)
        try:
            for i in range(20):
                tracer.instant(f"e{i}", tenant=None)
            assert len(tracer.events) == 20
            assert len(flight.get_flight_recorder()) == 4
        finally:
            disable_tracing()
            get_tracer().clear()
            flight.reset()  # also restores the default ring capacity


class TestMetricDeltas:
    def test_note_metrics_records_changed_values_once(self):
        flight.enable_flight_recording()
        recorder = flight.get_flight_recorder()
        counter = metrics.get_registry().counter(
            "fixture_flight_total", tenant=1)
        counter.inc(5)
        first = recorder.note_metrics(ts_ns=1.0)
        assert first >= 1
        # No changes → no new entries.
        assert recorder.note_metrics(ts_ns=2.0) == 0
        counter.inc(2)
        assert recorder.note_metrics(ts_ns=3.0) == 1
        deltas = [e for e in recorder.entries() if e.kind == "metric"
                  and "fixture_flight_total" in e.name]
        assert deltas[-1].args["delta"] == 2.0
        assert deltas[-1].args["value"] == 7.0


class TestEnableDisableLifecycle:
    def test_enable_refreshes_the_audit_emitter(self):
        flight.enable_flight_recording()
        assert auditlog.get_emitter().active is True
        flight.disable_flight_recording()
        assert auditlog.get_emitter().active is False

    def test_capacity_override_rebuilds_preserving_entries(self):
        flight.enable_flight_recording()
        recorder = flight.get_flight_recorder()
        for i in range(6):
            recorder.record("event", f"e{i}", ts_ns=float(i))
        flight.enable_flight_recording(capacity=4)
        assert recorder.capacity == 4
        assert [e.name for e in recorder.entries()] == \
            ["e2", "e3", "e4", "e5"]

    def test_reset_restores_import_time_state(self):
        flight.enable_flight_recording(capacity=16, window_ns=50.0,
                                       clock=lambda: 9.0)
        flight.get_flight_recorder().record("event", "x")
        flight.reset()
        recorder = flight.get_flight_recorder()
        assert recorder.enabled is False
        assert len(recorder) == 0
        assert recorder.window_ns is None
        # Internal ticks resume from a cleared state.
        recorder.enable()
        recorder.record("event", "y")
        assert recorder.entries()[0].ts_ns == 1.0
