"""Tests for repro.obs.windows: sim-time windowed delta aggregation."""

import pytest

from repro.hw.events import Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import (
    DEFAULT_PREFIXES,
    WindowedAggregator,
    WindowSnapshot,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRotation:
    def test_counter_deltas_per_window(self, registry):
        sim = Simulator()
        counter = registry.counter("slo_events_total", tenant=1)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        counter.inc(3)
        agg.rotate(now_ns=100)
        counter.inc(5)
        agg.rotate(now_ns=200)
        assert agg.snapshots[0].counter("slo_events_total", tenant=1) == 3
        assert agg.snapshots[1].counter("slo_events_total", tenant=1) == 5

    def test_pre_start_state_excluded_from_window_zero(self, registry):
        sim = Simulator()
        counter = registry.counter("slo_events_total", tenant=1)
        counter.inc(40)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        counter.inc(2)
        snap = agg.rotate(now_ns=100)
        assert snap.counter("slo_events_total", tenant=1) == 2

    def test_untracked_prefixes_ignored(self, registry):
        sim = Simulator()
        registry.counter("cache_hits_total", tenant=1).inc(9)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        registry.counter("cache_hits_total", tenant=1).inc(9)
        snap = agg.rotate(now_ns=100)
        assert snap.counters == {}

    def test_default_prefixes_cover_slo_and_interference(self):
        assert "slo_" in DEFAULT_PREFIXES
        assert "interference_" in DEFAULT_PREFIXES

    def test_window_indices_and_bounds(self, registry):
        sim = Simulator()
        agg = WindowedAggregator(sim, window_ns=50, registry=registry)
        agg.start()
        first = agg.rotate(now_ns=50)
        second = agg.rotate(now_ns=120)
        assert (first.index, first.start_ns, first.end_ns) == (0, 0.0, 50.0)
        assert (second.index, second.start_ns, second.end_ns) == \
            (1, 50.0, 120.0)
        assert second.duration_ns == 70.0

    def test_max_windows_prunes_oldest(self, registry):
        sim = Simulator()
        agg = WindowedAggregator(sim, window_ns=10, registry=registry,
                                 max_windows=3)
        agg.start()
        for i in range(5):
            agg.rotate(now_ns=(i + 1) * 10)
        assert len(agg.snapshots) == 3
        assert agg.windows_dropped == 2
        assert [s.index for s in agg.snapshots] == [2, 3, 4]

    def test_on_rotate_callback_sees_each_snapshot(self, registry):
        sim = Simulator()
        seen = []
        agg = WindowedAggregator(sim, window_ns=10, registry=registry,
                                 on_rotate=seen.append)
        agg.start()
        agg.rotate(now_ns=10)
        agg.rotate(now_ns=20)
        assert [s.index for s in seen] == [0, 1]
        assert all(isinstance(s, WindowSnapshot) for s in seen)

    def test_validation(self, registry):
        sim = Simulator()
        with pytest.raises(ValueError):
            WindowedAggregator(sim, window_ns=0, registry=registry)
        with pytest.raises(ValueError):
            WindowedAggregator(sim, window_ns=10, registry=registry,
                               max_windows=0)


class TestKernelDriven:
    def test_scheduled_rotation_on_sim_time(self, registry):
        sim = Simulator()
        counter = registry.counter("slo_events_total", tenant=1)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        for t in (30, 60, 130, 160):
            sim.schedule_at(t, lambda: counter.inc())
        sim.schedule_at(170, lambda: None)
        sim.run()
        agg.close()
        assert agg.total_counter("slo_events_total", tenant=1) == 4
        assert agg.snapshots[0].end_ns == 100
        assert agg.snapshots[0].counter("slo_events_total", tenant=1) == 2

    def test_cooperative_termination_does_not_spin_kernel(self, registry):
        sim = Simulator()
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        sim.schedule_at(250, lambda: None)
        sim.run()
        # After draining, the aggregator must not have kept rescheduling
        # itself forever — the kernel stopped close to the last event.
        assert sim.now_ns <= 400
        assert not sim.pending

    def test_start_twice_raises(self, registry):
        sim = Simulator()
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        with pytest.raises(RuntimeError):
            agg.start()
        agg.stop()
        assert not agg.running

    def test_close_is_idempotent_and_drops_empty_tail(self, registry):
        sim = Simulator()
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        agg.rotate(now_ns=100)
        agg.close(now_ns=100)
        agg.close(now_ns=100)
        assert len(agg.snapshots) == 1


class TestDeltaHistograms:
    def test_histogram_delta_counts_and_sum(self, registry):
        sim = Simulator()
        hist = registry.histogram("slo_latency_ns", tenant=1)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        hist.observe(500.0)
        hist.observe(1500.0)
        snap1 = agg.rotate(now_ns=100)
        hist.observe(2500.0)
        snap2 = agg.rotate(now_ns=200)
        delta1 = snap1.histogram("slo_latency_ns", tenant=1)
        delta2 = snap2.histogram("slo_latency_ns", tenant=1)
        assert delta1.count == 2 and delta1.sum == 2000.0
        assert delta2.count == 1 and delta2.sum == 2500.0

    def test_untouched_histogram_absent_from_window(self, registry):
        sim = Simulator()
        registry.histogram("slo_latency_ns", tenant=1)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        snap = agg.rotate(now_ns=100)
        assert snap.histogram("slo_latency_ns", tenant=1) is None

    def test_merge_windows_reproduces_cumulative(self, registry):
        sim = Simulator()
        hist = registry.histogram("slo_latency_ns", tenant=1)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        samples = [100.0, 900.0, 4000.0, 12_000.0, 55_000.0, 200.0]
        for i, value in enumerate(samples):
            hist.observe(value)
            if i % 2:
                agg.rotate(now_ns=(i + 1) * 100)
        agg.close(now_ns=1000)
        merged = agg.merged_histogram("slo_latency_ns", tenant=1)
        assert merged.counts == hist.counts
        assert merged.count == hist.count
        assert merged.sum == hist.sum

    def test_delta_extrema_bucket_resolved(self, registry):
        sim = Simulator()
        hist = registry.histogram("slo_latency_ns", tenant=1)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        hist.observe(700.0)
        snap = agg.rotate(now_ns=100)
        delta = snap.histogram("slo_latency_ns", tenant=1)
        # 700 falls in some bucket [lo, hi]: the reconstructed extrema
        # must bracket the sample at bucket resolution.
        assert delta.min <= 700.0 <= delta.max


class TestInterferenceReadThrough:
    def test_cross_tenant_wait_by_victim(self, registry):
        sim = Simulator()
        registry.counter("interference_wait_ns_total", resource="bus",
                         tenant=1, culprit=2).inc(300.0)
        registry.counter("interference_wait_ns_total", resource="dma",
                         tenant=1, culprit=3).inc(200.0)
        registry.counter("interference_wait_ns_total", resource="bus",
                         tenant=2, culprit=2).inc(999.0)  # self-wait
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        registry.counter("interference_wait_ns_total", resource="bus",
                         tenant=1, culprit=2).inc(300.0)
        registry.counter("interference_wait_ns_total", resource="dma",
                         tenant=1, culprit=3).inc(200.0)
        registry.counter("interference_wait_ns_total", resource="bus",
                         tenant=2, culprit=2).inc(999.0)
        snap = agg.rotate(now_ns=100)
        assert snap.cross_tenant_wait_by_victim() == {"1": 500.0}

    def test_snapshot_as_dict_is_jsonable(self, registry):
        import json

        sim = Simulator()
        registry.counter("slo_events_total", tenant=1)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry)
        agg.start()
        registry.counter("slo_events_total", tenant=1).inc()
        snap = agg.rotate(now_ns=100)
        payload = json.loads(json.dumps(snap.as_dict()))
        assert payload["index"] == 0
        assert payload["n_counters"] == 1
