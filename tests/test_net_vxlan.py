"""Tests for repro.net.vxlan: RFC 7348 encapsulation."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import PROTO_UDP, Packet, UDPHeader, ip_to_int
from repro.net.vxlan import (
    VXLAN_UDP_PORT,
    VXLANHeader,
    vxlan_decapsulate,
    vxlan_encapsulate,
)


class TestVXLANHeader:
    def test_roundtrip(self):
        h = VXLANHeader(vni=0xABCDE)
        assert VXLANHeader.unpack(h.pack()) == h

    def test_pack_length(self):
        assert len(VXLANHeader(vni=1).pack()) == 8

    def test_rejects_out_of_range_vni(self):
        with pytest.raises(ValueError):
            VXLANHeader(vni=1 << 24)

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            VXLANHeader.unpack(b"\x08\x00")

    def test_rejects_missing_vni_flag(self):
        raw = bytearray(VXLANHeader(vni=5).pack())
        raw[0] = 0
        with pytest.raises(ValueError):
            VXLANHeader.unpack(bytes(raw))

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_vni_roundtrip_property(self, vni):
        assert VXLANHeader.unpack(VXLANHeader(vni=vni).pack()).vni == vni


class TestEncapDecap:
    def _inner(self):
        return Packet.make(
            "192.168.1.1", "192.168.1.2", src_port=5, dst_port=6, payload=b"data"
        )

    def test_roundtrip(self):
        inner = self._inner()
        outer = vxlan_encapsulate(
            inner, vni=100, outer_src_ip=ip_to_int("1.1.1.1"),
            outer_dst_ip=ip_to_int("2.2.2.2"),
        )
        vni, decapsulated = vxlan_decapsulate(outer)
        assert vni == 100
        assert decapsulated.vni == 100
        assert decapsulated.five_tuple == inner.five_tuple
        assert decapsulated.payload == b"data"

    def test_outer_transport_shape(self):
        outer = vxlan_encapsulate(
            self._inner(), vni=1, outer_src_ip=1, outer_dst_ip=2
        )
        assert outer.ip.proto == PROTO_UDP
        assert isinstance(outer.l4, UDPHeader)
        assert outer.l4.dst_port == VXLAN_UDP_PORT

    def test_outer_survives_wire_roundtrip(self):
        outer = vxlan_encapsulate(
            self._inner(), vni=77, outer_src_ip=3, outer_dst_ip=4
        )
        reparsed = Packet.from_bytes(outer.to_bytes())
        vni, inner = vxlan_decapsulate(reparsed)
        assert vni == 77
        assert inner.payload == b"data"

    def test_decap_rejects_non_vxlan(self):
        plain = self._inner()
        with pytest.raises(ValueError):
            vxlan_decapsulate(plain)

    def test_decap_preserves_arrival_time(self):
        outer = vxlan_encapsulate(
            self._inner(), vni=1, outer_src_ip=1, outer_dst_ip=2
        )
        outer.arrival_ns = 555
        _, inner = vxlan_decapsulate(outer)
        assert inner.arrival_ns == 555
