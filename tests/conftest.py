"""Shared fixtures for the S-NIC reproduction test suite."""

from __future__ import annotations

import pytest

from repro.analysis import isosan
from repro.core import NFConfig, NICOS, SNIC
from repro.core.vpp import VPPConfig
from repro.net.packet import Packet
from repro.net.rules import MatchRule, Prefix
from repro.obs import auditlog, flight, metrics

MB = 1024 * 1024


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_isosan: run this test without the IsoSan runtime sanitizer "
        "(for tests that deliberately exercise unmediated access)")


@pytest.fixture(autouse=True)
def isosan_enabled(request):
    """Run every test under the IsoSan runtime sanitizer.

    The whole suite doubles as IsoSan's regression corpus: any test that
    drives the hardware models through an isolation-violating path fails
    with :class:`~repro.core.errors.IsolationViolation` instead of
    silently succeeding.  Tests that *deliberately* model unmediated
    access (the §3.3 commodity attacks operate as the attacker) opt out
    with ``@pytest.mark.no_isosan``; ``REPRO_ISOSAN=0`` disables the
    fixture process-wide (one CI leg runs with it on explicitly).
    """
    if request.node.get_closest_marker("no_isosan") is not None \
            or not isosan.enabled_by_env(default=True):
        yield None
        return
    with isosan.sanitized() as san:
        yield san


@pytest.fixture(autouse=True)
def fresh_metrics_registry():
    """Reset the process-global metrics registry around every test.

    Components mint per-instance serial labels (``l2#7``) from a
    process-global counter; without this, each test's instruments
    depend on how many components every *earlier* test constructed, so
    registry state (and label names) leak across tests.  The reset also
    restarts the serial counter, making labels deterministic per test.
    """
    metrics.reset()
    yield
    metrics.reset()


@pytest.fixture(autouse=True)
def fresh_forensics():
    """Disable and clear the flight recorder and audit log around every
    test.  Both are process-global singletons (the audit emitter holds
    object references, so the reset clears in place); without this a
    test that arms them would leak records — and hash-chain heads — into
    every later test."""
    flight.reset()
    auditlog.reset()
    yield
    flight.reset()
    auditlog.reset()


@pytest.fixture
def snic():
    """A small S-NIC with deterministic keys (fast to construct)."""
    return SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=1234)


@pytest.fixture
def nic_os(snic):
    return NICOS(snic)


@pytest.fixture
def basic_config():
    """A minimal single-core launch request."""
    return NFConfig(
        name="test-nf",
        core_ids=(0,),
        memory_bytes=4 * MB,
        initial_image=b"\x90" * 1024,
        vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("9.9.9.9/32"))]),
    )


@pytest.fixture
def sample_packet():
    return Packet.make(
        src_ip="10.0.0.1",
        dst_ip="9.9.9.9",
        src_port=12345,
        dst_port=80,
        payload=b"payload-bytes",
    )
