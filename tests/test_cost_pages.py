"""Tests for the variable-page-size packing allocator (Tables 5–7)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.pages import (
    EQUAL_MENU,
    FLEX_HIGH_MENU,
    FLEX_LOW_MENU,
    KB,
    MB,
    PageMenu,
    entries_for,
    layout_regions,
    pack_region,
    pack_sizes,
    waste_bytes,
)


class TestMenus:
    def test_paper_menus(self):
        assert EQUAL_MENU.sizes == (2 * MB,)
        assert FLEX_LOW_MENU.sizes == (128 * KB, 2 * MB, 64 * MB)
        assert FLEX_HIGH_MENU.sizes == (2 * MB, 32 * MB, 128 * MB)

    def test_rejects_non_multiples(self):
        with pytest.raises(ValueError):
            PageMenu("bad", (3 * KB, 8 * KB))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            PageMenu("bad", (2 * MB, 1 * MB))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PageMenu("bad", ())


class TestPackRegion:
    def test_zero_region(self):
        assert pack_region(0, EQUAL_MENU) == []

    def test_equal_is_ceiling(self):
        assert pack_region(int(13.75 * MB), EQUAL_MENU) == [2 * MB] * 7

    def test_exact_fit(self):
        assert pack_region(4 * MB, EQUAL_MENU) == [2 * MB, 2 * MB]

    def test_largest_first(self):
        pages = pack_region(66 * MB, FLEX_HIGH_MENU)
        assert pages == [32 * MB, 32 * MB, 2 * MB]

    def test_flex_low_uses_small_pages_for_tails(self):
        pages = pack_region(int(2.5 * MB), FLEX_LOW_MENU)
        assert pages == [2 * MB] + [128 * KB] * 4

    def test_coverage_is_sufficient_and_minimal_waste(self):
        size = int(46.65 * MB)
        pages = pack_region(size, FLEX_LOW_MENU)
        total = sum(pages)
        assert total >= size
        assert total - size < 128 * KB  # waste below the smallest page

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_region(-1, EQUAL_MENU)

    @settings(max_examples=60)
    @given(st.integers(min_value=1, max_value=400 * MB))
    def test_waste_below_smallest_page_property(self, size):
        for menu in (EQUAL_MENU, FLEX_LOW_MENU, FLEX_HIGH_MENU):
            pages = pack_region(size, menu)
            total = sum(pages)
            assert size <= total < size + menu.smallest

    @settings(max_examples=40)
    @given(st.integers(min_value=1, max_value=300 * MB))
    def test_entry_count_optimal_property(self, size):
        """Greedy largest-first is optimal for canonical (divisible)
        page systems: compare against exhaustive search on the rounded
        size expressed in smallest-page units."""
        menu = FLEX_HIGH_MENU
        pages = pack_region(size, menu)
        units = [s // menu.smallest for s in menu.sizes]
        target = sum(pages) // menu.smallest
        best = _min_coins(target, units)
        assert len(pages) == best


def _min_coins(target, units):
    """Exhaustive minimal number of 'coins' (units divide each other,
    so greedy from the largest is optimal — verified by direct count)."""
    count = 0
    for unit in sorted(units, reverse=True):
        count += target // unit
        target %= unit
    assert target == 0
    return count


class TestPackSizes:
    def test_regions_packed_separately(self):
        # Two 1.5 MB regions need 2 pages (not 2 for the combined 3 MB
        # plus sharing a page across regions).
        assert entries_for([int(1.5 * MB), int(1.5 * MB)], EQUAL_MENU) == 2

    def test_waste_bytes(self):
        waste = waste_bytes([int(1.5 * MB)], EQUAL_MENU)
        assert waste == int(0.5 * MB)

    def test_pack_sizes_concatenates(self):
        pages = pack_sizes([2 * MB, 4 * MB], EQUAL_MENU)
        assert pages == [2 * MB, 2 * MB, 2 * MB]


class TestLayout:
    def test_addresses_aligned_to_page_size(self):
        placements = layout_regions(
            [int(0.87 * MB), int(0.08 * MB), int(2.5 * MB)], FLEX_LOW_MENU
        )
        for addr, size in placements:
            assert addr % size == 0

    def test_no_overlap(self):
        placements = layout_regions(
            [int(13.75 * MB), int(2.5 * MB), int(46.65 * MB)], FLEX_HIGH_MENU
        )
        spans = sorted((addr, addr + size) for addr, size in placements)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    @settings(max_examples=30)
    @given(
        st.lists(st.integers(min_value=1, max_value=64 * MB), min_size=1, max_size=5)
    )
    def test_layout_alignment_property(self, sizes):
        for menu in (EQUAL_MENU, FLEX_LOW_MENU, FLEX_HIGH_MENU):
            placements = layout_regions(sizes, menu)
            for addr, size in placements:
                assert addr % size == 0
            covered = sum(size for _, size in placements)
            assert covered >= sum(sizes)
