"""Tests for repro.net.rules: prefixes, match rules, rule tables."""

import pytest

from repro.net.packet import FiveTuple, PROTO_TCP, PROTO_UDP, Packet, ip_to_int
from repro.net.rules import (
    MatchRule,
    PortRange,
    Prefix,
    RuleAction,
    RuleTable,
    SwitchingRule,
)


class TestPrefix:
    def test_parse_with_length(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.length == 8 and p.address == ip_to_int("10.0.0.0")

    def test_parse_bare_is_host(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_contains(self):
        p = Prefix.parse("192.168.0.0/16")
        assert p.contains(ip_to_int("192.168.55.1"))
        assert not p.contains(ip_to_int("192.169.0.1"))

    def test_zero_length_matches_all(self):
        p = Prefix.parse("0.0.0.0/0")
        assert p.contains(0) and p.contains(0xFFFFFFFF)

    def test_host_prefix_exact(self):
        p = Prefix.parse("1.2.3.4/32")
        assert p.contains(ip_to_int("1.2.3.4"))
        assert not p.contains(ip_to_int("1.2.3.5"))

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("1.2.3.4/33")

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_mask(self):
        assert Prefix.parse("0.0.0.0/0").mask == 0
        assert Prefix.parse("1.0.0.0/8").mask == 0xFF000000


class TestPortRange:
    def test_default_matches_all(self):
        assert PortRange().contains(0) and PortRange().contains(65535)

    def test_inclusive_bounds(self):
        r = PortRange(80, 81)
        assert r.contains(80) and r.contains(81) and not r.contains(82)


def _ft(src="1.1.1.1", dst="2.2.2.2", proto=PROTO_TCP, sport=1000, dport=80):
    return FiveTuple(ip_to_int(src), ip_to_int(dst), proto, sport, dport)


class TestMatchRule:
    def test_empty_rule_matches_everything(self):
        assert MatchRule().matches(_ft())

    def test_proto_filter(self):
        rule = MatchRule(proto=PROTO_UDP)
        assert not rule.matches(_ft(proto=PROTO_TCP))
        assert rule.matches(_ft(proto=PROTO_UDP))

    def test_src_prefix_filter(self):
        rule = MatchRule(src_prefix=Prefix.parse("1.0.0.0/8"))
        assert rule.matches(_ft(src="1.9.9.9"))
        assert not rule.matches(_ft(src="2.9.9.9"))

    def test_dst_prefix_filter(self):
        rule = MatchRule(dst_prefix=Prefix.parse("2.2.2.2/32"))
        assert rule.matches(_ft(dst="2.2.2.2"))
        assert not rule.matches(_ft(dst="2.2.2.3"))

    def test_port_filters(self):
        rule = MatchRule(dst_ports=PortRange(80, 80), src_ports=PortRange(1000, 2000))
        assert rule.matches(_ft(sport=1500, dport=80))
        assert not rule.matches(_ft(sport=999, dport=80))
        assert not rule.matches(_ft(sport=1500, dport=81))

    def test_vni_filter(self):
        rule = MatchRule(vni=7)
        assert rule.matches(_ft(), vni=7)
        assert not rule.matches(_ft(), vni=8)
        assert not rule.matches(_ft(), vni=None)

    def test_no_vni_filter_ignores_vni(self):
        assert MatchRule().matches(_ft(), vni=99)

    def test_matches_packet(self):
        p = Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=80)
        assert MatchRule(dst_ports=PortRange(80, 80)).matches_packet(p)


class TestRuleTable:
    def test_first_match_in_order(self):
        table = RuleTable(
            [
                MatchRule(proto=PROTO_TCP, action=RuleAction.DROP),
                MatchRule(action=RuleAction.ACCEPT),
            ]
        )
        assert table.lookup(_ft(proto=PROTO_TCP)).action is RuleAction.DROP
        assert table.lookup(_ft(proto=PROTO_UDP)).action is RuleAction.ACCEPT

    def test_priority_wins_over_insertion(self):
        low = MatchRule(action=RuleAction.ACCEPT, priority=0)
        high = MatchRule(action=RuleAction.DROP, priority=10)
        table = RuleTable([low, high])
        assert table.lookup(_ft()).action is RuleAction.DROP

    def test_equal_priority_stable(self):
        first = MatchRule(action=RuleAction.DROP, priority=5)
        second = MatchRule(action=RuleAction.ACCEPT, priority=5)
        table = RuleTable([first, second])
        assert table.lookup(_ft()).action is RuleAction.DROP

    def test_no_match_returns_none(self):
        table = RuleTable([MatchRule(proto=PROTO_UDP)])
        assert table.lookup(_ft(proto=PROTO_TCP)) is None

    def test_len_and_iter(self):
        rules = [MatchRule(), MatchRule(proto=PROTO_TCP)]
        table = RuleTable(rules)
        assert len(table) == 2
        assert len(list(table)) == 2

    def test_lookup_packet_uses_vni(self):
        p = Packet.make("1.1.1.1", "2.2.2.2")
        p.vni = 3
        table = RuleTable([MatchRule(vni=3, action=RuleAction.DROP)])
        assert table.lookup_packet(p).action is RuleAction.DROP


class TestSwitchingRule:
    def test_binds_nf(self):
        rule = SwitchingRule(match=MatchRule(proto=PROTO_TCP), nf_id=7)
        p = Packet.make("1.1.1.1", "2.2.2.2")
        assert rule.matches_packet(p)
        assert rule.nf_id == 7
