"""Tests for the explicitly-resizing hash map (Figure 7's engine)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nf.hashmap import ResizingHashMap


class TestBasicOps:
    def test_put_get(self):
        m = ResizingHashMap()
        m.put("a", 1)
        assert m.get("a") == 1
        assert len(m) == 1

    def test_get_missing_default(self):
        m = ResizingHashMap()
        assert m.get("missing") is None
        assert m.get("missing", 7) == 7

    def test_overwrite(self):
        m = ResizingHashMap()
        m.put("a", 1)
        m.put("a", 2)
        assert m.get("a") == 2
        assert len(m) == 1

    def test_contains(self):
        m = ResizingHashMap()
        m.put("a", 1)
        assert "a" in m and "b" not in m

    def test_remove(self):
        m = ResizingHashMap()
        m.put("a", 1)
        assert m.remove("a") is True
        assert "a" not in m and len(m) == 0
        assert m.remove("a") is False

    def test_reinsert_after_remove(self):
        m = ResizingHashMap(initial_capacity=4)
        m.put("a", 1)
        m.remove("a")
        m.put("a", 2)
        assert m.get("a") == 2

    def test_items(self):
        m = ResizingHashMap()
        for i in range(10):
            m.put(i, i * i)
        assert dict(m.items()) == {i: i * i for i in range(10)}

    def test_clear(self):
        m = ResizingHashMap()
        m.put("a", 1)
        m.clear()
        assert len(m) == 0 and "a" not in m

    def test_capacity_rounds_to_power_of_two(self):
        assert ResizingHashMap(initial_capacity=20).capacity == 32

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ResizingHashMap(initial_capacity=0)
        with pytest.raises(ValueError):
            ResizingHashMap(max_load_factor=1.5)


class TestResizing:
    def test_grows_at_load_factor(self):
        m = ResizingHashMap(initial_capacity=8, max_load_factor=0.5)
        for i in range(5):
            m.put(i, i)
        assert m.capacity > 8
        assert len(m.resize_events) >= 1

    def test_data_survives_resize(self):
        m = ResizingHashMap(initial_capacity=4)
        for i in range(1000):
            m.put(i, -i)
        assert all(m.get(i) == -i for i in range(1000))

    def test_resize_events_double(self):
        m = ResizingHashMap(initial_capacity=4)
        for i in range(100):
            m.put(i, i)
        for event in m.resize_events:
            assert event.new_capacity == 2 * event.old_capacity

    def test_transient_accounts_old_plus_new(self):
        m = ResizingHashMap(initial_capacity=4, entry_bytes=100)
        for i in range(100):
            m.put(i, i)
        last = m.resize_events[-1]
        expected = (last.old_capacity + last.new_capacity) * 100
        assert m.peak_transient_bytes >= expected
        assert m.peak_transient_bytes >= m.table_bytes

    def test_table_bytes(self):
        m = ResizingHashMap(initial_capacity=16, entry_bytes=10)
        assert m.table_bytes == 160

    def test_tombstones_trigger_growth_cleanup(self):
        m = ResizingHashMap(initial_capacity=8, max_load_factor=0.6)
        for round_num in range(50):
            m.put(("k", round_num), round_num)
            m.remove(("k", round_num))
        # churn must not corrupt the table
        m.put("final", 42)
        assert m.get("final") == 42


class TestAgainstDict:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "remove", "get"]),
                st.integers(min_value=0, max_value=50),
                st.integers(),
            ),
            max_size=200,
        )
    )
    def test_behaves_like_dict(self, operations):
        """Differential property test against Python's dict."""
        ours = ResizingHashMap(initial_capacity=4)
        reference = {}
        for op, key, value in operations:
            if op == "put":
                ours.put(key, value)
                reference[key] = value
            elif op == "remove":
                expected = key in reference
                reference.pop(key, None)
                assert ours.remove(key) == expected
            else:
                assert ours.get(key) == reference.get(key)
        assert len(ours) == len(reference)
        assert dict(ours.items()) == reference
