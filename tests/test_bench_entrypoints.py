"""Smoke tests for the ``run(quick)`` entry points of the bench scripts.

The harness (:mod:`repro.obs.bench`) discovers and executes every
``benchmarks/bench_*.py`` through a uniform ``run(quick: bool) -> dict``
contract.  These tests load a representative set of fast scripts the
same way the harness does and check that ``run(quick=True)`` returns
the key model outputs each one promises.
"""

from __future__ import annotations

import contextlib
import io

import pytest

from repro.obs import bench


def run_quick(name: str) -> dict:
    """Load ``benchmarks/bench_<name>.py`` and call run(quick=True)."""
    matches = [p for p in bench.discover() if bench.scenario_name(p) == name]
    assert matches, f"no bench script named {name}"
    module = bench.load_scenario(matches[0])
    with contextlib.redirect_stdout(io.StringIO()) as buf:
        outputs = module.run(quick=True)
    assert isinstance(outputs, dict) and outputs
    assert buf.getvalue().strip(), "run() should print its table"
    return outputs


def test_tco():
    outputs = run_quick("tco")
    assert outputs["nic_tco_per_core"] == pytest.approx(38.97, abs=0.05)
    assert outputs["snic_tco_per_core"] == pytest.approx(42.53, abs=0.05)


def test_table7_accel_profiles():
    outputs = run_quick("table7_accel_profiles")
    assert outputs["DPI"]["tlb_entries"] == 54
    assert outputs["ZIP"]["tlb_entries"] == 70
    assert outputs["RAID"]["tlb_entries"] == 5


def test_table8_mur():
    outputs = run_quick("table8_mur")
    assert outputs["FW"] == pytest.approx(100.0, abs=0.5)
    assert outputs["LB"] == pytest.approx(30.2, abs=0.5)


def test_fig6_instruction_latency():
    outputs = run_quick("fig6_instruction_latency")
    assert set(outputs) >= {"nf_launch_total_ms", "nf_destroy_total_ms"}
    assert all(v > 0 for v in outputs["nf_launch_total_ms"].values())


def test_headline_overheads():
    outputs = run_quick("headline_overheads")
    assert outputs  # headline area/power numbers present and positive
    numeric = [v for v in outputs.values() if isinstance(v, (int, float))]
    assert numeric and all(v >= 0 for v in numeric)


def test_ablation_bus_quick_reduces_sweep():
    outputs = run_quick("ablation_bus")
    # quick mode sweeps only the two smallest domain counts
    assert outputs["domains"] == [2, 4]
    assert len(outputs["tp_wait_ns"]) == 2


def test_snic_lifecycle_timings():
    outputs = run_quick("snic_lifecycle")
    assert all(v > 0 for v in outputs.values())


def test_chaos_blast_radius():
    outputs = run_quick("chaos_blast_radius")
    assert outputs["verdict_pass"] is True
    assert outputs["bus_babble"]["commodity_disruption"] > 0
    assert outputs["bus_babble"]["snic_disruption"] == 0.0
    assert outputs["bus_babble"]["blast_radius"] == "tenant"
