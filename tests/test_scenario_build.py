"""The spec -> simulation builder: deploy, drive, and teardown."""

from __future__ import annotations

import pytest

from repro.core.errors import FatalFunctionError
from repro.scenario.build import build_scenario, make_arbiter, make_nf
from repro.scenario.spec import (
    ArbiterSpec,
    FaultSpec,
    NFSpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
    TrafficSpec,
)


def two_tenant_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="build-test",
        seed=5,
        topology=TopologySpec(nic_model="snic", n_cores=4, dram_mb=64,
                              key_seed=7),
        tenants=(
            TenantSpec(name="fw", nf=NFSpec(kind="firewall",
                                            params={"rules": 8}),
                       dst_prefix="20.0.0.0/8", dpi_units=1),
            TenantSpec(name="mon", nf=NFSpec(kind="monitor"),
                       dst_prefix="30.0.0.0/8"),
        ),
        traffic=TrafficSpec(n_packets=6),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestFactories:
    def test_every_nf_kind_materializes(self):
        for kind in ("firewall", "monitor", "dpi", "nat", "lb", "lpm"):
            nf = make_nf(NFSpec(kind=kind), seed=9)
            assert nf is not None

    def test_every_arbiter_policy_materializes(self):
        from repro.hw.bus import (
            DeficitRoundRobinArbiter,
            FCFSArbiter,
            TemporalPartitioningArbiter,
        )

        expected = {"fcfs": FCFSArbiter,
                    "temporal": TemporalPartitioningArbiter,
                    "drr": DeficitRoundRobinArbiter}
        for policy, cls in expected.items():
            arbiter = make_arbiter(ArbiterSpec(policy=policy), [1, 2])
            assert isinstance(arbiter, cls)


class TestDeployment:
    def test_deploy_materializes_tenants(self):
        with build_scenario(two_tenant_spec()) as built:
            assert set(built.tenants) == {"fw", "mon"}
            assert set(built.nf_ids) <= set(built.snic.live_functions)
            # Sequential core assignment, one core per tenant by default.
            fw = built.snic.record(built.tenants["fw"])
            mon = built.snic.record(built.tenants["mon"])
            assert fw.config.core_ids == (0,)
            assert mon.config.core_ids == (1,)
            assert len(fw.clusters) == 1  # dpi_units=1
            assert mon.clusters == () or len(mon.clusters) == 0

    def test_make_packets_is_deterministic(self):
        spec = two_tenant_spec()
        with build_scenario(spec) as a, build_scenario(spec) as b:
            pa = [(p.ip.dst_ip, p.arrival_ns) for p in a.make_packets()]
            pb = [(p.ip.dst_ip, p.arrival_ns) for p in b.make_packets()]
        assert pa == pb
        assert len(pa) == 6

    def test_commodity_rig_shares_engine_snic_partitions(self):
        with build_scenario(two_tenant_spec(
                topology=TopologySpec(nic_model="commodity"))) as built:
            assert built.rig().dma.shared_engine
        with build_scenario(two_tenant_spec()) as built:
            assert not built.rig().dma.shared_engine

    def test_clean_up_destroys_everything(self):
        built = build_scenario(two_tenant_spec())
        with built:
            built.drive(quick=True)
            snic = built.snic
        assert snic.live_functions == {} or not snic.live_functions
        # Idempotent: a second clean_up is a no-op, not an error.
        built.clean_up()

    def test_drive_requires_deploy(self):
        from repro.scenario.build import ScenarioBuildError

        with pytest.raises(ScenarioBuildError):
            build_scenario(two_tenant_spec()).drive()


class TestDriveOutputs:
    def test_outputs_schema(self):
        with build_scenario(two_tenant_spec()) as built:
            outputs = built.drive(quick=True)
        assert outputs["scenario"] == "build-test"
        assert outputs["seed"] == 5
        assert outputs["nic_model"] == "snic"
        assert outputs["tenant_count"] == 2
        assert outputs["fault_class"] == "none"
        assert outputs["packets_completed"] == 6
        assert outputs["per_tenant_completed"] == {"fw": 3, "mon": 3}
        for key in ("bus_wait_ns_victim", "dma_wait_ns_victim",
                    "dram_wait_ns_victim", "cross_tenant_wait_ns"):
            assert isinstance(outputs[key], float)
        assert outputs["faults_injected"] == 0

    def test_fault_spec_injects(self):
        spec = two_tenant_spec(
            fault=FaultSpec(kind="bus_babble", start_ns=0, count=3,
                            period_ns=8_000))
        with build_scenario(spec) as built:
            outputs = built.drive(quick=True)
        assert outputs["fault_class"] == "bus_babble"
        assert outputs["faults_injected"] == 3


class TestTeardownUnderFault:
    def test_crash_mid_drive_still_tears_down(self):
        # An NF_CRASH with no supervisor escalates out of drive(); the
        # context manager must still destroy the NFs and uninstall the
        # injector (LIFO inside the test suite's IsoSan scope).
        spec = two_tenant_spec(
            fault=FaultSpec(kind="nf_crash", tenant="mon", start_ns=2_000,
                            count=1))
        built = build_scenario(spec)
        with pytest.raises(FatalFunctionError):
            with built:
                snic, injector = built.snic, built.injector
                built.drive(quick=True)
        assert not snic.live_functions
        assert injector is not None and not injector.installed

    def test_interposers_fully_unwound_after_crash(self):
        # After teardown a fresh, faultless deployment must behave
        # normally — no leftover class-attribute interposers.
        spec = two_tenant_spec(
            fault=FaultSpec(kind="nf_crash", tenant="mon", start_ns=2_000,
                            count=1))
        with pytest.raises(FatalFunctionError):
            with build_scenario(spec) as built:
                built.drive(quick=True)
        with build_scenario(two_tenant_spec()) as built:
            outputs = built.drive(quick=True)
        assert outputs["packets_completed"] == 6
        assert outputs["faults_injected"] == 0
