"""Tests for the from-scratch crypto substrate (SHA-256, RSA, DH, keys)."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dh import (
    DEFAULT_DH_PARAMS,
    DHParams,
    xor_stream_encrypt,
)
from repro.crypto.keys import (
    AttestationKey,
    VendorCA,
    quote_digest,
)
from repro.crypto.rsa import (
    _is_probable_prime,
    _modinv,
    _random_prime,
    rsa_generate,
    rsa_sign,
    rsa_verify,
)
from repro.crypto.sha256 import SHA256, sha256, sha256_hex

import random


class TestSHA256:
    # FIPS 180-4 test vectors.
    VECTORS = [
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ]

    @pytest.mark.parametrize("message,digest", VECTORS)
    def test_fips_vectors(self, message, digest):
        assert sha256_hex(message, fast=False) == digest

    def test_million_a(self):
        # The classic one-million-'a' vector, via incremental updates.
        hasher = SHA256()
        for _ in range(1000):
            hasher.update(b"a" * 1000)
        assert (
            hasher.hexdigest()
            == "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )

    @pytest.mark.parametrize("length", [54, 55, 56, 57, 63, 64, 65, 119, 120])
    def test_padding_boundaries(self, length):
        message = bytes(range(256))[:length] * 1
        assert sha256(message, fast=False) == hashlib.sha256(message).digest()

    def test_incremental_equals_oneshot(self):
        h = SHA256()
        h.update(b"hello ")
        h.update(b"world")
        assert h.digest() == sha256(b"hello world", fast=False)

    def test_digest_does_not_finalize(self):
        h = SHA256(b"ab")
        first = h.digest()
        assert h.digest() == first
        h.update(b"c")
        assert h.digest() == sha256(b"abc", fast=False)

    def test_fast_path_matches_pure(self):
        blob = b"z" * (1 << 17)
        assert sha256(blob, fast=True) == sha256(blob, fast=False)

    @settings(max_examples=30)
    @given(st.binary(max_size=300))
    def test_matches_hashlib_property(self, data):
        assert sha256(data, fast=False) == hashlib.sha256(data).digest()


class TestRSA:
    def test_generate_deterministic(self):
        a = rsa_generate(512, seed=42)
        b = rsa_generate(512, seed=42)
        assert a.public == b.public

    def test_sign_verify(self):
        kp = rsa_generate(512, seed=1)
        sig = rsa_sign(kp.private, b"message")
        assert rsa_verify(kp.public, b"message", sig)

    def test_tampered_message_fails(self):
        kp = rsa_generate(512, seed=1)
        sig = rsa_sign(kp.private, b"message")
        assert not rsa_verify(kp.public, b"messagE", sig)

    def test_tampered_signature_fails(self):
        kp = rsa_generate(512, seed=1)
        sig = bytearray(rsa_sign(kp.private, b"message"))
        sig[5] ^= 0x01
        assert not rsa_verify(kp.public, b"message", bytes(sig))

    def test_wrong_key_fails(self):
        kp1 = rsa_generate(512, seed=1)
        kp2 = rsa_generate(512, seed=2)
        sig = rsa_sign(kp1.private, b"m")
        assert not rsa_verify(kp2.public, b"m", sig)

    def test_wrong_length_signature_fails(self):
        kp = rsa_generate(512, seed=1)
        assert not rsa_verify(kp.public, b"m", b"\x00" * 10)

    def test_signature_length(self):
        kp = rsa_generate(512, seed=3)
        assert len(rsa_sign(kp.private, b"x")) == kp.private.byte_length

    def test_fingerprint_stable(self):
        kp = rsa_generate(512, seed=4)
        assert kp.public.fingerprint() == kp.public.fingerprint()

    @pytest.mark.parametrize("prime", [2, 3, 5, 101, 104729, 2**31 - 1])
    def test_miller_rabin_accepts_primes(self, prime):
        assert _is_probable_prime(prime, random.Random(0))

    @pytest.mark.parametrize("composite", [1, 4, 561, 1105, 104729 * 3, 2**32])
    def test_miller_rabin_rejects_composites(self, composite):
        # 561 and 1105 are Carmichael numbers.
        assert not _is_probable_prime(composite, random.Random(0))

    def test_random_prime_has_exact_bits(self):
        p = _random_prime(64, random.Random(7))
        assert p.bit_length() == 64

    def test_modinv(self):
        assert (_modinv(3, 11) * 3) % 11 == 1

    def test_modinv_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            _modinv(4, 8)


class TestDH:
    def test_shared_secret_agreement(self):
        params = DHParams(g=2, p=0xFFFFFFFB)  # small prime for speed
        alice = params.private(random.Random(1))
        bob = params.private(random.Random(2))
        assert alice.shared_secret(bob.public()) == bob.shared_secret(alice.public())

    def test_session_keys_match(self):
        params = DHParams(g=2, p=0xFFFFFFFB)
        alice = params.private(random.Random(1))
        bob = params.private(random.Random(2))
        assert alice.session_key(bob.public()) == bob.session_key(alice.public())

    def test_default_params_are_rfc3526(self):
        assert DEFAULT_DH_PARAMS.g == 2
        assert DEFAULT_DH_PARAMS.p.bit_length() == 1536

    def test_rejects_degenerate_public(self):
        from repro.crypto.dh import DHPublic

        params = DHParams(g=2, p=0xFFFFFFFB)
        alice = params.private(random.Random(1))
        with pytest.raises(ValueError):
            alice.shared_secret(DHPublic(params=params, value=1))

    def test_rejects_params_mismatch(self):
        from repro.crypto.dh import DHPublic

        params = DHParams(g=2, p=0xFFFFFFFB)
        other = DHParams(g=5, p=0xFFFFFFFB)
        alice = params.private(random.Random(1))
        with pytest.raises(ValueError):
            alice.shared_secret(DHPublic(params=other, value=12345))

    def test_xor_stream_roundtrip(self):
        key = b"k" * 32
        message = b"the quick brown fox" * 7
        wire = xor_stream_encrypt(key, message, nonce=3)
        assert wire != message
        assert xor_stream_encrypt(key, wire, nonce=3) == message

    def test_xor_stream_nonce_separates(self):
        key = b"k" * 32
        a = xor_stream_encrypt(key, b"same message", nonce=1)
        b = xor_stream_encrypt(key, b"same message", nonce=2)
        assert a != b


class TestKeyHierarchy:
    def test_certificate_chain(self):
        ca = VendorCA(key_bits=512, seed=10)
        ek = ca.provision_endorsement_key("dev-1", seed=11)
        assert ek.certificate.verify(ca.public_key)

    def test_certificate_wrong_ca_fails(self):
        ca = VendorCA(key_bits=512, seed=10)
        other = VendorCA(key_bits=512, seed=20)
        ek = ca.provision_endorsement_key("dev-1", seed=11)
        assert not ek.certificate.verify(other.public_key)

    def test_ak_endorsement(self):
        ca = VendorCA(key_bits=512, seed=10)
        ek = ca.provision_endorsement_key("dev-1", seed=11)
        ak = AttestationKey.generate(ek, key_bits=512, seed=12)
        assert ak.verify_endorsement(ek.public)

    def test_ak_endorsement_wrong_ek_fails(self):
        ca = VendorCA(key_bits=512, seed=10)
        ek1 = ca.provision_endorsement_key("dev-1", seed=11)
        ek2 = ca.provision_endorsement_key("dev-2", seed=13)
        ak = AttestationKey.generate(ek1, key_bits=512, seed=12)
        assert not ak.verify_endorsement(ek2.public)

    def test_quote_digest_prefix_unambiguous(self):
        # (b"ab", b"c") must not collide with (b"a", b"bc").
        assert quote_digest(b"ab", b"c") != quote_digest(b"a", b"bc")

    def test_quote_digest_deterministic(self):
        assert quote_digest(b"x", b"y") == quote_digest(b"x", b"y")
