"""Tests for repro.obs.slo: specs, evaluation, burn-rate alerting."""

import json

import pytest

from repro.hw.events import Simulator
from repro.obs import auditlog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.slo import (
    BURN_CAP,
    DEFAULT_TIERS,
    LATENCY_METRIC,
    BurnRateAlerter,
    BurnRateTier,
    SLOError,
    SLOSpec,
    TenantSLO,
    bad_count_above,
    evaluate_tenant,
    interference_burn,
    latency_burn,
)
from repro.obs.windows import WindowedAggregator


class TestSLOSpec:
    def test_valid_kinds_and_coercion(self):
        spec = SLOSpec(kind="p99_latency_ns", threshold=1000, target=1)
        assert spec.threshold == 1000.0 and isinstance(spec.threshold, float)
        assert spec.target == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(SLOError):
            SLOSpec(kind="availability", threshold=0.999)

    def test_throughput_floor_must_be_fraction(self):
        SLOSpec(kind="throughput_floor", threshold=1.0)
        with pytest.raises(SLOError):
            SLOSpec(kind="throughput_floor", threshold=1.5)
        with pytest.raises(SLOError):
            SLOSpec(kind="throughput_floor", threshold=0.0)

    def test_interference_budget_zero_is_legal(self):
        # S-NIC's own §4.5 contract: zero cross-tenant wait.
        spec = SLOSpec(kind="interference_budget_ns", threshold=0.0)
        assert spec.threshold == 0.0
        with pytest.raises(SLOError):
            SLOSpec(kind="interference_budget_ns", threshold=-1.0)

    def test_latency_threshold_must_be_positive(self):
        with pytest.raises(SLOError):
            SLOSpec(kind="p99_latency_ns", threshold=0.0)

    def test_target_validation(self):
        with pytest.raises(SLOError):
            SLOSpec(kind="p99_latency_ns", threshold=100.0, target=0.0)
        with pytest.raises(SLOError):
            SLOSpec(kind="p99_latency_ns", threshold=100.0, target=1.01)

    def test_round_trip(self):
        spec = SLOSpec(kind="teardown_deadline_ns", threshold=5e5,
                       target=0.95)
        clone = SLOSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec


class TestTenantSLO:
    def test_requires_objectives(self):
        with pytest.raises(SLOError):
            TenantSLO(objectives=())

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(SLOError):
            TenantSLO(objectives=(
                SLOSpec(kind="p99_latency_ns", threshold=100.0),
                SLOSpec(kind="p99_latency_ns", threshold=200.0)))

    def test_dict_members_coerced(self):
        slo = TenantSLO(objectives=(
            {"kind": "throughput_floor", "threshold": 0.9},))
        assert slo.objective("throughput_floor").threshold == 0.9
        assert slo.objective("p99_latency_ns") is None

    def test_round_trip(self):
        slo = TenantSLO(objectives=(
            SLOSpec(kind="p99_latency_ns", threshold=5600.0, target=0.99),
            SLOSpec(kind="interference_budget_ns", threshold=0.0)))
        clone = TenantSLO.from_dict(json.loads(json.dumps(slo.to_dict())))
        assert clone == slo


class TestBurnMath:
    def _hist(self, values):
        hist = Histogram("slo_latency_ns", ())
        for value in values:
            hist.observe(value)
        return hist

    def test_bad_count_exact_on_bucket_bound(self):
        hist = self._hist([500.0, 1000.0, 1500.0, 2000.0])
        # 1000.0 is a default-ladder bound: observations <= 1000 good.
        assert bad_count_above(hist, 1000.0) == 2

    def test_latency_burn_scales_with_bad_fraction(self):
        hist = self._hist([500.0] * 9 + [99_000.0])
        # 10% bad against a 1% budget -> burn 10.
        assert latency_burn(hist, 1000.0, target=0.99) == pytest.approx(10.0)

    def test_latency_burn_zero_budget_caps(self):
        hist = self._hist([500.0, 99_000.0])
        assert latency_burn(hist, 1000.0, target=1.0) == BURN_CAP

    def test_latency_burn_empty_histogram(self):
        assert latency_burn(None, 1000.0, 0.99) == 0.0
        assert latency_burn(self._hist([]), 1000.0, 0.99) == 0.0

    def test_interference_burn_proration(self):
        # Spending the whole budget's rate in one window -> burn = 1.
        burn = interference_burn(wait_ns=100.0, duration_ns=1000.0,
                                 threshold_ns=1000.0, horizon_ns=10_000.0)
        assert burn == pytest.approx(1.0)

    def test_interference_burn_zero_budget_caps(self):
        assert interference_burn(1.0, 1000.0, 0.0, 10_000.0) == BURN_CAP
        assert interference_burn(0.0, 1000.0, 0.0, 10_000.0) == 0.0


class TestEvaluateTenant:
    def _slo(self):
        return TenantSLO(objectives=(
            SLOSpec(kind="p99_latency_ns", threshold=1000.0, target=0.9),
            SLOSpec(kind="throughput_floor", threshold=0.9),
            SLOSpec(kind="interference_budget_ns", threshold=100.0),
            SLOSpec(kind="teardown_deadline_ns", threshold=1000.0)))

    def test_all_pass(self):
        hist = Histogram("slo_latency_ns", ())
        for _ in range(10):
            hist.observe(500.0)
        results = evaluate_tenant(
            self._slo(), latency=hist, offered=10, completed=10,
            cross_tenant_wait_ns=0.0, teardown_ns=900.0)
        assert [r.kind for r in results] == [
            "p99_latency_ns", "throughput_floor",
            "interference_budget_ns", "teardown_deadline_ns"]
        assert all(r.passed for r in results)

    def test_latency_objective_fails_on_bad_fraction(self):
        hist = Histogram("slo_latency_ns", ())
        for _ in range(8):
            hist.observe(500.0)
        hist.observe(5000.0)
        hist.observe(5000.0)
        results = evaluate_tenant(self._slo(), latency=hist, offered=10,
                                  completed=10)
        latency = results[0]
        assert latency.measured == pytest.approx(0.8)
        assert not latency.passed

    def test_no_samples_passes_vacuously(self):
        results = evaluate_tenant(self._slo(), latency=None)
        assert results[0].passed
        assert "no latency samples" in results[0].detail

    def test_throughput_and_interference_failures(self):
        results = evaluate_tenant(self._slo(), offered=10, completed=5,
                                  cross_tenant_wait_ns=500.0)
        by_kind = {r.kind: r for r in results}
        assert not by_kind["throughput_floor"].passed
        assert not by_kind["interference_budget_ns"].passed
        assert by_kind["interference_budget_ns"].measured == 500.0

    def test_teardown_not_exercised_passes(self):
        results = evaluate_tenant(self._slo(), teardown_ns=None)
        by_kind = {r.kind: r for r in results}
        assert by_kind["teardown_deadline_ns"].passed
        results = evaluate_tenant(self._slo(), teardown_ns=2000.0)
        by_kind = {r.kind: r for r in results}
        assert not by_kind["teardown_deadline_ns"].passed

    def test_results_are_jsonable(self):
        results = evaluate_tenant(self._slo())
        payload = json.loads(json.dumps([r.as_dict() for r in results]))
        assert len(payload) == 4


class TestBurnRateTiers:
    def test_default_tiers(self):
        names = [t.name for t in DEFAULT_TIERS]
        assert names == ["page", "ticket"]

    def test_tier_validation(self):
        with pytest.raises(SLOError):
            BurnRateTier("x", fast_windows=0, slow_windows=1,
                         burn_threshold=1.0)
        with pytest.raises(SLOError):
            BurnRateTier("x", fast_windows=4, slow_windows=2,
                         burn_threshold=1.0)
        with pytest.raises(SLOError):
            BurnRateTier("x", fast_windows=1, slow_windows=2,
                         burn_threshold=0.0)


class TestBurnRateAlerter:
    def _setup(self, registry, threshold=1000.0, target=0.9):
        sim = Simulator()
        slo = TenantSLO(objectives=(
            SLOSpec(kind="p99_latency_ns", threshold=threshold,
                    target=target),))
        alerter = BurnRateAlerter({1: slo}, horizon_ns=10_000.0)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry,
                                 on_rotate=alerter.observe)
        agg.start()
        return agg, alerter, registry.histogram(LATENCY_METRIC, tenant=1)

    def test_horizon_must_be_positive(self):
        with pytest.raises(SLOError):
            BurnRateAlerter({}, horizon_ns=0.0)

    def test_page_fires_on_sustained_burn(self):
        agg, alerter, hist = self._setup(MetricsRegistry())
        for i in range(3):
            hist.observe(50_000.0)  # every sample blows the threshold
            agg.rotate(now_ns=(i + 1) * 100)
        tiers = [a.tier for a in alerter.alerts]
        assert "page" in tiers and "ticket" in tiers

    def test_edge_triggering_one_alert_per_excursion(self):
        agg, alerter, hist = self._setup(MetricsRegistry())
        for i in range(6):
            hist.observe(50_000.0)
            agg.rotate(now_ns=(i + 1) * 100)
        pages = [a for a in alerter.alerts if a.tier == "page"]
        assert len(pages) == 1  # sustained excursion, single page

    def test_rearm_after_recovery(self):
        agg, alerter, hist = self._setup(MetricsRegistry())
        hist.observe(50_000.0)
        agg.rotate(now_ns=100)  # fires page (fast=1 window)
        for i in range(7):
            hist.observe(10.0)  # good traffic drains the averages
            agg.rotate(now_ns=200 + i * 100)
        for i in range(6):
            # A second sustained excursion: enough bad windows that the
            # 6-window slow average climbs back over the page threshold.
            hist.observe(50_000.0)
            agg.rotate(now_ns=1000 + i * 100)
        pages = [a for a in alerter.alerts if a.tier == "page"]
        assert len(pages) == 2

    def test_quiet_tenant_never_alerts(self):
        agg, alerter, hist = self._setup(MetricsRegistry())
        for i in range(5):
            hist.observe(10.0)
            agg.rotate(now_ns=(i + 1) * 100)
        assert alerter.alerts == []

    def test_interference_alerting_from_snapshot_deltas(self):
        registry = MetricsRegistry()
        sim = Simulator()
        slo = TenantSLO(objectives=(
            SLOSpec(kind="interference_budget_ns", threshold=0.0),))
        alerter = BurnRateAlerter({1: slo}, horizon_ns=10_000.0)
        agg = WindowedAggregator(sim, window_ns=100, registry=registry,
                                 on_rotate=alerter.observe)
        agg.start()
        registry.counter("interference_wait_ns_total", resource="bus",
                         tenant=1, culprit=2).inc(50.0)
        agg.rotate(now_ns=100)
        assert alerter.alerts
        assert alerter.alerts[0].kind == "interference_budget_ns"
        assert alerter.alerts[0].fast_burn == BURN_CAP

    def test_alerts_witnessed_in_audit_log(self):
        auditlog.reset()
        auditlog.enable_audit_log()
        try:
            agg, alerter, hist = self._setup(MetricsRegistry())
            hist.observe(50_000.0)
            agg.rotate(now_ns=100)
            log = auditlog.get_audit_log()
            kinds = [record["kind"] for record in log.records]
            assert "slo.alert" in kinds
            assert log.verify_chain() is None
        finally:
            auditlog.reset()

    def test_alert_dicts_jsonable(self):
        agg, alerter, hist = self._setup(MetricsRegistry())
        hist.observe(50_000.0)
        agg.rotate(now_ns=100)
        payload = json.loads(json.dumps(alerter.alert_dicts()))
        assert payload and payload[0]["tenant"] == 1
