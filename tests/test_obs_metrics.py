"""Tests for repro.obs.metrics: instruments, registry, and the
read-through migration of the hw-layer statistics."""

import json

import pytest

from repro.obs.export import (
    format_metrics_table,
    metrics_rows,
    metrics_to_csv,
    write_metrics_json,
)
from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
    get_registry,
    instance_label,
)


class TestInstruments:
    def test_counter_inc_and_reset(self):
        counter = Counter("c", ())
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g", ())
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_instance_label_is_process_unique(self):
        labels = {instance_label("l2") for _ in range(50)}
        assert len(labels) == 50
        assert all(label.startswith("l2#") for label in labels)


class TestHistogram:
    def test_default_buckets_sorted_and_span_ns_to_s(self):
        bounds = default_latency_buckets()
        assert list(bounds) == sorted(bounds)
        assert bounds[0] == 1.0 and bounds[-1] == 1e9

    def test_mean_sum_count_minmax(self):
        hist = Histogram("h", (), bounds=(10.0, 100.0, 1000.0))
        for value in (5.0, 50.0, 500.0, 5000.0):  # last one overflows
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(5555.0)
        assert hist.mean == pytest.approx(1388.75)
        assert hist.min == 5.0 and hist.max == 5000.0

    def test_percentiles_interpolate_within_bucket(self):
        hist = Histogram("h", (), bounds=(0.0, 100.0))
        for _ in range(100):
            hist.observe(50.0)  # all in the (0, 100] bucket
        # rank falls inside one uniform bucket -> linear interpolation,
        # clamped to the observed range [50, 50].
        assert hist.percentile(50) == pytest.approx(50.0)
        assert hist.percentile(99) == pytest.approx(50.0)

    def test_percentiles_order_across_buckets(self):
        hist = Histogram("h", (), bounds=(10.0, 100.0, 1000.0))
        for _ in range(90):
            hist.observe(5.0)
        for _ in range(10):
            hist.observe(500.0)
        p50, p95 = hist.percentile(50), hist.percentile(95)
        assert p50 <= 10.0
        assert 100.0 <= p95 <= 1000.0

    def test_overflow_bucket_clamps_to_observed_range(self):
        hist = Histogram("h", (), bounds=(10.0,))
        hist.observe(70.0)
        hist.observe(90.0)
        # Both land in the +inf overflow bucket; the estimate must stay
        # inside the observed [min, max] rather than running off to inf.
        assert 70.0 <= hist.percentile(99) <= 90.0
        assert hist.percentile(100) == 90.0

    def test_empty_histogram(self):
        hist = Histogram("h", ())
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0
        sample = hist.sample()
        assert sample["count"] == 0 and sample["min"] == 0.0

    def test_percentile_validates_range(self):
        hist = Histogram("h", ())
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (), bounds=(10.0, 5.0))

    def test_exact_boundary_values_land_in_lower_bucket(self):
        hist = Histogram("h", (), bounds=(10.0, 100.0))
        hist.observe(10.0)   # == first bound: bucket (0, 10]
        hist.observe(100.0)  # == second bound: bucket (10, 100]
        assert hist.counts[0] == 1 and hist.counts[1] == 1
        assert hist.counts[2] == 0

    def test_percentile_extremes_q0_and_q100(self):
        hist = Histogram("h", (), bounds=(10.0, 100.0, 1000.0))
        for value in (5.0, 50.0, 500.0):
            hist.observe(value)
        # q=0 clamps to the observed min, q=100 to the observed max.
        assert hist.percentile(0) == 5.0
        assert hist.percentile(100) == 500.0

    def test_single_observation_every_percentile_equal(self):
        hist = Histogram("h", ())
        hist.observe(42.0)
        for q in (0, 1, 50, 99, 100):
            assert hist.percentile(q) == 42.0


class TestHistogramMerge:
    def test_merge_counts_sum_and_extrema(self):
        left = Histogram("h", (), bounds=(10.0, 100.0))
        right = Histogram("h", (), bounds=(10.0, 100.0))
        left.observe(5.0)
        right.observe(50.0)
        right.observe(500.0)
        left.merge(right)
        assert left.count == 3
        assert left.sum == pytest.approx(555.0)
        assert left.min == 5.0 and left.max == 500.0
        assert left.counts == [1, 1, 1]

    def test_merge_empty_other_is_identity(self):
        left = Histogram("h", (), bounds=(10.0,))
        left.observe(3.0)
        before = (list(left.counts), left.count, left.sum,
                  left.min, left.max)
        left.merge(Histogram("h", (), bounds=(10.0,)))
        assert (list(left.counts), left.count, left.sum,
                left.min, left.max) == before

    def test_merge_rejects_bounds_mismatch(self):
        left = Histogram("h", (), bounds=(10.0, 100.0))
        right = Histogram("h", (), bounds=(10.0, 200.0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_rejects_non_histogram(self):
        with pytest.raises(TypeError):
            Histogram("h", ()).merge(Counter("c", ()))

    def test_merge_then_percentile_equals_direct_observation(self):
        # The windowed-aggregation equivalence: observing a stream into
        # shards and merging must answer percentiles identically to one
        # histogram that saw everything.
        samples = [3.0, 17.0, 42.0, 99.0, 250.0, 800.0, 4_000.0, 42.0]
        direct = Histogram("h", ())
        shards = [Histogram("h", ()) for _ in range(3)]
        for i, value in enumerate(samples):
            direct.observe(value)
            shards[i % 3].observe(value)
        merged = Histogram("h", ())
        for shard in shards:
            merged.merge(shard)
        assert merged.counts == direct.counts
        assert merged.count == direct.count
        assert merged.sum == direct.sum
        assert merged.min == direct.min and merged.max == direct.max
        for q in (0, 25, 50, 75, 90, 99, 100):
            assert merged.percentile(q) == direct.percentile(q)

    def test_registry_merge_from(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        ours.counter("slo_alerts_total", tenant=1).inc(1)
        theirs.counter("slo_alerts_total", tenant=1).inc(2)
        theirs.counter("slo_alerts_total", tenant=2).inc(5)
        theirs.histogram("slo_latency_ns", tenant=1).observe(700.0)
        merged = ours.merge_from(theirs)
        assert merged == 3
        assert ours.counter("slo_alerts_total", tenant=1).value == 3
        assert ours.counter("slo_alerts_total", tenant=2).value == 5
        assert ours.histogram("slo_latency_ns", tenant=1).count == 1

    def test_registry_merge_from_type_conflict(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        ours.counter("x_total", tenant=1)
        theirs.gauge("x_total", tenant=1)
        with pytest.raises(TypeError):
            ours.merge_from(theirs)


class TestRegistry:
    def test_get_or_create_same_labels_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", cache="l2", tenant=1)
        b = registry.counter("hits", tenant=1, cache="l2")  # order-free
        assert a is b
        assert len(registry) == 1

    def test_per_tenant_label_separation(self):
        registry = MetricsRegistry()
        registry.counter("hits", tenant=1).inc(5)
        registry.counter("hits", tenant=2).inc(7)
        assert registry.counter("hits", tenant=1).value == 5.0
        assert registry.counter("hits", tenant=2).value == 7.0
        samples = {tuple(sorted(s["labels"].items())): s["value"]
                   for s in registry.snapshot()}
        assert samples[(("tenant", "1"),)] == 5.0
        assert samples[(("tenant", "2"),)] == 7.0

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", a=1)
        with pytest.raises(TypeError):
            registry.gauge("x", a=1)
        with pytest.raises(TypeError):
            registry.histogram("x", a=1)

    def test_reset_keeps_instrument_identity(self):
        """Components cache direct instrument refs; reset() must zero the
        values without invalidating those refs."""
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0.0
        assert registry.counter("c") is counter

    def test_collector_pull_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"depth": 0}
        registry.register_collector(lambda: [
            {"name": "queue_depth", "type": "gauge", "labels": {},
             "value": state["depth"]}])
        state["depth"] = 42
        (sample,) = registry.snapshot()
        assert sample["value"] == 42

    def test_global_registry_singleton(self):
        assert get_registry() is get_registry()


class TestExport:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("bus_bytes_total", bus="bus#1", client=1).inc(4096)
        registry.gauge("depth", ring="rx").set(3)
        hist = registry.histogram("bus_latency_ns", bus="bus#1", client=1)
        hist.observe(100.0)
        hist.observe(300.0)
        return registry

    def test_rows_flatten_labels(self):
        rows = metrics_rows(self._populated())
        by_name = {row["name"]: row for row in rows}
        assert by_name["bus_bytes_total"]["labels"] == "bus=bus#1,client=1"
        assert by_name["bus_bytes_total"]["value"] == 4096.0
        assert by_name["bus_latency_ns"]["count"] == 2

    def test_csv_round_trip(self):
        import csv
        import io

        text = metrics_to_csv(self._populated())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3
        assert {row["type"] for row in rows} == {"counter", "gauge",
                                                 "histogram"}

    def test_json_round_trip(self, tmp_path):
        path = write_metrics_json(self._populated(),
                                  str(tmp_path / "metrics.json"))
        with open(path) as fh:
            samples = json.load(fh)
        assert len(samples) == 3
        assert all("name" in s and "type" in s for s in samples)

    def test_table_filter_and_shape(self):
        table = format_metrics_table(self._populated(), title="t",
                                     name_filter="bus_")
        assert "=== t ===" in table
        assert "bus_bytes_total" in table
        assert "depth" not in table
        empty = format_metrics_table(MetricsRegistry())
        assert "(no metrics recorded)" in empty


class TestCacheMigration:
    """hw.cache statistics live in the registry; the old attribute API
    is a read-through view over the same counters."""

    def _cache(self):
        from repro.hw.cache import Cache, CacheConfig

        return Cache(CacheConfig(size_bytes=4096, ways=4), name="l2m")

    def test_stats_read_through_registry(self):
        cache = self._cache()
        cache.access(0, owner=1)        # miss
        cache.access(0, owner=1)        # hit
        cache.access(64, owner=2)       # miss
        assert cache.stats[1].hits == 1
        assert cache.stats[1].misses == 1
        assert cache.stats[1].accesses == 2
        assert cache.stats[1].miss_rate == pytest.approx(0.5)
        assert cache.stats[2].misses == 1 and cache.stats[2].hits == 0

    def test_registry_holds_the_same_numbers(self):
        cache = self._cache()
        cache.access(0, owner=1)
        cache.access(0, owner=1)
        registry = get_registry()
        hits = registry.counter("cache_hits_total",
                                cache=cache._obs_label, tenant=1)
        misses = registry.counter("cache_misses_total",
                                  cache=cache._obs_label, tenant=1)
        assert hits.value == 1.0 and misses.value == 1.0
        # Same objects the read-through view wraps.
        assert cache.stats[1]._hits is hits

    def test_two_caches_do_not_alias(self):
        first, second = self._cache(), self._cache()
        first.access(0, owner=1)
        assert first.stats[1].misses == 1
        assert 1 not in second.stats

    def test_reset_stats(self):
        cache = self._cache()
        cache.access(0, owner=1)
        cache.reset_stats()
        assert cache.stats == {}
        # Contents survive a stats reset: the refill is a hit, and the
        # counters restart from zero.
        cache.access(0, owner=1)
        assert cache.stats[1].hits == 1
        assert cache.stats[1].misses == 0


class TestBusMigration:
    def test_bytes_by_client_read_through(self):
        from repro.hw.bus import FCFSArbiter, IOBus

        bus = IOBus(FCFSArbiter(bandwidth_bytes_per_ns=1.0))
        bus.transfer(1, 100, now_ns=0.0)
        bus.transfer(1, 100, now_ns=1000.0)
        bus.transfer(2, 50, now_ns=2000.0)
        assert bus.bytes_by_client == {1: 200, 2: 50}

    def test_latency_histograms_per_client(self):
        from repro.hw.bus import FCFSArbiter, IOBus

        bus = IOBus(FCFSArbiter(bandwidth_bytes_per_ns=1.0))
        bus.transfer(1, 100, now_ns=0.0)
        hist = get_registry().histogram("bus_latency_ns",
                                        bus=bus._obs_label, tenant=1)
        assert hist.count == 1
        assert hist.mean == pytest.approx(100.0)


class TestModuleReset:
    """The module-level reset()/snapshot() API used by the bench
    harness and the autouse conftest fixture."""

    def test_reset_clears_global_registry(self):
        get_registry().counter("stale_counter", tenant=1).inc(5)
        assert len(get_registry()) > 0
        metrics.reset()
        assert len(get_registry()) == 0
        assert metrics.snapshot() == []

    def test_reset_restarts_instance_serials(self):
        first = instance_label("l2")
        metrics.reset()
        assert instance_label("l2") == first

    def test_serials_unique_between_resets(self):
        metrics.reset()
        assert instance_label("bus") == "bus#1"
        assert instance_label("bus") == "bus#2"
        assert instance_label("dma") == "dma#3"

    def test_registry_object_survives_reset(self):
        registry = get_registry()
        metrics.reset()
        assert get_registry() is registry

    def test_module_snapshot_sees_global_registry(self):
        get_registry().gauge("fresh_gauge", tenant=2).set(7.0)
        names = {row["name"] for row in metrics.snapshot()}
        assert "fresh_gauge" in names
