"""Tests for IO-bus arbitration: FCFS vs temporal partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.bus import (
    BusCrashed,
    FCFSArbiter,
    IOBus,
    TemporalPartitioningArbiter,
)


class TestFCFS:
    def test_uncontended_latency_is_transfer_time(self):
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=10.0)
        assert arbiter.request(1, 100, now_ns=0.0) == pytest.approx(10.0)

    def test_backlog_queues(self):
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=10.0)
        arbiter.request(1, 1000, now_ns=0.0)  # busy until 100
        completion = arbiter.request(2, 100, now_ns=0.0)
        assert completion == pytest.approx(110.0)

    def test_co_tenant_visible_latency(self):
        """The commodity side channel: client 2's latency depends on
        whether client 1 was active."""
        quiet = FCFSArbiter(bandwidth_bytes_per_ns=10.0)
        latency_quiet = quiet.request(2, 100, 0.0) - 0.0
        noisy = FCFSArbiter(bandwidth_bytes_per_ns=10.0)
        noisy.request(1, 10_000, 0.0)
        latency_noisy = noisy.request(2, 100, 0.0) - 0.0
        assert latency_noisy > latency_quiet

    def test_watchdog_crash(self):
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=1.0, watchdog_timeout_ns=100.0)
        arbiter.request(1, 1000, 0.0)
        with pytest.raises(BusCrashed):
            arbiter.request(2, 1, 0.0)

    def test_per_request_overhead(self):
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=10.0, per_request_overhead_ns=5.0)
        assert arbiter.request(1, 100, 0.0) == pytest.approx(15.0)

    def test_reset(self):
        arbiter = FCFSArbiter()
        arbiter.request(1, 10_000, 0.0)
        arbiter.reset()
        assert arbiter.backlog_ns == 0.0

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            FCFSArbiter(bandwidth_bytes_per_ns=0)


class TestTemporalPartitioning:
    def _arbiter(self, domains=(0, 1), epoch=1000.0, dead=100.0):
        return TemporalPartitioningArbiter(
            domains=list(domains),
            bandwidth_bytes_per_ns=10.0,
            epoch_ns=epoch,
            dead_time_ns=dead,
        )

    def test_first_domain_serves_immediately(self):
        arbiter = self._arbiter()
        assert arbiter.request(0, 100, 0.0) == pytest.approx(10.0)

    def test_second_domain_waits_for_its_epoch(self):
        arbiter = self._arbiter()
        completion = arbiter.request(1, 100, 0.0)
        assert completion == pytest.approx(1010.0)  # epoch 1 starts at 1000

    def test_dead_time_excluded(self):
        arbiter = self._arbiter()
        # Domain 0's live window in epoch 0 is [0, 900): a request needing
        # more than 900ns of live time spills into its next epoch at 2000.
        completion = arbiter.request(0, 10_000, 0.0)  # needs 1000ns live
        assert completion == pytest.approx(2000.0 + 100.0 / 10.0 * 10)

    def test_non_interference_exact(self):
        """The defining property (§4.5): a domain's completion times are
        identical whether or not co-tenants generate traffic."""
        quiet = self._arbiter()
        quiet_times = [quiet.request(0, 500, t) for t in (0.0, 50.0, 5000.0)]
        noisy = self._arbiter()
        noisy.request(1, 1_000_000, 0.0)  # massive co-tenant burst
        noisy_times = [noisy.request(0, 500, t) for t in (0.0, 50.0, 5000.0)]
        assert quiet_times == noisy_times

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=50_000), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=1_000_000),
    )
    def test_non_interference_property(self, attacker_sizes, victim_size):
        quiet = self._arbiter(domains=(0, 1, 2))
        expected = quiet.request(2, victim_size, 0.0)
        noisy = self._arbiter(domains=(0, 1, 2))
        for size in attacker_sizes:
            noisy.request(0, size, 0.0)
            noisy.request(1, size, 0.0)
        assert noisy.request(2, victim_size, 0.0) == expected

    def test_own_queue_still_serializes(self):
        arbiter = self._arbiter()
        first = arbiter.request(0, 1000, 0.0)
        second = arbiter.request(0, 1000, 0.0)
        assert second > first

    def test_effective_bandwidth(self):
        arbiter = self._arbiter(domains=(0, 1, 2, 3))
        assert arbiter.effective_bandwidth() == pytest.approx(10.0 * 0.9 / 4)

    def test_unknown_domain_rejected(self):
        with pytest.raises(KeyError):
            self._arbiter().request(99, 10, 0.0)

    def test_duplicate_domains_rejected(self):
        with pytest.raises(ValueError):
            TemporalPartitioningArbiter(domains=[1, 1])

    def test_dead_time_must_fit_epoch(self):
        with pytest.raises(ValueError):
            TemporalPartitioningArbiter(domains=[0], epoch_ns=10, dead_time_ns=10)

    def test_reset(self):
        arbiter = self._arbiter()
        arbiter.request(0, 100_000, 0.0)
        arbiter.reset()
        assert arbiter.request(0, 100, 0.0) == pytest.approx(10.0)


class TestIOBus:
    def test_latency_and_accounting(self):
        bus = IOBus(FCFSArbiter(bandwidth_bytes_per_ns=10.0))
        latency = bus.transfer(1, 100, now_ns=0.0)
        assert latency == pytest.approx(10.0)
        assert bus.bytes_by_client[1] == 100

    def test_recording(self):
        bus = IOBus(FCFSArbiter(bandwidth_bytes_per_ns=10.0))
        bus.record = True
        bus.transfer(1, 50, now_ns=5.0)
        assert len(bus.requests) == 1
        assert bus.requests[0].latency_ns == pytest.approx(5.0)
