"""Hypothesis *stateful* testing of S-NIC resource bookkeeping.

A random machine drives launch/teardown sequences against one SNIC and
checks the global invariants after every step:

* every physical page is owned by the NIC OS, a live function, or free;
* the denylist is exactly the union of live functions' pages;
* every bound core belongs to a live function, and vice versa;
* every allocated accelerator cluster belongs to a live function;
* cache partitions and bus domains track exactly the live functions;
* port reservations track exactly the live functions.

This is the kind of test that catches leaks an example-based suite
misses: hypothesis shrinks any violating sequence to a minimal one.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import LaunchError, NFConfig, SNIC
from repro.core.cache_policy import NIC_OS_OWNER
from repro.hw.accelerator import AcceleratorKind

MB = 1024 * 1024


class SNICMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.snic = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=7)
        self.live = set()

    # ------------------------------------------------------------------

    @rule(
        cores=st.sets(st.integers(0, 3), min_size=1, max_size=2),
        memory_mb=st.sampled_from([2, 4, 8]),
        want_dpi=st.booleans(),
    )
    def launch(self, cores, memory_mb, want_dpi):
        accelerators = ((AcceleratorKind.DPI, 1),) if want_dpi else ()
        try:
            nf_id = self.snic.nf_launch(
                NFConfig(
                    name=f"nf-{len(self.live)}",
                    core_ids=tuple(sorted(cores)),
                    memory_bytes=memory_mb * MB,
                    accelerators=accelerators,
                )
            )
        except LaunchError:
            return  # resources busy: a legal rejection
        self.live.add(nf_id)

    # NB: named `destroy` because `teardown` is the state machine's own
    # cleanup hook.
    @rule(which=st.integers(0, 10))
    def destroy(self, which):
        if not self.live:
            return
        nf_id = sorted(self.live)[which % len(self.live)]
        self.snic.nf_teardown(nf_id)
        self.live.discard(nf_id)

    # ------------------------------------------------------------------

    @invariant()
    def live_set_matches_device(self):
        assert set(self.snic.live_functions) == self.live

    @invariant()
    def page_ownership_consistent(self):
        live_pages = set()
        for nf_id in self.live:
            live_pages.update(self.snic.record(nf_id).pages)
        for page in range(self.snic.memory.n_pages):
            owner = self.snic.memory.owner_of(page)
            if owner is None:
                assert page not in live_pages
            elif owner == NIC_OS_OWNER:
                assert page < self.snic._nic_os_pages
            else:
                assert owner in self.live
                assert page in self.snic.record(owner).pages

    @invariant()
    def denylist_is_exactly_live_pages(self):
        live_pages = set()
        for nf_id in self.live:
            live_pages.update(self.snic.record(nf_id).pages)
        assert self.snic.denylist.denied_pages() == live_pages

    @invariant()
    def cores_consistent(self):
        bound = {}
        for core in self.snic.cores:
            if core.owner is not None:
                bound.setdefault(core.owner, set()).add(core.core_id)
        expected = {
            nf_id: set(self.snic.record(nf_id).config.core_ids)
            for nf_id in self.live
        }
        assert bound == {k: v for k, v in expected.items() if v}

    @invariant()
    def clusters_consistent(self):
        for engine in self.snic.engines.values():
            for cluster in engine.clusters:
                if cluster.owner is not None:
                    assert cluster.owner in self.live

    @invariant()
    def bus_domains_track_live(self):
        assert set(self.snic.bus.arbiter.domains) == {NIC_OS_OWNER} | self.live

    @invariant()
    def port_reservations_track_live(self):
        assert set(self.snic.rx_port.reservations) == self.live
        assert set(self.snic.tx_port.reservations) == self.live

    @invariant()
    def cache_partitions_track_live(self):
        if self.live:
            for nf_id in self.live:
                assert self.snic.l2.ways_for(nf_id) >= 1


TestSNICStateful = SNICMachine.TestCase
TestSNICStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
