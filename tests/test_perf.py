"""Tests for the Figure 5 performance model.

The crown jewel here is the cross-validation test: Che's approximation
(used for the fast parameter sweeps) must agree with the trace-driven
set-associative simulator (:mod:`repro.hw.cache`) on small configs.
"""

import numpy as np
import pytest

from repro.hw.cache import Cache, CacheConfig
from repro.perf.che import (
    LinePopulation,
    che_hit_rates,
    hit_rate,
    miss_traffic,
    solve_characteristic_time,
)
from repro.perf.colocation import (
    ColocationResult,
    NF_NAMES,
    _partner_sets,
    cotenancy_sweep,
    ipc_degradation,
    summary_across_nfs,
)
from repro.perf.ipc import BusModel, IPCModel, LevelCounts
from repro.perf.workloads import (
    KB,
    LINE_BYTES,
    MB,
    NF_ACCESS_MODELS,
    AccessModel,
    RegionAccess,
)


class TestChe:
    def test_infinite_cache_hits_everything(self):
        population = LinePopulation.exact([1.0, 2.0, 3.0])
        assert hit_rate(population, cache_lines=10) == 1.0

    def test_zero_cache_hits_nothing(self):
        population = LinePopulation.exact([1.0, 2.0])
        assert hit_rate(population, cache_lines=0) == 0.0

    def test_hit_rate_monotone_in_capacity(self):
        ranks = np.arange(1, 2001, dtype=float)
        population = LinePopulation.exact(ranks ** -1.1)
        rates = [hit_rate(population, c) for c in (10, 50, 200, 1000)]
        assert rates == sorted(rates)

    def test_characteristic_time_occupancy(self):
        ranks = np.arange(1, 1001, dtype=float)
        population = LinePopulation.exact(ranks ** -1.1)
        t = solve_characteristic_time(population, cache_lines=100)
        occupancy = float(
            (population.counts * -np.expm1(-population.rates * t)).sum()
        )
        assert occupancy == pytest.approx(100, rel=0.01)

    def test_grouped_equals_exact(self):
        """Grouping (rate, count) pairs must not change results."""
        exact = LinePopulation.exact([0.5] * 100 + [0.1] * 300)
        grouped = LinePopulation(
            rates=np.array([0.5, 0.1]), counts=np.array([100.0, 300.0])
        )
        for cache_lines in (50, 150, 350):
            assert hit_rate(exact, cache_lines) == pytest.approx(
                hit_rate(grouped, cache_lines), rel=1e-6
            )

    def test_shared_cache_tenant_rates(self):
        heavy = LinePopulation.exact(np.full(100, 10.0))
        light = LinePopulation.exact(np.full(100, 0.1))
        rates, _ = che_hit_rates([heavy, light], cache_lines=100)
        assert rates[0] > rates[1]  # the hot tenant holds the cache

    def test_miss_traffic_composition(self):
        ranks = np.arange(1, 501, dtype=float)
        population = LinePopulation.exact(ranks ** -1.1)
        filtered = miss_traffic(population, cache_lines=50)
        assert filtered.total_rate < population.total_rate
        # A second (larger) level sees only the tail: its hit rate over
        # the filtered traffic is below the unfiltered one.
        assert hit_rate(filtered, 200) <= hit_rate(population, 200) + 1e-9

    def test_che_matches_trace_driven_simulation(self):
        """Cross-validation: Che vs the LRU simulator on a Zipf stream.

        Fully-associative cache (one set), small population — Che is
        known to be accurate here; we demand ≤3 points of hit rate.
        """
        model = AccessModel(
            "X",
            (RegionAccess("hot", 512 * LINE_BYTES, 1.0, "zipf"),),
            mem_refs_per_instr=1.0,
        )
        for cache_lines in (32, 128):
            cache = Cache(
                CacheConfig(
                    size_bytes=cache_lines * LINE_BYTES,
                    line_bytes=LINE_BYTES,
                    ways=cache_lines,  # fully associative
                )
            )
            addresses = model.generate_stream(40_000, seed=3)
            hits = sum(cache.access(int(a), owner=1) for a in addresses)
            simulated = hits / len(addresses)
            analytic = hit_rate(model.population(), cache_lines)
            assert analytic == pytest.approx(simulated, abs=0.03)

    def test_empty_populations_rejected(self):
        with pytest.raises(ValueError):
            che_hit_rates([], 10)


class TestWorkloads:
    def test_all_six_nfs_modeled(self):
        assert set(NF_ACCESS_MODELS) == set(NF_NAMES)

    def test_population_mass_is_one(self):
        for model in NF_ACCESS_MODELS.values():
            assert model.population().total_rate == pytest.approx(1.0, rel=1e-6)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            AccessModel("bad", (RegionAccess("r", MB, 0.5),))

    def test_stream_addresses_within_bounds(self):
        model = NF_ACCESS_MODELS["LB"]
        addresses = model.generate_stream(1000, seed=1)
        assert addresses.min() >= 0
        assert addresses.max() < model.total_lines() * LINE_BYTES

    def test_stream_deterministic(self):
        model = NF_ACCESS_MODELS["FW"]
        a = model.generate_stream(100, seed=9)
        b = model.generate_stream(100, seed=9)
        assert (a == b).all()

    def test_fw_dpi_nat_have_biggest_hot_sets(self):
        def hot_bytes(name):
            return NF_ACCESS_MODELS[name].regions[0].size_bytes

        heavy = {hot_bytes(n) for n in ("FW", "DPI", "NAT")}
        light = {hot_bytes(n) for n in ("LB", "LPM")}
        assert min(heavy) > max(light)


class TestBusModel:
    def test_tp_wait_grows_with_domains(self):
        bus = BusModel()
        waits = [bus.temporal_partition_wait_ns(n) for n in (2, 4, 8, 16)]
        assert waits == sorted(waits)

    def test_fcfs_wait_grows_with_load(self):
        bus = BusModel()
        assert bus.fcfs_wait_ns(0.2) > bus.fcfs_wait_ns(0.01)

    def test_fcfs_wait_bounded(self):
        assert BusModel().fcfs_wait_ns(100.0) < 100.0  # rho capped


class TestIPCModel:
    def test_more_dram_means_lower_ipc(self):
        model = IPCModel()
        fast = LevelCounts(l1_hits=0.99, l2_hits=0.01, dram=0.0)
        slow = LevelCounts(l1_hits=0.80, l2_hits=0.10, dram=0.10)
        assert model.ipc(fast, 0.25, 0.0) > model.ipc(slow, 0.25, 0.0)

    def test_bus_wait_lowers_ipc(self):
        model = IPCModel()
        counts = LevelCounts(l1_hits=0.9, l2_hits=0.05, dram=0.05)
        assert model.ipc(counts, 0.25, 0.0) > model.ipc(counts, 0.25, 100.0)

    def test_no_references_gives_base_cpi(self):
        model = IPCModel()
        counts = LevelCounts(l1_hits=0, l2_hits=0, dram=0)
        assert model.cpi(counts, 0.25, 0.0) == model.timing.base_cpi


class TestColocation:
    def test_degradation_non_negative(self):
        assert ipc_degradation("FW", ("LB",), 4 * MB) >= 0.0

    def test_degradation_deterministic(self):
        a = ipc_degradation("DPI", ("NAT", "LB", "Mon"), 4 * MB)
        b = ipc_degradation("DPI", ("NAT", "LB", "Mon"), 4 * MB)
        assert a == b

    def test_higher_cotenancy_degrades_more(self):
        low = ipc_degradation("FW", ("LB",), 4 * MB)
        high = ipc_degradation("FW", ("LB",) * 15, 4 * MB)
        assert high > low

    def test_heavy_nfs_suffer_more(self):
        """§5.3: 'the firewall, DPI, and NAT functions suffered the
        worst degradations due to their larger working sets'."""
        partners = ("LB", "LPM", "Mon")
        heavy = ipc_degradation("DPI", partners, 4 * MB)
        light = ipc_degradation("LB", ("DPI", "LPM", "Mon"), 4 * MB)
        assert heavy > light

    def test_partner_sets_complete_at_low_cotenancy(self):
        sets = _partner_sets("FW", 1)
        assert len(sets) == 6  # all single partners

    def test_partner_sets_sampled_at_high_cotenancy(self):
        sets = _partner_sets("FW", 15, max_sets=20)
        assert len(sets) == 20
        assert sets == _partner_sets("FW", 15, max_sets=20)  # deterministic

    def test_colocation_result_statistics(self):
        result = ColocationResult(nf="FW", degradations=[1.0, 2.0, 3.0])
        assert result.median == 2.0
        assert result.percentile(99) == pytest.approx(2.98)

    def test_headline_four_nf_band(self):
        """§5.3 headline: at 4 NFs / 4 MB L2, median ≈0.93% and worst
        (p99) ≤1.7%.  Calibration must keep us in that band."""
        results = cotenancy_sweep(cotenancies=(4,), max_sets=12)
        summary = summary_across_nfs(results, 0)
        assert 0.3 < summary["mean_of_medians_pct"] < 1.7
        assert summary["worst_p99_pct"] < 2.5

    def test_two_nf_band(self):
        results = cotenancy_sweep(cotenancies=(2,), max_sets=12)
        summary = summary_across_nfs(results, 0)
        assert summary["mean_of_medians_pct"] < 0.6
