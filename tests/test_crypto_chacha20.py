"""Tests for the from-scratch ChaCha20 (RFC 7539 vectors + properties)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.chacha20 import (
    chacha20_block,
    chacha20_xor,
    nonce_from_sequence,
)


class TestRFC7539Vectors:
    # RFC 7539 §2.3.2 block-function test vector.
    KEY = bytes(range(32))
    NONCE = bytes.fromhex("000000090000004a00000000")

    def test_block_function_vector(self):
        block = chacha20_block(self.KEY, counter=1, nonce=self.NONCE)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expected

    def test_encryption_vector(self):
        # RFC 7539 §2.4.2.
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = chacha20_xor(key, nonce, plaintext, initial_counter=1)
        assert ciphertext.hex().startswith("6e2e359a2568f98041ba0728dd0d6981")
        assert ciphertext.hex().endswith("874d")


class TestProperties:
    def test_xor_is_involution(self):
        key = bytes(32)
        nonce = nonce_from_sequence(5)
        data = b"round-trip" * 20
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data

    def test_distinct_nonces_distinct_streams(self):
        key = bytes(32)
        a = chacha20_xor(key, nonce_from_sequence(1), bytes(64))
        b = chacha20_xor(key, nonce_from_sequence(2), bytes(64))
        assert a != b

    def test_distinct_keys_distinct_streams(self):
        nonce = nonce_from_sequence(1)
        a = chacha20_xor(bytes(32), nonce, bytes(64))
        b = chacha20_xor(bytes([1]) + bytes(31), nonce, bytes(64))
        assert a != b

    def test_bad_key_size(self):
        with pytest.raises(ValueError):
            chacha20_block(bytes(16), 0, bytes(12))

    def test_bad_nonce_size(self):
        with pytest.raises(ValueError):
            chacha20_block(bytes(32), 0, bytes(8))

    def test_counter_range(self):
        with pytest.raises(ValueError):
            chacha20_block(bytes(32), 1 << 32, bytes(12))

    @settings(max_examples=30)
    @given(st.binary(max_size=300), st.integers(0, 2**64 - 1))
    def test_roundtrip_property(self, data, sequence):
        key = bytes(range(32))
        nonce = nonce_from_sequence(sequence)
        assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data
