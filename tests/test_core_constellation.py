"""Tests for secure constellations (§4.7, Figure 4b)."""

import pytest

from repro.core import (
    AttestationError,
    Constellation,
    NFConfig,
    NICOS,
    PCIeTap,
    SGXEnclave,
    SNIC,
)

MB = 1024 * 1024


@pytest.fixture
def snic():
    return SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=3)


@pytest.fixture
def vnic(snic):
    return NICOS(snic).NF_create(
        NFConfig(name="fn", core_ids=(0,), memory_bytes=4 * MB,
                 initial_image=b"tls-middlebox")
    )


class TestSGXEnclave:
    def test_measurement_is_code_hash(self):
        from repro.crypto.sha256 import sha256

        enclave = SGXEnclave("db", b"code", VendorCA_for_test(), seed=1)
        assert enclave.measurement == sha256(b"code")

    def test_seal_unseal(self):
        enclave = SGXEnclave("db", b"code", VendorCA_for_test(), seed=1)
        enclave.seal("key", b"private")
        assert enclave.unseal("key") == b"private"

    def test_host_os_sees_no_plaintext(self):
        enclave = SGXEnclave("db", b"code", VendorCA_for_test(), seed=1)
        enclave.seal("key", b"private")
        view = enclave.host_os_view()
        assert view["key"] != b"private"
        assert len(view["key"]) == 32  # opaque digest


def VendorCA_for_test():
    from repro.crypto.keys import VendorCA

    return VendorCA(key_bits=512, seed=77)


class TestConstellation:
    def _constellation(self, snic, vnic):
        c = Constellation(snic.vendor_ca, sgx_service_ca=VendorCA_for_test(), seed=5)
        enclave = SGXEnclave(
            "db", b"db-code", c.sgx_service_ca, seed=9
        )
        c.add_function("fn", vnic)
        c.add_enclave("db", enclave)
        return c, enclave

    def test_link_establishes_channel(self, snic, vnic):
        c, _ = self._constellation(snic, vnic)
        channel = c.link("fn", "db")
        assert channel.established

    def test_send_round_trip(self, snic, vnic):
        c, _ = self._constellation(snic, vnic)
        c.link("fn", "db")
        assert c.send("fn", "db", b"flow-keys") == b"flow-keys"

    def test_tap_sees_only_ciphertext(self, snic, vnic):
        """The datacenter operator snooping on the NIC/host bus (threat
        model §2) captures bytes that differ from the plaintext."""
        c, _ = self._constellation(snic, vnic)
        c.link("fn", "db")
        c.send("fn", "db", b"super-secret-session-keys")
        (src, dst, wire), = c.tap.captured
        assert (src, dst) == ("fn", "db")
        assert wire != b"super-secret-session-keys"
        assert len(wire) == len(b"super-secret-session-keys")

    def test_send_without_link_rejected(self, snic, vnic):
        c, _ = self._constellation(snic, vnic)
        with pytest.raises(AttestationError, match="channel"):
            c.send("fn", "db", b"data")

    def test_link_unknown_node_rejected(self, snic, vnic):
        c, _ = self._constellation(snic, vnic)
        with pytest.raises(KeyError):
            c.link("fn", "ghost")

    def test_channel_is_bidirectional(self, snic, vnic):
        c, _ = self._constellation(snic, vnic)
        c.link("fn", "db")
        assert c.send("db", "fn", b"reply") == b"reply"

    def test_messages_use_distinct_nonces(self, snic, vnic):
        c, _ = self._constellation(snic, vnic)
        c.link("fn", "db")
        c.send("fn", "db", b"same-bytes")
        c.send("fn", "db", b"same-bytes")
        wires = [w for _, _, w in c.tap.captured]
        assert wires[0] != wires[1]

    def test_substituted_enclave_fails_attestation(self, snic, vnic):
        """A malicious operator swapping the enclave for a lookalike
        with different code fails the expected-measurement check."""
        c = Constellation(snic.vendor_ca, sgx_service_ca=VendorCA_for_test(), seed=5)
        genuine = SGXEnclave("db", b"db-code", c.sgx_service_ca, seed=9)
        c.add_function("fn", vnic)
        c.add_enclave("db", genuine)
        # The operator swaps in a trojaned enclave behind the same name.
        trojan = SGXEnclave("db", b"evil-code", c.sgx_service_ca, seed=10)
        c._nodes["db"] = trojan
        with pytest.raises(AttestationError):
            c.link("fn", "db")

    def test_three_node_constellation(self, snic, vnic):
        c, _ = self._constellation(snic, vnic)
        other = SGXEnclave("cache", b"cache-code", c.sgx_service_ca, seed=11)
        c.add_enclave("cache", other)
        c.link("fn", "db")
        c.link("fn", "cache")
        c.link("db", "cache")
        assert c.send("db", "cache", b"x") == b"x"
        assert len(c.channels) == 6  # three links, both directions
