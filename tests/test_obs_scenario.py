"""Tests for repro.obs.scenario — the packaged co-tenancy observability demo."""

from __future__ import annotations

import json

import pytest

from repro.obs import get_tracer, metrics
from repro.obs.scenario import run_cotenancy_scenario, sample_snic_gauges
from repro.obs.profile import Profiler


@pytest.fixture
def summary(tmp_path):
    return run_cotenancy_scenario(
        out_path=str(tmp_path / "trace.json"),
        n_packets=12,
        metrics_path=str(tmp_path / "metrics.json"),
    ), tmp_path


class TestCotenancyScenario:
    def test_summary_counts(self, summary):
        s, _ = summary
        assert s["packets_completed"] > 0
        assert s["events"] >= s["spans"] > 0

    def test_both_tenants_and_many_layers_traced(self, summary):
        s, _ = summary
        assert len(s["tenants"]) == 2
        # The demo exercises the whole stack: NIC OS lifecycle, cores,
        # accelerators, DMA, and the event-driven runtime all emit spans.
        assert {"runtime", "lifecycle", "accel", "dma"} <= set(s["layers"])
        assert len(s["span_layers"]) >= 3

    def test_trace_file_is_chrome_loadable(self, summary):
        s, tmp_path = summary
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["scenario"] == "cotenancy-demo"
        assert doc["otherData"]["tenants"] == s["tenants"]

    def test_metrics_file_written(self, summary):
        _, tmp_path = summary
        doc = json.loads((tmp_path / "metrics.json").read_text())
        assert doc  # at least one instrument exported

    def test_tracer_left_disabled(self, summary):
        # The scenario must not leak an enabled tracer into later code.
        assert not get_tracer().enabled

    def test_profiler_hook_times_kernel_events(self, tmp_path):
        prof = Profiler()
        run_cotenancy_scenario(out_path=str(tmp_path / "t.json"),
                               n_packets=8, profiler=prof)
        rows = prof.host_report()
        assert rows and rows[0]["events"] > 0
        assert sum(r["host_ns"] for r in rows) > 0


class TestSampleSnicGauges:
    def test_live_nf_gets_occupancy_gauge(self, nic_os, snic, basic_config):
        nic_os.NF_create(basic_config)
        registry = metrics.MetricsRegistry()
        sample_snic_gauges(snic, registry)
        names = {r["name"] for r in registry.snapshot()}
        assert "l2_occupancy_lines" in names

    def test_fresh_snic_samples_nothing(self, snic):
        registry = metrics.MetricsRegistry()
        sample_snic_gauges(snic, registry)
        assert registry.snapshot() == []
