"""Smoke tests for the report module and the CLI entry point."""

import subprocess
import sys

import pytest


class TestCLI:
    def test_info(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro"], capture_output=True, text=True
        )
        assert completed.returncode == 0
        assert "S-NIC" in completed.stdout
        assert "subpackages" in completed.stdout

    def test_unknown_command(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "bogus"],
            capture_output=True, text=True,
        )
        assert completed.returncode == 2
        assert "unknown command" in completed.stderr


class TestReport:
    def test_report_runs_and_mentions_headlines(self, capsys):
        from repro.report import main

        main()
        out = capsys.readouterr().out
        assert "8.89%" in out          # paper's area headline
        assert "reproduced" in out
        assert "attacks" in out.lower()
        assert "watermark" in out.lower()
