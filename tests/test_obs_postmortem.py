"""Post-mortem bundles: deterministic assembly, self-verifying audit
tails, tamper detection through the CLI, and the chaos/matrix wiring."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import auditlog, flight, metrics, postmortem
from repro.obs.postmortem import (
    build_bundle,
    bundle_path,
    diff_bundles,
    format_bundle,
    load_bundle,
    verify_bundle,
    write_bundle,
)


def drive_forensics(seed: int = 3) -> None:
    """Deterministically exercise both sinks (same seed → same state)."""
    auditlog.enable_audit_log()
    flight.enable_flight_recording()
    emitter = auditlog.get_emitter()
    for i in range(seed + 4):
        emitter.emit("tlb.install", tenant=i % 2, bank=f"core{i % 2}",
                     vbase=i * 4096, size=4096)
    emitter.emit("memory.scrub", tenant=0, pages=seed, scrubbed=True)
    metrics.get_registry().counter(
        "fixture_pm_total", tenant=0).inc(seed)
    flight.get_flight_recorder().note_metrics()


class _Spec:
    """Stand-in ScenarioSpec: just the surface build_bundle touches."""

    seed = 42

    @staticmethod
    def to_dict():
        return {"name": "pm-fixture", "seed": 42}


class TestBundleAssembly:
    def test_bundle_shape(self):
        drive_forensics()
        bundle = build_bundle(reason=ValueError("boom"), spec=_Spec())
        assert bundle["schema"] == postmortem.SCHEMA
        assert bundle["schema_version"] == postmortem.SCHEMA_VERSION
        assert bundle["reason"] == {"kind": "ValueError",
                                    "message": "boom"}
        assert bundle["scenario"] == {"name": "pm-fixture", "seed": 42}
        assert bundle["seed"] == 42
        assert bundle["audit"]["n_records"] == len(
            auditlog.get_audit_log())
        assert bundle["audit"]["chain_head"] == \
            auditlog.get_audit_log().head()
        assert bundle["flight"]["entries"]
        assert isinstance(bundle["metrics"], list)
        assert "cross_tenant_wait_ns" in bundle["interference"]

    def test_reason_normalization(self):
        assert build_bundle(reason="note text")["reason"] == \
            {"kind": "note", "message": "note text"}
        assert build_bundle(reason={"kind": "FaultInjected",
                                    "message": "m"})["reason"] == \
            {"kind": "FaultInjected", "message": "m"}

    def test_bundle_without_spec(self):
        bundle = build_bundle(reason="r")
        assert bundle["scenario"] is None and bundle["seed"] is None

    def test_fresh_bundle_verifies(self):
        drive_forensics()
        assert verify_bundle(build_bundle(reason="r")) == []

    def test_empty_bundle_verifies(self):
        assert verify_bundle(build_bundle(reason="r")) == []

    def test_tail_limit_truncates_but_still_verifies(self):
        drive_forensics(seed=9)
        bundle = build_bundle(reason="r", tail=4)
        assert len(bundle["audit"]["records"]) == 4
        assert bundle["audit"]["n_records"] > 4
        assert verify_bundle(bundle) == []


class TestDeterminism:
    def test_same_seed_bundles_are_byte_identical(self):
        """The acceptance gate: two same-seed runs → identical bytes."""
        blobs = []
        for _ in range(2):
            flight.reset()
            auditlog.reset()
            metrics.reset()
            drive_forensics(seed=5)
            bundle = build_bundle(reason={"kind": "IsolationViolation",
                                          "message": "x"}, spec=_Spec())
            blobs.append(json.dumps(bundle, indent=2, sort_keys=True))
        assert blobs[0] == blobs[1]

    def test_different_seeds_differ(self):
        blobs = []
        for seed in (5, 6):
            flight.reset()
            auditlog.reset()
            metrics.reset()
            drive_forensics(seed=seed)
            bundle = build_bundle(reason="r")
            blobs.append(json.dumps(bundle, sort_keys=True))
        assert blobs[0] != blobs[1]

    def test_write_bundle_is_deterministic_on_disk(self, tmp_path):
        drive_forensics()
        bundle = build_bundle(reason="r")
        p1 = write_bundle(bundle, str(tmp_path / "a.json"))
        p2 = write_bundle(bundle, str(tmp_path / "b.json"))
        assert open(p1, "rb").read() == open(p2, "rb").read()
        assert load_bundle(p1) == bundle


class TestVerification:
    def test_tampered_record_fails_with_offending_index(self):
        drive_forensics()
        bundle = build_bundle(reason="r")
        bundle["audit"]["records"][3]["detail"]["vbase"] = 0xBAD
        problems = verify_bundle(bundle)
        assert problems and "index 3" in problems[0]

    def test_tampered_chain_head_fails(self):
        drive_forensics()
        bundle = build_bundle(reason="r")
        bundle["audit"]["chain_head"] = "0" * 64
        assert any("chain head" in p for p in verify_bundle(bundle))

    def test_one_byte_flip_anywhere_in_the_file_fails(self, tmp_path):
        """Serialize → flip a byte inside the audit section → reload →
        verification must fail (or the JSON must no longer parse)."""
        drive_forensics()
        path = write_bundle(build_bundle(reason="r"),
                            str(tmp_path / "b.json"))
        raw = open(path, "rb").read()
        start = raw.index(b'"audit"')
        end = raw.index(b'"flight"', start)
        checked = 0
        for pos in range(start, end, 97):  # stride: keep the test fast
            original = raw[pos:pos + 1]
            replacement = b"7" if original != b"7" else b"8"
            mutated = raw[:pos] + replacement + raw[pos + 1:]
            try:
                bundle = json.loads(mutated)
            except json.JSONDecodeError:
                continue
            if bundle == json.loads(raw):
                continue
            assert verify_bundle(bundle), \
                f"flip at byte {pos} undetected"
            checked += 1
        assert checked > 3

    def test_wrong_schema_is_rejected(self):
        assert verify_bundle({"schema": "other"})
        assert verify_bundle({"schema": postmortem.SCHEMA})


class TestDiff:
    def test_identical_bundles_have_no_diff(self):
        drive_forensics()
        bundle = build_bundle(reason="r")
        assert diff_bundles(bundle, json.loads(
            json.dumps(bundle))) == []

    def test_diff_pinpoints_the_changed_field(self):
        drive_forensics()
        a = build_bundle(reason="r")
        b = json.loads(json.dumps(a))
        b["audit"]["records"][0]["tenant"] = 77
        diffs = diff_bundles(a, b)
        assert any("audit.records[0].tenant" in d for d in diffs)

    def test_diff_reports_missing_keys_and_length(self):
        assert diff_bundles({"a": 1}, {}) == ["a: only in first bundle"]
        assert diff_bundles({}, {"a": 1}) == ["a: only in second bundle"]
        assert "x: length 2 != 1" in diff_bundles({"x": [1, 2]},
                                                  {"x": [1]})


class TestCLI:
    def _write(self, tmp_path, name="POSTMORTEM_t.json", mutate=None):
        drive_forensics()
        bundle = build_bundle(reason=ValueError("boom"), spec=_Spec())
        if mutate:
            mutate(bundle)
        return write_bundle(bundle, str(tmp_path / name))

    def test_pretty_print(self, tmp_path):
        path = self._write(tmp_path)
        out = io.StringIO()
        assert postmortem.main([path], stream=out) == 0
        text = out.getvalue()
        assert "ValueError" in text and "pm-fixture" in text
        assert "audit:" in text and "flight:" in text

    def test_json_format_round_trips(self, tmp_path):
        path = self._write(tmp_path)
        out = io.StringIO()
        assert postmortem.main([path, "--format", "json"],
                               stream=out) == 0
        assert json.loads(out.getvalue()) == load_bundle(path)

    def test_verify_ok(self, tmp_path):
        path = self._write(tmp_path)
        out = io.StringIO()
        assert postmortem.main([path, "--verify"], stream=out) == 0
        assert out.getvalue().startswith("OK")

    def test_verify_fails_on_tamper(self, tmp_path):
        def mutate(bundle):
            bundle["audit"]["records"][1]["kind"] = "forged"
        path = self._write(tmp_path, mutate=mutate)
        out = io.StringIO()
        assert postmortem.main([path, "--verify"], stream=out) == 1
        assert "FAIL" in out.getvalue()

    def test_diff_identical_and_divergent(self, tmp_path):
        p1 = self._write(tmp_path, "POSTMORTEM_a.json")
        flight.reset(); auditlog.reset(); metrics.reset()  # noqa: E702
        p2 = self._write(tmp_path, "POSTMORTEM_b.json")
        out = io.StringIO()
        assert postmortem.main([p1, "--diff", p2], stream=out) == 0
        assert "identical" in out.getvalue()

        def mutate(bundle):
            bundle["seed"] = 1337
        flight.reset(); auditlog.reset(); metrics.reset()  # noqa: E702
        p3 = self._write(tmp_path, "POSTMORTEM_c.json", mutate=mutate)
        out = io.StringIO()
        assert postmortem.main([p1, "--diff", p3], stream=out) == 1
        assert "seed" in out.getvalue()

    def test_format_bundle_handles_empty_sections(self):
        text = format_bundle(build_bundle(reason="r"))
        assert "(none attached)" in text

    def test_bundle_path_shape(self):
        assert bundle_path("/tmp/x", "cell-1") == \
            "/tmp/x/POSTMORTEM_cell-1.json"


class TestHarnessWiring:
    def test_chaos_quick_writes_verifying_bundles(self, tmp_path):
        from repro.faults.chaos import run_chaos

        report = run_chaos(seed=0, quick=True,
                           postmortem_dir=str(tmp_path))
        names = report["postmortem"]["bundles"]
        assert names, "chaos --quick should drop at least one bundle"
        for name in names:
            bundle = load_bundle(str(tmp_path / name))
            assert verify_bundle(bundle) == []
            assert bundle["audit"]["records"], name
        # Forensics are disarmed afterwards.
        assert auditlog.get_emitter().active is False

    def test_chaos_report_is_identical_without_postmortem(self, tmp_path):
        from repro.faults.chaos import run_chaos

        with_pm = run_chaos(seed=0, quick=True,
                            postmortem_dir=str(tmp_path))
        plain = run_chaos(seed=0, quick=True)
        with_pm.pop("postmortem")
        assert json.dumps(with_pm, sort_keys=True, default=repr) == \
            json.dumps(plain, sort_keys=True, default=repr)

    def test_matrix_error_cell_drops_a_bundle(self, tmp_path,
                                              monkeypatch):
        from repro.scenario import matrix as matrix_mod
        import repro.scenario.build as build_mod

        cell = matrix_mod.expand(
            matrix_mod.default_axes(quick=True), base_seed=7)[0]

        class Boom:
            def __enter__(self):
                auditlog.get_emitter().emit("denylist.blocked",
                                            tenant=1, op="os_access")
                raise RuntimeError("synthetic cell failure")

            def __exit__(self, *exc):
                return False

        monkeypatch.setattr(build_mod, "build_scenario",
                            lambda spec: Boom())
        record = matrix_mod.run_cell(cell, quick=True,
                                     postmortem_dir=str(tmp_path))
        assert record.status == "error"
        path = bundle_path(str(tmp_path), cell.name)
        bundle = load_bundle(path)
        assert verify_bundle(bundle) == []
        assert bundle["reason"]["kind"] == "RuntimeError"
        assert bundle["scenario"]["name"] == cell.name
        kinds = [r["kind"] for r in bundle["audit"]["records"]]
        assert "denylist.blocked" in kinds

    def test_matrix_ok_cell_writes_nothing(self, tmp_path):
        from repro.scenario import matrix as matrix_mod

        cell = matrix_mod.expand(
            matrix_mod.default_axes(quick=True), base_seed=7)[0]
        record = matrix_mod.run_cell(cell, quick=True,
                                     postmortem_dir=str(tmp_path))
        assert record.status == "ok"
        assert list(tmp_path.iterdir()) == []


@pytest.mark.parametrize("exc_name", ["IsolationViolation",
                                      "WatchdogTimeout",
                                      "RecoveryExhausted"])
def test_reason_kinds_for_the_containment_exceptions(exc_name):
    from repro.core import errors

    exc_cls = getattr(errors, exc_name)
    try:
        bundle = build_bundle(reason=exc_cls("why"))
    except TypeError:
        # Some exceptions require structured args; build directly.
        bundle = build_bundle(reason={"kind": exc_name, "message": "why"})
    assert bundle["reason"]["kind"] == exc_name
