"""Tests for attack 2b (traffic stealing) and parser robustness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.commodity.attacks import (
    run_traffic_stealing_experiment,
    traffic_stealing_attack,
)
from repro.commodity.liquidio import LiquidIONIC
from repro.net.packet import Packet, ip_to_int
from repro.nf.monitor import Monitor


class TestTrafficStealing:
    def test_attack_hijacks_all_victim_traffic(self):
        result, victim_packets, attacker_packets = (
            run_traffic_stealing_experiment()
        )
        assert result.succeeded
        assert victim_packets == 0
        assert attacker_packets == 10

    def test_without_attack_victim_receives(self):
        nic = LiquidIONIC(mode="SE-S", n_cores=2)
        victim = nic.install_function(Monitor(), core_id=0)
        nic.configure_switch_rule(
            0, dst_ip=ip_to_int("10.0.0.0"), dst_mask=0xFF000000,
            nf_id=victim.nf_id,
        )
        assert nic.receive_from_wire(
            Packet.make("9.9.9.9", "10.1.2.3")
        ) == victim.nf_id
        assert len(victim.packet_buffers) == 1

    def test_unmatched_traffic_dropped(self):
        nic = LiquidIONIC(mode="SE-S", n_cores=2)
        victim = nic.install_function(Monitor(), core_id=0)
        nic.configure_switch_rule(
            0, dst_ip=ip_to_int("10.0.0.0"), dst_mask=0xFF000000,
            nf_id=victim.nf_id,
        )
        assert nic.receive_from_wire(Packet.make("9.9.9.9", "11.0.0.1")) is None

    def test_attack_without_matching_rules_fails(self):
        nic = LiquidIONIC(mode="SE-S", n_cores=2)
        victim = nic.install_function(Monitor(), core_id=0)
        attacker = nic.install_function(Monitor(), core_id=1)
        result = traffic_stealing_attack(
            nic, victim_nf_id=999,  # no rules point at this id
            attacker_nf_id=attacker.nf_id, attacker_core_id=1,
        )
        assert not result.succeeded

    def test_snic_rules_not_rewritable(self):
        """The S-NIC counterpart: switching rules live inside the
        owner's denylisted extent, and their content is covered by the
        launch hash — tampering is blocked *and* detectable."""
        from repro.core import IsolationViolation, NFConfig, NICOS, SNIC
        from repro.core.vpp import VPPConfig
        from repro.net.rules import MatchRule, Prefix

        MB = 1024 * 1024
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=110)
        nic_os = NICOS(snic)
        victim = nic_os.NF_create(
            NFConfig(
                name="victim", core_ids=(0,), memory_bytes=4 * MB,
                vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("10.0.0.0/8"))]),
            )
        )
        attacker = nic_os.NF_create(
            NFConfig(name="attacker", core_ids=(1,), memory_bytes=4 * MB)
        )
        # The rules blob lives in the victim's extent: the OS (and any
        # other function) is denylisted away from it.
        record = snic.record(victim.nf_id)
        with pytest.raises(IsolationViolation):
            nic_os.os_write(record.extent_base + record.extent_bytes - 4096,
                            b"\x00" * 16)


class TestParserRobustness:
    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_from_bytes_never_crashes_unexpectedly(self, blob):
        """Arbitrary wire bytes either parse or raise ValueError-family
        errors — never IndexError/KeyError/struct.error escapes."""
        import struct as struct_mod

        try:
            Packet.from_bytes(blob)
        except (ValueError, struct_mod.error):
            pass

    @settings(max_examples=40)
    @given(st.binary(max_size=120))
    def test_reparse_of_valid_frame_with_garbage_tail(self, tail):
        """A valid frame followed by trailing garbage still parses to
        the same packet (total_length bounds the payload)."""
        packet = Packet.make("1.1.1.1", "2.2.2.2", src_port=1, dst_port=2,
                             payload=b"xy")
        parsed = Packet.from_bytes(packet.to_bytes() + tail)
        assert parsed.five_tuple == packet.five_tuple
        assert parsed.payload == b"xy"
