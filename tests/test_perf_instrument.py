"""Tests for the white-box NF access recorder, and the cross-check that
the recorded behaviour supports the calibrated Figure 5 models."""

import pytest

from repro.net.rules import Prefix, RuleTable
from repro.net.traces import make_ictf_like_trace
from repro.nf import (
    Backend,
    DIR24_8,
    DPIEngine,
    Firewall,
    MaglevLoadBalancer,
    Monitor,
    NAT,
    make_emerging_threats_rules,
    make_random_routes,
    make_snort_like_patterns,
)
from repro.perf.instrument import (
    AccessTrace,
    RegionLayout,
    record_dpi,
    record_firewall,
    record_lb,
    record_lpm,
    record_monitor,
    record_nat,
    working_set_report,
)

N_PACKETS = 600


@pytest.fixture(scope="module")
def packets():
    trace = make_ictf_like_trace(scale=0.004)
    return list(trace.packets(N_PACKETS, payload_size=96))


class TestRegionLayout:
    def test_address_computation(self):
        region = RegionLayout("r", base=1000, entry_bytes=10, n_entries=5)
        assert region.address(0) == 1000
        assert region.address(3) == 1030
        assert region.address(7) == 1020  # wraps

    def test_size(self):
        assert RegionLayout("r", 0, 10, 5).size_bytes == 50


class TestRecorders:
    def test_firewall_records_cache_and_rules(self, packets):
        fw = Firewall(make_emerging_threats_rules(50))
        trace = record_firewall(fw, packets)
        regions = {region for region, _ in trace.events}
        assert regions == {"flow-cache", "rules"}
        # One cache probe per packet at minimum.
        assert len(trace.events) >= N_PACKETS

    def test_firewall_hits_skip_rule_scan(self):
        fw = Firewall(make_emerging_threats_rules(50))
        from repro.net.packet import Packet

        same = [Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=80)
                for _ in range(10)]
        trace = record_firewall(fw, same)
        rule_scans = sum(1 for region, _ in trace.events if region == "rules")
        assert rule_scans == 50  # exactly one miss-scan, then cached

    def test_dpi_visits_states(self, packets):
        dpi = DPIEngine(make_snort_like_patterns(100))
        trace = record_dpi(dpi, packets[:50])
        assert all(region == "graph" for region, _ in trace.events)
        # One state visit per payload byte.
        assert len(trace.events) == sum(len(p.payload) for p in packets[:50])

    def test_nat_touches_both_tables(self, packets):
        nat = NAT("100.0.0.1")
        trace = record_nat(nat, [p.copy() for p in packets])
        regions = {region for region, _ in trace.events}
        assert "forward" in regions and "reverse" in regions

    def test_lb_touches_table(self, packets):
        lb = MaglevLoadBalancer(
            [Backend("a", "1.0.0.1"), Backend("b", "1.0.0.2")], table_size=65537
        )
        trace = record_lb(lb, [p.copy() for p in packets])
        table_hits = [i for region, i in trace.events if region == "maglev-table"]
        assert len(table_hits) == N_PACKETS
        assert all(0 <= i < 65537 for i in table_hits)

    def test_lpm_records_tbl24(self, packets):
        lpm = DIR24_8(max_tbl8_groups=1024)
        for prefix, hop in make_random_routes(200):
            lpm.add_route(prefix, hop)
        lpm.add_route(Prefix.parse("0.0.0.0/0"), 1)
        trace = record_lpm(lpm, [p.copy() for p in packets])
        assert sum(1 for r, _ in trace.events if r == "tbl24") == N_PACKETS

    def test_monitor_probes_hashmap(self, packets):
        monitor = Monitor()
        trace = record_monitor(monitor, [p.copy() for p in packets])
        assert len(trace.events) == N_PACKETS
        assert monitor.distinct_flows > 0

    def test_addresses_in_bounds(self, packets):
        monitor = Monitor()
        trace = record_monitor(monitor, [p.copy() for p in packets])
        addresses = trace.addresses()
        layout = trace.regions["counters"]
        assert addresses.min() >= layout.base
        assert addresses.max() < layout.base + layout.size_bytes


class TestModelValidation:
    """The recorded behaviour must justify the calibrated models."""

    @pytest.fixture(scope="class")
    def report(self):
        trace = make_ictf_like_trace(scale=0.004)
        packets = list(trace.packets(800, payload_size=96))
        lpm = DIR24_8(max_tbl8_groups=1024)
        for prefix, hop in make_random_routes(200):
            lpm.add_route(prefix, hop)
        lpm.add_route(Prefix.parse("0.0.0.0/0"), 1)
        traces = [
            record_firewall(Firewall(make_emerging_threats_rules(100)),
                            [p.copy() for p in packets]),
            record_dpi(DPIEngine(make_snort_like_patterns(100)),
                       [p.copy() for p in packets[:150]]),
            record_nat(NAT("100.0.0.1"), [p.copy() for p in packets]),
            record_lb(
                MaglevLoadBalancer(
                    [Backend("a", "1.0.0.1"), Backend("b", "1.0.0.2")],
                    table_size=65537,
                ),
                [p.copy() for p in packets],
            ),
            record_lpm(lpm, [p.copy() for p in packets]),
            record_monitor(Monitor(), [p.copy() for p in packets]),
        ]
        return working_set_report(traces, 800)

    def test_dpi_is_most_access_intensive(self, report):
        """DPI touches its graph once per payload byte — by far the most
        accesses per packet (matching its highest mem_refs_per_instr)."""
        dpi_rate = report["DPI"]["accesses_per_packet"]
        others = [v["accesses_per_packet"] for k, v in report.items() if k != "DPI"]
        # DPI only processed 150 of the 800 packets; normalize to
        # per-*processed*-packet before comparing.
        assert dpi_rate * (800 / 150) > max(others)

    def test_zipf_head_concentration(self, report):
        """Flow-keyed structures concentrate their accesses in a small
        head (the Zipf(1.1) trace skew the models encode)."""
        for name in ("FW", "NAT", "Mon"):
            assert report[name]["head_concentration"] > 0.5

    def test_all_nfs_reported(self, report):
        assert set(report) == {"FW", "DPI", "NAT", "LB", "LPM", "Mon"}
