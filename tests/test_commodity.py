"""Tests for commodity NIC models: LiquidIO, Agilio, BlueField."""

import pytest

from repro.commodity.agilio import AgilioNIC, ISLAND_SRAM_BYTES
from repro.commodity.bluefield import BlueFieldNIC, TrustZoneWorld
from repro.commodity.liquidio import (
    LiquidIONIC,
    SE_S,
    SE_UM,
    XKPHYS_BASE,
    XUSEG_BASE,
)
from repro.hw.bus import BusCrashed
from repro.hw.memory import AccessFault
from repro.net.packet import Packet
from repro.nf.monitor import Monitor


class TestLiquidIOSegments:
    def test_se_s_xkphys_reads_physical(self):
        nic = LiquidIONIC(mode=SE_S, n_cores=2)
        nic.memory.write(0x5000, b"raw-bytes")
        assert nic.cores[0].xkphys_read(0x5000, 9) == b"raw-bytes"

    def test_se_s_xkphys_writes_physical(self):
        nic = LiquidIONIC(mode=SE_S, n_cores=2)
        nic.cores[1].xkphys_write(0x6000, b"attacker")
        assert nic.memory.read(0x6000, 8) == b"attacker"

    def test_se_um_can_disable_xkphys(self):
        nic = LiquidIONIC(mode=SE_UM, n_cores=2, xkphys_for_functions=False)
        with pytest.raises(AccessFault):
            nic.cores[0].xkphys_read(0, 8)

    def test_se_um_with_xkphys_enabled(self):
        nic = LiquidIONIC(mode=SE_UM, n_cores=2, xkphys_for_functions=True)
        nic.memory.write(0x100, b"x")
        assert nic.cores[0].xkphys_read(0x100, 1) == b"x"

    def test_xuseg_goes_through_tlb(self):
        nic = LiquidIONIC(mode=SE_S, n_cores=2)
        installed = nic.install_function(Monitor(), core_id=0)
        core = nic.cores[0]
        core.write_virtual(XUSEG_BASE + 10, b"nf-state")
        assert (
            nic.memory.read(installed.xuseg_phys_base + 10, 8) == b"nf-state"
        )

    def test_xkseg_requires_privilege(self):
        nic = LiquidIONIC(mode=SE_UM, n_cores=1)  # SE-UM: user mode
        from repro.commodity.liquidio import XKSEG_BASE

        with pytest.raises(AccessFault):
            nic.cores[0].read_virtual(XKSEG_BASE, 8)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            LiquidIONIC(mode="SE-X")


class TestLiquidIOFunctions:
    def test_install_binds_core(self):
        nic = LiquidIONIC(n_cores=2)
        installed = nic.install_function(Monitor(), core_id=0)
        assert nic.cores[0].nf_id == installed.nf_id
        with pytest.raises(AccessFault):
            nic.install_function(Monitor(), core_id=0)

    def test_packet_delivery_and_run(self):
        nic = LiquidIONIC(n_cores=2)
        mon = Monitor()
        installed = nic.install_function(mon, core_id=0)
        p = Packet.make("1.1.1.1", "2.2.2.2", src_port=7, dst_port=8)
        nic.deliver_packet(installed.nf_id, p)
        outputs = nic.run_function_on_buffers(installed.nf_id)
        assert len(outputs) == 1
        assert mon.distinct_flows == 1

    def test_allocator_metadata_is_world_readable(self):
        """The root weakness: buffer records live at a well-known
        physical address readable through any core's xkphys."""
        nic = LiquidIONIC(n_cores=2)
        installed = nic.install_function(Monitor(), core_id=0)
        addr = nic.deliver_packet(
            installed.nf_id, Packet.make("1.1.1.1", "2.2.2.2")
        )
        records = nic.allocator.records()
        assert (installed.nf_id, addr, len(Packet.make("1.1.1.1", "2.2.2.2").to_bytes())) in records

    def test_store_function_data_discoverable(self):
        nic = LiquidIONIC(n_cores=2)
        installed = nic.install_function(Monitor(), core_id=0)
        addr = nic.store_function_data(installed.nf_id, b"ruleset")
        assert nic.cores[1].xkphys_read(addr, 7) == b"ruleset"


class TestAgilio:
    def test_island_sram_readable_by_anyone(self):
        nic = AgilioNIC()
        nic.island_sram_write(0, 0, b"island-private?")
        # Any caller reads any island's SRAM — no access control.
        assert nic.island_sram_read(0, 0, 15) == b"island-private?"

    def test_island_sram_bounds(self):
        nic = AgilioNIC()
        with pytest.raises(ValueError):
            nic.island_sram_write(0, ISLAND_SRAM_BYTES - 4, b"too-long")

    def test_crypto_contention_observable(self):
        quiet = AgilioNIC()
        baseline = quiet.crypto_op(owner=2, n_bytes=100, now_ns=0.0)
        noisy = AgilioNIC()
        for _ in range(20):
            noisy.crypto_op(owner=1, n_bytes=50_000, now_ns=0.0)
        contended = noisy.crypto_op(owner=2, n_bytes=100, now_ns=0.0)
        assert contended > baseline

    def test_bus_dos_crashes(self):
        nic = AgilioNIC()
        with pytest.raises(BusCrashed):
            nic.semaphore_decrement_loop(owner=666, iterations=100_000)
        assert nic.crashed

    def test_crashed_nic_rejects_everything(self):
        nic = AgilioNIC()
        with pytest.raises(BusCrashed):
            nic.semaphore_decrement_loop(owner=666, iterations=100_000)
        with pytest.raises(BusCrashed):
            nic.raw_read(0, 4)

    def test_power_cycle_recovers(self):
        nic = AgilioNIC()
        with pytest.raises(BusCrashed):
            nic.semaphore_decrement_loop(owner=666, iterations=100_000)
        nic.power_cycle()
        nic.raw_read(0, 4)  # alive again
        assert not nic.crashed


class TestBlueField:
    def test_normal_world_blocked_from_secure(self):
        nic = BlueFieldNIC()
        with pytest.raises(AccessFault):
            nic.read(TrustZoneWorld.NORMAL, 0, 4)

    def test_secure_world_reads_everything(self):
        nic = BlueFieldNIC()
        nic.write(TrustZoneWorld.SECURE, 0, b"sec")
        assert nic.read(TrustZoneWorld.SECURE, 0, 3) == b"sec"

    def test_normal_world_has_its_region(self):
        nic = BlueFieldNIC(dram_bytes=1024 * 1024, secure_fraction=0.5)
        nic.write(TrustZoneWorld.NORMAL, 600 * 1024, b"norm")
        assert nic.read(TrustZoneWorld.NORMAL, 600 * 1024, 4) == b"norm"

    def test_only_secure_world_moves_boundary(self):
        nic = BlueFieldNIC()
        with pytest.raises(AccessFault):
            nic.set_secure_boundary(TrustZoneWorld.NORMAL, 0)
        nic.set_secure_boundary(TrustZoneWorld.SECURE, 1024)
        nic.read(TrustZoneWorld.NORMAL, 2048, 4)  # now normal memory

    def test_trustlet_protected_from_normal_world(self):
        nic = BlueFieldNIC()
        t = nic.install_trustlet(4096)
        nic.trustlet_write(t, 0, b"keys")
        with pytest.raises(AccessFault):
            nic.read(TrustZoneWorld.NORMAL, t.state_base, 4)

    def test_secure_os_reads_trustlet_state(self):
        """The paper's criticism: no protection from the secure OS."""
        nic = BlueFieldNIC()
        t = nic.install_trustlet(4096)
        nic.trustlet_write(t, 0, b"tls-private-key")
        leaked = nic.secure_os_read_trustlet(t.trustlet_id)
        assert leaked.startswith(b"tls-private-key")

    def test_trustlet_write_bounds(self):
        nic = BlueFieldNIC()
        t = nic.install_trustlet(16)
        with pytest.raises(AccessFault):
            nic.trustlet_write(t, 10, b"too-long")

    def test_cross_world_cache_side_channel(self):
        """The shared L2 is not world-partitioned: a normal-world prober
        observes secure-world residency."""
        nic = BlueFieldNIC()
        nic.touch_cache(world_owner=1, addr=0x1234)  # secure-world access
        assert nic.touch_cache(world_owner=2, addr=0x1234)  # prober hits

    def test_secure_region_exhaustion(self):
        nic = BlueFieldNIC(dram_bytes=1024 * 1024, secure_fraction=0.01)
        with pytest.raises(MemoryError):
            nic.install_trustlet(1024 * 1024)
