"""The hash-chained audit log: round-trip integrity, tamper detection
at the offending index, emitter routing, and determinism."""

from __future__ import annotations

import json

import pytest

from repro.obs import auditlog, flight
from repro.obs.auditlog import (
    GENESIS,
    AuditLog,
    record_hash,
    verify_records,
)


def make_log(n: int = 6) -> AuditLog:
    log = AuditLog()
    log.enable()
    kinds = ("tlb.install", "memory.scrub", "attest.verdict",
             "denylist.blocked", "fault.injected", "recovery.restart")
    for i in range(n):
        log.append(kinds[i % len(kinds)], tenant=i % 3,
                   pages=i + 1, ok=bool(i % 2))
    return log


class TestChainRoundTrip:
    def test_empty_log_verifies_and_heads_at_genesis(self):
        log = AuditLog()
        assert log.head() == GENESIS
        assert log.verify_chain() is None

    def test_append_serialize_verify(self):
        log = make_log()
        assert log.verify_chain() is None
        # Round-trip through JSON (what a bundle does) and re-verify.
        wire = json.dumps(log.tail(), sort_keys=True)
        records = json.loads(wire)
        assert verify_records(records, anchor=GENESIS) is None

    def test_head_tracks_last_record(self):
        log = make_log()
        assert log.head() == log.records[-1]["hash"]

    def test_seq_is_contiguous_from_zero(self):
        log = make_log()
        assert [r["seq"] for r in log.records] == list(range(len(log)))

    def test_record_hash_covers_prev_and_payload(self):
        payload = {"seq": 0, "ts_ns": 1.0, "kind": "k", "tenant": None,
                   "detail": {}}
        assert record_hash(GENESIS, payload) != \
            record_hash("0" * 64, payload)
        assert record_hash(GENESIS, payload) != \
            record_hash(GENESIS, {**payload, "ts_ns": 2.0})

    def test_tail_excerpt_self_verifies_with_trusted_anchor(self):
        log = make_log(8)
        excerpt = log.tail(3)
        # Mid-chain excerpt: full-anchor verification fails, trusted
        # first-prev verification succeeds.
        assert verify_records(excerpt, anchor=GENESIS) == 0
        assert verify_records(excerpt, anchor=None) is None

    def test_tail_is_a_deep_copy(self):
        log = make_log()
        excerpt = log.tail()
        excerpt[0]["detail"]["pages"] = 999_999
        assert log.verify_chain() is None


class TestTamperDetection:
    def test_flipping_any_byte_breaks_the_chain_at_that_index(self):
        """The tentpole guarantee: flip one byte anywhere in the
        serialized log and verification fails, reporting the offending
        record."""
        log = make_log(5)
        baseline = log.tail()
        for index in range(len(baseline)):
            for field, value in (("kind", "evil"), ("tenant", 99),
                                 ("ts_ns", -1.0)):
                tampered = json.loads(json.dumps(baseline))
                tampered[index][field] = value
                assert verify_records(tampered, anchor=GENESIS) == index, \
                    f"tampering {field} of record {index} undetected"

    def test_tampering_detail_is_detected(self):
        log = make_log(4)
        tampered = log.tail()
        tampered[2]["detail"]["pages"] = 1_000_000
        assert verify_records(tampered, anchor=GENESIS) == 2

    def test_tampering_hash_is_detected(self):
        log = make_log(4)
        tampered = log.tail()
        bad = tampered[1]["hash"]
        tampered[1]["hash"] = ("0" if bad[0] != "0" else "1") + bad[1:]
        # Record 1's own digest no longer matches its payload.
        assert verify_records(tampered, anchor=GENESIS) == 1

    def test_tampering_prev_pointer_is_detected(self):
        log = make_log(4)
        tampered = log.tail()
        tampered[2]["prev"] = "f" * 64
        assert verify_records(tampered, anchor=GENESIS) == 2

    def test_deleting_a_middle_record_is_detected(self):
        log = make_log(5)
        tampered = log.tail()
        del tampered[2]
        assert verify_records(tampered, anchor=GENESIS) is not None

    def test_reordering_records_is_detected(self):
        log = make_log(5)
        tampered = log.tail()
        tampered[1], tampered[3] = tampered[3], tampered[1]
        assert verify_records(tampered, anchor=GENESIS) is not None

    def test_single_character_flip_in_serialized_form(self):
        """Byte-level sweep over the serialized JSON: every mutation
        that still parses must fail verification (structural mutations
        that break JSON are rejected even earlier)."""
        log = make_log(3)
        wire = json.dumps(log.tail(), sort_keys=True)
        flips = 0
        for pos in range(len(wire)):
            original = wire[pos]
            replacement = "7" if original != "7" else "8"
            mutated = wire[:pos] + replacement + wire[pos + 1:]
            try:
                records = json.loads(mutated)
            except json.JSONDecodeError:
                continue
            if json.dumps(records, sort_keys=True) == \
                    json.dumps(json.loads(wire), sort_keys=True):
                continue  # e.g. 1.0 -> 1.00 style no-op never happens,
                # but guard against formatting-equivalent parses
            assert verify_records(records, anchor=GENESIS) is not None, \
                f"flip at byte {pos} ({original!r}->{replacement!r}) " \
                f"undetected"
            flips += 1
        assert flips > 100  # the sweep actually exercised the chain


class TestEmitterRouting:
    def test_inactive_emitter_drops_everything(self):
        emitter = auditlog.get_emitter()
        assert emitter.active is False
        emitter.emit("tlb.install", tenant=1, bank="x")
        assert len(auditlog.get_audit_log()) == 0
        assert len(flight.get_flight_recorder()) == 0

    def test_emitter_routes_to_enabled_log(self):
        auditlog.enable_audit_log()
        emitter = auditlog.get_emitter()
        assert emitter.active is True
        emitter.emit("memory.scrub", tenant=2, pages=4)
        log = auditlog.get_audit_log()
        assert len(log) == 1
        assert log.records[0]["kind"] == "memory.scrub"
        assert log.records[0]["tenant"] == 2
        assert log.records[0]["detail"] == {"pages": 4}
        assert log.verify_chain() is None

    def test_emitter_routes_to_enabled_flight(self):
        flight.enable_flight_recording()
        emitter = auditlog.get_emitter()
        assert emitter.active is True
        emitter.emit("tlb.clear", tenant=None, bank="core0", dropped=3)
        recorder = flight.get_flight_recorder()
        assert len(recorder) == 1
        entry = recorder.entries()[0]
        assert (entry.kind, entry.name, entry.track) == \
            ("audit", "tlb.clear", "audit")
        assert entry.args == {"bank": "core0", "dropped": 3}
        # The log stayed off: nothing appended there.
        assert len(auditlog.get_audit_log()) == 0

    def test_both_sinks_share_one_timestamp(self):
        auditlog.enable_audit_log()
        flight.enable_flight_recording()
        auditlog.get_emitter().emit("attest.verdict", tenant=1, ok=True)
        record = auditlog.get_audit_log().records[0]
        entry = flight.get_flight_recorder().entries()[0]
        assert entry.ts_ns == record["ts_ns"]

    def test_reset_returns_emitter_to_inactive(self):
        auditlog.enable_audit_log()
        flight.enable_flight_recording()
        auditlog.reset()
        flight.reset()
        assert auditlog.get_emitter().active is False


class TestDeterminism:
    def test_internal_tick_clock_is_deterministic(self):
        a, b = make_log(), make_log()
        assert json.dumps(a.tail(), sort_keys=True) == \
            json.dumps(b.tail(), sort_keys=True)

    def test_bound_clock_lands_in_records(self):
        log = AuditLog()
        log.enable(clock=lambda: 12_345)
        log.append("watchdog.timeout", tenant=1)
        assert log.records[0]["ts_ns"] == 12345.0

    def test_detail_keys_are_sorted(self):
        log = AuditLog()
        log.enable()
        log.append("k", zebra=1, alpha=2, mid=3)
        assert list(log.records[0]["detail"]) == ["alpha", "mid", "zebra"]

    def test_non_jsonable_detail_values_are_coerced(self):
        log = AuditLog()
        log.enable()
        log.append("k", data=b"\x01\x02", items=(1, 2))
        detail = log.records[0]["detail"]
        assert detail["items"] == [1, 2]
        assert isinstance(detail["data"], str)
        assert log.verify_chain() is None


class TestDisabledLogIsInert:
    def test_append_requires_enable(self):
        log = AuditLog()
        # Disabled logs are never handed appends by the emitter; direct
        # appends still work (the flag gates the *facade*), so assert
        # the facade contract instead.
        emitter = auditlog.AuditEmitter(log, flight.FlightRecorder())
        emitter.refresh()
        assert emitter.active is False
        emitter.emit("k")
        assert len(log) == 0

    def test_module_singleton_identity_is_stable(self):
        # Resets must clear in place — the emitter holds references.
        log_before = auditlog.get_audit_log()
        auditlog.enable_audit_log()
        auditlog.reset()
        assert auditlog.get_audit_log() is log_before


@pytest.mark.parametrize("n", [1, 2, 7, 33])
def test_verify_is_linear_in_confidence_not_luck(n):
    """Chains of assorted lengths verify and detect first-byte damage."""
    log = make_log(n)
    assert log.verify_chain() is None
    tampered = log.tail()
    tampered[0]["kind"] = "forged"
    assert verify_records(tampered, anchor=GENESIS) == 0
