"""The isolation scorecard: commodity interferes on every resource,
S-NIC attributes exactly zero, and the whole audit is deterministic."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.audit import (
    format_scorecard_json,
    format_scorecard_markdown,
    format_scorecard_text,
    main as audit_main,
    run_audit,
)
from repro.obs.interference import RESOURCES


@pytest.fixture(scope="module")
def scorecard():
    """One quick audit shared by the module (the audit resets the
    registry itself, so it does not interact with the per-test reset)."""
    return run_audit(quick=True)


class TestVerdict:
    def test_quick_audit_passes(self, scorecard):
        assert scorecard["verdict"] == {"pass": True, "reasons": []}

    def test_commodity_attributes_cross_tenant_wait_everywhere(
            self, scorecard):
        resources = scorecard["configs"]["commodity"]["resources"]
        for res in RESOURCES:
            report = resources[res]
            assert report["cross_tenant_wait_ns"] > 0.0, res
            assert report["cross_tenant_events"] > 0.0, res

    def test_snic_attributes_exactly_zero_cross_tenant(self, scorecard):
        snic = scorecard["configs"]["snic"]
        assert snic["cross_tenant_wait_ns"] == 0.0
        assert snic["cross_tenant_events"] == 0.0
        for res in RESOURCES:
            assert snic["resources"][res]["cross_tenant_wait_ns"] == 0.0

    def test_cotenancy_slows_the_commodity_victim(self, scorecard):
        resources = scorecard["configs"]["commodity"]["resources"]
        for res in ("bus", "dram", "dma", "cores"):
            report = resources[res]
            assert report["cotenant"] > report["solo"], res
            assert report["slowdown"] > 1.0, res

    def test_zero_baseline_reports_null_slowdown(self, scorecard):
        # The cache victim's solo miss rate is 0 (resident working set),
        # so the ratio is meaningless — null, never Infinity.
        cache = scorecard["configs"]["commodity"]["resources"]["cache"]
        assert cache["solo"] == 0.0
        assert cache["slowdown"] is None

    def test_snic_victim_is_cotenant_invariant(self, scorecard):
        resources = scorecard["configs"]["snic"]["resources"]
        for res in RESOURCES:
            report = resources[res]
            assert report["cotenant"] == report["solo"], res

    def test_side_channels_close_under_snic(self, scorecard):
        for channel, by_config in scorecard["side_channels"].items():
            assert by_config["commodity"]["capacity_bits_per_symbol"] > 0.5, \
                channel
            assert by_config["snic"]["closed"], channel
            assert by_config["snic"]["capacity_bits_per_symbol"] == 0.0

    def test_noninterference_harness_is_clean(self, scorecard):
        assert scorecard["noninterference"]["violations"] == 0

    def test_latency_percentiles_where_latency_is_the_metric(
            self, scorecard):
        commodity = scorecard["configs"]["commodity"]["resources"]
        for res in ("bus", "dram", "dma"):
            pct = commodity[res]["cotenant_latency_percentiles"]
            assert pct is not None, res
            assert pct["p50"] <= pct["p95"] <= pct["p99"]
            assert pct["count"] == scorecard["rounds_per_workload"]
        assert commodity["cores"]["cotenant_latency_percentiles"] is None


class TestDeterminism:
    def test_two_audits_are_byte_identical(self, scorecard):
        again = run_audit(quick=True)
        assert format_scorecard_json(scorecard) == \
            format_scorecard_json(again)


class TestRendering:
    def test_json_is_valid_and_sorted(self, scorecard):
        rendered = format_scorecard_json(scorecard)
        payload = json.loads(rendered)
        assert payload["schema"] == scorecard["schema"]
        assert rendered == json.dumps(payload, indent=2,
                                      sort_keys=True) + "\n"

    def test_text_contains_the_verdict_and_every_resource(self, scorecard):
        text = format_scorecard_text(scorecard)
        assert "VERDICT: PASS" in text
        for res in RESOURCES:
            assert res in text
        assert "blame matrix" in text
        assert "side channels" in text

    def test_markdown_renders_tables(self, scorecard):
        md = format_scorecard_markdown(scorecard)
        assert md.startswith("# repro audit")
        assert "**Verdict: PASS**" in md
        assert "| bus |" in md

    def test_failing_scorecard_renders_reasons(self, scorecard):
        broken = dict(scorecard)
        broken["verdict"] = {"pass": False, "reasons": ["made-up reason"]}
        assert "made-up reason" in format_scorecard_text(broken)
        assert "made-up reason" in format_scorecard_markdown(broken)


class TestCli:
    def test_cli_quick_json_exits_zero(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "scorecard.json"
        code = audit_main(["--quick", "--format", "json",
                           "--out", str(path)], stream=out)
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["verdict"]["pass"] is True
        assert path.read_text() == out.getvalue()

    def test_cli_default_format_is_text(self):
        out = io.StringIO()
        assert audit_main(["--quick"], stream=out) == 0
        assert "isolation scorecard" in out.getvalue()
