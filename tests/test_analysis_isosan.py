"""IsoSan regression suite: every check must catch its injected bug.

The autouse conftest fixture already runs the whole suite under IsoSan;
these tests prove the sanitizer *detects* violations, not merely that
clean code passes.  They manage sanitizer scope explicitly where the
test itself plays the attacker.
"""

from __future__ import annotations

import pytest

from repro.analysis.isosan import IsoSan, get_isosan, sanitized
from repro.core.errors import IsolationViolation
from repro.hw.cache import Cache, CacheConfig, HARD
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import TLB, TLBEntry, GuardedAddressSpace

PAGE = 4096
MB = 1024 * 1024


@pytest.fixture()
def san(isosan_enabled):
    """The active sanitizer (installed by the autouse fixture)."""
    assert isosan_enabled is not None and isosan_enabled.installed
    return isosan_enabled


# ----------------------------------------------------------------------
# The three injected violations from the acceptance criteria
# ----------------------------------------------------------------------

class TestCrossTenantAccess:
    def test_attributed_read_of_foreign_page_raises(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(1, range(0, 4))
        mem.claim_pages(2, range(4, 8))
        with san.access_context(1):
            with pytest.raises(IsolationViolation, match="cross-tenant"):
                mem.read(4 * PAGE, 16)

    def test_attributed_write_of_foreign_page_raises(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(2, range(4, 8))
        with san.access_context(1):
            with pytest.raises(IsolationViolation, match="cross-tenant"):
                mem.write(4 * PAGE, b"intrusion")

    def test_own_and_free_pages_are_fine(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(1, range(0, 4))
        with san.access_context(1):
            mem.write(0, b"mine")
            assert mem.read(0, 4) == b"mine"
            mem.read(64 * PAGE, 8)  # free page: unowned, allowed

    def test_unattributed_access_stays_unchecked(self, san):
        """Raw hardware semantics survive: no context, no check (the
        commodity attack models depend on this)."""
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(2, range(0, 4))
        assert mem.read(0, 8) == bytes(8)

    def test_core_loads_are_attributed(self, san):
        """A core's GuardedAddressSpace access runs in its owner's
        context: a stale TLB entry into another NF's pages is caught at
        access time even though the translation itself succeeds."""
        from repro.hw.cores import ProgrammableCore

        mem = PhysicalMemory(1 * MB)
        core = ProgrammableCore(core_id=0, memory=mem)
        core.bind(1)
        core.tlb.install(TLBEntry(vbase=0, pbase=0, size=4 * PAGE))
        mem.claim_pages(2, range(0, 4))  # pages belong to someone else
        with pytest.raises(IsolationViolation, match="cross-tenant"):
            core.load(0, 8)


class TestUnscrubbedReuse:
    def test_reclaim_of_dirty_page_raises(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(7, [0])
        mem.write(0, b"secret")
        mem.release_pages(7, scrub=False)
        with pytest.raises(IsolationViolation, match="unscrubbed"):
            mem.claim_pages(8, [0])

    def test_scrubbed_release_allows_reclaim(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(7, [0])
        mem.write(0, b"secret")
        mem.release_pages(7, scrub=True)
        mem.claim_pages(8, [0])
        assert mem.read(0, 6) == bytes(6)

    def test_zeroing_clears_the_hazard(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(7, [0])
        mem.write(0, b"secret")
        mem.release_pages(7, scrub=False)
        mem.zero_page(0)
        mem.claim_pages(8, [0])

    def test_same_owner_reclaim_is_fine(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(7, [0])
        mem.write(0, b"mine")
        mem.release_pages(7, scrub=False)
        mem.claim_pages(7, [0])  # its own stale bytes, no leak


class TestOverlappingTLBInstall:
    def test_stale_mapping_over_reclaimed_pages_raises(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(1, range(0, 4))
        stale = TLB(capacity=4, name="stale-bank")
        GuardedAddressSpace(stale, mem)
        stale.install(TLBEntry(vbase=0, pbase=0, size=4 * PAGE))

        # NF 1 torn down but its bank never cleared; NF 3 claims the
        # pages and maps them — two domains now share physical pages.
        mem.release_pages(1, scrub=True)
        mem.claim_pages(3, range(0, 4))
        fresh = TLB(capacity=4, name="fresh-bank")
        GuardedAddressSpace(fresh, mem)
        with pytest.raises(IsolationViolation, match="overlapping TLB"):
            fresh.install(TLBEntry(vbase=0, pbase=0, size=4 * PAGE))

    def test_entry_spanning_two_domains_raises(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(1, range(0, 4))
        mem.claim_pages(2, range(4, 8))
        bank = TLB(capacity=4, name="wide-bank")
        GuardedAddressSpace(bank, mem)
        with pytest.raises(IsolationViolation, match="multiple"):
            bank.install(TLBEntry(vbase=0, pbase=0, size=8 * PAGE))

    def test_cleared_bank_forgets_its_owner(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(1, range(0, 4))
        bank = TLB(capacity=4, name="recycled-bank")
        GuardedAddressSpace(bank, mem)
        bank.install(TLBEntry(vbase=0, pbase=0, size=4 * PAGE))
        bank.clear()
        mem.release_pages(1, scrub=True)
        mem.claim_pages(2, range(0, 4))
        bank.install(TLBEntry(vbase=0, pbase=0, size=4 * PAGE))  # fine now

    def test_disjoint_mappings_are_fine(self, san):
        mem = PhysicalMemory(1 * MB)
        mem.claim_pages(1, range(0, 4))
        mem.claim_pages(2, range(4, 8))
        b1 = TLB(capacity=4, name="b1")
        b2 = TLB(capacity=4, name="b2")
        GuardedAddressSpace(b1, mem)
        GuardedAddressSpace(b2, mem)
        b1.install(TLBEntry(vbase=0, pbase=0, size=4 * PAGE))
        b2.install(TLBEntry(vbase=0, pbase=4 * PAGE, size=4 * PAGE))


# ----------------------------------------------------------------------
# Partition-boundary cache fills
# ----------------------------------------------------------------------

class TestPartitionedCacheFill:
    def test_repartition_without_flush_is_caught(self, san):
        """Switching a warm shared cache to HARD partitioning without a
        flush leaves one tenant over its way allocation — the next fill
        trips the occupancy check (set_partitions flushes precisely to
        avoid this)."""
        # 512 B / 64 B lines / 8 ways -> a single set.
        cache = Cache(CacheConfig(size_bytes=512, line_bytes=64, ways=8),
                      name="buggy-l2")
        for i in range(8):
            cache.access(i * 64, owner=1)
        # Inject the bug: flip modes behind set_partitions' back.
        cache.mode = HARD
        cache._partitions = {1: 1, 2: 1}
        cache._way_ranges = {1: (0, 1), 2: (1, 2)}
        with pytest.raises(IsolationViolation, match="partition"):
            cache.access(99 * 64, owner=1)

    def test_correct_partitioned_fills_pass(self, san):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=64, ways=4),
                      name="good-l2")
        cache.set_partitions({1: 2, 2: 2}, mode=HARD)
        for i in range(32):
            cache.access(i * 64, owner=1 + (i % 2))
        assert cache.occupancy(1) + cache.occupancy(2) <= 16


# ----------------------------------------------------------------------
# Bus epoch breaches (direct unit check: the arbiter itself is correct,
# so the breach is fed to the checker synthetically)
# ----------------------------------------------------------------------

class TestEpochCheck:
    def test_completion_inside_live_window_passes(self, san):
        from repro.hw.bus import TemporalPartitioningArbiter

        arbiter = TemporalPartitioningArbiter(
            domains=[1, 2], bandwidth_bytes_per_ns=1.0,
            epoch_ns=1000.0, dead_time_ns=100.0)
        completion = arbiter.request(1, 64, 0.0)
        san._check_epoch(arbiter, 1, completion)  # must not raise

    def test_synthetic_breach_raises(self, san):
        from repro.hw.bus import TemporalPartitioningArbiter

        arbiter = TemporalPartitioningArbiter(
            domains=[1, 2], bandwidth_bytes_per_ns=1.0,
            epoch_ns=1000.0, dead_time_ns=100.0)
        # Domain 2's slot is [1000, 1900); a completion at 500 sits in
        # domain 1's window.
        with pytest.raises(IsolationViolation, match="epoch breach"):
            san._check_epoch(arbiter, 2, 500.0)


# ----------------------------------------------------------------------
# Lifecycle & integration
# ----------------------------------------------------------------------

@pytest.mark.no_isosan
class TestLifecycle:
    def test_install_uninstall_restores_methods(self):
        before = PhysicalMemory.read
        san = IsoSan()
        san.install()
        assert PhysicalMemory.read is not before
        san.uninstall()
        assert PhysicalMemory.read is before

    def test_sanitized_is_reentrant(self):
        outer = get_isosan()
        with sanitized() as a:
            with sanitized() as b:
                assert a is b and a.installed
            assert a.installed  # inner exit must not uninstall
        assert not outer.installed

    def test_no_isosan_marker_leaves_singleton_uninstalled(self):
        assert not get_isosan().installed

    def test_violations_are_recorded(self):
        san = IsoSan()
        san.install()
        try:
            mem = PhysicalMemory(1 * MB)
            mem.claim_pages(1, [0])
            with san.access_context(2):
                with pytest.raises(IsolationViolation):
                    mem.read(0, 4)
            assert san.violations and "cross-tenant" in san.violations[0]
        finally:
            san.uninstall()


class TestFullStackUnderIsoSan:
    def test_launch_run_teardown_is_clean(self, san, nic_os, basic_config):
        """The paper's own lifecycle — mediated end to end — must
        produce zero violations under the sanitizer."""
        vnic = nic_os.NF_create(basic_config)
        snic = vnic._snic
        record = snic.record(vnic.nf_id)
        core = snic.cores[record.config.core_ids[0]]
        core.store(0, b"through-the-tlb")
        assert core.load(0, 15) == b"through-the-tlb"
        nic_os.NF_destroy(vnic.nf_id)
        assert san.violations == []
