"""Property-style tests for the metric merge algebra.

The shard merger's correctness rests on ``Histogram.merge`` and
``MetricsRegistry.merge_from`` forming a commutative monoid over
snapshots: merging randomly partitioned shard snapshots must equal the
monolithic observation stream regardless of partition boundaries, merge
order, or association.  Seeded ``random.Random`` throughout — every
"random" partition is replayable.
"""

from __future__ import annotations

import random

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def random_values(rng: random.Random, n: int) -> list:
    return [rng.expovariate(1.0 / 5_000.0) for _ in range(n)]


def random_partition(rng: random.Random, values: list, k: int) -> list:
    """Deal ``values`` into ``k`` shards by seeded coin flips (shards
    may be empty — the merge must not care)."""
    shards = [[] for _ in range(k)]
    for value in values:
        shards[rng.randrange(k)].append(value)
    return shards


def histogram_of(values: list) -> Histogram:
    hist = Histogram("lat_ns", (("tenant", "t1"),))
    for value in values:
        hist.observe(value)
    return hist


def state_of(hist: Histogram) -> tuple:
    """The exactly-mergeable state: counting/lattice fields and the
    percentile estimates derived from them.  ``sum`` is excluded — float
    addition is not associative, so differently-ordered merges agree on
    it only to the last ulp (asserted separately with ``approx``)."""
    return (hist.count, hist.min, hist.max, tuple(hist.counts),
            hist.percentile(50.0), hist.percentile(99.0))


def snapshots_agree(a: list, b: list) -> bool:
    """Snapshot equality with ulp-tolerant float comparison."""
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if set(left) != set(right):
            return False
        for key in left:
            lv, rv = left[key], right[key]
            if isinstance(lv, float) and isinstance(rv, float):
                if rv != pytest.approx(lv, rel=1e-9, abs=1e-9):
                    return False
            elif lv != rv:
                return False
    return True


def registry_of(rng: random.Random, values: list) -> MetricsRegistry:
    """A registry shaped like one shard's snapshot: shared families plus
    the shard's share of observations."""
    registry = MetricsRegistry()
    for value in values:
        tenant = f"t{1 + int(value) % 3}"
        registry.counter("pkts_total", tenant=tenant).inc()
        registry.histogram("lat_ns", tenant=tenant).observe(value)
        registry.gauge("inflight", tenant=tenant).set(rng.randrange(8))
    return registry


@pytest.mark.parametrize("seed,k", [(1, 2), (2, 3), (3, 5), (4, 8)])
class TestHistogramMergeProperties:
    def test_partition_then_merge_equals_monolithic(self, seed, k):
        rng = random.Random(seed)
        values = random_values(rng, 500)
        shards = random_partition(rng, values, k)
        merged = histogram_of([])
        for shard in shards:
            merged.merge(histogram_of(shard))
        mono = histogram_of(values)
        assert state_of(merged) == state_of(mono)
        assert merged.sum == pytest.approx(mono.sum, rel=1e-12)

    def test_merge_is_order_insensitive(self, seed, k):
        rng = random.Random(seed)
        shards = random_partition(rng, random_values(rng, 300), k)
        forward = histogram_of([])
        for shard in shards:
            forward.merge(histogram_of(shard))
        shuffled = list(shards)
        rng.shuffle(shuffled)
        backward = histogram_of([])
        for shard in shuffled:
            backward.merge(histogram_of(shard))
        assert state_of(forward) == state_of(backward)
        assert forward.sum == pytest.approx(backward.sum, rel=1e-12)

    def test_merge_is_associative(self, seed, k):
        rng = random.Random(seed)
        a, b, c = (histogram_of(random_values(rng, n))
                   for n in (50, 80, 110))

        def clone(hist):
            out = histogram_of([])
            out.merge(hist)
            return out

        left = clone(a)
        left.merge(clone(b))
        left.merge(clone(c))
        right_tail = clone(b)
        right_tail.merge(clone(c))
        right = clone(a)
        right.merge(right_tail)
        assert state_of(left) == state_of(right)
        assert left.sum == pytest.approx(right.sum, rel=1e-12)


class TestHistogramMergeGuards:
    def test_mismatched_bounds_refuse_to_merge(self):
        a = Histogram("h", (), bounds=(1.0, 2.0))
        b = Histogram("h", (), bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_non_histogram_refuses_to_merge(self):
        with pytest.raises(TypeError):
            histogram_of([]).merge(object())


@pytest.mark.parametrize("seed,k", [(11, 2), (12, 4), (13, 7)])
class TestRegistryMergeProperties:
    def test_partitioned_registries_fold_to_the_monolithic_snapshot(
            self, seed, k):
        rng = random.Random(seed)
        values = random_values(rng, 400)
        shards = random_partition(rng, values, k)
        # Gauges merge additively, so give the monolithic reference the
        # same per-shard contributions rather than one global pass.
        shard_registries = [registry_of(random.Random(seed * 1000 + i), shard)
                            for i, shard in enumerate(shards)]
        merged = MetricsRegistry()
        for registry in shard_registries:
            merged.merge_from(registry)
        reference = MetricsRegistry()
        for registry in shard_registries:
            reference.merge_from(registry)
        assert snapshots_agree(merged.snapshot(), reference.snapshot())
        # Counters and histogram totals equal the monolithic stream.
        total = sum(
            entry["value"] for entry in merged.snapshot()
            if entry["name"] == "pkts_total")
        assert total == len(values)
        observed = sum(
            entry["count"] for entry in merged.snapshot()
            if entry["name"] == "lat_ns")
        assert observed == len(values)

    def test_merge_from_is_order_insensitive(self, seed, k):
        rng = random.Random(seed)
        shards = random_partition(rng, random_values(rng, 300), k)
        registries = [registry_of(random.Random(seed * 1000 + i), shard)
                      for i, shard in enumerate(shards)]
        forward = MetricsRegistry()
        for registry in registries:
            forward.merge_from(registry)
        order = list(range(len(registries)))
        rng.shuffle(order)
        backward = MetricsRegistry()
        for i in order:
            backward.merge_from(registries[i])
        assert snapshots_agree(forward.snapshot(), backward.snapshot())

    def test_merge_from_is_associative(self, seed, k):
        rng = random.Random(seed)
        shards = random_partition(rng, random_values(rng, 200), 3)
        r = [registry_of(random.Random(seed * 1000 + i), shard)
             for i, shard in enumerate(shards)]

        left = MetricsRegistry()
        left_ab = MetricsRegistry()
        left_ab.merge_from(r[0])
        left_ab.merge_from(r[1])
        left.merge_from(left_ab)
        left.merge_from(r[2])

        right = MetricsRegistry()
        right_bc = MetricsRegistry()
        right_bc.merge_from(r[1])
        right_bc.merge_from(r[2])
        right.merge_from(r[0])
        right.merge_from(right_bc)

        assert snapshots_agree(left.snapshot(), right.snapshot())

    def test_shard_frame_round_trip_composes_with_merge(self, seed, k):
        """The end-to-end shard path: serialize each shard registry to
        a frame, rebuild, fold — equals folding the originals."""
        from repro.shard.frames import registry_from_frame, registry_to_frame

        rng = random.Random(seed)
        shards = random_partition(rng, random_values(rng, 250), k)
        registries = [registry_of(random.Random(seed * 1000 + i), shard)
                      for i, shard in enumerate(shards)]
        direct = MetricsRegistry()
        via_frames = MetricsRegistry()
        for registry in registries:
            direct.merge_from(registry)
            via_frames.merge_from(
                registry_from_frame(registry_to_frame(registry)))
        assert direct.snapshot() == via_frames.snapshot()
