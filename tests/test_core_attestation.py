"""Tests for remote attestation (§4.7, Appendix A)."""

import pytest

from repro.core import (
    AttestationError,
    NFConfig,
    NICOS,
    SNIC,
    Verifier,
)
from repro.crypto.dh import DHParams
from repro.crypto.sha256 import sha256

MB = 1024 * 1024

#: Small DH group keeps tests fast (the default RFC 3526 group also
#: works, just slower).
SMALL_DH = DHParams(g=2, p=0xFFFFFFFB)


@pytest.fixture
def snic():
    return SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=99)


@pytest.fixture
def vnic(snic):
    nic_os = NICOS(snic)
    return nic_os.NF_create(
        NFConfig(
            name="attested",
            core_ids=(0,),
            memory_bytes=4 * MB,
            initial_image=b"known-good-image",
        )
    )


class TestProtocol:
    def test_full_exchange_establishes_shared_key(self, snic, vnic):
        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        nonce = verifier.hello()
        session = vnic.attest(nonce, params=SMALL_DH)
        gy, verifier_key = verifier.complete_exchange(
            session.quote, expected_state_hash=vnic.state_hash
        )
        assert session.session_key(gy) == verifier_key

    def test_quote_carries_state_hash(self, snic, vnic):
        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        session = vnic.attest(verifier.hello(), params=SMALL_DH)
        assert session.quote.state_hash == vnic.state_hash

    def test_verify_without_expected_hash(self, snic, vnic):
        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        session = vnic.attest(verifier.hello(), params=SMALL_DH)
        verifier.verify(session.quote)  # identity-only check passes

    def test_wrong_expected_hash_rejected(self, snic, vnic):
        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        session = vnic.attest(verifier.hello(), params=SMALL_DH)
        with pytest.raises(AttestationError, match="state hash"):
            verifier.verify(session.quote, expected_state_hash=sha256(b"evil"))

    def test_unknown_nonce_rejected(self, snic, vnic):
        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        session = vnic.attest(b"\x00" * 16, params=SMALL_DH)
        with pytest.raises(AttestationError, match="nonce"):
            verifier.verify(session.quote)

    def test_replay_rejected(self, snic, vnic):
        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        nonce = verifier.hello()
        session = vnic.attest(nonce, params=SMALL_DH)
        verifier.verify(session.quote, expected_state_hash=vnic.state_hash)
        with pytest.raises(AttestationError, match="nonce"):
            verifier.verify(session.quote)

    def test_forged_signature_rejected(self, snic, vnic):
        from dataclasses import replace

        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        session = vnic.attest(verifier.hello(), params=SMALL_DH)
        forged = replace(
            session.quote, signature=bytes(len(session.quote.signature))
        )
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(forged)

    def test_tampered_gx_rejected(self, snic, vnic):
        """A MITM replacing the DH share invalidates the signature —
        the property that binds the channel to the attested identity."""
        from dataclasses import replace

        verifier = Verifier(snic.vendor_ca.public_key, seed=1)
        session = vnic.attest(verifier.hello(), params=SMALL_DH)
        tampered = replace(session.quote, gx=session.quote.gx ^ 1)
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(tampered)

    def test_wrong_vendor_ca_rejected(self, snic, vnic):
        from repro.crypto.keys import VendorCA

        rogue = VendorCA(key_bits=512, seed=555)
        verifier = Verifier(rogue.public_key, seed=1)
        session = vnic.attest(verifier.hello(), params=SMALL_DH)
        with pytest.raises(AttestationError, match="vendor"):
            verifier.verify(session.quote)

    def test_unknown_function_cannot_attest(self, snic):
        from repro.core.errors import TeardownError

        with pytest.raises(TeardownError):
            snic.nf_attest(12345, b"\x00" * 16, params=SMALL_DH)


class TestMaliciousOSDetectability:
    def test_improper_setup_changes_hash(self):
        """§4.8: a buggy/malicious NIC OS that omits or alters state at
        launch produces a different hash, so remote clients detect it."""
        proper = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=99)
        tampered = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=99)
        good = NFConfig(
            name="f", core_ids=(0,), memory_bytes=4 * MB,
            initial_image=b"full-image-with-all-pages",
        )
        bad = NFConfig(
            name="f", core_ids=(0,), memory_bytes=4 * MB,
            initial_image=b"full-image-with-all",  # a page "omitted"
        )
        h_good = proper.record(proper.nf_launch(good)).state_hash
        h_bad = tampered.record(tampered.nf_launch(bad)).state_hash
        assert h_good != h_bad

    def test_two_nics_same_image_same_hash_different_keys(self):
        a = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=1, device_id="nic-a")
        b = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=2, device_id="nic-b")
        cfg = NFConfig(
            name="f", core_ids=(0,), memory_bytes=4 * MB, initial_image=b"img"
        )
        ha = a.record(a.nf_launch(cfg)).state_hash
        hb = b.record(b.nf_launch(cfg)).state_hash
        assert ha == hb  # same logical function...
        assert a.ak.public != b.ak.public  # ...different signing identity
