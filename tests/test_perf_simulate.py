"""Tests for the trace-driven colocation backend and its agreement with
the analytic (Che) pipeline."""

import pytest

from repro.perf.colocation import ipc_degradation
from repro.perf.simulate import (
    simulate_colocation,
    simulated_ipc_degradation,
)

KB = 1024
MB = 1024 * KB


class TestSimulateColocation:
    def test_counts_sum_to_one(self):
        tenants = simulate_colocation(["FW", "LB"], 1 * MB, n_refs=5_000)
        for tenant in tenants:
            assert tenant.counts.total == pytest.approx(1.0)

    def test_deterministic(self):
        a = simulate_colocation(["FW", "LB"], 1 * MB, n_refs=5_000, seed=3)
        b = simulate_colocation(["FW", "LB"], 1 * MB, n_refs=5_000, seed=3)
        assert [t.counts for t in a] == [t.counts for t in b]

    def test_partitioning_cannot_help_the_heavy_tenant(self):
        """Against a light partner, hard partitioning gives the heavy
        tenant at most what sharing gave it."""
        shared = simulate_colocation(["FW", "LB"], 512 * KB, n_refs=20_000)
        isolated = simulate_colocation(
            ["FW", "LB"], 512 * KB, n_refs=20_000, partitioned=True
        )
        assert isolated[0].l2_hit_rate <= shared[0].l2_hit_rate + 0.02

    def test_bigger_l2_helps(self):
        small = simulate_colocation(["DPI", "NAT"], 256 * KB, n_refs=20_000)
        large = simulate_colocation(["DPI", "NAT"], 4 * MB, n_refs=20_000)
        assert large[0].l2_hit_rate > small[0].l2_hit_rate

    def test_degradation_non_negative_and_bounded(self):
        value = simulated_ipc_degradation("FW", ("LB",), 1 * MB, n_refs=10_000)
        assert 0.0 <= value < 0.5


class TestBackendsAgree:
    """End-to-end cross-validation: the analytic pipeline must land in
    the same ballpark as the trace-driven simulation."""

    @pytest.mark.parametrize(
        "focal,partner,l2",
        [("FW", "LB", 1 * MB), ("DPI", "Mon", 2 * MB), ("NAT", "LPM", 1 * MB)],
    )
    def test_same_ballpark(self, focal, partner, l2):
        simulated = simulated_ipc_degradation(focal, (partner,), l2, n_refs=30_000)
        analytic = ipc_degradation(focal, (partner,), l2)
        # Both backends see single-digit-percent degradations; demand
        # agreement within 3 percentage points.
        assert abs(simulated - analytic) < 0.03

    def test_both_small_at_large_cache(self):
        simulated = simulated_ipc_degradation("LB", ("Mon",), 8 * MB, n_refs=20_000)
        analytic = ipc_degradation("LB", ("Mon",), 8 * MB)
        assert simulated < 0.02 and analytic < 0.02
