"""Tests for repro.obs.bench — the unified benchmark harness.

Covers discovery of ``benchmarks/bench_*.py``, isolated quick runs that
produce schema-versioned ``BENCH_*.json`` artifacts, regression
detection in ``compare``, and the ``jsonable`` output sanitizer.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs import bench


class TestDiscovery:
    def test_discovers_the_full_suite(self):
        paths = bench.discover()
        assert len(paths) >= 15
        assert all(p.name.startswith("bench_") for p in paths)
        assert paths == sorted(paths)

    def test_scenario_name_strips_prefix(self):
        (tco,) = [p for p in bench.discover() if p.name == "bench_tco.py"]
        assert bench.scenario_name(tco) == "tco"

    def test_default_bench_dir_is_repo_benchmarks(self):
        d = bench.default_bench_dir()
        assert d.name == "benchmarks"
        assert (d / "_common.py").exists()


class TestRunScenario:
    def test_quick_run_records_telemetry(self):
        (path,) = [p for p in bench.discover()
                   if bench.scenario_name(p) == "snic_lifecycle"]
        record = bench.run_scenario(path, quick=True)
        assert record.status == "ok"
        assert record.wall_s > 0
        assert record.outputs  # key model outputs captured
        assert record.error is None

    def test_event_driven_scenario_reports_sim_time(self):
        (path,) = [p for p in bench.discover()
                   if bench.scenario_name(p) == "fig5b_cotenancy"]
        record = bench.run_scenario(path, quick=True)
        assert record.status == "ok"
        assert record.sim_time_ns > 0
        assert record.events_executed > 0

    def test_crashing_scenario_is_contained(self, tmp_path):
        bad = tmp_path / "bench_boom.py"
        bad.write_text("def run(quick=False):\n"
                       "    print('about to explode')\n"
                       "    raise RuntimeError('boom')\n")
        record = bench.run_scenario(bad, quick=True)
        assert record.status == "error"
        assert "boom" in record.error
        assert "about to explode" in record.error  # stdout tail kept

    def test_script_without_entry_point_is_skipped(self, tmp_path):
        lazy = tmp_path / "bench_lazy.py"
        lazy.write_text("X = 1\n")
        record = bench.run_scenario(lazy, quick=True)
        assert record.status == "skipped"
        assert "run(quick)" in record.error


class TestArtifact:
    @pytest.fixture(scope="class")
    def artifact(self):
        # One real (subset) harness run shared across the class's tests.
        return bench.run_benchmarks(
            quick=True, only=["tco", "table7", "table8", "fig6"])

    def test_schema_header(self, artifact):
        assert artifact["schema"] == "repro.bench"
        assert artifact["schema_version"] == 1
        assert artifact["quick"] is True
        assert artifact["n_benchmarks"] == 4
        assert artifact["n_error"] == 0
        assert artifact["total_wall_s"] > 0

    def test_per_benchmark_telemetry(self, artifact):
        rec = artifact["benchmarks"]["tco"]
        assert rec["status"] == "ok"
        assert rec["wall_s"] > 0
        assert set(rec) >= {"sim_time_ns", "events_executed",
                            "trace_events", "metrics_instruments",
                            "outputs"}
        assert rec["outputs"]["snic_tco_per_core"] == pytest.approx(
            42.53, abs=0.05)

    def test_write_and_load_round_trip(self, artifact, tmp_path):
        path = bench.write_artifact(artifact, tmp_path / "BENCH_x.json")
        loaded = bench.load_artifact(path)
        assert loaded == json.loads(json.dumps(artifact))

    def test_artifact_path_lands_at_repo_root(self, tmp_path):
        p = bench.artifact_path(timestamp="20260101_000000")
        assert p.name == "BENCH_20260101_000000.json"
        assert p.parent == bench.default_bench_dir().parent
        assert bench.artifact_path(tmp_path, "x").parent == tmp_path

    def test_load_rejects_foreign_schema(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"schema": "something.else"}))
        with pytest.raises(ValueError, match="not a repro.bench"):
            bench.load_artifact(p)

    def test_load_rejects_newer_schema_version(self, tmp_path):
        p = tmp_path / "future.json"
        p.write_text(json.dumps({"schema": "repro.bench",
                                 "schema_version": 99}))
        with pytest.raises(ValueError, match="newer"):
            bench.load_artifact(p)


class TestCompare:
    @pytest.fixture()
    def artifacts(self):
        base = bench.run_benchmarks(quick=True, only=["tco", "table8"])
        cand = copy.deepcopy(base)
        return base, cand

    def test_identical_runs_have_no_regressions(self, artifacts):
        base, cand = artifacts
        report = bench.compare(base, cand)
        assert report["n_regressions"] == 0
        assert report["n_compared"] == 2
        assert not report["quick_mismatch"]

    def test_injected_slowdown_is_flagged(self, artifacts):
        base, cand = artifacts
        # Inject a 25% wall-time slowdown: beyond the 20% threshold.
        cand["benchmarks"]["table8_mur"]["wall_s"] *= 1.25
        report = bench.compare(base, cand)
        assert report["regressions"] == ["table8_mur"]
        (row,) = [r for r in report["rows"] if r["name"] == "table8_mur"]
        assert row["regressed"] and not row["model_drift"]
        assert row["wall_delta_pct"] == pytest.approx(25.0)
        assert "REGRESSION" in bench.format_compare(report)

    def test_threshold_is_configurable(self, artifacts):
        base, cand = artifacts
        cand["benchmarks"]["tco"]["wall_s"] *= 1.25
        assert bench.compare(base, cand, threshold=0.30)["n_regressions"] == 0
        assert bench.compare(base, cand, threshold=0.10)["n_regressions"] == 1

    def test_model_drift_detected(self, artifacts):
        base, cand = artifacts
        cand["benchmarks"]["tco"]["events_executed"] += 7
        report = bench.compare(base, cand)
        (row,) = [r for r in report["rows"] if r["name"] == "tco"]
        assert row["model_drift"]

    def test_added_and_removed_scenarios(self, artifacts):
        base, cand = artifacts
        cand["benchmarks"]["brand_new"] = cand["benchmarks"]["tco"].copy()
        del cand["benchmarks"]["table8_mur"]
        report = bench.compare(base, cand)
        status = {r["name"]: r["status"] for r in report["rows"]}
        assert status["brand_new"] == "added"
        assert status["table8_mur"] == "removed"

    def test_compare_paths_round_trip(self, artifacts, tmp_path):
        base, cand = artifacts
        cand["benchmarks"]["tco"]["wall_s"] *= 1.5
        pa = bench.write_artifact(base, tmp_path / "BENCH_a.json")
        pb = bench.write_artifact(cand, tmp_path / "BENCH_b.json")
        report = bench.compare_paths(pa, pb)
        assert report["regressions"] == ["tco"]


class TestJsonable:
    def test_passthrough_scalars(self):
        assert bench.jsonable({"a": 1, "b": 2.5, "c": "x", "d": None,
                               "e": True}) == {
            "a": 1, "b": 2.5, "c": "x", "d": None, "e": True}

    def test_tuples_and_sets_become_lists(self):
        assert bench.jsonable((1, 2)) == [1, 2]
        assert bench.jsonable({3}) == [3]

    def test_non_string_keys_are_stringified(self):
        assert bench.jsonable({1: "one"}) == {"1": "one"}

    def test_nan_and_inf_survive_as_repr(self):
        out = bench.jsonable({"nan": float("nan"), "inf": float("inf")})
        json.dumps(out)  # must be serializable
        assert out["nan"] == "nan"
        assert out["inf"] == "inf"

    def test_numpy_like_item_scalars(self):
        class FakeScalar:
            def item(self):
                return 3.25

        assert bench.jsonable(FakeScalar()) == 3.25

    def test_opaque_objects_become_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert bench.jsonable(Opaque()) == "<opaque>"
        json.dumps(bench.jsonable({"o": Opaque()}))
