"""Model-checking the cache simulator against a reference LRU.

The cache model underpins both the side-channel results and Figure 5,
so we verify it against an independent, obviously-correct reference
implementation (an OrderedDict per set) under randomized access
sequences — shared mode exactly, and partitioned mode against a
per-owner reference.
"""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cache import Cache, CacheConfig, HARD


class ReferenceLRU:
    """Trivially-correct set-associative LRU cache."""

    def __init__(self, n_sets: int, ways: int, line: int) -> None:
        self.n_sets = n_sets
        self.ways = ways
        self.line = line
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, addr: int) -> bool:
        line_addr = addr // self.line
        index = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        lru = self.sets[index]
        if tag in lru:
            lru.move_to_end(tag)
            return True
        if len(lru) >= self.ways:
            lru.popitem(last=False)
        lru[tag] = None
        return False


ADDRESSES = st.lists(
    st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=400
)


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(ADDRESSES)
    def test_shared_mode_matches_reference(self, addresses):
        config = CacheConfig(size_bytes=4096, line_bytes=64, ways=4)
        cache = Cache(config)
        reference = ReferenceLRU(config.n_sets, config.ways, config.line_bytes)
        for addr in addresses:
            assert cache.access(addr, owner=1) == reference.access(addr)

    @settings(max_examples=40, deadline=None)
    @given(ADDRESSES, ADDRESSES)
    def test_hard_partition_matches_per_owner_references(self, a_addrs, b_addrs):
        """With hard partitioning, each owner must behave exactly like a
        private cache of its partition size — total isolation."""
        config = CacheConfig(size_bytes=4096, line_bytes=64, ways=4)
        cache = Cache(config)
        cache.set_partitions({1: 2, 2: 2}, mode=HARD)
        ref_a = ReferenceLRU(config.n_sets, 2, config.line_bytes)
        ref_b = ReferenceLRU(config.n_sets, 2, config.line_bytes)
        # Interleave the two owners' accesses.
        for i in range(max(len(a_addrs), len(b_addrs))):
            if i < len(a_addrs):
                assert cache.access(a_addrs[i], owner=1) == ref_a.access(a_addrs[i])
            if i < len(b_addrs):
                assert cache.access(b_addrs[i], owner=2) == ref_b.access(b_addrs[i])

    @settings(max_examples=30, deadline=None)
    @given(ADDRESSES)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        config = CacheConfig(size_bytes=4096, line_bytes=64, ways=4)
        cache = Cache(config)
        for addr in addresses:
            cache.access(addr, owner=1)
        assert cache.occupancy(1) <= config.n_sets * config.ways

    @settings(max_examples=30, deadline=None)
    @given(ADDRESSES, ADDRESSES)
    def test_partition_victim_occupancy_invariant(self, a_addrs, b_addrs):
        """Neither owner can ever hold more lines than its partition."""
        config = CacheConfig(size_bytes=4096, line_bytes=64, ways=4)
        cache = Cache(config)
        cache.set_partitions({1: 1, 2: 3}, mode=HARD)
        for addr in a_addrs:
            cache.access(addr, owner=1)
        for addr in b_addrs:
            cache.access(addr, owner=2)
        assert cache.occupancy(1) <= config.n_sets * 1
        assert cache.occupancy(2) <= config.n_sets * 3
