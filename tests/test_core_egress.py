"""Tests for DRR egress scheduling across VPPs."""

import pytest

from repro.core import NFConfig, NICOS, SNIC
from repro.core.egress import DRREgressScheduler
from repro.core.vpp import VPPConfig
from repro.net.packet import Packet
from repro.net.rules import MatchRule, Prefix

MB = 1024 * 1024


def two_tenant_system():
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=120)
    nic_os = NICOS(snic)
    a = nic_os.NF_create(
        NFConfig(name="heavy", core_ids=(0,), memory_bytes=4 * MB,
                 vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("20.0.0.0/8"))]))
    )
    b = nic_os.NF_create(
        NFConfig(name="light", core_ids=(1,), memory_bytes=4 * MB,
                 vpp=VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("30.0.0.0/8"))]))
    )
    return snic, nic_os, a, b


def queue_frames(vnic, count, size=100, dst="20.0.0.1"):
    for i in range(count):
        vnic.transmit(
            Packet.make("10.0.0.1", dst, src_port=1000 + i, dst_port=80,
                        payload=bytes(size))
        )


class TestDRREgress:
    def test_work_conservation(self):
        snic, _, a, b = two_tenant_system()
        queue_frames(a, 5)
        queue_frames(b, 3, dst="30.0.0.1")
        sent = snic.process_egress()
        assert sent == 8
        assert snic.record(a.nf_id).vpp.tx_ring.occupancy == 0
        assert snic.record(b.nf_id).vpp.tx_ring.occupancy == 0

    def test_budgeted_pass_is_fair(self):
        """Under a tight wire budget, a flooding tenant cannot starve a
        light tenant: both get wire share in the same pass."""
        snic, _, heavy, light = two_tenant_system()
        queue_frames(heavy, 200)
        queue_frames(light, 10, dst="30.0.0.1")
        snic.process_egress(max_bytes=4_000)
        owners = [owner for owner, _ in snic.tx_port.transmitted]
        assert light.nf_id in owners
        assert heavy.nf_id in owners

    def test_backlogged_shares_near_equal(self):
        """Both backlogged with equal frame sizes: equal quanta give
        near-equal bytes on the wire per budgeted pass."""
        snic, _, a, b = two_tenant_system()
        queue_frames(a, 300)
        queue_frames(b, 300, dst="30.0.0.1")
        snic.process_egress(max_bytes=20_000)
        stats = snic.egress_scheduler.stats
        share_a = stats[a.nf_id].bytes
        share_b = stats[b.nf_id].bytes
        assert abs(share_a - share_b) <= 2 * snic.egress_scheduler.quantum_bytes

    def test_different_frame_sizes_still_byte_fair(self):
        """DRR's point vs plain round robin: fairness in *bytes*, not
        frames — a big-frame tenant gets fewer frames, similar bytes."""
        snic, _, big, small = two_tenant_system()
        queue_frames(big, 100, size=900)
        queue_frames(small, 400, size=50, dst="30.0.0.1")
        snic.process_egress(max_bytes=30_000)
        stats = snic.egress_scheduler.stats
        bytes_big = stats[big.nf_id].bytes
        bytes_small = stats[small.nf_id].bytes
        assert bytes_big / bytes_small < 3.0
        assert stats[small.nf_id].frames > stats[big.nf_id].frames

    def test_empty_queue_keeps_no_credit(self):
        """An idle tenant cannot bank credit to burst later (DRR rule:
        empty queues reset their deficit)."""
        snic, _, a, b = two_tenant_system()
        queue_frames(a, 2)
        snic.process_egress()
        scheduler = snic.egress_scheduler
        assert scheduler._deficit.get(a.nf_id, 0) == 0

    def test_teardown_forgets_scheduler_state(self):
        snic, nic_os, a, _ = two_tenant_system()
        queue_frames(a, 1)
        snic.process_egress()
        nic_os.NF_destroy(a.nf_id)
        assert a.nf_id not in snic.egress_scheduler._deficit

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            DRREgressScheduler(quantum_bytes=0)

    def test_oversized_frame_eventually_sent(self):
        """A frame larger than one quantum accumulates credit over
        rounds rather than deadlocking."""
        snic, _, a, _ = two_tenant_system()
        queue_frames(a, 1, size=5_000)  # > 1600-byte quantum
        sent = snic.process_egress()
        assert sent == 1
