"""The scenario registry: registration, discovery, lookup, running."""

from __future__ import annotations

import pytest

from repro.scenario import registry
from repro.scenario.registry import (
    DuplicateScenarioError,
    RegisteredScenario,
    UnknownScenarioError,
    scenario,
    unregister,
)
from repro.scenario.spec import NFSpec, ScenarioSpec, TenantSpec, TrafficSpec

BUILTINS = {"cotenancy-demo", "headline-overheads", "chaos-fate-sharing",
            "attack-replay"}


def tiny_spec(name: str = "reg-test") -> ScenarioSpec:
    return ScenarioSpec(
        name=name, seed=3,
        tenants=(TenantSpec(name="a", nf=NFSpec(kind="monitor"),
                            dst_prefix="20.0.0.0/8"),),
        traffic=TrafficSpec(n_packets=2))


@pytest.fixture
def scratch_registration():
    """Yield a name and guarantee it is unregistered afterwards."""
    name = "reg-test-scratch"
    yield name
    unregister(name)


class TestRegistration:
    def test_decorator_registers_and_returns_factory(self, scratch_registration):
        name = scratch_registration

        @scenario(name, tags=("test",))
        def factory() -> ScenarioSpec:
            """A scratch scenario."""
            return tiny_spec(name)

        entry = registry.get(name)
        assert entry.factory is factory
        assert entry.description == "A scratch scenario."
        assert entry.tags == ("test",)
        assert entry.spec().name == name

    def test_duplicate_name_rejected(self, scratch_registration):
        name = scratch_registration

        @scenario(name)
        def first() -> ScenarioSpec:
            return tiny_spec(name)

        with pytest.raises(DuplicateScenarioError):
            @scenario(name)
            def second() -> ScenarioSpec:
                return tiny_spec(name)

        # Same factory re-registered (module reimport) is fine.
        registry.register(RegisteredScenario(name=name, factory=first))

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(UnknownScenarioError) as exc:
            registry.get("no-such-scenario")
        assert "cotenancy-demo" in str(exc.value)

    def test_factory_must_return_a_spec(self, scratch_registration):
        name = scratch_registration

        @scenario(name)
        def bad() -> ScenarioSpec:
            return {"name": name}  # type: ignore[return-value]

        with pytest.raises(TypeError):
            registry.get(name).spec()


class TestCatalog:
    def test_builtins_discovered(self):
        assert BUILTINS <= set(registry.names())

    def test_tag_filtering(self):
        assert "chaos-fate-sharing" in registry.names(tag="faults")
        assert "cotenancy-demo" not in registry.names(tag="faults")
        assert registry.names(tag="no-such-tag") == []

    def test_entries_sorted_by_name(self):
        names = [e.name for e in registry.entries()]
        assert names == sorted(names)

    def test_every_builtin_spec_builds(self):
        for name in BUILTINS:
            spec = registry.get(name).spec()
            assert spec.name == name
            assert isinstance(spec.seed, int)


class TestRun:
    def test_run_generic_pipeline(self, scratch_registration):
        name = scratch_registration

        @scenario(name)
        def factory() -> ScenarioSpec:
            return tiny_spec(name)

        outputs = registry.run(name, quick=True)
        assert outputs["scenario"] == name
        assert outputs["packets_completed"] == 2

    def test_run_custom_driver_gets_options(self, scratch_registration):
        name = scratch_registration
        seen = {}

        def driver(spec, *, quick=False, **options):
            seen.update(options, quick=quick, spec=spec.name)
            return {"ok": True}

        @scenario(name, driver=driver)
        def factory() -> ScenarioSpec:
            return tiny_spec(name)

        outputs = registry.run(name, quick=True, out_path="x.json")
        assert outputs == {"ok": True}
        assert seen == {"quick": True, "out_path": "x.json", "spec": name}

    def test_run_headline_overheads(self):
        outputs = registry.run("headline-overheads", quick=True)
        assert outputs["area_overhead_pct"] == pytest.approx(8.89, abs=0.5)
