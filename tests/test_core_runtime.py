"""Tests for the event-driven S-NIC runtime."""

import pytest

from repro.core import NFConfig, NICOS, SNIC
from repro.core.runtime import PacketTiming, RuntimeStats, SNICRuntime
from repro.core.vpp import VPPConfig
from repro.net.packet import Packet
from repro.net.rules import MatchRule, Prefix
from repro.nf import Monitor

MB = 1024 * 1024


def make_system():
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=95)
    nic_os = NICOS(snic)
    vnic = nic_os.NF_create(
        NFConfig(name="mon", core_ids=(0,), memory_bytes=4 * MB,
                 vpp=VPPConfig(rules=[MatchRule()]))
    )
    return snic, vnic


def timed_packets(n, spacing_ns=1_000):
    out = []
    for i in range(n):
        packet = Packet.make("10.0.0.1", "20.0.0.1", src_port=1000 + i, dst_port=80)
        packet.arrival_ns = (i + 1) * spacing_ns
        out.append(packet)
    return out


class TestRuntime:
    def test_all_packets_complete(self):
        snic, vnic = make_system()
        runtime = SNICRuntime(snic)
        mon = Monitor()
        runtime.attach(vnic.nf_id, mon)
        runtime.inject(timed_packets(20))
        stats = runtime.run()
        assert stats.completed == 20
        assert stats.dropped == 0
        assert mon.stats.received == 20
        assert len(snic.tx_port.transmitted) == 20

    def test_latencies_positive_and_ordered(self):
        snic, vnic = make_system()
        runtime = SNICRuntime(snic)
        runtime.attach(vnic.nf_id, Monitor())
        runtime.inject(timed_packets(10))
        stats = runtime.run()
        for timing in stats.timings:
            assert timing.latency_ns > 0
            assert timing.departure_ns > timing.arrival_ns

    def test_latency_includes_poll_and_service(self):
        snic, vnic = make_system()
        runtime = SNICRuntime(snic, poll_interval_ns=5_000,
                              service_ns_per_packet=1_000)
        runtime.attach(vnic.nf_id, Monitor())
        runtime.inject(timed_packets(1))
        stats = runtime.run()
        # One packet: waits for a poll tick then one service quantum.
        assert stats.timings[0].latency_ns >= 1_000

    def test_percentiles(self):
        stats = RuntimeStats(
            timings=[PacketTiming(1, 0, latency) for latency in
                     (100, 200, 300, 400, 500)]
        )
        assert stats.latency_percentile(0) == 100
        assert stats.latency_percentile(99) == 500

    def test_throughput_positive(self):
        snic, vnic = make_system()
        runtime = SNICRuntime(snic)
        runtime.attach(vnic.nf_id, Monitor())
        runtime.inject(timed_packets(50, spacing_ns=500))
        stats = runtime.run()
        assert stats.throughput_mpps() > 0

    def test_unmatched_packets_counted_dropped(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=96)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="narrow", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule(
                         dst_prefix=Prefix.parse("99.99.99.99/32"))]))
        )
        runtime = SNICRuntime(snic)
        runtime.attach(vnic.nf_id, Monitor())
        runtime.inject(timed_packets(5))
        stats = runtime.run()
        assert stats.dropped == 5
        assert stats.completed == 0

    def test_attach_requires_live_function(self):
        snic, _ = make_system()
        runtime = SNICRuntime(snic)
        with pytest.raises(ValueError):
            runtime.attach(999, Monitor())

    def test_duration_bound_run(self):
        snic, vnic = make_system()
        runtime = SNICRuntime(snic)
        runtime.attach(vnic.nf_id, Monitor())
        runtime.inject(timed_packets(5))
        stats = runtime.run(duration_ns=50_000)
        assert runtime.sim.now_ns <= 50_000 + 1
        assert stats.completed <= 5

    def test_two_functions_served_independently(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=97)
        nic_os = NICOS(snic)
        a = nic_os.NF_create(
            NFConfig(name="a", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule(
                         dst_prefix=Prefix.parse("20.0.0.0/8"))]))
        )
        b = nic_os.NF_create(
            NFConfig(name="b", core_ids=(1,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule(
                         dst_prefix=Prefix.parse("30.0.0.0/8"))]))
        )
        runtime = SNICRuntime(snic)
        mon_a, mon_b = Monitor(), Monitor()
        runtime.attach(a.nf_id, mon_a)
        runtime.attach(b.nf_id, mon_b)
        packets = []
        for i in range(10):
            dst = "20.0.0.1" if i % 2 == 0 else "30.0.0.1"
            packet = Packet.make("10.0.0.1", dst, src_port=2000 + i, dst_port=80)
            packet.arrival_ns = (i + 1) * 1_000
            packets.append(packet)
        runtime.inject(packets)
        stats = runtime.run()
        assert stats.completed == 10
        assert mon_a.stats.received == 5
        assert mon_b.stats.received == 5
