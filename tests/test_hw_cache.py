"""Tests for the set-associative cache model and its partition modes."""

import pytest

from repro.hw.cache import Cache, CacheConfig, CacheHierarchy, HARD, SHARED, SOFT
from repro.hw.memory import AccessFault


def small_cache(size=8 * 1024, line=64, ways=4):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, ways=ways))


class TestGeometry:
    def test_n_sets(self):
        config = CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=4)
        assert config.n_sets == 32

    def test_rejects_uneven_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, line_bytes=64, ways=4)


class TestSharedMode:
    def test_first_access_misses_second_hits(self):
        cache = small_cache()
        assert cache.access(0x1000, owner=1) is False
        assert cache.access(0x1000, owner=1) is True

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x1000, owner=1)
        assert cache.access(0x1020, owner=1) is True  # same 64 B line

    def test_lru_eviction(self):
        cache = small_cache(ways=2)
        n_sets = cache.config.n_sets
        stride = n_sets * 64  # same set, different tags
        cache.access(0, owner=1)
        cache.access(stride, owner=1)
        cache.access(2 * stride, owner=1)  # evicts line 0
        assert cache.access(0, owner=1) is False

    def test_lru_refresh_on_hit(self):
        cache = small_cache(ways=2)
        stride = cache.config.n_sets * 64
        cache.access(0, owner=1)
        cache.access(stride, owner=1)
        cache.access(0, owner=1)  # refresh line 0
        cache.access(2 * stride, owner=1)  # should evict stride, not 0
        assert cache.access(0, owner=1) is True

    def test_cross_owner_hit_in_shared_mode(self):
        cache = small_cache()
        cache.access(0x2000, owner=1)
        # Shared mode: another tenant hits the same resident line — the
        # classic probe side channel.
        assert cache.access(0x2000, owner=2) is True

    def test_stats_per_owner(self):
        cache = small_cache()
        cache.access(0, owner=1)
        cache.access(0, owner=1)
        cache.access(64 * 1024, owner=2)
        assert cache.stats[1].hits == 1 and cache.stats[1].misses == 1
        assert cache.stats[2].misses == 1
        assert cache.stats[1].miss_rate == 0.5


class TestHardPartition:
    def test_no_cross_owner_hits(self):
        cache = small_cache(ways=4)
        cache.set_partitions({1: 2, 2: 2}, mode=HARD)
        cache.access(0x2000, owner=1)
        # Hard partitioning: tenant 2 cannot observe tenant 1's line.
        assert cache.access(0x2000, owner=2) is False

    def test_victimizes_only_own_ways(self):
        cache = small_cache(ways=4)
        cache.set_partitions({1: 2, 2: 2}, mode=HARD)
        stride = cache.config.n_sets * 64
        # Fill tenant 1's two ways in set 0.
        cache.access(0, owner=1)
        cache.access(stride, owner=1)
        # Tenant 2 filling the same set must not evict tenant 1.
        cache.access(2 * stride, owner=2)
        cache.access(3 * stride, owner=2)
        cache.access(4 * stride, owner=2)
        assert cache.access(0, owner=1) is True or cache.access(stride, owner=1)

    def test_occupancy_bounded_by_partition(self):
        cache = small_cache(ways=4)
        cache.set_partitions({1: 1, 2: 3}, mode=HARD)
        for i in range(1000):
            cache.access(i * 64, owner=1)
        n_sets = cache.config.n_sets
        assert cache.occupancy(1) <= n_sets * 1

    def test_unpartitioned_owner_rejected(self):
        cache = small_cache()
        cache.set_partitions({1: 2}, mode=HARD)
        with pytest.raises(AccessFault):
            cache.access(0, owner=99)

    def test_over_allocation_rejected(self):
        cache = small_cache(ways=4)
        with pytest.raises(AccessFault):
            cache.set_partitions({1: 3, 2: 2})

    def test_zero_ways_rejected(self):
        cache = small_cache()
        with pytest.raises(ValueError):
            cache.set_partitions({1: 0})

    def test_partitioning_flushes(self):
        cache = small_cache()
        cache.access(0, owner=1)
        cache.set_partitions({1: 2}, mode=HARD)
        assert cache.access(0, owner=1) is False

    def test_share_returns_to_shared(self):
        cache = small_cache()
        cache.set_partitions({1: 2}, mode=HARD)
        cache.share()
        assert cache.mode == SHARED
        cache.access(0, owner=42)  # any owner allowed again


class TestSoftPartition:
    def test_soft_leaks_cross_owner_hits(self):
        """The §4.2 criticism of CAT: fills are partitioned but hits are
        not, so a probing tenant still observes co-tenant lines."""
        cache = small_cache(ways=4)
        cache.set_partitions({1: 2, 2: 2}, mode=SOFT)
        cache.access(0x3000, owner=1)
        assert cache.access(0x3000, owner=2) is True  # the leak

    def test_hard_blocks_what_soft_leaks(self):
        for mode, expected in ((SOFT, True), (HARD, False)):
            cache = small_cache(ways=4)
            cache.set_partitions({1: 2, 2: 2}, mode=mode)
            cache.access(0x3000, owner=1)
            assert cache.access(0x3000, owner=2) is expected

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            small_cache().set_partitions({1: 2}, mode="shared")


class TestScrubbing:
    def test_flush_owner_evicts_only_owner(self):
        cache = small_cache()
        cache.access(0, owner=1)
        cache.access(64 * 100, owner=2)
        evicted = cache.flush_owner(1)
        assert evicted == 1
        assert cache.occupancy(1) == 0
        assert cache.occupancy(2) == 1

    def test_resident_probe(self):
        cache = small_cache()
        cache.access(0x4000, owner=1)
        assert cache.resident(0x4000)
        assert cache.resident(0x4000, owner=1)
        assert not cache.resident(0x4000, owner=2)
        assert not cache.resident(0x8000)


class TestHierarchy:
    def test_level_attribution(self):
        hierarchy = CacheHierarchy(
            CacheConfig(size_bytes=1024, line_bytes=64, ways=2),
            CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=4),
            owners=[1, 2],
        )
        assert hierarchy.access(0, owner=1) == 3  # cold: DRAM
        assert hierarchy.access(0, owner=1) == 1  # L1 hit

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy(
            CacheConfig(size_bytes=128, line_bytes=64, ways=1),  # 2-set L1
            CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=4),
            owners=[1],
        )
        hierarchy.access(0, owner=1)        # DRAM; fills L1 + L2
        hierarchy.access(128, owner=1)      # same L1 set, evicts line 0
        assert hierarchy.access(0, owner=1) == 2  # L2 hit

    def test_partition_l2(self):
        hierarchy = CacheHierarchy(
            CacheConfig(size_bytes=1024, line_bytes=64, ways=2),
            CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=4),
            owners=[1, 2],
        )
        hierarchy.partition_l2()
        assert hierarchy.l2.mode == HARD
        assert hierarchy.l2.ways_for(1) == 2

    def test_unknown_owner_rejected(self):
        hierarchy = CacheHierarchy(
            CacheConfig(size_bytes=1024, line_bytes=64, ways=2),
            CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=4),
            owners=[1],
        )
        with pytest.raises(AccessFault):
            hierarchy.access(0, owner=9)
