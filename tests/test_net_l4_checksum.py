"""Tests for L4 checksums (pseudo-header) and the built-in VTEP path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NFConfig, NICOS, SNIC
from repro.core.vpp import VPPConfig
from repro.net.packet import PROTO_UDP, Packet, ip_to_int
from repro.net.rules import MatchRule
from repro.net.vxlan import vxlan_encapsulate
from repro.nf import NAT

MB = 1024 * 1024


class TestL4Checksum:
    def test_fill_then_verify(self):
        packet = Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=6,
                             payload=b"data")
        packet.fill_l4_checksum()
        assert packet.l4_checksum_ok()

    def test_unfilled_checksum_usually_wrong(self):
        packet = Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=6,
                             payload=b"data")
        assert packet.l4.checksum == 0
        assert not packet.l4_checksum_ok()

    def test_header_rewrite_invalidates(self):
        packet = Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=6)
        packet.fill_l4_checksum()
        packet.ip.src_ip = ip_to_int("9.9.9.9")  # pseudo-header changed
        assert not packet.l4_checksum_ok()

    def test_payload_corruption_detected(self):
        packet = Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=6,
                             payload=b"AAAA")
        packet.fill_l4_checksum()
        packet.payload = b"AAAB"
        assert not packet.l4_checksum_ok()

    def test_udp_checksum(self):
        packet = Packet.make("1.1.1.1", "2.2.2.2", proto=PROTO_UDP,
                             src_port=53, dst_port=53, payload=b"q")
        packet.fill_l4_checksum()
        assert packet.l4_checksum_ok()
        assert packet.l4.checksum != 0  # RFC 768 never transmits 0

    def test_non_l4_protocols_trivially_ok(self):
        from repro.net.packet import PROTO_ICMP

        packet = Packet.make("1.1.1.1", "2.2.2.2", proto=PROTO_ICMP)
        assert packet.l4_checksum_ok()
        assert packet.compute_l4_checksum() == 0

    @settings(max_examples=30)
    @given(st.binary(max_size=128),
           st.integers(0, 65535), st.integers(0, 65535))
    def test_fill_verify_property(self, payload, sport, dport):
        packet = Packet.make("3.3.3.3", "4.4.4.4", src_port=sport,
                             dst_port=dport, payload=payload)
        packet.fill_l4_checksum()
        assert packet.l4_checksum_ok()

    def test_survives_wire_roundtrip(self):
        packet = Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=6,
                             payload=b"xyz")
        packet.fill_l4_checksum()
        again = Packet.from_bytes(packet.to_bytes())
        assert again.l4_checksum_ok()


class TestNATChecksumDiscipline:
    def test_outbound_rewrite_keeps_checksum_valid(self):
        nat = NAT("100.0.0.1")
        packet = Packet.make("10.0.0.5", "8.8.8.8", src_port=4000, dst_port=80,
                             payload=b"GET /")
        packet.fill_l4_checksum()
        out = nat.process(packet)
        assert out.l4_checksum_ok()

    def test_inbound_rewrite_keeps_checksum_valid(self):
        nat = NAT("100.0.0.1")
        out = nat.process(
            Packet.make("10.0.0.5", "8.8.8.8", src_port=4000, dst_port=80)
        )
        reply = Packet.make("8.8.8.8", "100.0.0.1", src_port=80,
                            dst_port=out.l4.src_port)
        reply.fill_l4_checksum()
        back = nat.process(reply)
        assert back.l4_checksum_ok()


class TestBuiltInVTEP:
    def test_ingress_decapsulates_and_matches_vni(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=98)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="tenant", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule(vni=4100)]))
        )
        inner = Packet.make("192.168.0.1", "192.168.0.2",
                            src_port=1, dst_port=2, payload=b"tenant-l2")
        outer = vxlan_encapsulate(
            inner, vni=4100,
            outer_src_ip=ip_to_int("100.64.0.1"),
            outer_dst_ip=ip_to_int("100.64.0.2"),
        )
        snic.rx_port.wire_arrival(outer)  # raw transport from the wire
        delivered = snic.process_ingress()
        assert delivered == {vnic.nf_id: 1}
        received = vnic.receive()
        assert received.payload == b"tenant-l2"

    def test_wrong_vni_dropped(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=99)
        nic_os = NICOS(snic)
        nic_os.NF_create(
            NFConfig(name="tenant", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule(vni=4100)]))
        )
        inner = Packet.make("192.168.0.1", "192.168.0.2")
        outer = vxlan_encapsulate(inner, vni=999, outer_src_ip=1, outer_dst_ip=2)
        snic.rx_port.wire_arrival(outer)
        assert snic.process_ingress() == {-1: 1}

    def test_malformed_vxlan_falls_back_to_outer(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=100)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="udp-catcher", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule(proto=PROTO_UDP)]))
        )
        bogus = Packet.make("1.1.1.1", "2.2.2.2", proto=PROTO_UDP,
                            src_port=5, dst_port=4789, payload=b"\x00\x00")
        snic.rx_port.wire_arrival(bogus)
        delivered = snic.process_ingress()
        assert delivered == {vnic.nf_id: 1}  # classified as plain UDP
