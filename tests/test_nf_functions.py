"""Tests for the six network functions (§5.1) — real-algorithm checks."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import (
    FiveTuple,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    ip_to_int,
    ip_to_str,
)
from repro.net.rules import MatchRule, PortRange, Prefix, RuleAction, RuleTable
from repro.nf import (
    AhoCorasick,
    Backend,
    DIR24_8,
    DPIEngine,
    Firewall,
    MaglevLoadBalancer,
    Monitor,
    NAT,
    make_emerging_threats_rules,
    make_random_routes,
    make_snort_like_patterns,
)


def packet(src="10.0.0.1", dst="8.8.8.8", sport=1000, dport=80, payload=b""):
    return Packet.make(src, dst, src_port=sport, dst_port=dport, payload=payload)


class TestFirewall:
    def _fw(self, action=RuleAction.DROP):
        rules = RuleTable(
            [MatchRule(dst_ports=PortRange(22, 22), action=action)]
        )
        return Firewall(rules, cache_capacity=4)

    def test_drop_and_accept(self):
        fw = self._fw()
        assert fw.process(packet(dport=22)) is None
        assert fw.process(packet(dport=80)) is not None

    def test_default_action_when_no_match(self):
        fw = Firewall(RuleTable(), default_action=RuleAction.DROP)
        assert fw.process(packet()) is None

    def test_cache_hit_path(self):
        fw = self._fw()
        fw.process(packet(dport=22))
        fw.process(packet(dport=22))
        assert fw.cache_hits == 1 and fw.cache_misses == 1

    def test_cache_eviction_at_capacity(self):
        fw = self._fw()
        for i in range(10):
            fw.process(packet(sport=2000 + i))
        assert fw.cached_flows <= 4

    def test_cached_verdict_consistent(self):
        fw = self._fw()
        first = fw.process(packet(dport=22))
        second = fw.process(packet(dport=22))
        assert first is None and second is None

    def test_stats(self):
        fw = self._fw()
        fw.process(packet(dport=22))
        fw.process(packet(dport=80))
        assert fw.stats.received == 2
        assert fw.stats.dropped == 1
        assert fw.stats.forwarded == 1
        assert fw.stats.drop_rate == 0.5

    def test_reset(self):
        fw = self._fw()
        fw.process(packet())
        fw.reset()
        assert fw.stats.received == 0 and fw.cached_flows == 0

    def test_emerging_threats_generator(self):
        rules = make_emerging_threats_rules(n_rules=643, seed=1)
        assert len(rules) == 643
        actions = {r.action for r in rules}
        assert RuleAction.DROP in actions and RuleAction.ACCEPT in actions

    def test_state_bytes_grows_with_cache(self):
        fw = Firewall(RuleTable(), cache_capacity=100)
        before = fw.state_bytes()
        for i in range(50):
            fw.process(packet(sport=3000 + i))
        assert fw.state_bytes() > before


class TestAhoCorasick:
    def test_classic_example(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        matches = ac.search(b"ushers")
        found = {(pos, pid) for pos, pid in matches}
        # "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        assert (4, 1) in found and (4, 0) in found and (6, 3) in found

    def test_overlapping_matches(self):
        ac = AhoCorasick([b"aa"])
        assert len(ac.search(b"aaaa")) == 3

    def test_no_match(self):
        ac = AhoCorasick([b"xyz"])
        assert ac.search(b"abcabc") == []
        assert not ac.contains_any(b"abcabc")

    def test_contains_any_early_exit(self):
        ac = AhoCorasick([b"evil"])
        assert ac.contains_any(b"this is evil payload")

    def test_binary_patterns(self):
        ac = AhoCorasick([b"\x90\x90\x90"])
        assert ac.contains_any(b"\x00\x90\x90\x90\x00")

    def test_pattern_at_start_and_end(self):
        ac = AhoCorasick([b"ab"])
        assert len(ac.search(b"abxxab")) == 2

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            AhoCorasick([])
        with pytest.raises(ValueError):
            AhoCorasick([b""])

    def test_graph_bytes_scales_with_states(self):
        small = AhoCorasick([b"a"])
        large = AhoCorasick(make_snort_like_patterns(200))
        assert large.graph_bytes() > small.graph_bytes()
        assert small.graph_bytes() == small.n_states * 64

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.binary(min_size=1, max_size=5), min_size=1, max_size=8, unique=True
        ),
        st.binary(max_size=60),
    )
    def test_matches_naive_search_property(self, patterns, haystack):
        """Differential test: AC must agree with naive substring search."""
        ac = AhoCorasick(patterns)
        expected = set()
        for pid, pattern in enumerate(patterns):
            start = 0
            while True:
                index = haystack.find(pattern, start)
                if index < 0:
                    break
                expected.add((index + len(pattern), pid))
                start = index + 1
        assert set(ac.search(haystack)) == expected


class TestDPIEngine:
    def test_alert_counting(self):
        dpi = DPIEngine([b"attack"])
        dpi.process(packet(payload=b"an attack payload"))
        dpi.process(packet(payload=b"benign"))
        assert dpi.alerts == 1
        assert dpi.stats.forwarded == 2  # monitor-only by default

    def test_drop_on_match(self):
        dpi = DPIEngine([b"attack"], drop_on_match=True)
        assert dpi.process(packet(payload=b"attack!")) is None
        assert dpi.process(packet(payload=b"fine")) is not None

    def test_pattern_generator_deterministic(self):
        assert make_snort_like_patterns(50, seed=3) == make_snort_like_patterns(
            50, seed=3
        )

    def test_pattern_generator_count_and_nonempty(self):
        patterns = make_snort_like_patterns(100)
        assert len(patterns) == 100
        assert all(patterns)


class TestNAT:
    def test_outbound_translation(self):
        nat = NAT("100.0.0.1")
        out = nat.process(packet(src="10.1.2.3", sport=5555))
        assert ip_to_str(out.ip.src_ip) == "100.0.0.1"
        assert out.l4.src_port != 5555 or out.l4.src_port == 1

    def test_same_flow_same_binding(self):
        nat = NAT("100.0.0.1")
        a = nat.process(packet(src="10.1.2.3", sport=5555))
        port = a.l4.src_port
        b = nat.process(packet(src="10.1.2.3", sport=5555))
        assert b.l4.src_port == port

    def test_distinct_flows_distinct_ports(self):
        nat = NAT("100.0.0.1")
        ports = {
            nat.process(packet(src="10.1.2.3", sport=5000 + i)).l4.src_port
            for i in range(50)
        }
        assert len(ports) == 50

    def test_inbound_rewrite(self):
        nat = NAT("100.0.0.1")
        out = nat.process(packet(src="10.1.2.3", sport=7777))
        ext_port = out.l4.src_port
        reply = Packet.make(
            "8.8.8.8", "100.0.0.1", src_port=80, dst_port=ext_port
        )
        back = nat.process(reply)
        assert ip_to_str(back.ip.dst_ip) == "10.1.2.3"
        assert back.l4.dst_port == 7777

    def test_unsolicited_inbound_dropped(self):
        nat = NAT("100.0.0.1")
        reply = Packet.make("8.8.8.8", "100.0.0.1", src_port=80, dst_port=999)
        assert nat.process(reply) is None

    def test_external_traffic_passthrough(self):
        nat = NAT("100.0.0.1")
        p = packet(src="55.0.0.1", dst="66.0.0.1")
        out = nat.process(p)
        assert ip_to_str(out.ip.src_ip) == "55.0.0.1"

    def test_pool_exhaustion_passthrough(self):
        nat = NAT("100.0.0.1")
        nat._next_port = 65_536  # exhaust the pool artificially
        out = nat.process(packet(src="10.1.2.3", sport=1234))
        assert ip_to_str(out.ip.src_ip) == "10.1.2.3"
        assert nat.pool_exhausted == 1

    def test_reset(self):
        nat = NAT("100.0.0.1")
        nat.process(packet(src="10.1.2.3"))
        nat.reset()
        assert nat.active_bindings == 0 and nat.translations == 0


class TestMaglev:
    BACKENDS = [Backend("b0", "1.0.0.1"), Backend("b1", "1.0.0.2"), Backend("b2", "1.0.0.3")]

    def test_table_filled_and_balanced(self):
        lb = MaglevLoadBalancer(self.BACKENDS, table_size=251)
        distribution = lb.distribution()
        assert sum(distribution.values()) == 251
        # Maglev's guarantee: near-perfect balance.
        assert max(distribution.values()) - min(distribution.values()) <= 3

    def test_deterministic_mapping(self):
        lb1 = MaglevLoadBalancer(self.BACKENDS, table_size=251)
        lb2 = MaglevLoadBalancer(self.BACKENDS, table_size=251)
        ft = FiveTuple(1, 2, 6, 3, 4)
        assert lb1.backend_for(ft).name == lb2.backend_for(ft).name

    def test_connection_stickiness_across_rebuild(self):
        lb = MaglevLoadBalancer(self.BACKENDS, table_size=251)
        ft = FiveTuple(10, 20, 6, 30, 40)
        before = lb.backend_for(ft).name
        # Removing an unrelated backend must not move a tracked flow.
        victim = next(b.name for b in self.BACKENDS if b.name != before)
        lb.remove_backend(victim)
        assert lb.backend_for(ft).name == before

    def test_minimal_disruption(self):
        """Consistent hashing: removing one of three backends should
        remap roughly a third of (untracked) flows, not all of them."""
        lb = MaglevLoadBalancer(self.BACKENDS, table_size=499, track_connections=False)
        flows = [FiveTuple(i, i + 1, 6, i % 65536, 80) for i in range(300)]
        before = {ft: lb.backend_for(ft).name for ft in flows}
        lb.remove_backend("b2")
        moved = sum(
            1
            for ft in flows
            if before[ft] != "b2" and lb.backend_for(ft).name != before[ft]
        )
        survivors = sum(1 for ft in flows if before[ft] != "b2")
        assert moved / survivors < 0.25

    def test_rewrites_destination(self):
        lb = MaglevLoadBalancer(self.BACKENDS, table_size=251)
        out = lb.process(packet())
        assert ip_to_str(out.ip.dst_ip) in {b.ip for b in self.BACKENDS}

    def test_weighted_backend_gets_more(self):
        backends = [Backend("heavy", "1.0.0.1", weight=3), Backend("light", "1.0.0.2")]
        lb = MaglevLoadBalancer(backends, table_size=499)
        d = lb.distribution()
        assert d["heavy"] > d["light"] * 2

    def test_rejects_composite_table_size(self):
        with pytest.raises(ValueError):
            MaglevLoadBalancer(self.BACKENDS, table_size=100)

    def test_rejects_empty_backends(self):
        with pytest.raises(ValueError):
            MaglevLoadBalancer([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            MaglevLoadBalancer([Backend("x", "1.1.1.1"), Backend("x", "2.2.2.2")])

    def test_remove_unknown_backend(self):
        lb = MaglevLoadBalancer(self.BACKENDS, table_size=251)
        with pytest.raises(KeyError):
            lb.remove_backend("nope")

    def test_cannot_remove_last_backend(self):
        lb = MaglevLoadBalancer([Backend("only", "1.1.1.1")], table_size=251)
        with pytest.raises(ValueError):
            lb.remove_backend("only")


class TestDIR24_8:
    def test_basic_longest_prefix(self):
        lpm = DIR24_8()
        lpm.add_route(Prefix.parse("10.0.0.0/8"), 1)
        lpm.add_route(Prefix.parse("10.1.0.0/16"), 2)
        lpm.add_route(Prefix.parse("10.1.2.0/24"), 3)
        lpm.add_route(Prefix.parse("10.1.2.3/32"), 4)
        assert lpm.lookup(ip_to_int("10.5.5.5")) == 1
        assert lpm.lookup(ip_to_int("10.1.5.5")) == 2
        assert lpm.lookup(ip_to_int("10.1.2.5")) == 3
        assert lpm.lookup(ip_to_int("10.1.2.3")) == 4

    def test_insertion_order_independence(self):
        routes = [
            (Prefix.parse("10.1.2.3/32"), 4),
            (Prefix.parse("10.0.0.0/8"), 1),
            (Prefix.parse("10.1.2.0/24"), 3),
            (Prefix.parse("10.1.0.0/16"), 2),
        ]
        lpm = DIR24_8()
        for prefix, hop in routes:
            lpm.add_route(prefix, hop)
        assert lpm.lookup(ip_to_int("10.1.2.3")) == 4
        assert lpm.lookup(ip_to_int("10.1.2.9")) == 3

    def test_no_route_returns_none(self):
        lpm = DIR24_8()
        lpm.add_route(Prefix.parse("10.0.0.0/8"), 1)
        assert lpm.lookup(ip_to_int("11.0.0.1")) is None

    def test_long_prefix_inherits_shorter_backing(self):
        lpm = DIR24_8()
        lpm.add_route(Prefix.parse("10.1.2.0/25"), 7)  # covers .0-.127
        lpm.add_route(Prefix.parse("10.0.0.0/8"), 1)
        assert lpm.lookup(ip_to_int("10.1.2.5")) == 7
        assert lpm.lookup(ip_to_int("10.1.2.200")) == 1

    def test_rejects_bad_next_hop(self):
        lpm = DIR24_8()
        with pytest.raises(ValueError):
            lpm.add_route(Prefix.parse("1.0.0.0/8"), 0)

    def test_handle_decrements_ttl_and_drops_unrouted(self):
        lpm = DIR24_8()
        lpm.add_route(Prefix.parse("8.0.0.0/8"), 3)
        out = lpm.process(packet(dst="8.8.8.8"))
        assert out.ip.ttl == 63
        assert lpm.process(packet(dst="9.9.9.9")) is None

    def test_matches_linear_oracle_random(self):
        rng = random.Random(42)
        routes = make_random_routes(n_routes=300, seed=9)
        lpm = DIR24_8()
        for prefix, hop in routes:
            lpm.add_route(prefix, hop)
        for _ in range(300):
            ip = rng.randrange(0, 1 << 32)
            assert lpm.lookup(ip) == lpm.lookup_linear(ip)

    def test_oracle_agreement_on_route_addresses(self):
        routes = make_random_routes(n_routes=100, seed=10)
        lpm = DIR24_8()
        for prefix, hop in routes:
            lpm.add_route(prefix, hop)
        for prefix, _ in routes[:100]:
            assert lpm.lookup(prefix.address) == lpm.lookup_linear(prefix.address)

    def test_state_bytes(self):
        lpm = DIR24_8()
        base = lpm.state_bytes()
        lpm.add_route(Prefix.parse("1.2.3.4/32"), 5)
        assert lpm.state_bytes() > base  # a tbl8 group was allocated


class TestMonitor:
    def test_counts_per_flow(self):
        mon = Monitor()
        p = packet()
        for _ in range(3):
            mon.process(p.copy())
        mon.process(packet(sport=2222))
        assert mon.count_of(p.five_tuple) == 3
        assert mon.distinct_flows == 2

    def test_forwards_unchanged(self):
        mon = Monitor()
        p = packet(payload=b"xyz")
        out = mon.process(p)
        assert out is p

    def test_top_flows(self):
        mon = Monitor()
        for _ in range(5):
            mon.process(packet(sport=1))
        mon.process(packet(sport=2))
        top = mon.top_flows(1)
        assert top[0][1] == 5

    def test_peak_state_includes_transients(self):
        mon = Monitor()
        for i in range(5000):
            mon.process(packet(sport=i % 65536, dport=i // 65536 + 1))
        assert mon.peak_state_bytes() > mon.state_bytes() * 1.2

    def test_reset(self):
        mon = Monitor()
        mon.process(packet())
        mon.reset()
        assert mon.distinct_flows == 0
