"""Tests for the ZIP (LZ77) and RAID (parity) accelerator payloads."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.compress import (
    WINDOW_BYTES,
    compression_ratio,
    lz_compress,
    lz_decompress,
)
from repro.accel.raid import (
    gf_div,
    gf_mul,
    gf_pow,
    raid5_parity,
    raid5_reconstruct,
    raid6_pq,
    raid6_reconstruct_two,
)


class TestLZCompression:
    def test_empty(self):
        assert lz_decompress(lz_compress(b"")) == b""

    def test_roundtrip_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 40
        assert lz_decompress(lz_compress(data)) == data

    def test_repetitive_data_compresses_well(self):
        data = b"ABCD" * 4096
        assert compression_ratio(data) < 0.05

    def test_random_data_does_not_explode(self):
        data = random.Random(1).randbytes(8192)
        assert compression_ratio(data) < 1.05

    def test_overlapping_match_rle(self):
        # A run of one byte forces overlapping back-references.
        data = b"\x07" * 10_000
        blob = lz_compress(data)
        assert lz_decompress(blob) == data
        assert len(blob) < 100

    def test_window_limits_matches(self):
        # Identical blocks further apart than the window can't reference
        # each other; a large window compresses better.
        block = random.Random(2).randbytes(4096)
        data = block + b"\x00" * 8192 + block
        small = len(lz_compress(data, window=1024))
        large = len(lz_compress(data, window=WINDOW_BYTES))
        assert large < small

    def test_decompress_rejects_garbage(self):
        with pytest.raises(ValueError):
            lz_decompress(b"\x99\x00")

    def test_decompress_rejects_bad_distance(self):
        blob = bytes([0x01]) + (100).to_bytes(2, "big") + (4).to_bytes(2, "big")
        with pytest.raises(ValueError):
            lz_decompress(blob)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            lz_compress(b"x", window=0)

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=4096))
    def test_roundtrip_property(self, data):
        assert lz_decompress(lz_compress(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=64), st.integers(2, 200))
    def test_roundtrip_repeated_property(self, unit, count):
        data = unit * count
        assert lz_decompress(lz_compress(data)) == data


class TestGF256:
    def test_mul_identity_and_zero(self):
        assert gf_mul(1, 77) == 77
        assert gf_mul(0, 77) == 0

    def test_mul_commutative(self):
        for a, b in ((3, 7), (0x53, 0xCA), (255, 2)):
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_div_inverts_mul(self):
        for a in (1, 2, 0x1D, 200, 255):
            for b in (1, 3, 0x80, 254):
                assert gf_div(gf_mul(a, b), b) == a

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(2, 8) == 0x1D  # x^8 reduced by 0x11D

    @settings(max_examples=50)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_distributive_property(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestRAID5:
    def test_parity_roundtrip(self):
        stripes = [bytes([i] * 16) for i in (1, 2, 3, 4)]
        parity = raid5_parity(stripes)
        rebuilt = raid5_reconstruct(stripes[:2] + stripes[3:], parity)
        assert rebuilt == stripes[2]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            raid5_parity([b"xx", b"x"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            raid5_parity([])

    @settings(max_examples=30)
    @given(
        st.lists(st.binary(min_size=8, max_size=8), min_size=2, max_size=8),
        st.data(),
    )
    def test_any_single_failure_recoverable(self, stripes, data):
        parity = raid5_parity(stripes)
        lost = data.draw(st.integers(0, len(stripes) - 1))
        survivors = stripes[:lost] + stripes[lost + 1 :]
        assert raid5_reconstruct(survivors, parity) == stripes[lost]


class TestRAID6:
    def _stripes(self, seed=3, n=6, size=32):
        rng = random.Random(seed)
        return [rng.randbytes(size) for _ in range(n)]

    def test_p_matches_raid5(self):
        stripes = self._stripes()
        p, _ = raid6_pq(stripes)
        assert p == raid5_parity(stripes)

    def test_double_failure_recovery(self):
        stripes = self._stripes()
        p, q = raid6_pq(stripes)
        x, y = 1, 4
        holey = [
            None if i in (x, y) else s for i, s in enumerate(stripes)
        ]
        dx, dy = raid6_reconstruct_two(holey, (x, y), p, q)
        assert dx == stripes[x]
        assert dy == stripes[y]

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_all_failure_pairs_recoverable(self, data):
        stripes = self._stripes(seed=data.draw(st.integers(0, 1000)), n=5, size=16)
        p, q = raid6_pq(stripes)
        x = data.draw(st.integers(0, 3))
        y = data.draw(st.integers(x + 1, 4))
        holey = [None if i in (x, y) else s for i, s in enumerate(stripes)]
        dx, dy = raid6_reconstruct_two(holey, (x, y), p, q)
        assert (dx, dy) == (stripes[x], stripes[y])

    def test_bad_missing_indices(self):
        stripes = self._stripes(n=4)
        p, q = raid6_pq(stripes)
        with pytest.raises(ValueError):
            raid6_reconstruct_two(stripes, (2, 2), p, q)

    def test_unexpected_none_rejected(self):
        stripes = self._stripes(n=4)
        p, q = raid6_pq(stripes)
        holey = [None, stripes[1], None, None]
        with pytest.raises(ValueError):
            raid6_reconstruct_two(holey, (0, 2), p, q)


class TestAcceleratorIntegration:
    def test_zip_cluster_runs_real_compression(self):
        """A ZIP accelerator request carries an actual LZ77 job."""
        from repro.core import NFConfig, NICOS, SNIC
        from repro.hw.accelerator import AcceleratorKind

        MB = 1024 * 1024
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=92)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="zipper", core_ids=(0,), memory_bytes=4 * MB,
                     accelerators=((AcceleratorKind.ZIP, 1),))
        )
        payload = b"compress-me " * 512
        request = vnic.accelerate(
            AcceleratorKind.ZIP, len(payload),
            work=lambda: lz_compress(payload),
        )
        assert lz_decompress(request.result) == payload
        assert len(request.result) < len(payload) // 4

    def test_raid_cluster_runs_real_parity(self):
        from repro.core import NFConfig, NICOS, SNIC
        from repro.hw.accelerator import AcceleratorKind

        MB = 1024 * 1024
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=93)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="storage", core_ids=(0,), memory_bytes=4 * MB,
                     accelerators=((AcceleratorKind.RAID, 1),))
        )
        stripes = [bytes([i] * 64) for i in range(4)]
        request = vnic.accelerate(
            AcceleratorKind.RAID, 256, work=lambda: raid6_pq(stripes)
        )
        p, q = request.result
        assert p == raid5_parity(stripes)
        assert len(q) == 64
