"""Tests for physical memory with page ownership."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.memory import (
    AccessFault,
    HostMemory,
    OutOfMemoryError,
    PhysicalMemory,
)


@pytest.fixture
def mem():
    return PhysicalMemory(1024 * 1024, page_size=4096)


class TestBasicIO:
    def test_fresh_memory_reads_zero(self, mem):
        assert mem.read(0, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self, mem):
        mem.write(100, b"hello")
        assert mem.read(100, 5) == b"hello"

    def test_cross_page_write(self, mem):
        data = bytes(range(200)) * 50  # 10 KB spanning 3 pages
        mem.write(4000, data)
        assert mem.read(4000, len(data)) == data

    def test_u64_roundtrip(self, mem):
        mem.write_u64(8, 0xDEADBEEFCAFEBABE)
        assert mem.read_u64(8) == 0xDEADBEEFCAFEBABE

    def test_out_of_range_read(self, mem):
        with pytest.raises(AccessFault):
            mem.read(mem.size_bytes - 4, 8)

    def test_out_of_range_write(self, mem):
        with pytest.raises(AccessFault):
            mem.write(mem.size_bytes, b"x")

    def test_negative_size(self, mem):
        with pytest.raises(ValueError):
            mem.read(0, -1)

    def test_requires_whole_pages(self):
        with pytest.raises(ValueError):
            PhysicalMemory(4097, page_size=4096)

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=1000), st.binary(min_size=1, max_size=9000))
    def test_roundtrip_property(self, offset, data):
        mem = PhysicalMemory(64 * 1024, page_size=4096)
        if offset + len(data) <= mem.size_bytes:
            mem.write(offset, data)
            assert mem.read(offset, len(data)) == data


class TestOwnership:
    def test_fresh_pages_are_free(self, mem):
        assert mem.owner_of(0) is None

    def test_claim_and_query(self, mem):
        mem.claim_pages(7, [1, 2, 3])
        assert mem.owner_of(2) == 7
        assert mem.pages_owned_by(7) == [1, 2, 3]

    def test_double_claim_fails(self, mem):
        mem.claim_pages(7, [1])
        with pytest.raises(AccessFault):
            mem.claim_pages(8, [1])

    def test_claim_is_atomic(self, mem):
        mem.claim_pages(7, [2])
        with pytest.raises(AccessFault):
            mem.claim_pages(8, [1, 2])  # page 2 busy -> nothing claimed
        assert mem.owner_of(1) is None

    def test_release_scrubs(self, mem):
        mem.claim_pages(7, [1])
        mem.write(4096, b"secret")
        released = mem.release_pages(7, scrub=True)
        assert released == 1
        assert mem.owner_of(1) is None
        assert mem.read(4096, 6) == b"\x00" * 6

    def test_release_without_scrub_keeps_data(self, mem):
        mem.claim_pages(7, [1])
        mem.write(4096, b"secret")
        mem.release_pages(7, scrub=False)
        assert mem.read(4096, 6) == b"secret"

    def test_owner_of_addr(self, mem):
        mem.claim_pages(3, [2])
        assert mem.owner_of_addr(2 * 4096 + 100) == 3

    def test_find_free_pages_skips_owned(self, mem):
        mem.claim_pages(1, [0, 2])
        assert mem.find_free_pages(2) == [1, 3]

    def test_find_free_pages_exhausted(self):
        small = PhysicalMemory(8192, page_size=4096)
        small.claim_pages(1, [0, 1])
        with pytest.raises(OutOfMemoryError):
            small.find_free_pages(1)

    def test_find_free_range_contiguous(self, mem):
        mem.claim_pages(1, [1])
        assert mem.find_free_range(3) == 2

    def test_find_free_range_exhausted(self):
        small = PhysicalMemory(16384, page_size=4096)
        small.claim_pages(1, [1, 3])
        with pytest.raises(OutOfMemoryError):
            small.find_free_range(2)

    def test_page_index_bounds(self, mem):
        with pytest.raises(AccessFault):
            mem.owner_of(mem.n_pages)


class TestHostMemory:
    def test_is_distinct_type(self):
        host = HostMemory(8192, page_size=4096)
        assert isinstance(host, PhysicalMemory)
        host.write(0, b"host")
        assert host.read(0, 4) == b"host"
