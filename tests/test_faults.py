"""repro.faults: plans are seeded schedules, injection is interposed,
watchdogs and retries run on sim-time, and the chaos report replays."""

from __future__ import annotations

import io

import pytest

from repro.core.errors import (
    FaultInjected,
    RecoveryExhausted,
    WatchdogTimeout,
)
from repro.faults import (
    BackoffPolicy,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Watchdog,
    retry_dma,
)
from repro.faults.chaos import format_report_json, main as chaos_main, run_chaos
from repro.faults.plan import ALL_FAULT_KINDS
from repro.hw.bus import FCFSArbiter
from repro.hw.dma import DMAController, DMAWindow
from repro.hw.events import Simulator
from repro.hw.memory import HostMemory, PhysicalMemory


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        def build(seed):
            plan = FaultPlan(seed)
            plan.burst(FaultKind.WIRE_DROP, 1, start_ns=0, count=5,
                       period_ns=1_000, jitter_ns=300)
            plan.rate(FaultKind.DMA_ERROR, 2, start_ns=0,
                      duration_ns=20_000, mean_period_ns=2_000)
            return [(e.at_ns, e.kind, e.tenant) for e in plan.events()]

        assert build(7) == build(7)
        assert build(7) != build(8)

    def test_events_sorted_and_stable(self):
        plan = FaultPlan()
        plan.at(500, FaultKind.NF_CRASH, tenant=1)
        first = plan.at(100, FaultKind.DMA_ERROR, tenant=1)
        second = plan.at(100, FaultKind.DMA_PARTIAL, tenant=2)
        events = plan.events()
        assert [e.at_ns for e in events] == [100, 100, 500]
        assert events[0] is first and events[1] is second

    def test_events_for_and_len(self):
        plan = FaultPlan()
        plan.burst(FaultKind.BUS_BABBLE, 2, start_ns=0, count=3,
                   period_ns=100)
        plan.at(50, FaultKind.NF_CRASH, tenant=1)
        assert len(plan) == 4
        assert len(plan.events_for(FaultKind.BUS_BABBLE)) == 3

    def test_params_reach_events(self):
        plan = FaultPlan()
        event = plan.at(10, FaultKind.DMA_PARTIAL, tenant=1, fraction=0.25)
        assert event.param("fraction") == 0.25
        assert event.param("missing", "fallback") == "fallback"

    def test_negative_instant_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().at(-1, FaultKind.NF_CRASH)

    def test_taxonomy_is_complete(self):
        assert len(ALL_FAULT_KINDS) == 12
        assert FaultKind.BUS_BABBLE in ALL_FAULT_KINDS


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------

def _dma_rig(nf_id=1):
    controller = DMAController(n_banks=1)
    bank = controller.bank_for_core(0)
    window = 64 * 1024
    nic_mem = PhysicalMemory(2 * window)
    host_mem = HostMemory(2 * window)
    bank.configure(owner=nf_id, nic_window=DMAWindow(0, window),
                   host_window=DMAWindow(0, window))
    return bank, host_mem, nic_mem


class TestFaultInjector:
    def test_install_uninstall_restores_originals(self):
        original = DMAController.__dict__  # noqa: F841 — force class load
        to_nic = __import__("repro.hw.dma", fromlist=["DMABank"]).DMABank.to_nic
        injector = FaultInjector(FaultPlan()).install()
        assert injector.installed
        injector.uninstall()
        restored = __import__(
            "repro.hw.dma", fromlist=["DMABank"]).DMABank.to_nic
        assert restored is to_nic

    def test_dma_error_raises_with_completion(self):
        plan = FaultPlan()
        plan.at(0, FaultKind.DMA_ERROR, tenant=1)
        with FaultInjector(plan) as injector:
            injector.arm_all()
            bank, host_mem, nic_mem = _dma_rig()
            with pytest.raises(FaultInjected) as exc_info:
                bank.to_nic(host_mem, nic_mem, 0, 0, 4_096, now_ns=0.0)
            assert exc_info.value.bytes_done == 0
            assert exc_info.value.completion_ns is not None
            assert injector.records[-1].kind is FaultKind.DMA_ERROR

    def test_dma_partial_lands_a_prefix(self):
        plan = FaultPlan()
        plan.at(0, FaultKind.DMA_PARTIAL, tenant=1, fraction=0.5)
        with FaultInjector(plan) as injector:
            injector.arm_all()
            bank, host_mem, nic_mem = _dma_rig()
            host_mem.write(0, b"\xAB" * 4_096)
            with pytest.raises(FaultInjected) as exc_info:
                bank.to_nic(host_mem, nic_mem, 0, 0, 4_096, now_ns=0.0)
            assert exc_info.value.bytes_done == 2_048
            assert nic_mem.read(0, 2_048) == b"\xAB" * 2_048

    def test_wildcard_tenant_matches_anyone(self):
        plan = FaultPlan()
        plan.at(0, FaultKind.DMA_ERROR)  # tenant=None: wildcard
        with FaultInjector(plan) as injector:
            injector.arm_all()
            bank, host_mem, nic_mem = _dma_rig(nf_id=42)
            with pytest.raises(FaultInjected):
                bank.to_nic(host_mem, nic_mem, 0, 0, 64, now_ns=0.0)

    def test_bus_babble_occupies_the_arbiter(self):
        plan = FaultPlan()
        plan.at(0, FaultKind.BUS_BABBLE, tenant=2, amplify=4,
                babble_bytes=4_096)
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=12.8)
        clean = arbiter.request(2, 1_024, 0.0)
        with FaultInjector(plan) as injector:
            injector.arm_all()
            babbled = arbiter.request(2, 1_024, clean)
        assert babbled - clean > clean  # the babble queued ahead of it

    def test_dram_bit_flip_corrupts_and_logs(self):
        memory = PhysicalMemory(64 * 1024)
        plan = FaultPlan(seed=3)
        plan.at(0, FaultKind.DRAM_BIT_FLIP, tenant=1, base=0,
                size=64 * 1024, n_flips=16)
        with FaultInjector(plan) as injector:
            injector.arm_all({FaultKind.DRAM_BIT_FLIP: memory})
            assert len(injector.flips) == 16
            addr, mask = injector.flips[0]
            page, offset = divmod(addr, memory.page_size)
            assert memory._pages[page][offset] & mask


# ----------------------------------------------------------------------
# Watchdog / retry
# ----------------------------------------------------------------------

class TestWatchdog:
    def test_unpetted_watchdog_fires_handler(self):
        sim = Simulator()
        watchdog = Watchdog(sim)
        fired = []
        watchdog.arm("nf", 1_000, on_timeout=fired.append, tenant=1)
        sim.advance(2_000)
        assert len(fired) == 1
        assert watchdog.timeouts[0][0] == "nf"

    def test_petting_defers_the_deadline(self):
        sim = Simulator()
        watchdog = Watchdog(sim)
        fired = []
        watchdog.arm("nf", 1_000, on_timeout=fired.append)
        sim.advance(800)
        watchdog.pet("nf")
        sim.advance(800)   # only 800 since the pet: still alive
        assert not fired
        sim.advance(400)
        assert fired

    def test_no_handler_raises_out_of_the_kernel(self):
        sim = Simulator()
        Watchdog(sim).arm("nf", 500)
        with pytest.raises(WatchdogTimeout):
            sim.advance(1_000)

    def test_pet_unarmed_is_an_error(self):
        with pytest.raises(KeyError):
            Watchdog(Simulator()).pet("ghost")

    def test_disarm_cancels(self):
        sim = Simulator()
        watchdog = Watchdog(sim)
        watchdog.arm("nf", 500)
        watchdog.disarm("nf")
        sim.advance(1_000)
        assert not watchdog.timeouts and watchdog.armed == []


class TestRetryDMA:
    def test_recovers_after_transient_faults(self):
        calls = []

        def op(bytes_done, now_ns):
            calls.append((bytes_done, now_ns))
            if len(calls) < 3:
                raise FaultInjected("transient", kind="dma_error",
                                    completion_ns=now_ns + 100,
                                    bytes_done=64)
            return now_ns + 10

        policy = BackoffPolicy(attempts=4, base_ns=500, factor=2,
                               max_ns=8_000)
        completion = retry_dma(op, policy=policy, now_ns=0.0, tenant=1)
        assert completion == calls[-1][1] + 10
        assert [done for done, _ in calls] == [0, 64, 128]
        # each retry waits out the faulted completion plus the backoff
        assert calls[1][1] == 100 + 500
        assert calls[2][1] == calls[1][1] + 100 + 1_000

    def test_budget_exhaustion_chains_the_fault(self):
        def op(bytes_done, now_ns):
            raise FaultInjected("hard", kind="dma_error",
                                completion_ns=now_ns, bytes_done=0)

        with pytest.raises(RecoveryExhausted):
            retry_dma(op, policy=BackoffPolicy(attempts=2), now_ns=0.0)

    def test_backoff_is_bounded(self):
        policy = BackoffPolicy(attempts=10, base_ns=500, factor=2,
                               max_ns=2_000)
        assert [policy.backoff_ns(i) for i in range(4)] == \
            [500, 1_000, 2_000, 2_000]


# ----------------------------------------------------------------------
# The chaos differential
# ----------------------------------------------------------------------

class TestChaos:
    def test_single_kind_report_is_deterministic(self):
        first = run_chaos(seed=11, quick=True, kinds=["wire_drop"])
        second = run_chaos(seed=11, quick=True, kinds=["wire_drop"])
        assert format_report_json(first) == format_report_json(second)

    def test_blast_radius_verdict_for_a_headline_kind(self):
        report = run_chaos(seed=0, quick=True, kinds=["bus_babble"])
        entry = report["kinds"]["bus_babble"]
        assert entry["commodity"]["disruption_total"] > 0
        assert entry["snic"]["disruption_total"] == 0
        assert entry["snic"]["cross_tenant_wait_ns"] == 0
        assert report["verdict"]["pass"]

    def test_cli_exit_code_follows_the_verdict(self):
        stream = io.StringIO()
        code = chaos_main(["--quick", "--kind", "wire_drop"], stream=stream)
        assert code == 0
        assert "VERDICT: PASS" in stream.getvalue()

    def test_cli_json_format_is_parseable(self):
        import json

        stream = io.StringIO()
        chaos_main(["--quick", "--kind", "wire_drop", "--format", "json"],
                   stream=stream)
        payload = json.loads(stream.getvalue())
        assert payload["isosan_active"] is True
        assert "wire_drop" in payload["kinds"]
