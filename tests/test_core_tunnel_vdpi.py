"""Tests for the secure tunnel (Fig. 4a) and the virtual DPI data path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NFConfig, NICOS, SNIC, IsolationViolation, Verifier
from repro.core.tunnel import TunnelEndpoint, TunnelError, tunnel_pair
from repro.core.vdpi import VirtualDPI, serialize_automaton
from repro.crypto.dh import DHParams
from repro.hw.accelerator import AcceleratorKind
from repro.net.packet import Packet
from repro.nf.dpi import AhoCorasick

MB = 1024 * 1024
KEY = bytes(range(32))
SMALL_DH = DHParams(g=2, p=0xFFFFFFFB)


def sample_packet(payload=b"secret-payload"):
    return Packet.make("192.168.1.1", "192.168.1.2",
                       src_port=443, dst_port=8443, payload=payload)


class TestTunnel:
    def test_seal_open_roundtrip(self):
        sender, receiver = tunnel_pair(KEY)
        packet = sample_packet()
        opened = receiver.open(sender.seal(packet))
        assert opened.to_bytes() == packet.to_bytes()

    def test_wire_hides_headers_and_payload(self):
        sender, _ = tunnel_pair(KEY)
        packet = sample_packet(b"hide-me")
        envelope = sender.seal(packet)
        assert b"hide-me" not in envelope
        # The inner 5-tuple bytes are invisible too.
        assert packet.to_bytes()[:34] not in envelope

    def test_tampering_rejected(self):
        sender, receiver = tunnel_pair(KEY)
        envelope = bytearray(sender.seal(sample_packet()))
        envelope[12] ^= 0x01
        with pytest.raises(TunnelError, match="tag"):
            receiver.open(bytes(envelope))

    def test_replay_rejected(self):
        sender, receiver = tunnel_pair(KEY)
        envelope = sender.seal(sample_packet())
        receiver.open(envelope)
        with pytest.raises(TunnelError, match="replay"):
            receiver.open(envelope)

    def test_truncation_rejected(self):
        _, receiver = tunnel_pair(KEY)
        with pytest.raises(TunnelError, match="truncated"):
            receiver.open(b"short")

    def test_wrong_key_rejected(self):
        sender = TunnelEndpoint(KEY)
        stranger = TunnelEndpoint(bytes(32))
        with pytest.raises(TunnelError):
            stranger.open(sender.seal(sample_packet()))

    def test_sequence_numbers_distinguish_identical_packets(self):
        sender, receiver = tunnel_pair(KEY)
        first = sender.seal(sample_packet())
        second = sender.seal(sample_packet())
        assert first != second
        receiver.open(first)
        receiver.open(second)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            TunnelEndpoint(b"short")

    @settings(max_examples=25)
    @given(st.binary(max_size=256))
    def test_roundtrip_property(self, payload):
        sender, receiver = tunnel_pair(KEY)
        packet = sample_packet(payload)
        assert receiver.open(sender.seal(packet)).payload == payload

    def test_tunnel_from_attested_key(self):
        """End-to-end Fig. 4a: attest, derive the key, run the tunnel."""
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=101)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="ids", core_ids=(0,), memory_bytes=4 * MB,
                     initial_image=b"ids-v1")
        )
        verifier = Verifier(snic.vendor_ca.public_key, seed=4)
        session = vnic.attest(verifier.hello(), params=SMALL_DH)
        gy, gateway_key = verifier.complete_exchange(
            session.quote, expected_state_hash=vnic.state_hash
        )
        function_key = session.session_key(gy)
        gateway = TunnelEndpoint(gateway_key)
        function = TunnelEndpoint(function_key)
        packet = sample_packet(b"cross-enterprise-flow")
        assert function.open(gateway.seal(packet)).payload == \
            b"cross-enterprise-flow"


class TestSerializeAutomaton:
    def test_offsets_cover_all_states(self):
        automaton = AhoCorasick([b"he", b"she"])
        blob, offsets = serialize_automaton(automaton)
        assert len(offsets) == automaton.n_states
        assert offsets[0] == 0
        assert all(a < b for a, b in zip(offsets, offsets[1:]))
        assert offsets[-1] < len(blob)


@pytest.fixture
def dpi_system():
    snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=102)
    nic_os = NICOS(snic)
    vnic = nic_os.NF_create(
        NFConfig(name="ids", core_ids=(0,), memory_bytes=8 * MB,
                 accelerators=((AcceleratorKind.DPI, 1),))
    )
    return snic, nic_os, vnic


class TestVirtualDPI:
    def test_scan_matches_software_automaton(self, dpi_system):
        _, _, vnic = dpi_system
        automaton = AhoCorasick([b"he", b"she", b"his", b"hers"])
        vdpi = VirtualDPI(vnic)
        vdpi.load_graph(automaton)
        haystack = b"ushers and his heroes"
        assert sorted(vdpi.scan_matches(haystack)) == sorted(
            automaton.search(haystack)
        )

    def test_graph_lives_in_function_memory(self, dpi_system):
        snic, _, vnic = dpi_system
        automaton = AhoCorasick([b"evil"])
        vdpi = VirtualDPI(vnic)
        size = vdpi.load_graph(automaton, vbase=0x10000)
        blob = vnic.read(0x10000, size)
        assert blob == serialize_automaton(automaton)[0]

    def test_requires_cluster(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=103)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="no-dpi", core_ids=(0,), memory_bytes=4 * MB)
        )
        with pytest.raises(IsolationViolation):
            VirtualDPI(vnic)

    def test_scan_before_load_rejected(self, dpi_system):
        _, _, vnic = dpi_system
        vdpi = VirtualDPI(vnic)
        with pytest.raises(IsolationViolation):
            vdpi.scan(b"data")

    def test_graph_unreadable_by_management_os(self, dpi_system):
        """The DPI-ruleset-stealing target: even knowing exactly where
        the graph lives, the NIC OS cannot read it."""
        snic, nic_os, vnic = dpi_system
        vdpi = VirtualDPI(vnic)
        vdpi.load_graph(AhoCorasick([b"signature-1", b"signature-2"]))
        graph_paddr = snic.record(vnic.nf_id).extent_base + 0x10000
        with pytest.raises(IsolationViolation):
            nic_os.os_read(graph_paddr, 64)

    def test_scan_has_service_latency(self, dpi_system):
        _, _, vnic = dpi_system
        vdpi = VirtualDPI(vnic)
        vdpi.load_graph(AhoCorasick([b"x"]))
        request = vdpi.scan(b"payload" * 100, issue_ns=0.0)
        assert request.latency_ns >= vdpi.cluster.service.service_ns(700)

    def test_binary_patterns(self, dpi_system):
        _, _, vnic = dpi_system
        automaton = AhoCorasick([b"\x90\x90\x90", b"\x00\xff\x00"])
        vdpi = VirtualDPI(vnic)
        vdpi.load_graph(automaton)
        haystack = b"\x01\x90\x90\x90\x02\x00\xff\x00"
        assert sorted(vdpi.scan_matches(haystack)) == sorted(
            automaton.search(haystack)
        )
