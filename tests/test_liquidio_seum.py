"""Tests for LiquidIO SE-UM's syscall interface and its trust gap.

The syscall configuration stops function-to-function attacks (no
xkphys), but the kernel still sees and can rewrite every packet — the
exact gap S-NIC closes with denylisted, function-owned rings.
"""

import pytest

from repro.commodity.liquidio import LiquidIOKernel, LiquidIONIC, SE_S, SE_UM
from repro.hw.memory import AccessFault
from repro.net.packet import Packet, ip_to_str
from repro.nf.monitor import Monitor


@pytest.fixture
def seum():
    nic = LiquidIONIC(mode=SE_UM, n_cores=2, xkphys_for_functions=False)
    kernel = LiquidIOKernel(nic)
    installed = nic.install_function(Monitor(), core_id=0)
    return nic, kernel, installed


class TestSyscallInterface:
    def test_only_seum_has_syscalls(self):
        with pytest.raises(ValueError):
            LiquidIOKernel(LiquidIONIC(mode=SE_S))

    def test_recv_send_roundtrip(self, seum):
        nic, kernel, installed = seum
        packet = Packet.make("1.1.1.1", "2.2.2.2", src_port=9, dst_port=10)
        nic.deliver_packet(installed.nf_id, packet)
        received = kernel.sys_recv_packet(installed.nf_id)
        assert received.five_tuple == packet.five_tuple
        wire = kernel.sys_send_packet(installed.nf_id, received)
        assert Packet.from_bytes(wire).five_tuple == packet.five_tuple
        assert kernel.syscall_count == 2

    def test_recv_empty_returns_none(self, seum):
        _, kernel, installed = seum
        assert kernel.sys_recv_packet(installed.nf_id) is None

    def test_functions_cannot_bypass_via_xkphys(self, seum):
        nic, _, _ = seum
        with pytest.raises(AccessFault):
            nic.cores[1].xkphys_read(0, 8)


class TestKernelTrustGap:
    def test_kernel_observes_all_traffic(self, seum):
        """Even a benign kernel sees every byte (no confidentiality)."""
        nic, kernel, installed = seum
        secret = Packet.make("1.1.1.1", "2.2.2.2", payload=b"tls-keys")
        nic.deliver_packet(installed.nf_id, secret)
        kernel.sys_recv_packet(installed.nf_id)
        assert any(b"tls-keys" in frame for frame in kernel.observed_frames)

    def test_compromised_kernel_rewrites_packets(self, seum):
        """"Functions cannot protect themselves from a buggy or
        malicious OS" (§3.2): a compromised kernel redirects traffic."""
        nic, kernel, installed = seum

        def redirect(frame: bytes) -> bytes:
            packet = Packet.from_bytes(frame)
            from repro.net.packet import ip_to_int

            packet.ip.dst_ip = ip_to_int("6.6.6.6")  # the attacker's sink
            return packet.to_bytes()

        kernel.compromise(redirect)
        nic.deliver_packet(
            installed.nf_id, Packet.make("1.1.1.1", "2.2.2.2")
        )
        received = kernel.sys_recv_packet(installed.nf_id)
        assert ip_to_str(received.ip.dst_ip) == "6.6.6.6"

    def test_snic_counterpart_blocks_the_same_tampering(self):
        """On S-NIC the management OS cannot read or rewrite queued
        packets: the ring lives in denylisted function memory."""
        from repro.core import IsolationViolation, NFConfig, NICOS, SNIC
        from repro.core.vpp import VPPConfig
        from repro.net.rules import MatchRule

        MB = 1024 * 1024
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=91)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="nf", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule()]))
        )
        snic.rx_port.wire_arrival(Packet.make("1.1.1.1", "2.2.2.2"))
        snic.process_ingress()
        addr, length = snic.record(vnic.nf_id).vpp.rx_ring.peek_descriptors()[0]
        with pytest.raises(IsolationViolation):
            nic_os.os_read(addr, length)  # cannot even observe
        with pytest.raises(IsolationViolation):
            nic_os.os_write(addr + 30, b"\x06\x06\x06\x06")  # or redirect
