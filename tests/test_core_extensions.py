"""Tests for the §4.8 extensions: function chaining, SecDCP-in-SNIC,
side-channel demonstrations, and the non-interference harness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.commodity.sidechannels import (
    bus_watermark_on_fcfs,
    bus_watermark_on_snic,
    cache_covert_channel,
)
from repro.core import NFConfig, NICOS, SNIC
from repro.core.cache_policy import NIC_OS_OWNER, SecDCPPolicy
from repro.core.chaining import ChainError, CrossVPPLink, FunctionChain
from repro.core.errors import TeardownError
from repro.core.noninterference import (
    AttackerProgram,
    check_noninterference,
    run_experiment,
)
from repro.core.vpp import VPPConfig
from repro.hw.cache import HARD, SOFT
from repro.net.packet import Packet, ip_to_str
from repro.net.rules import MatchRule, Prefix
from repro.nf import Firewall, Monitor, NAT
from repro.net.rules import RuleAction, RuleTable

MB = 1024 * 1024


@pytest.fixture
def chain_system():
    snic = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=61)
    nic_os = NICOS(snic)
    first = nic_os.NF_create(
        NFConfig(name="nat", core_ids=(0,), memory_bytes=4 * MB,
                 vpp=VPPConfig(rules=[MatchRule()]))
    )
    second = nic_os.NF_create(
        NFConfig(name="mon", core_ids=(1,), memory_bytes=4 * MB)
    )
    return snic, nic_os, first, second


class TestCrossVPPLink:
    def test_moves_frames(self, chain_system):
        snic, _, first, second = chain_system
        first.transmit(Packet.make("10.0.0.1", "8.8.8.8"))
        link = CrossVPPLink(snic, first.nf_id, second.nf_id)
        assert link.pump() == 1
        received = second.receive()
        assert received is not None
        assert ip_to_str(received.ip.dst_ip) == "8.8.8.8"
        assert link.stats.frames_moved == 1

    def test_copies_by_value(self, chain_system):
        """Downstream mutation must not affect the upstream copy: the
        link transfers bytes, not shared references."""
        snic, _, first, second = chain_system
        packet = Packet.make("10.0.0.1", "8.8.8.8", payload=b"orig")
        first.transmit(packet)
        CrossVPPLink(snic, first.nf_id, second.nf_id).pump()
        downstream = second.receive()
        downstream.payload = b"mut!"
        assert packet.payload == b"orig"

    def test_backpressure_drops(self, chain_system):
        snic, _, first, second = chain_system
        ring = snic.record(second.nf_id).vpp.rx_ring
        capacity = ring.capacity
        link = CrossVPPLink(snic, first.nf_id, second.nf_id)
        for i in range(capacity + 5):
            first.transmit(Packet.make("10.0.0.1", "8.8.8.8", src_port=i + 1))
            link.pump()
        # ring holds `capacity`; the rest were dropped, not queued.
        assert link.stats.drops_backpressure == 5

    def test_self_link_rejected(self, chain_system):
        snic, _, first, _ = chain_system
        with pytest.raises(ChainError):
            CrossVPPLink(snic, first.nf_id, first.nf_id)

    def test_dead_endpoint_rejected(self, chain_system):
        snic, nic_os, first, second = chain_system
        nic_os.NF_destroy(second.nf_id)
        with pytest.raises(TeardownError):
            CrossVPPLink(snic, first.nf_id, second.nf_id)

    def test_no_memory_mappings_created(self, chain_system):
        """Chaining must not weaken isolation: after pumping, neither
        core TLB reaches the other function's pages."""
        snic, _, first, second = chain_system
        first.transmit(Packet.make("10.0.0.1", "8.8.8.8"))
        CrossVPPLink(snic, first.nf_id, second.nf_id).pump()
        page_size = snic.memory.page_size
        first_pages = snic.cores[0].tlb.physical_pages(page_size)
        second_pages = snic.cores[1].tlb.physical_pages(page_size)
        assert first_pages.isdisjoint(second_pages)


class TestFunctionChain:
    def test_three_stage_chain(self):
        snic = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=62)
        nic_os = NICOS(snic)
        ids = []
        stages = {}
        nat = NAT("100.0.0.1")
        fw = Firewall(RuleTable())  # accept-all
        mon = Monitor()
        for name, nf in (("nat", nat), ("fw", fw), ("mon", mon)):
            vnic = nic_os.NF_create(
                NFConfig(
                    name=name, core_ids=(len(ids),), memory_bytes=4 * MB,
                    vpp=VPPConfig(rules=[MatchRule()] if name == "nat" else []),
                )
            )
            ids.append(vnic.nf_id)
            stages[vnic.nf_id] = nf
        chain = FunctionChain(snic, ids)
        snic.rx_port.wire_arrival(
            Packet.make("10.0.0.9", "8.8.8.8", src_port=7777, dst_port=80)
        )
        snic.process_ingress()
        emitted = chain.run(stages, rounds=4)
        assert emitted == 1
        # Every stage saw the packet; NAT rewrote it first.
        assert nat.translations == 1
        assert fw.stats.received == 1
        assert mon.distinct_flows == 1
        owner, wire_packet = snic.tx_port.transmitted[0]
        assert owner == ids[-1]
        assert ip_to_str(wire_packet.ip.src_ip) == "100.0.0.1"

    def test_chain_drops_propagate(self):
        snic = SNIC(n_cores=4, dram_bytes=256 * MB, key_seed=63)
        nic_os = NICOS(snic)
        fw_rules = RuleTable([MatchRule(action=RuleAction.DROP)])
        first = nic_os.NF_create(
            NFConfig(name="fw", core_ids=(0,), memory_bytes=4 * MB,
                     vpp=VPPConfig(rules=[MatchRule()]))
        )
        second = nic_os.NF_create(
            NFConfig(name="mon", core_ids=(1,), memory_bytes=4 * MB)
        )
        chain = FunctionChain(snic, [first.nf_id, second.nf_id])
        stages = {first.nf_id: Firewall(fw_rules), second.nf_id: Monitor()}
        snic.rx_port.wire_arrival(Packet.make("1.1.1.1", "2.2.2.2"))
        snic.process_ingress()
        emitted = chain.run(stages, rounds=3)
        assert emitted == 0
        assert stages[second.nf_id].distinct_flows == 0

    def test_chain_validation(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=64)
        nic_os = NICOS(snic)
        vnic = nic_os.NF_create(
            NFConfig(name="solo", core_ids=(0,), memory_bytes=4 * MB)
        )
        with pytest.raises(ChainError):
            FunctionChain(snic, [vnic.nf_id])
        with pytest.raises(ChainError):
            FunctionChain(snic, [vnic.nf_id, vnic.nf_id])


class TestSecDCPInSNIC:
    def test_snic_accepts_secdcp(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=65,
                    cache_policy=SecDCPPolicy())
        nic_os = NICOS(snic)
        a = nic_os.NF_create(NFConfig(name="a", core_ids=(0,), memory_bytes=4 * MB))
        allocation = snic.cache_rebalance()
        assert allocation[a.nf_id] >= 1
        assert allocation[NIC_OS_OWNER] >= 1

    def test_rebalance_donates_on_idle_os(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=66,
                    cache_policy=SecDCPPolicy())
        nic_os = NICOS(snic)
        a = nic_os.NF_create(NFConfig(name="a", core_ids=(0,), memory_bytes=4 * MB))
        before = snic.cache_rebalance()[a.nf_id]
        for _ in range(50):
            snic.l2.access(0, owner=NIC_OS_OWNER)  # OS hits -> low misses
        after = snic.cache_rebalance()[a.nf_id]
        assert after == before + 1

    def test_static_policy_rebalance_is_noop(self):
        snic = SNIC(n_cores=2, dram_bytes=128 * MB, key_seed=67)
        nic_os = NICOS(snic)
        a = nic_os.NF_create(NFConfig(name="a", core_ids=(0,), memory_bytes=4 * MB))
        first = snic.cache_rebalance()
        second = snic.cache_rebalance()
        assert first == second


class TestWatermarkChannel:
    def test_fcfs_carries_the_watermark(self):
        result = bus_watermark_on_fcfs(n_bits=48)
        assert result.channel_works

    def test_temporal_partitioning_erases_it(self):
        """§4.5: 'temporal partitioning eliminates watermark attacks
        that leverage packet flow interference'."""
        result = bus_watermark_on_snic(n_bits=48)
        assert result.channel_closed

    def test_accuracy_bounds(self):
        result = bus_watermark_on_fcfs(n_bits=16)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.bits == 16


class TestCacheCovertChannel:
    def test_shared_cache_carries_bits(self):
        assert cache_covert_channel("shared").channel_works

    def test_soft_partitioning_still_leaks(self):
        """The §4.2 criticism of Intel CAT, as a working covert channel."""
        assert cache_covert_channel(SOFT).channel_works

    def test_hard_partitioning_closes_it(self):
        assert cache_covert_channel(HARD).channel_closed

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            cache_covert_channel("mystery")


class TestNonInterference:
    def test_sweep_finds_no_violations(self):
        assert check_noninterference(n_trials=4, steps_per_trial=25) == []

    def test_single_program_clean(self):
        program = AttackerProgram.random(50, seed=123)
        assert run_experiment(program) == []

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_noninterference_property(self, seed):
        """Hypothesis drives random attacker programs; the victim's
        observations must be bit-identical with and without them."""
        program = AttackerProgram.random(20, seed=seed)
        assert run_experiment(program) == []

    def test_programs_are_deterministic(self):
        a = AttackerProgram.random(10, seed=5)
        b = AttackerProgram.random(10, seed=5)
        assert a.steps == b.steps
