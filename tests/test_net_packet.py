"""Tests for repro.net.packet: headers, checksums, round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    ETH_HEADER_LEN,
    EthernetHeader,
    FiveTuple,
    IPV4_HEADER_LEN,
    IPv4Header,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    TCPHeader,
    TCP_HEADER_LEN,
    UDPHeader,
    ip_to_int,
    ip_to_str,
    mac_to_bytes,
    mac_to_str,
    ones_complement_checksum,
)


class TestIPConversion:
    def test_roundtrip_basic(self):
        assert ip_to_str(ip_to_int("192.168.1.1")) == "192.168.1.1"

    def test_zero(self):
        assert ip_to_int("0.0.0.0") == 0

    def test_broadcast(self):
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_byte_order(self):
        assert ip_to_int("1.2.3.4") == 0x01020304

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")

    def test_rejects_out_of_range_octet(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.256")

    def test_str_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_str(1 << 32)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_property(self, value):
        assert ip_to_int(ip_to_str(value)) == value


class TestMACConversion:
    def test_roundtrip(self):
        assert mac_to_str(mac_to_bytes("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            mac_to_bytes("aa:bb:cc")

    def test_rejects_wrong_length_bytes(self):
        with pytest.raises(ValueError):
            mac_to_str(b"\x00\x01")


class TestChecksum:
    def test_known_value(self):
        # RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> 0x220d
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert ones_complement_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert ones_complement_checksum(b"\x01") == ones_complement_checksum(
            b"\x01\x00"
        )

    def test_verify_packed_header(self):
        header = IPv4Header(src_ip=ip_to_int("1.1.1.1"), dst_ip=ip_to_int("2.2.2.2"))
        raw = header.pack()
        assert ones_complement_checksum(raw) == 0


class TestFiveTuple:
    def test_reversed(self):
        ft = FiveTuple(1, 2, PROTO_TCP, 10, 20)
        back = ft.reversed()
        assert back.src_ip == 2 and back.dst_ip == 1
        assert back.src_port == 20 and back.dst_port == 10
        assert back.reversed() == ft

    def test_hashable_and_ordered(self):
        a = FiveTuple(1, 2, 6, 3, 4)
        b = FiveTuple(1, 2, 6, 3, 5)
        assert a < b
        assert len({a, b, FiveTuple(1, 2, 6, 3, 4)}) == 2

    def test_str_contains_ips(self):
        ft = FiveTuple(ip_to_int("1.2.3.4"), ip_to_int("5.6.7.8"), 6, 1, 2)
        assert "1.2.3.4" in str(ft) and "5.6.7.8" in str(ft)


class TestHeaders:
    def test_ethernet_roundtrip(self):
        eth = EthernetHeader(dst_mac=b"\x01" * 6, src_mac=b"\x02" * 6)
        assert EthernetHeader.unpack(eth.pack()) == eth

    def test_ipv4_roundtrip(self):
        ip = IPv4Header(
            src_ip=ip_to_int("10.0.0.1"),
            dst_ip=ip_to_int("10.0.0.2"),
            proto=PROTO_UDP,
            ttl=17,
            total_length=1234,
        )
        parsed = IPv4Header.unpack(ip.pack())
        assert parsed.src_ip == ip.src_ip
        assert parsed.ttl == 17
        assert parsed.total_length == 1234

    def test_ipv4_rejects_non_v4(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = 0x65  # version 6
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))

    def test_tcp_roundtrip(self):
        tcp = TCPHeader(src_port=80, dst_port=443, seq=7, ack=9, flags=0x12)
        parsed = TCPHeader.unpack(tcp.pack())
        assert parsed == tcp

    def test_udp_roundtrip(self):
        udp = UDPHeader(src_port=53, dst_port=5353, length=100)
        assert UDPHeader.unpack(udp.pack()) == udp


class TestPacket:
    def test_make_tcp(self):
        p = Packet.make("1.1.1.1", "2.2.2.2", src_port=1, dst_port=2)
        assert isinstance(p.l4, TCPHeader)
        assert p.five_tuple == FiveTuple(
            ip_to_int("1.1.1.1"), ip_to_int("2.2.2.2"), PROTO_TCP, 1, 2
        )

    def test_make_udp_sets_length(self):
        p = Packet.make("1.1.1.1", "2.2.2.2", proto=PROTO_UDP, payload=b"x" * 10)
        assert p.l4.length == 8 + 10

    def test_wire_roundtrip(self):
        p = Packet.make(
            "10.1.2.3", "10.4.5.6", src_port=1000, dst_port=2000, payload=b"hello"
        )
        q = Packet.from_bytes(p.to_bytes())
        assert q.five_tuple == p.five_tuple
        assert q.payload == b"hello"
        assert q.to_bytes() == p.to_bytes()

    def test_total_length_consistent(self):
        p = Packet.make("1.1.1.1", "2.2.2.2", payload=b"x" * 33)
        p.to_bytes()
        assert p.ip.total_length == IPV4_HEADER_LEN + TCP_HEADER_LEN + 33

    def test_len_matches_wire(self):
        p = Packet.make("1.1.1.1", "2.2.2.2", payload=b"abc")
        assert len(p) == len(p.to_bytes())

    def test_copy_is_deep(self):
        p = Packet.make("1.1.1.1", "2.2.2.2", src_port=5, dst_port=6)
        p.vni = 42
        q = p.copy()
        q.ip.src_ip = 0
        assert p.ip.src_ip == ip_to_int("1.1.1.1")
        assert q.vni == 42

    def test_from_bytes_too_short(self):
        with pytest.raises(ValueError):
            Packet.from_bytes(b"\x00" * 10)

    def test_from_bytes_bad_ethertype(self):
        raw = bytearray(Packet.make("1.1.1.1", "2.2.2.2").to_bytes())
        raw[12:14] = b"\x86\xdd"  # IPv6 ethertype
        with pytest.raises(ValueError):
            Packet.from_bytes(bytes(raw))

    def test_mutation_changes_wire(self):
        p = Packet.make("1.1.1.1", "2.2.2.2", src_port=1, dst_port=2)
        original = p.to_bytes()
        p.l4.src_port = 999
        assert p.to_bytes() != original

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=65535),
        st.binary(max_size=200),
    )
    def test_roundtrip_property(self, src, dst, sport, dport, payload):
        from repro.net.packet import ip_to_str as i2s

        p = Packet.make(
            i2s(src), i2s(dst), src_port=sport, dst_port=dport, payload=payload
        )
        q = Packet.from_bytes(p.to_bytes())
        assert q.five_tuple == p.five_tuple
        assert q.payload == payload
