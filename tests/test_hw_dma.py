"""Tests for the multi-bank DMA controller (§4.2)."""

import pytest

from repro.hw.dma import DMABank, DMAController, DMAWindow
from repro.hw.memory import AccessFault, HostMemory, PhysicalMemory


@pytest.fixture
def setup():
    nic = PhysicalMemory(1024 * 1024, page_size=4096)
    host = HostMemory(1024 * 1024, page_size=4096)
    bank = DMABank(0)
    bank.configure(
        owner=1,
        nic_window=DMAWindow(base=0x10000, size=0x10000),
        host_window=DMAWindow(base=0x40000, size=0x10000),
    )
    return nic, host, bank


class TestWindow:
    def test_contains(self):
        window = DMAWindow(base=100, size=100)
        assert window.contains(100, 100)
        assert window.contains(150, 50)
        assert not window.contains(150, 51)
        assert not window.contains(99, 1)


class TestTransfers:
    def test_host_to_nic(self, setup):
        nic, host, bank = setup
        host.write(0x40000, b"bootstrap-image")
        bank.to_nic(host, nic, host_addr=0x40000, nic_addr=0x10000, n_bytes=15)
        assert nic.read(0x10000, 15) == b"bootstrap-image"
        assert bank.bytes_moved == 15

    def test_nic_to_host(self, setup):
        nic, host, bank = setup
        nic.write(0x10000, b"results")
        bank.to_host(nic, host, nic_addr=0x10000, host_addr=0x40000, n_bytes=7)
        assert host.read(0x40000, 7) == b"results"

    def test_nic_window_enforced(self, setup):
        nic, host, bank = setup
        with pytest.raises(AccessFault):
            bank.to_nic(host, nic, host_addr=0x40000, nic_addr=0x0, n_bytes=8)

    def test_host_window_enforced(self, setup):
        """The host-sanctioned region (§4.2): the function cannot DMA
        into arbitrary host memory."""
        nic, host, bank = setup
        with pytest.raises(AccessFault):
            bank.to_host(nic, host, nic_addr=0x10000, host_addr=0x0, n_bytes=8)

    def test_straddling_rejected(self, setup):
        nic, host, bank = setup
        with pytest.raises(AccessFault):
            bank.to_nic(
                host, nic, host_addr=0x4FF00, nic_addr=0x10000, n_bytes=0x200
            )

    def test_unconfigured_bank_rejects(self):
        bank = DMABank(1)
        nic = PhysicalMemory(8192, page_size=4096)
        host = HostMemory(8192, page_size=4096)
        with pytest.raises(AccessFault):
            bank.to_nic(host, nic, 0, 0, 1)


class TestBankLifecycle:
    def test_lock_prevents_reconfigure(self, setup):
        _, _, bank = setup
        bank.lock()
        with pytest.raises(AccessFault):
            bank.configure(
                owner=2,
                nic_window=DMAWindow(0, 10),
                host_window=DMAWindow(0, 10),
            )

    def test_release_clears(self, setup):
        _, _, bank = setup
        bank.lock()
        bank.release()
        assert bank.owner is None and bank.nic_window is None


class TestController:
    def test_bank_per_core(self):
        controller = DMAController(n_banks=4)
        assert controller.bank_for_core(3).bank_id == 3
        with pytest.raises(AccessFault):
            controller.bank_for_core(4)

    def test_release_owner(self):
        controller = DMAController(n_banks=4)
        for i in (0, 2):
            controller.banks[i].configure(
                owner=9,
                nic_window=DMAWindow(0, 10),
                host_window=DMAWindow(0, 10),
            )
        assert controller.release_owner(9) == 2
        assert controller.banks_for_owner(9) == []

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            DMAController(0)
