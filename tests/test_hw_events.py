"""Tests for the discrete-event kernel."""

import pytest

from repro.hw.events import Simulator


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now_ns == 0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, lambda: fired.append("c"))
        sim.schedule(10, lambda: fired.append("a"))
        sim.schedule(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_is_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(5, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(42, lambda: None)
        sim.run()
        assert sim.now_ns == 42

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(1))
        sim.schedule(100, lambda: fired.append(2))
        sim.run(until_ns=50)
        assert fired == [1]
        assert sim.now_ns == 50
        assert sim.pending == 1

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_rescheduling_from_callback(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now_ns)
            if len(fired) < 3:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        sim.run()
        assert fired == [10, 20, 30]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(50, lambda: fired.append(sim.now_ns))
        sim.run()
        assert fired == [50]

    def test_advance_window(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(1))
        sim.schedule(30, lambda: fired.append(2))
        sim.advance(15)
        assert fired == [1] and sim.now_ns == 15

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        executed = sim.run(max_events=100)
        assert executed == 100

    def test_step_empty_returns_false(self):
        assert Simulator().step() is False
