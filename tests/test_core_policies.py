"""Tests for cache policies, VPP details, and the timing model."""

import pytest

from repro.core.cache_policy import (
    NIC_OS_OWNER,
    SecDCPPolicy,
    StaticPartitionPolicy,
)
from repro.core.timing import DEFAULT_TIMING, InstructionTimingModel, MB
from repro.core.vpp import (
    PacketSchedulerUnit,
    SchedulerAlgorithm,
    VPPConfig,
)
from repro.hw.cache import Cache, CacheConfig, HARD
from repro.hw.memory import AccessFault


def cache(ways=8):
    return Cache(CacheConfig(size_bytes=ways * 64 * 64, line_bytes=64, ways=ways))


class TestStaticPolicy:
    def test_equal_shares(self):
        c = cache(ways=8)
        allocation = StaticPartitionPolicy(os_ways=2).apply(c, [1, 2, 3])
        assert allocation[NIC_OS_OWNER] == 2
        assert allocation[1] == allocation[2] == allocation[3] == 2
        assert c.mode == HARD

    def test_no_functions_gives_os_only(self):
        c = cache()
        allocation = StaticPartitionPolicy().apply(c, [])
        assert allocation == {NIC_OS_OWNER: 1}

    def test_too_many_functions_rejected(self):
        c = cache(ways=4)
        with pytest.raises(ValueError):
            StaticPartitionPolicy(os_ways=1).apply(c, [1, 2, 3, 4])


class TestSecDCP:
    def test_initial_minimums(self):
        c = cache(ways=8)
        policy = SecDCPPolicy(min_ways=1)
        allocation = policy.initial(c, [1, 2])
        assert allocation[1] == allocation[2] == 1
        assert allocation[NIC_OS_OWNER] == 6

    def test_donates_when_os_idle(self):
        c = cache(ways=8)
        policy = SecDCPPolicy()
        allocation = policy.initial(c, [1, 2])
        # NIC OS hits everything -> low miss rate -> donate.
        c.access(0, owner=NIC_OS_OWNER)
        for _ in range(50):
            c.access(0, owner=NIC_OS_OWNER)
        updated = policy.rebalance(c, allocation)
        assert updated[NIC_OS_OWNER] == allocation[NIC_OS_OWNER] - 1
        assert sum(updated.values()) == sum(allocation.values())

    def test_reclaims_when_os_thrashing(self):
        c = cache(ways=8)
        policy = SecDCPPolicy()
        allocation = policy.initial(c, [1, 2])
        allocation = {NIC_OS_OWNER: 2, 1: 3, 2: 3}
        c.set_partitions(allocation, mode=HARD)
        for i in range(200):
            c.access(i * 64 * 1024, owner=NIC_OS_OWNER)  # all misses
        updated = policy.rebalance(c, allocation)
        assert updated[NIC_OS_OWNER] == 3

    def test_never_dips_below_function_minimum(self):
        c = cache(ways=4)
        policy = SecDCPPolicy(min_ways=1)
        allocation = {NIC_OS_OWNER: 2, 1: 1, 2: 1}
        c.set_partitions(allocation, mode=HARD)
        for i in range(200):
            c.access(i * 64 * 1024, owner=NIC_OS_OWNER)
        updated = policy.rebalance(c, allocation)
        assert updated[1] >= 1 and updated[2] >= 1

    def test_decisions_ignore_function_behaviour(self):
        """The one-way information flow: two systems whose *functions*
        behave completely differently — but whose NIC OS behaves
        identically — must make identical rebalancing decisions."""
        policy = SecDCPPolicy()
        outcomes = []
        for function_traffic in (0, 500):
            c = cache(ways=8)
            allocation = policy.initial(c, [1, 2])
            for i in range(function_traffic):
                c.access(i * 64 * 997, owner=1)  # wild function-1 traffic
            for _ in range(50):
                c.access(0, owner=NIC_OS_OWNER)  # identical OS behaviour
            outcomes.append(policy.rebalance(c, allocation))
        assert outcomes[0] == outcomes[1]

    def test_insufficient_ways_rejected(self):
        c = cache(ways=2)
        with pytest.raises(ValueError):
            SecDCPPolicy(min_ways=1, os_min_ways=1).initial(c, [1, 2])


class TestSchedulerUnit:
    def test_capacity_is_three(self):
        unit = PacketSchedulerUnit(owner=1, algorithm=SchedulerAlgorithm.FIFO)
        for base in (0, 100, 200):
            unit.install_window(base, 50)
        with pytest.raises(AccessFault):
            unit.install_window(300, 50)

    def test_lock_blocks_install(self):
        unit = PacketSchedulerUnit(owner=1, algorithm=SchedulerAlgorithm.FIFO)
        unit.install_window(0, 50)
        unit.lock()
        with pytest.raises(AccessFault):
            unit.install_window(100, 50)

    def test_check_dma(self):
        unit = PacketSchedulerUnit(owner=1, algorithm=SchedulerAlgorithm.FIFO)
        unit.install_window(100, 50)
        unit.lock()
        unit.check_dma(100, 50)
        unit.check_dma(120, 10)
        with pytest.raises(AccessFault):
            unit.check_dma(90, 20)
        with pytest.raises(AccessFault):
            unit.check_dma(140, 20)

    def test_clear_unlocks(self):
        unit = PacketSchedulerUnit(owner=1, algorithm=SchedulerAlgorithm.FIFO)
        unit.install_window(0, 50)
        unit.lock()
        unit.clear()
        assert not unit.locked and unit.n_entries == 0


class TestVPPConfig:
    def test_rules_blob_deterministic(self):
        from repro.net.rules import MatchRule, Prefix

        rules = [MatchRule(dst_prefix=Prefix.parse("1.1.1.1/32"))]
        assert VPPConfig(rules=rules).rules_blob() == VPPConfig(rules=rules).rules_blob()

    def test_rules_blob_distinguishes_rules(self):
        from repro.net.rules import MatchRule, Prefix

        a = VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("1.1.1.1/32"))])
        b = VPPConfig(rules=[MatchRule(dst_prefix=Prefix.parse("1.1.1.2/32"))])
        assert a.rules_blob() != b.rules_blob()


class TestTimingModel:
    """Figure 6 / Appendix C consistency checks."""

    def test_lb_launch_latency(self):
        # LB: 13.8 MB -> SHA digesting ~29.6 ms (paper: 29.62 ms).
        breakdown = DEFAULT_TIMING.nf_launch_breakdown_ms(int(13.8 * MB))
        assert breakdown["sha256_digesting"] == pytest.approx(29.62, rel=0.02)

    def test_monitor_launch_latency(self):
        # Monitor: 360.54 MB -> ~763.5 ms (paper: 763.52 ms).
        breakdown = DEFAULT_TIMING.nf_launch_breakdown_ms(int(360.54 * MB))
        assert breakdown["sha256_digesting"] == pytest.approx(763.52, rel=0.02)

    def test_fixed_costs(self):
        breakdown = DEFAULT_TIMING.nf_launch_breakdown_ms(MB)
        assert breakdown["tlb_setup_config_read"] == pytest.approx(0.0196)
        assert breakdown["denylisting"] == pytest.approx(0.0044)

    def test_destroy_dominated_by_scrubbing(self):
        # Paper: "memory scrubbing takes 99.99% of the time".
        breakdown = DEFAULT_TIMING.nf_destroy_breakdown_ms(int(360.54 * MB))
        total = sum(breakdown.values())
        assert breakdown["memory_scrubbing"] / total > 0.999

    def test_destroy_range_matches_paper(self):
        # Paper: nf_destroy took 2.11–54.23 ms across the six NFs.
        lb = DEFAULT_TIMING.nf_destroy_ms(int(13.8 * MB))
        mon = DEFAULT_TIMING.nf_destroy_ms(int(360.54 * MB))
        assert lb == pytest.approx(2.11, rel=0.05)
        assert mon == pytest.approx(54.23, rel=0.02)

    def test_attest_size_independent(self):
        # Paper: nf_attest ~5.6 ms, independent of function size.
        assert DEFAULT_TIMING.nf_attest_ms() == pytest.approx(5.6, rel=0.01)

    def test_attest_breakdown(self):
        breakdown = DEFAULT_TIMING.nf_attest_breakdown_ms()
        assert breakdown["rsa_signing"] == pytest.approx(5.596)
        assert breakdown["sha256_digesting"] == pytest.approx(0.004)

    def test_launch_scales_with_memory(self):
        small = DEFAULT_TIMING.nf_launch_ms(MB)
        large = DEFAULT_TIMING.nf_launch_ms(100 * MB)
        assert large > small * 50
