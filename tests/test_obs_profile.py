"""Tests for repro.obs.profile — the deterministic sim-time profiler.

Covers span-nesting attribution (self vs cumulative), collapsed-stack
export, coverage accounting, kernel wall-time hooks, and the end-to-end
co-tenancy profile used by ``python -m repro bench --profile``.
"""

from __future__ import annotations

import pytest

from repro.hw.events import Simulator, kernel_stats, reset_kernel_stats
from repro.obs.profile import (
    FrameStat,
    Profiler,
    layer_frame,
    profile_cotenancy_scenario,
    tenant_frame,
)
from repro.obs.tracer import Tracer


def make_span(tracer: Tracer, name: str, ts: float, dur: float, *,
              cat: str = "core", tenant: int = 1, track: str = "c0") -> None:
    tracer.complete(name, ts_ns=ts, dur_ns=dur, cat=cat, tenant=tenant,
                    track=track)


@pytest.fixture
def tracer():
    t = Tracer(enabled=True)
    yield t
    t.disable()


class TestFrames:
    def test_layer_frame(self):
        assert layer_frame("core") == "layer:core"
        assert layer_frame("") == "layer:unknown"

    def test_tenant_frame(self):
        assert tenant_frame(3) == "tenant:3"
        assert tenant_frame(None) == "tenant:infra"


class TestSpanAttribution:
    def test_flat_span_is_all_self_time(self, tracer):
        make_span(tracer, "rx", ts=0, dur=100)
        prof = Profiler()
        assert prof.ingest(tracer) == 1
        stats = {s.leaf: s for s in prof.frame_stats()}
        assert stats["rx"].self_ns == pytest.approx(100)
        assert stats["rx"].cumulative_ns == pytest.approx(100)

    def test_nested_span_subtracts_child_from_parent_self(self, tracer):
        make_span(tracer, "parent", ts=0, dur=100)
        make_span(tracer, "child", ts=20, dur=30)
        prof = Profiler()
        prof.ingest(tracer)
        stats = {s.leaf: s for s in prof.frame_stats()}
        assert stats["parent"].self_ns == pytest.approx(70)
        assert stats["parent"].cumulative_ns == pytest.approx(100)
        assert stats["child"].self_ns == pytest.approx(30)
        # The child's stack hangs under the parent's frames.
        assert stats["child"].stack[-2:] == ("parent", "child")

    def test_sibling_spans_do_not_nest(self, tracer):
        make_span(tracer, "a", ts=0, dur=40)
        make_span(tracer, "b", ts=50, dur=40)
        prof = Profiler()
        prof.ingest(tracer)
        stats = {s.leaf: s for s in prof.frame_stats()}
        assert stats["a"].stack[-1] == "a"
        assert stats["b"].stack[-1] == "b"
        assert "a" not in stats["b"].stack

    def test_lanes_are_independent(self, tracer):
        # Same timestamps, different (tenant, track) lanes: no nesting.
        make_span(tracer, "x", ts=0, dur=100, tenant=1, track="c0")
        make_span(tracer, "y", ts=10, dur=50, tenant=2, track="c1")
        prof = Profiler()
        prof.ingest(tracer)
        stats = {s.leaf: s for s in prof.frame_stats()}
        assert stats["x"].self_ns == pytest.approx(100)
        assert stats["y"].self_ns == pytest.approx(50)
        assert stats["y"].stack[0] == "layer:core"
        assert "x" not in stats["y"].stack

    def test_stack_root_is_layer_then_tenant(self, tracer):
        make_span(tracer, "op", ts=0, dur=10, cat="dma", tenant=7)
        prof = Profiler()
        prof.ingest(tracer)
        (stat,) = prof.frame_stats()
        assert stat.stack[:2] == ("layer:dma", "tenant:7")

    def test_coverage_full_when_all_lanes_named(self, tracer):
        make_span(tracer, "op", ts=0, dur=100, cat="core", tenant=1)
        prof = Profiler()
        prof.ingest(tracer)
        assert prof.coverage() == pytest.approx(1.0)

    def test_coverage_drops_for_unnamed_lane(self, tracer):
        make_span(tracer, "named", ts=0, dur=75, cat="core", tenant=1)
        tracer.complete("anon", ts_ns=0, dur_ns=25, cat="", tenant=None,
                        track="?")
        prof = Profiler()
        prof.ingest(tracer)
        assert prof.coverage() == pytest.approx(0.75)

    def test_nonspan_events_are_ignored(self, tracer):
        tracer.instant("marker", ts_ns=5, cat="core", tenant=1)
        tracer.counter_sample("occupancy", 3.0, ts_ns=5, tenant=1)
        prof = Profiler()
        assert prof.ingest(tracer) == 0
        assert prof.frame_stats() == []
        assert prof.total_sim_ns == 0.0


class TestCollapsedExport:
    def test_collapsed_line_format(self, tracer):
        make_span(tracer, "parent", ts=0, dur=100)
        make_span(tracer, "child", ts=0, dur=40)
        prof = Profiler()
        prof.ingest(tracer)
        lines = prof.collapsed()
        by_leaf = {line.rsplit(" ", 1)[0].split(";")[-1]: line
                   for line in lines}
        stack, value = by_leaf["child"].rsplit(" ", 1)
        assert stack == "layer:core;tenant:1;parent;child"
        assert int(value) == 40
        assert by_leaf["parent"].rsplit(" ", 1)[1] == "60"

    def test_zero_self_frames_are_omitted(self, tracer):
        make_span(tracer, "parent", ts=0, dur=50)
        make_span(tracer, "child", ts=0, dur=50)  # consumes all of parent
        prof = Profiler()
        prof.ingest(tracer)
        leaves = [line.rsplit(" ", 1)[0].split(";")[-1]
                  for line in prof.collapsed()]
        assert leaves == ["child"]

    def test_write_collapsed(self, tracer, tmp_path):
        make_span(tracer, "op", ts=0, dur=10)
        prof = Profiler()
        prof.ingest(tracer)
        path = prof.write_collapsed(str(tmp_path / "prof.collapsed"))
        text = (tmp_path / "prof.collapsed").read_text()
        assert path.endswith("prof.collapsed")
        assert text == "layer:core;tenant:1;op 10\n"

    def test_cumulative_by_frame_merges_across_stacks(self, tracer):
        make_span(tracer, "op", ts=0, dur=60, tenant=1)
        make_span(tracer, "op", ts=0, dur=40, tenant=2, track="c1")
        prof = Profiler()
        prof.ingest(tracer)
        cum = prof.cumulative_by_frame()
        assert cum["op"] == pytest.approx(100)
        assert cum["tenant:1"] == pytest.approx(60)
        assert cum["layer:core"] == pytest.approx(100)


class TestKernelHook:
    def test_attach_detach_and_wall_attribution(self):
        reset_kernel_stats()
        sim = Simulator()
        prof = Profiler()
        prof.attach_kernel(sim)

        def tick():
            pass

        sim.schedule(10, tick)
        sim.schedule(25, tick)
        sim.run()
        prof.detach_kernel(sim)

        rows = prof.host_report()
        assert len(rows) == 1
        row = rows[0]
        assert "tick" in row["operation"]
        assert row["events"] == 2
        assert row["sim_ns"] == 25
        assert row["host_ns"] > 0
        assert kernel_stats()["events_executed"] == 2

    def test_detached_kernel_records_nothing_more(self):
        sim = Simulator()
        prof = Profiler()
        prof.attach_kernel(sim)
        prof.detach_kernel(sim)
        sim.schedule(5, lambda: None)
        sim.run()
        assert prof.host_report() == []

    def test_measure_brackets_wall_time(self):
        prof = Profiler()
        with prof.measure():
            sum(range(1000))
        assert prof.wall_ns > 0


class TestReportAndSummary:
    def test_report_sorted_by_self_time(self, tracer):
        make_span(tracer, "big", ts=0, dur=90)
        make_span(tracer, "small", ts=100, dur=10)
        prof = Profiler()
        prof.ingest(tracer)
        rows = prof.report(top=5)
        assert rows[0]["leaf"] == "big"
        assert rows[0]["self_ns"] == pytest.approx(90)
        assert rows[0]["self_pct"] == pytest.approx(90.0)

    def test_format_report_mentions_coverage(self, tracer):
        make_span(tracer, "op", ts=0, dur=10)
        prof = Profiler()
        prof.ingest(tracer)
        text = prof.format_report()
        assert "attributed to named" in text
        assert "op" in text

    def test_summary_fields(self, tracer):
        make_span(tracer, "op", ts=0, dur=10)
        prof = Profiler()
        prof.ingest(tracer)
        s = prof.summary()
        assert s["stacks"] == 1
        assert s["coverage"] == pytest.approx(1.0)
        assert s["total_sim_ns"] == pytest.approx(10)


class TestCotenancyProfile:
    def test_profile_cotenancy_meets_coverage_floor(self, tmp_path):
        out = tmp_path / "cotenancy.collapsed"
        result = profile_cotenancy_scenario(collapsed_path=str(out),
                                            n_packets=16)
        prof = result["profiler"]
        # Acceptance bar: >=95% of simulated time lands on named
        # (layer, tenant) frames.
        assert prof.coverage() >= 0.95
        assert prof.total_sim_ns > 0
        assert out.exists() and out.read_text().strip()
        # Both tenants and several layers appear in the profile.
        cum = prof.cumulative_by_frame()
        tenants = [f for f in cum if f.startswith("tenant:")]
        layers = [f for f in cum if f.startswith("layer:")]
        assert len(tenants) >= 2
        assert len(layers) >= 3
        assert result["report"]
