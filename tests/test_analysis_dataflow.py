"""Whole-program dataflow analysis: graph, taint (SNIC009), escape
analysis (SNIC010), the shard-safety manifest, and the baseline.

Two fixture sets drive these tests: the seeded violation tree under
``tests/fixtures/dataflow/`` (known flows, known shard-unsafe state)
and the real ``src/repro`` tree, which must run clean against the
committed ``DATAFLOW_BASELINE.json`` — with every baseline entry still
matching a live finding (no stale entries) and carrying a real
justification.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.dataflow.cli import (
    apply_baseline,
    default_baseline_path,
    load_baseline,
    run_dataflow,
    run_program_rules,
    write_baseline,
)
from repro.analysis.dataflow.escape import EscapeAnalysis
from repro.analysis.dataflow.graph import (
    MODULE_BODY,
    CallSite,
    ProgramGraph,
)
from repro.analysis.dataflow.manifest import (
    SCHEMA,
    build_manifest,
    format_manifest,
    load_manifest,
    write_manifest,
)
from repro.analysis.dataflow.rules import analyze
from repro.analysis.dataflow.taint import SOURCE_SPECS, TaintAnalysis
from repro.analysis.lint import load_modules, source_root

REPO_ROOT = Path(__file__).parent.parent
FIXTURE_DIR = Path(__file__).parent / "fixtures" / "dataflow"


@pytest.fixture(scope="module")
def fixture_graph() -> ProgramGraph:
    return ProgramGraph.build(load_modules([FIXTURE_DIR]))


@pytest.fixture(scope="module")
def repo_analysis():
    """One shared full-repo analysis (graph + flows + state)."""
    return analyze(load_modules([source_root()]))


# ----------------------------------------------------------------------
# Program graph
# ----------------------------------------------------------------------

class TestProgramGraph:
    def test_functions_indexed_with_qualnames(self, fixture_graph):
        assert "pipeline.rx_frame" in fixture_graph.functions
        assert "pipeline.steal_and_forward" in fixture_graph.functions
        assert "state.remember" in fixture_graph.functions

    def test_every_module_gets_a_body_pseudo_function(self, fixture_graph):
        for modname in fixture_graph.modules:
            assert f"{modname}.{MODULE_BODY}" in fixture_graph.functions

    def test_local_calls_resolve_precisely(self, fixture_graph):
        sites = fixture_graph.sites_in("pipeline.steal_and_forward")
        by_callee = {s.name: s for s in sites}
        assert by_callee["rx_frame"].resolution == "local"
        assert by_callee["rx_frame"].callees == ("pipeline.rx_frame",)
        assert by_callee["parse"].resolution == "local"

    def test_from_import_binds_names_across_modules(self, fixture_graph):
        names = fixture_graph.imported_names["pipeline"]
        assert names["FLOW_TABLE"] == ("state", "FLOW_TABLE")
        assert fixture_graph.importers_of("state") == ["pipeline"]

    def test_unresolvable_receiver_falls_back_by_name(self, fixture_graph):
        # egress.deliver(...) — "egress" is a parameter, so the call can
        # only resolve by bare name; here nothing defines deliver().
        sites = fixture_graph.sites_in("pipeline.steal_and_forward")
        deliver = next(s for s in sites if s.name == "deliver")
        assert deliver.resolution == "unresolved"
        assert deliver.callees == ()


# ----------------------------------------------------------------------
# Taint analysis (SNIC009)
# ----------------------------------------------------------------------

class TestTaint:
    def test_seeded_flow_is_found(self, fixture_graph):
        flows = TaintAnalysis(fixture_graph).run()
        assert len(flows) == 1
        flow = flows[0]
        assert flow.chain[0] == "pipeline.steal_and_forward"
        assert flow.chain[-1] == "pipeline.rx_frame"
        assert flow.source_site.name == "read"
        assert flow.sink_site.name == "deliver"

    def test_mediated_path_is_clean(self, fixture_graph):
        analysis = TaintAnalysis(fixture_graph)
        analysis.run()
        # mediated_forward's only source is behind the os_read stub,
        # which mediates by name even with a stub body.
        assert "pipeline.mediated_forward" not in analysis.taint_witness
        assert analysis._is_mediated_function("pipeline.os_read")

    def test_byname_resolution_never_satisfies_qualname_specs(self):
        # owners.pop() resolves by-name to every analysed pop(),
        # including PacketRing.pop — that must not make it a source.
        site = CallSite(
            caller="m.f", modname="m", name="pop", receiver="owners",
            lineno=1, col=1, node=None,
            callees=("repro.hw.packet_io.PacketRing.pop",),
            resolution="by-name")
        assert all(not spec.matches(site) for spec in SOURCE_SPECS)
        precise = CallSite(
            caller="m.f", modname="m", name="pop", receiver="owners",
            lineno=1, col=1, node=None,
            callees=("repro.hw.packet_io.PacketRing.pop",),
            resolution="import")
        assert any(spec.matches(precise) for spec in SOURCE_SPECS)

    def test_generic_byname_edges_do_not_propagate(self, tmp_path):
        # caller() calls owners.pop(); by-name that aliases the tainted
        # pop() below, but builtin-container names never carry taint.
        (tmp_path / "ringmod.py").write_text(
            "def pop(ring):\n"
            "    return ring.pop()\n"
            "\n"
            "def caller(owners, egress):\n"
            "    owners.pop()\n"
            "    egress.deliver(b'x')\n")
        graph = ProgramGraph.build(load_modules([tmp_path]))
        analysis = TaintAnalysis(graph)
        flows = analysis.run()
        assert "ringmod.pop" in analysis.taint_witness
        assert "ringmod.caller" not in analysis.taint_witness
        assert flows == []

    def test_repo_flows_all_baselined(self, repo_analysis):
        keys = {(f"{fl.chain[0]}->{fl.sink_site.name}"
                 f"<-{fl.chain[-1]}:{fl.source_site.name}")
                for fl in repo_analysis["flows"]}
        baseline = load_baseline(default_baseline_path())
        unlisted = {k for k in keys if ("SNIC009", k) not in baseline}
        assert not unlisted, f"new unmediated flows: {sorted(unlisted)}"


# ----------------------------------------------------------------------
# Escape analysis (SNIC010)
# ----------------------------------------------------------------------

class TestEscape:
    @pytest.fixture(scope="class")
    def infos(self, fixture_graph):
        return {i.qualname: i for i in EscapeAnalysis(fixture_graph).run()}

    def test_cross_module_subscript_store_is_unsafe(self, infos):
        info = infos["state.FLOW_TABLE"]
        assert not info.shard_safe
        assert info.aliases == ["pipeline"]
        assert any("pipeline:" in r and "subscript store" in r
                   for r in info.reasons)
        assert any("del on element" in r for r in info.reasons)

    def test_function_scope_mutator_is_unsafe(self, infos):
        info = infos["state.SEEN"]
        assert not info.shard_safe
        assert any("mutator .add() call" in r for r in info.reasons)

    def test_import_time_only_mutation_is_safe(self, infos):
        info = infos["state.DEFAULTS"]
        assert info.mutable and info.shard_safe
        assert info.reasons == ["mutable, but only written at import time"]

    def test_immutable_binding_is_safe(self, infos):
        info = infos["state.RULE_IDS"]
        assert not info.mutable and info.shard_safe

    def test_singleton_factory_handle_is_unsafe(self, tmp_path):
        (tmp_path / "single.py").write_text(
            "_TRACER = get_tracer()\n")
        graph = ProgramGraph.build(load_modules([tmp_path]))
        (info,) = EscapeAnalysis(graph).run()
        assert not info.shard_safe
        assert "singleton factory" in info.reasons[0]


# ----------------------------------------------------------------------
# Shard-safety manifest
# ----------------------------------------------------------------------

class TestManifest:
    def test_fixture_manifest_shape(self, fixture_graph):
        infos = EscapeAnalysis(fixture_graph).run()
        manifest = build_manifest(fixture_graph, infos)
        assert manifest["schema"] == SCHEMA
        assert set(manifest["shard_unsafe"]) == {"state.FLOW_TABLE",
                                                 "state.SEEN"}
        state = manifest["modules"]["state"]
        names = {m["name"]: m for m in state["mutables"]}
        # Immutables are dropped from the inventory; mutables keep
        # their classification either way.
        assert "RULE_IDS" not in names
        assert names["DEFAULTS"]["classification"] == "shard-safe"
        assert names["FLOW_TABLE"]["classification"] == "shard-unsafe"
        assert state["imported_by"] == ["pipeline"]

    def test_manifest_is_deterministic(self, fixture_graph):
        infos = EscapeAnalysis(fixture_graph).run()
        first = format_manifest(build_manifest(fixture_graph, infos))
        second = format_manifest(build_manifest(
            fixture_graph, EscapeAnalysis(fixture_graph).run()))
        assert first == second

    def test_write_and_load_round_trip(self, fixture_graph, tmp_path):
        infos = EscapeAnalysis(fixture_graph).run()
        path = write_manifest(build_manifest(fixture_graph, infos),
                              tmp_path / "manifest.json")
        loaded = load_manifest(path)
        assert loaded["n_shard_unsafe"] == 2

    def test_load_rejects_wrong_schema(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "other", "version": 1}))
        with pytest.raises(ValueError):
            load_manifest(bogus)

    def test_committed_manifest_is_current(self, repo_analysis):
        fresh = format_manifest(build_manifest(repo_analysis["graph"],
                                               repo_analysis["state"]))
        committed = (REPO_ROOT / "SHARD_SAFETY.json").read_text()
        assert fresh == committed, (
            "SHARD_SAFETY.json is stale — regenerate with "
            "`python -m repro dataflow --manifest SHARD_SAFETY.json`")

    def test_repo_manifest_covers_hw_and_core_singletons(
            self, repo_analysis):
        manifest = build_manifest(repo_analysis["graph"],
                                  repo_analysis["state"])
        unsafe = set(manifest["shard_unsafe"])
        # Every known process-global handle in the hardware and S-NIC
        # layers must be certified shard-unsafe (acceptance criterion).
        # repro.core.runtime._TRACER and repro.obs.metrics'
        # _instance_serial used to sit here too; both moved to
        # instance/registry state for the shard engine and are no
        # longer process-global.
        assert {"repro.hw.memory._AUDIT", "repro.hw.mmu._AUDIT",
                "repro.hw.events._KERNEL", "repro.hw.cores._TRACER",
                "repro.hw.dma._TRACER", "repro.hw.cache._TRACER",
                "repro.hw.bus._TRACER", "repro.hw.accelerator._TRACER",
                "repro.core.snic._AUDIT", "repro.core.snic._TRACER",
                "repro.core.nic_os._AUDIT"} <= unsafe


# ----------------------------------------------------------------------
# Baseline mechanics + repo invariants
# ----------------------------------------------------------------------

class TestBaseline:
    def test_round_trip_silences_exactly_the_written_findings(
            self, tmp_path):
        modules = load_modules([FIXTURE_DIR])
        findings = run_program_rules(modules)
        assert findings and all(not f.baselined for f in findings)
        path = write_baseline(findings, tmp_path / "baseline.json")
        baseline = load_baseline(path)
        assert len(baseline) == len(findings)
        apply_baseline(findings, baseline)
        assert all(f.baselined for f in findings)

    def test_baselined_findings_do_not_count_toward_exit_code(
            self, tmp_path):
        _findings, code = run_dataflow([FIXTURE_DIR])
        assert code == 1
        findings = run_program_rules(load_modules([FIXTURE_DIR]))
        path = write_baseline(findings, tmp_path / "baseline.json")
        _findings, code = run_dataflow([FIXTURE_DIR], baseline_path=path)
        assert code == 0

    def test_load_rejects_wrong_schema(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(bogus)

    def test_repo_runs_clean_against_committed_baseline(self):
        findings, code = run_dataflow(
            baseline_path=default_baseline_path())
        assert code == 0, [
            (f.rule, f.key) for f in findings if f.active]

    def test_committed_baseline_has_no_stale_entries(self):
        findings, _code = run_dataflow()  # no baseline applied
        live = {(f.rule, f.key) for f in findings}
        baseline = load_baseline(default_baseline_path())
        stale = [k for k in baseline if k not in live]
        assert not stale, f"baseline entries no longer fire: {stale}"

    def test_committed_baseline_entries_are_justified(self):
        baseline = load_baseline(default_baseline_path())
        assert baseline
        for (rule, key), justification in baseline.items():
            assert justification and "TODO" not in justification, \
                f"{rule} {key} lacks a real justification"


# ----------------------------------------------------------------------
# Determinism (satellite: byte-identical JSON across runs)
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_fixture_json_is_byte_identical_across_runs(self, capsys):
        from repro.analysis.dataflow.cli import main

        main(["--format", "json", "--no-baseline", str(FIXTURE_DIR)])
        first = capsys.readouterr().out
        main(["--format", "json", "--no-baseline", str(FIXTURE_DIR)])
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["n_active"] == 3

    def test_findings_sorted_by_path_line_rule(self):
        findings = run_program_rules(load_modules([FIXTURE_DIR]))
        keys = [(f.path, f.line, f.col, f.rule) for f in findings]
        assert keys == sorted(keys)
