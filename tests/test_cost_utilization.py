"""Tests for the §4.8 underutilization fleet simulator."""

import pytest

from repro.cost.utilization import (
    FunctionRequest,
    UtilizationResult,
    generate_workload,
    isolation_price,
    simulate_allocator,
)

MB = 1024 * 1024


def request(cores=1, memory_mb=64, mur=0.7, busy=0.5, arrival=0.0, duration=100.0):
    return FunctionRequest(
        nf_type="X", cores=cores, memory_bytes=memory_mb * MB, mur=mur,
        core_utilization=busy, arrival_s=arrival, duration_s=duration,
    )


class TestWorkloadGeneration:
    def test_deterministic(self):
        assert generate_workload(seed=1) == generate_workload(seed=1)

    def test_arrivals_ordered(self):
        workload = generate_workload(50, seed=2)
        arrivals = [r.arrival_s for r in workload]
        assert arrivals == sorted(arrivals)

    def test_profiles_from_table6(self):
        names = {r.nf_type for r in generate_workload(200, seed=3)}
        assert names <= {"FW", "DPI", "NAT", "LB", "LPM", "Mon"}


class TestAllocator:
    def test_snic_rejects_when_cores_exhausted(self):
        overlapping = [request(cores=4, arrival=0.0), request(cores=4, arrival=1.0)]
        result = simulate_allocator(overlapping, n_cores=4)
        assert result.admitted == 1 and result.rejected == 1

    def test_ideal_admits_fractional_demand(self):
        overlapping = [
            request(cores=4, busy=0.25, arrival=0.0),
            request(cores=4, busy=0.25, arrival=1.0),
        ]
        result = simulate_allocator(overlapping, n_cores=4, policy="ideal")
        assert result.admitted == 2

    def test_snic_rejects_when_memory_exhausted(self):
        overlapping = [
            request(memory_mb=600, arrival=0.0),
            request(memory_mb=600, arrival=1.0),
        ]
        result = simulate_allocator(
            overlapping, n_cores=48, memory_bytes=1024 * MB
        )
        assert result.rejected == 1

    def test_departures_free_resources(self):
        sequential = [
            request(cores=4, arrival=0.0, duration=10.0),
            request(cores=4, arrival=20.0, duration=10.0),
        ]
        result = simulate_allocator(sequential, n_cores=4)
        assert result.admitted == 2 and result.rejected == 0

    def test_snic_core_utilization_is_busy_fraction(self):
        only = [request(cores=2, busy=0.5, arrival=0.0, duration=10.0)]
        result = simulate_allocator(only, n_cores=4)
        assert result.core_utilization == pytest.approx(0.5)

    def test_ideal_utilization_is_one(self):
        only = [request(cores=2, busy=0.5, arrival=0.0, duration=10.0)]
        result = simulate_allocator(only, n_cores=4, policy="ideal")
        assert result.core_utilization == pytest.approx(1.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            simulate_allocator([], policy="magic")


class TestIsolationPrice:
    def test_ideal_dominates_snic(self):
        results = isolation_price()
        assert results["ideal"].core_utilization >= results["snic"].core_utilization
        assert results["ideal"].memory_utilization >= results["snic"].memory_utilization
        assert results["ideal"].admission_rate >= results["snic"].admission_rate

    def test_snic_memory_utilization_tracks_murs(self):
        """The stranded memory comes from Table 8's MURs: the weighted
        mean MUR is ~0.76, so snic memory utilization lands near it."""
        results = isolation_price()
        assert 0.6 < results["snic"].memory_utilization < 0.95

    def test_result_fields_consistent(self):
        results = isolation_price()
        for result in results.values():
            assert 0.0 <= result.core_utilization <= 1.0 + 1e-9
            assert 0.0 <= result.admission_rate <= 1.0
