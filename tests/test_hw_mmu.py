"""Tests for MMU machinery: TLBs, page tables, denylists."""

import pytest

from repro.hw.memory import AccessFault, PhysicalMemory
from repro.hw.mmu import (
    DenylistPageTable,
    GuardedAddressSpace,
    PageTable,
    TLB,
    TLBEntry,
    TLBLockedError,
    TLBMiss,
)

KB = 1024
MB = 1024 * KB


class TestTLBEntry:
    def test_translate(self):
        entry = TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB)
        assert entry.translate(100) == 2 * MB + 100

    def test_covers(self):
        entry = TLBEntry(vbase=2 * MB, pbase=0, size=2 * MB)
        assert entry.covers(2 * MB)
        assert entry.covers(4 * MB - 1)
        assert not entry.covers(4 * MB)
        assert not entry.covers(0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TLBEntry(vbase=0, pbase=0, size=3 * KB)

    def test_rejects_misaligned_bases(self):
        with pytest.raises(ValueError):
            TLBEntry(vbase=KB, pbase=0, size=2 * MB)
        with pytest.raises(ValueError):
            TLBEntry(vbase=0, pbase=KB, size=2 * MB)

    def test_physical_range(self):
        entry = TLBEntry(vbase=0, pbase=4 * MB, size=2 * MB)
        assert entry.physical_range() == (4 * MB, 6 * MB)


class TestTLB:
    def test_install_and_translate(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        assert tlb.translate(123) == 2 * MB + 123

    def test_miss_raises(self):
        tlb = TLB(capacity=4)
        with pytest.raises(TLBMiss):
            tlb.translate(0)
        assert tlb.misses == 1

    def test_variable_page_sizes(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=128 * KB))
        tlb.install(TLBEntry(vbase=2 * MB, pbase=4 * MB, size=2 * MB))
        assert tlb.translate(64 * KB) == 64 * KB
        assert tlb.translate(3 * MB) == 5 * MB

    def test_lock_prevents_install(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB))
        tlb.lock()
        with pytest.raises(TLBLockedError):
            tlb.install(TLBEntry(vbase=2 * MB, pbase=2 * MB, size=2 * MB))

    def test_lock_prevents_clear_without_force(self):
        tlb = TLB(capacity=4)
        tlb.lock()
        with pytest.raises(TLBLockedError):
            tlb.clear()
        tlb.clear(force=True)
        assert not tlb.locked

    def test_capacity_enforced(self):
        tlb = TLB(capacity=1)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB))
        with pytest.raises(AccessFault):
            tlb.install(TLBEntry(vbase=2 * MB, pbase=2 * MB, size=2 * MB))

    def test_overlap_rejected(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB))
        with pytest.raises(ValueError):
            tlb.install(TLBEntry(vbase=0, pbase=4 * MB, size=2 * MB))

    def test_readonly_entry_blocks_writes(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB, writable=False))
        assert tlb.translate(0, write=False) == 0
        with pytest.raises(AccessFault):
            tlb.translate(0, write=True)

    def test_translate_range_contiguous(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB))
        assert tlb.translate_range(0, 1024) == 0

    def test_translate_range_discontiguous_rejected(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB))
        tlb.install(TLBEntry(vbase=2 * MB, pbase=8 * MB, size=2 * MB))
        with pytest.raises(AccessFault):
            tlb.translate_range(2 * MB - 512, 1024)

    def test_physical_pages(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        pages = tlb.physical_pages(page_size=MB)
        assert pages == {2, 3}

    def test_lookup_stats(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB))
        tlb.translate(0)
        tlb.translate(1)
        assert tlb.lookups == 2 and tlb.misses == 0


class TestPageTable:
    def test_walk(self):
        table = PageTable(page_size=4096)
        table.map(2, 9)
        assert table.walk(2 * 4096 + 17) == 9 * 4096 + 17

    def test_walk_unmapped_raises(self):
        with pytest.raises(TLBMiss):
            PageTable().walk(0)

    def test_map_range(self):
        table = PageTable()
        table.map_range(10, [3, 4, 5])
        assert table.walk(11 * 4096) == 4 * 4096

    def test_unmap(self):
        table = PageTable()
        table.map(1, 1)
        table.unmap(1)
        with pytest.raises(TLBMiss):
            table.walk(4096)

    def test_physical_pages_sorted_unique(self):
        table = PageTable()
        table.map(0, 5)
        table.map(1, 3)
        table.map(2, 5)
        assert table.physical_pages() == [3, 5]

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            PageTable(page_size=3000)


class TestDenylist:
    def test_deny_and_check(self):
        denylist = DenylistPageTable(page_size=4096)
        denylist.deny([5, 6])
        assert not denylist.check(5 * 4096)
        assert not denylist.check_page(6)
        assert denylist.check(4 * 4096)

    def test_allow_restores(self):
        denylist = DenylistPageTable()
        denylist.deny([5])
        denylist.allow([5])
        assert denylist.check_page(5)

    def test_walk_counter(self):
        denylist = DenylistPageTable()
        denylist.check_page(1)
        denylist.check(4096)
        assert denylist.walks == 2

    def test_len(self):
        denylist = DenylistPageTable()
        denylist.deny(range(10))
        assert len(denylist) == 10


class TestGuardedAddressSpace:
    def test_load_store_roundtrip(self):
        mem = PhysicalMemory(8 * MB, page_size=4096)
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        space = GuardedAddressSpace(tlb, mem)
        space.store(100, b"guarded")
        assert space.load(100, 7) == b"guarded"
        assert mem.read(2 * MB + 100, 7) == b"guarded"

    def test_cross_entry_access(self):
        mem = PhysicalMemory(16 * MB, page_size=4096)
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        tlb.install(TLBEntry(vbase=2 * MB, pbase=8 * MB, size=2 * MB))
        space = GuardedAddressSpace(tlb, mem)
        data = b"A" * 100
        space.store(2 * MB - 50, data)
        assert space.load(2 * MB - 50, 100) == data
        # The two halves really landed in the two physical extents.
        assert mem.read(4 * MB - 50, 50) == b"A" * 50
        assert mem.read(8 * MB, 50) == b"A" * 50

    def test_unmapped_access_raises(self):
        mem = PhysicalMemory(8 * MB, page_size=4096)
        space = GuardedAddressSpace(TLB(capacity=2), mem)
        with pytest.raises(TLBMiss):
            space.load(0, 1)


class TestTLBEdgeCases:
    """Edge cases around lockdown, overlap, and range translation."""

    def test_overlapping_virtual_entry_rejected(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        with pytest.raises(ValueError, match="overlaps"):
            tlb.install(TLBEntry(vbase=0, pbase=8 * MB, size=2 * MB))
        # Partial overlap via a larger page is rejected too.
        with pytest.raises(ValueError, match="overlaps"):
            tlb.install(TLBEntry(vbase=0, pbase=8 * MB, size=4 * MB))
        assert len(tlb) == 1

    def test_install_after_lock_raises(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        tlb.lock()
        with pytest.raises(TLBLockedError):
            tlb.install(TLBEntry(vbase=2 * MB, pbase=4 * MB, size=2 * MB))
        # The failed install must not have modified the bank.
        assert len(tlb) == 1 and tlb.locked

    def test_clear_locked_requires_force(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=2 * MB, size=2 * MB))
        tlb.lock()
        with pytest.raises(TLBLockedError):
            tlb.clear()
        assert len(tlb) == 1  # refused clear left the bank intact
        tlb.clear(force=True)
        assert len(tlb) == 0
        assert not tlb.locked  # force-clear also unlocks (teardown)
        tlb.install(TLBEntry(vbase=0, pbase=4 * MB, size=2 * MB))

    def test_capacity_exhaustion(self):
        tlb = TLB(capacity=2)
        tlb.install(TLBEntry(vbase=0, pbase=0, size=2 * MB))
        tlb.install(TLBEntry(vbase=2 * MB, pbase=2 * MB, size=2 * MB))
        with pytest.raises(AccessFault, match="full"):
            tlb.install(TLBEntry(vbase=4 * MB, pbase=4 * MB, size=2 * MB))

    def test_translate_range_spanning_two_contiguous_entries(self):
        """A range straddling two entries is legal iff the physical
        images are contiguous (the accelerator's single-buffer rule)."""
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=8 * MB, size=2 * MB))
        tlb.install(TLBEntry(vbase=2 * MB, pbase=10 * MB, size=2 * MB))
        # Physically contiguous: [8M,10M) then [10M,12M).
        start = tlb.translate_range(2 * MB - KB, 2 * KB)
        assert start == 10 * MB - KB

    def test_translate_range_discontiguous_raises(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=8 * MB, size=2 * MB))
        tlb.install(TLBEntry(vbase=2 * MB, pbase=4 * MB, size=2 * MB))
        with pytest.raises(AccessFault, match="not contiguous"):
            tlb.translate_range(2 * MB - KB, 2 * KB)

    def test_translate_range_single_byte(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=8 * MB, size=2 * MB))
        assert tlb.translate_range(64, 1) == 8 * MB + 64

    def test_translate_range_readonly_write_rejected(self):
        tlb = TLB(capacity=4)
        tlb.install(TLBEntry(vbase=0, pbase=8 * MB, size=2 * MB,
                             writable=False))
        assert tlb.translate_range(0, KB) == 8 * MB
        with pytest.raises(AccessFault, match="read-only"):
            tlb.translate_range(0, KB, write=True)
