"""The matrix sweep runner: cells, isolation, determinism, rendering."""

from __future__ import annotations

import json

from repro.hw import events as hw_events
from repro.obs import metrics, tracer
from repro.scenario.matrix import (
    MatrixCell,
    cell_spec,
    default_axes,
    expand,
    format_csv,
    format_json,
    format_text,
    load_spec,
    run_cell,
    run_matrix,
    run_specs,
)
from repro.scenario.matrix import main as matrix_main


def one_cell(**overrides) -> MatrixCell:
    fields = dict(nic_model="commodity", tenant_count=2,
                  fault_class="bus_babble", arbiter="fcfs", seed=101)
    fields.update(overrides)
    return MatrixCell(**fields)


class TestExpansion:
    def test_quick_axes_cover_the_acceptance_floor(self):
        axes = default_axes(quick=True)
        assert len(axes["nic_model"]) >= 2
        assert len(axes["tenant_count"]) >= 2
        assert len(axes["fault_class"]) >= 2
        assert len(axes["arbiter"]) >= 2

    def test_expand_is_the_full_product(self):
        axes = default_axes(quick=True)
        cells = expand(axes, base_seed=7)
        assert len(cells) == 16
        assert len({c.name for c in cells}) == 16

    def test_cell_seeds_derive_from_base(self):
        axes = default_axes(quick=True)
        a = expand(axes, base_seed=7)
        b = expand(axes, base_seed=7)
        c = expand(axes, base_seed=8)
        assert [x.seed for x in a] == [x.seed for x in b]
        assert [x.seed for x in a] != [x.seed for x in c]

    def test_reps_multiply_cells_with_distinct_seeds(self):
        axes = default_axes(quick=True)
        cells = expand(axes, base_seed=7, reps=2)
        assert len(cells) == 32
        assert len({c.seed for c in cells}) == 32

    def test_cell_spec_matches_the_cell(self):
        cell = one_cell(nic_model="snic", tenant_count=4, arbiter="drr")
        spec = cell_spec(cell, quick=True)
        assert spec.seed == cell.seed
        assert spec.topology.nic_model == "snic"
        assert spec.topology.arbiter.policy == "drr"
        assert len(spec.tenants) == 4
        assert spec.fault is not None
        assert spec.fault.kind == "bus_babble"
        none_spec = cell_spec(one_cell(fault_class="none"), quick=True)
        assert none_spec.fault is None


class TestCellIsolation:
    def test_run_cell_leaves_no_global_state(self):
        record = run_cell(one_cell(), quick=True)
        assert record.status == "ok"
        assert len(metrics.get_registry()) == 0
        stats = hw_events.kernel_stats()
        assert stats["events_executed"] == 0
        assert stats["sim_ns_advanced"] == 0
        t = tracer.get_tracer()
        assert not t.enabled and not t.events

    def test_record_reuses_the_bench_schema(self):
        record = run_cell(one_cell(), quick=True)
        data = record.as_dict()
        for key in ("name", "status", "wall_s", "sim_time_ns",
                    "events_executed", "trace_events",
                    "metrics_instruments", "histograms", "outputs",
                    "error"):
            assert key in data
        assert data["wall_s"] == 0.0  # no wall clock in matrix records
        assert data["outputs"]["packets_completed"] > 0

    def test_cells_do_not_observe_each_other(self):
        first = run_cell(one_cell(), quick=True)
        second = run_cell(one_cell(), quick=True)
        assert first.as_dict() == second.as_dict()


class TestDeterminism:
    def test_same_seed_reports_are_identical(self):
        kwargs = dict(quick=True, only=["commodityx2t"], seed=7)
        a = run_matrix(**kwargs)
        b = run_matrix(**kwargs)
        assert format_json(a) == format_json(b)
        assert format_csv(a) == format_csv(b)
        assert format_text(a) == format_text(b)

    def test_different_seed_reports_differ(self):
        a = run_matrix(quick=True, only=["commodityx2t-bus"], seed=7)
        b = run_matrix(quick=True, only=["commodityx2t-bus"], seed=8)
        assert format_json(a) != format_json(b)


class TestReport:
    def test_report_schema_and_filtering(self):
        report = run_matrix(quick=True, only=["snicx2t"], seed=7)
        assert report["schema"] == "repro.matrix"
        assert report["schema_version"] == 1
        assert report["record_schema"] == "repro.bench"
        assert report["n_cells"] == 4  # snic x 2t x 2 faults x 2 arbiters
        assert report["n_cells"] == report["n_ok"] + report["n_error"]
        assert report["n_error"] == 0
        for name, entry in report["cells"].items():
            assert entry["cell"]["nic_model"] == "snic"
            assert entry["record"]["name"] == name

    def test_summary_groups_by_model_and_arbiter(self):
        report = run_matrix(quick=True, only=["x2t"], seed=7)
        keys = {(r["nic_model"], r["arbiter"]) for r in report["summary"]}
        assert keys == {("commodity", "fcfs"), ("commodity", "temporal"),
                        ("snic", "fcfs"), ("snic", "temporal")}

    def test_json_round_trips(self):
        report = run_matrix(quick=True, only=["snicx2t-bus"], seed=7)
        assert json.loads(format_json(report))["n_cells"] == 2

    def test_csv_has_one_row_per_cell(self):
        report = run_matrix(quick=True, only=["snicx2t"], seed=7)
        lines = format_csv(report).strip().splitlines()
        assert len(lines) == 1 + report["n_cells"]
        assert lines[0].startswith("name,nic_model,tenant_count")


class TestSpecFiles:
    def test_load_spec_validates_the_example_file(self):
        spec = load_spec("examples/slo_scenario.json")
        assert spec.name == "example-two-tenant-slo"
        assert spec.tenants[0].slo is not None

    def test_run_specs_report_schema(self):
        spec = load_spec("examples/slo_scenario.json")
        report = run_specs([spec], quick=True)
        assert report["mode"] == "spec"
        assert report["axes"] == {"spec": [spec.name]}
        assert report["n_cells"] == 1 and report["n_error"] == 0
        entry = report["cells"][spec.name]
        assert entry["record"]["name"] == spec.name
        assert entry["cell"]["arbiter"] == spec.topology.arbiter.policy
        assert entry["cell"]["tenant_count"] == len(spec.tenants)

    def test_run_cell_spec_override_names_record_after_spec(self):
        spec = load_spec("examples/slo_scenario.json")
        record = run_cell(one_cell(), quick=True, spec=spec)
        assert record.name == spec.name
        assert record.status == "ok"

    def test_cli_spec_flag(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = matrix_main(["--spec", "examples/slo_scenario.json",
                            "--quick", "--format", "json",
                            "-o", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["mode"] == "spec" and report["n_error"] == 0
        capsys.readouterr()

    def test_cli_rejects_bad_spec_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        assert matrix_main(["--spec", str(bad), "--quick"]) == 2
        assert "bad --spec file" in capsys.readouterr().err
