"""Flat metric exporters: CSV, JSON, and a human-readable table.

Works from :meth:`repro.obs.metrics.MetricsRegistry.snapshot` — a list
of plain dicts — so anything that can produce that shape (including
collectors pulling from live components) exports the same way.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Column order for flat exports; histogram-only columns stay empty for
#: counters and gauges.
_COLUMNS = ("name", "type", "labels", "value", "count", "sum", "mean",
            "min", "max", "p50", "p95", "p99")


def _format_labels(labels: Dict[str, object]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def metrics_rows(registry: MetricsRegistry) -> List[Dict[str, object]]:
    """Snapshot flattened to uniform rows (labels joined to one cell)."""
    rows = []
    for sample in registry.snapshot():
        row = {col: sample.get(col, "") for col in _COLUMNS}
        row["labels"] = _format_labels(sample.get("labels", {}))
        rows.append(row)
    return rows


def metrics_to_csv(registry: MetricsRegistry) -> str:
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_COLUMNS)
    writer.writeheader()
    writer.writerows(metrics_rows(registry))
    return buffer.getvalue()


def write_metrics_csv(registry: MetricsRegistry, path: str) -> str:
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(metrics_to_csv(registry))
    return path


def write_metrics_json(registry: MetricsRegistry, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.snapshot(), fh, indent=1, default=str)
    return path


def format_metrics_table(registry: MetricsRegistry,
                         title: str = "metrics",
                         name_filter: Optional[str] = None) -> str:
    """The human-readable view printed by ``repro.report`` and the
    ``python -m repro trace`` subcommand."""
    rows = metrics_rows(registry)
    if name_filter:
        rows = [r for r in rows if name_filter in str(r["name"])]
    if not rows:
        return f"=== {title} ===\n(no metrics recorded)"
    headers = ["metric", "labels", "value / count", "mean", "p50", "p95", "p99"]
    table: List[List[str]] = []
    for row in rows:
        if row["type"] == "histogram":
            value = f"n={row['count']}"
            mean = f"{float(row['mean']):.1f}"
            p50 = f"{float(row['p50']):.1f}"
            p95 = f"{float(row['p95']):.1f}"
            p99 = f"{float(row['p99']):.1f}"
        else:
            number = float(row["value"])
            value = f"{number:.0f}" if number == int(number) else f"{number:.3f}"
            mean = p50 = p95 = p99 = ""
        table.append([str(row["name"]), str(row["labels"]), value, mean, p50,
                      p95, p99])
    widths = [max(len(headers[i]), *(len(r[i]) for r in table))
              for i in range(len(headers))]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
