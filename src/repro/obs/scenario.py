"""The packaged co-tenancy observability scenario.

``python -m repro trace`` runs this: two tenant network functions on
one S-NIC, their packets flowing through the event-driven runtime while
both tenants contend for the shared microarchitecture — the L2 cache,
the temporally partitioned IO bus, per-tenant DPI accelerator clusters,
and the DMA banks.  Every layer's instrumentation hooks fire, and the
recorded spans are exported as a Chrome ``trace_event`` JSON that loads
in ``chrome://tracing`` or https://ui.perfetto.dev.

The point of the demo is the paper's isolation story made visible:
tenant-1 and tenant-2 spans on the *same* shared-resource track
(``bus``, ``l2``) interleave without overlapping service — temporal
partitioning at work — while each tenant's private tracks (clusters,
rings) evolve independently.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import chrome_trace, export, metrics, tracer as tracer_mod
from repro.obs.timeseries import TimeSeriesSampler

MB = 1024 * 1024


class _ManualClock:
    """A deterministic nanosecond cursor for post-run direct driving."""

    def __init__(self, start_ns: float) -> None:
        self.now_ns = float(start_ns)

    def __call__(self) -> float:
        return self.now_ns

    def advance(self, delta_ns: float) -> float:
        self.now_ns += delta_ns
        return self.now_ns


def sample_snic_gauges(snic, registry: Optional[metrics.MetricsRegistry] = None) -> None:
    """Pull-style gauges over live component state: per-cluster and
    per-core TLB hit rates, L2 occupancy per tenant, bus backlog.

    Components keep their TLB lookup/miss tallies as plain attributes
    (too hot even for counter increments); this snapshots them into the
    registry on demand, which is the zero-overhead half of the §4.2/§4.3
    "per-bank TLB hit rate" telemetry.
    """
    # NB: an empty MetricsRegistry is falsy (it defines __len__), so an
    # ``or`` default would silently discard a freshly created registry.
    if registry is None:
        registry = metrics.get_registry()
    for record in (snic.record(nf_id) for nf_id in snic.live_functions):
        for cluster in record.clusters:
            if cluster.tlb.lookups:
                registry.gauge(
                    "accel_tlb_hit_rate", cluster=cluster._obs_label,
                    kind=cluster.kind.value, tenant=record.nf_id).set(
                    1.0 - cluster.tlb.misses / cluster.tlb.lookups)
        registry.gauge("l2_occupancy_lines",
                       tenant=record.nf_id).set(snic.l2.occupancy(record.nf_id))
    for core in snic.cores:
        if core.tlb.lookups:
            registry.gauge("core_tlb_hit_rate", core=core.core_id,
                           tenant=core.owner).set(
                1.0 - core.tlb.misses / core.tlb.lookups)
    for bank in snic.dma.banks:
        if bank.owner is not None:
            registry.gauge("dma_bank_bytes", bank=bank.bank_id,
                           tenant=bank.owner).set(bank.bytes_moved)


def run_cotenancy_scenario(
    out_path: str = "snic_trace.json",
    n_packets: int = 60,
    metrics_path: Optional[str] = None,
    profiler=None,
    timeseries_path: Optional[str] = None,
    spec=None,
) -> Dict[str, object]:
    """Run the co-tenancy demo and write a Perfetto-loadable trace.

    The device, tenants, runtime, and offered load come from the
    scenario registry's ``cotenancy-demo`` spec (or any
    :class:`~repro.scenario.spec.ScenarioSpec` passed as ``spec``),
    materialized through :func:`repro.scenario.build.build_scenario` —
    this harness only owns the observability choreography on top.

    Returns a summary dict (paths, counts, layers covered, tenants
    observed) used by the CLI and asserted by the test suite.  Passing a
    :class:`repro.obs.profile.Profiler` additionally hooks the
    event-driven phase's kernel, so host wall-time per executed event is
    attributed alongside the simulated-time span profile.

    The event-driven phase also carries a
    :class:`repro.obs.timeseries.TimeSeriesSampler` on the runtime's
    kernel: per-tenant RX-ring occupancy and completed-packet counts are
    sampled every poll interval (``timeseries_path`` exports the series
    as CSV; the sampler itself is returned under ``"timeseries"``).
    """
    # Imports here keep ``import repro.obs`` itself dependency-light.
    from repro.hw.accelerator import AcceleratorRequest
    from repro.scenario.build import build_scenario
    from repro.scenario.builtin import cotenancy_spec

    if spec is None:
        spec = cotenancy_spec(n_packets=n_packets)
    n_packets = spec.traffic.n_packets

    tracer = tracer_mod.get_tracer()
    registry = metrics.get_registry()
    tracer.enable()
    tracer.clear()

    with build_scenario(spec) as built:
        snic, nic_os = built.snic, built.nic_os
        host = built.host_memory
        runtime = built.runtime
        tenants = tuple(built.nf_ids)

        # --------------------------------------------------------------
        # Phase 1: packets through the event-driven runtime (runtime +
        # lifecycle layers; clock = simulated nanoseconds).
        # --------------------------------------------------------------
        if profiler is not None:
            profiler.attach_kernel(runtime.sim)
        runtime.inject(built.make_packets())
        # Kernel-driven sampling: one aligned row per poll interval,
        # ending by itself when the runtime drains (stop-when-idle).
        sampler = TimeSeriesSampler(runtime.sim,
                                    interval_ns=runtime.poll_interval_ns)
        for tenant in tenants:
            record = snic.record(tenant)
            sampler.watch(f"rx_ring_occupancy[{tenant}]",
                          lambda r=record: float(r.vpp.rx_ring.occupancy))
        sampler.watch("packets_completed",
                      lambda: float(runtime.stats.completed))
        sampler.start()
        stats = runtime.run()
        sampler.stop()
        sampler.sample_now()  # the post-drain steady state
        if profiler is not None:
            profiler.detach_kernel(runtime.sim)
        if timeseries_path:
            sampler.write_csv(timeseries_path)

        # --------------------------------------------------------------
        # Phase 2: direct contention on the shared microarchitecture
        # (cache, bus, accelerator, DMA layers) on a manual cursor that
        # continues the simulated timeline.
        # --------------------------------------------------------------
        clock = _ManualClock(runtime.sim.now_ns + 1_000)
        tracer.use_clock(clock)

        # Shared L2: the tenants stream over disjoint address ranges;
        # every fill beyond their partitioned ways shows up as a miss
        # span.
        for round_index in range(48):
            for tenant in tenants:
                addr = (tenant * 0x100000) + (round_index % 24) * 64
                snic.l2.access(addr, tenant)
                clock.advance(40)

        # Shared bus: alternating transfers through the temporal-
        # partition arbiter — the wait beyond wire time is each tenant's
        # epoch gap.
        for round_index in range(12):
            for tenant in tenants:
                snic.bus.transfer(tenant, 2048, clock.now_ns)
                clock.advance(250)

        # Accelerators: each tenant saturates its own DPI cluster.
        for tenant in tenants:
            clusters = snic.record(tenant).clusters
            if not clusters:
                continue
            for round_index in range(6):
                clusters[0].submit(AcceleratorRequest(
                    owner=tenant, n_bytes=512,
                    issue_ns=clock.now_ns + round_index * 500))
            clock.advance(4_000)

        # DMA: stage 4 KB of workload data into each tenant's extent.
        for tenant in tenants:
            record = snic.record(tenant)
            bank = snic.dma.bank_for_core(record.config.core_ids[0])
            bank.to_nic(host, snic.memory, host_addr=0,
                        nic_addr=record.extent_base + 64 * 1024,
                        n_bytes=4096)
            clock.advance(1_000)

        # Lifecycle epilogue: attest the first tenant, tear down the
        # last (the builder's clean_up destroys whatever remains).
        snic.nf_attest(tenants[0], nonce=b"obs-demo")
        nic_os.NF_destroy(tenants[-1])

        sample_snic_gauges(snic, registry)

        # --------------------------------------------------------------
        # Export
        # --------------------------------------------------------------
        layers = sorted({e.cat for e in tracer.events})
        span_layers = sorted({e.cat for e in tracer.events if e.ph == "X"})
        traced_tenants = sorted(t for t in tracer.tenants()
                                if t is not None)
        chrome_trace.write_chrome_trace(tracer, out_path, metadata={
            "scenario": spec.name,
            "tenants": traced_tenants,
            "packets": n_packets,
        })
        if metrics_path:
            export.write_metrics_json(registry, metrics_path)

        summary: Dict[str, object] = {
            "trace_path": out_path,
            "metrics_path": metrics_path,
            "events": len(tracer.events),
            "spans": len(tracer.spans()),
            "layers": layers,
            "span_layers": span_layers,
            "tenants": traced_tenants,
            "tracks": tracer.tracks(),
            "packets_completed": stats.completed,
            "packets_dropped": stats.dropped,
            "timeseries": sampler,
            "timeseries_path": timeseries_path,
            "timeseries_samples": sampler.samples_taken,
        }
    tracer.use_clock(None)
    tracer.disable()
    return summary
