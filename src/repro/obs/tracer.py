"""The span/event tracer: timestamped, tenant-tagged simulation events.

The tracer records three event shapes, mirroring the Chrome
``trace_event`` vocabulary the exporter targets:

* **complete spans** (``ph="X"``) — a named interval with a duration:
  a bus transfer, an accelerator service, an ``nf_launch``;
* **instant events** (``ph="i"``) — a point in time: a packet drop, a
  DMA window check, a cache scrub;
* **counter samples** (``ph="C"``) — a named value over time: RX-ring
  occupancy, bus backlog.

Every event carries a ``tenant`` (the paper's security domain — an NF
id, or ``None`` for the NIC OS / infrastructure) and a ``track`` (the
hardware layer: ``"bus"``, ``"l2"``, ``"dpi-cluster0"`` …).  Tenants
become Chrome *processes* and tracks become *threads*, so loading the
export in Perfetto shows cross-tenant interference as overlapping spans
on the same shared-resource track.

Overhead discipline
-------------------

Tracing defaults to **off**, and every hook in the hot layers is
written as::

    tracer = _TRACER
    if tracer.enabled:
        tracer.complete(...)

so the disabled cost is one attribute load and a falsy branch — no
allocation, no clock read, no string formatting.  :meth:`Tracer.span`
returns a shared no-op context-manager singleton when disabled for the
same reason.

Clocks
------

The tracer is clock-agnostic: bind it to a discrete-event simulator's
``now_ns`` (see :class:`repro.core.runtime.SNICRuntime`) and spans land
on simulated time; leave it unbound and a deterministic internal tick
(one unit per ``now()`` call) keeps event ordering stable without
touching the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class TraceEvent:
    """One recorded event, pre-shaped for Chrome ``trace_event`` export."""

    ph: str                     # "X" complete, "i" instant, "C" counter
    name: str
    ts_ns: float
    dur_ns: float = 0.0
    tenant: Optional[int] = None
    track: str = "main"
    cat: str = "sim"
    args: Dict[str, Any] = field(default_factory=dict)


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **args: Any) -> None:
        """Accept (and drop) annotations so call sites stay branch-free."""


NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: records a complete event when the ``with`` exits."""

    __slots__ = ("_tracer", "name", "tenant", "track", "cat", "args",
                 "start_ns")

    def __init__(self, tracer: "Tracer", name: str, tenant: Optional[int],
                 track: str, cat: str, args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.tenant = tenant
        self.track = track
        self.cat = cat
        self.args = dict(args) if args else {}
        self.start_ns = 0.0

    def annotate(self, **args: Any) -> None:
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self.start_ns = self._tracer.now()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        end = tracer.now()
        event = TraceEvent(
            ph="X",
            name=self.name,
            ts_ns=self.start_ns,
            dur_ns=max(0.0, end - self.start_ns),
            tenant=self.tenant,
            track=self.track,
            cat=self.cat,
            args=self.args,
        )
        tracer.events.append(event)
        if tracer.mirror is not None:
            tracer.mirror.record_trace(event)
        return False


class Tracer:
    """Records :class:`TraceEvent` streams with a no-op disabled mode."""

    def __init__(self, enabled: bool = False,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._clock = clock
        self._tick = 0
        #: Optional flight recorder receiving a copy of each recorded
        #: event (set by ``repro.obs.flight.enable_flight_recording``).
        #: Consulted only on the *enabled* path, so the zero-cost
        #: disabled contract is untouched.
        self.mirror: Optional[Any] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self, clock: Optional[Callable[[], float]] = None) -> None:
        """Turn recording on, optionally binding a time source."""
        self.enabled = True
        if clock is not None:
            self._clock = clock

    def disable(self) -> None:
        self.enabled = False

    def use_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """(Re)bind the time source; ``None`` reverts to internal ticks."""
        self._clock = clock

    def clear(self) -> None:
        self.events = []
        self._tick = 0

    def drain(self) -> List[TraceEvent]:
        """Return and forget all recorded events."""
        events, self.events = self.events, []
        return events

    def now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        self._tick += 1
        return float(self._tick)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, *, tenant: Optional[int] = None,
             track: str = "main", cat: str = "sim",
             **args: Any):
        """Context manager measuring ``now()`` across the ``with`` body.

        Returns the shared no-op singleton when disabled — zero
        allocation on the fast path.
        """
        if not self.enabled:
            return NOOP_SPAN
        return _Span(self, name, tenant, track, cat, args or None)

    def complete(self, name: str, ts_ns: float, dur_ns: float, *,
                 tenant: Optional[int] = None, track: str = "main",
                 cat: str = "sim", **args: Any) -> None:
        """Record a finished interval with explicit timestamps (the form
        the simulators use: they already know start and completion)."""
        if not self.enabled:
            return
        event = TraceEvent(ph="X", name=name, ts_ns=ts_ns,
                           dur_ns=max(0.0, dur_ns), tenant=tenant,
                           track=track, cat=cat, args=args)
        self.events.append(event)
        if self.mirror is not None:
            self.mirror.record_trace(event)

    def instant(self, name: str, *, ts_ns: Optional[float] = None,
                tenant: Optional[int] = None, track: str = "main",
                cat: str = "sim", **args: Any) -> None:
        if not self.enabled:
            return
        event = TraceEvent(ph="i", name=name,
                           ts_ns=self.now() if ts_ns is None else ts_ns,
                           tenant=tenant, track=track, cat=cat, args=args)
        self.events.append(event)
        if self.mirror is not None:
            self.mirror.record_trace(event)

    def counter_sample(self, name: str, value: float, *,
                       ts_ns: Optional[float] = None,
                       tenant: Optional[int] = None, track: str = "main",
                       cat: str = "sim") -> None:
        if not self.enabled:
            return
        event = TraceEvent(ph="C", name=name,
                           ts_ns=self.now() if ts_ns is None else ts_ns,
                           tenant=tenant, track=track, cat=cat,
                           args={"value": value})
        self.events.append(event)
        if self.mirror is not None:
            self.mirror.record_trace(event)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def spans(self, name: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events
                if e.ph == "X" and (name is None or e.name == name)]

    def tracks(self) -> List[str]:
        return sorted({e.track for e in self.events})

    def tenants(self) -> List[Optional[int]]:
        return sorted({e.tenant for e in self.events},
                      key=lambda t: (t is None, t))


#: The default process-wide tracer every instrumentation hook targets.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _TRACER


def enable_tracing(clock: Optional[Callable[[], float]] = None) -> Tracer:
    _TRACER.enable(clock)
    return _TRACER


def disable_tracing() -> None:
    _TRACER.disable()
