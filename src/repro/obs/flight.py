"""The flight recorder: a bounded, sim-time-windowed ring of recent
observability state.

Post-mortem forensics (:mod:`repro.obs.postmortem`) needs the *recent
past* at the moment a violation or watchdog timeout fires — but the
tracer's unbounded event list is a debugging tool you turn on for one
run, not something the chaos and matrix harnesses can leave enabled
across thousands of cells.  The flight recorder is the bounded
alternative: a ring of at most ``capacity`` entries, additionally
evicted by simulated age (``window_ns``), fed from three sources:

* **audit events** — every security-relevant record the
  :mod:`repro.obs.auditlog` emitter routes (attestation verdicts,
  scrubs, TLB installs, denials, faults, recovery actions);
* **trace events** — when the tracer is *also* enabled, each recorded
  span/instant/counter is mirrored into the ring (the tracer keeps its
  full list; the ring keeps the tail);
* **metric deltas** — :meth:`FlightRecorder.note_metrics` diffs the
  registry against the previous call and records one entry per changed
  value.

Overhead discipline
-------------------

Same contract as the tracer (DESIGN.md §1.4): recording defaults to
**off** and every hook is written as::

    flight = _FLIGHT
    if flight.enabled:
        flight.record(...)

one attribute load and a falsy branch — no allocation, no clock read.
``tests/test_tracer_overhead.py`` pins the disabled path within 5% of a
recorder-free stub.

Determinism
-----------

Entries never carry wall-clock values: timestamps come from a bound
simulation clock or from a deterministic internal tick, so two
same-seed runs produce byte-identical flight tails (the post-mortem
``cmp`` gate in CI depends on this).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

#: Default ring capacity (entries), sized for a useful post-mortem tail
#: without unbounded growth across long chaos sweeps.
DEFAULT_CAPACITY = 512


class FlightEntry:
    """One ring entry, pre-shaped for JSON export."""

    __slots__ = ("kind", "name", "ts_ns", "tenant", "track", "args")

    def __init__(self, kind: str, name: str, ts_ns: float,
                 tenant: Optional[int], track: str,
                 args: Dict[str, Any]) -> None:
        self.kind = kind
        self.name = name
        self.ts_ns = ts_ns
        self.tenant = tenant
        self.track = track
        self.args = args

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "ts_ns": self.ts_ns,
            "tenant": self.tenant,
            "track": self.track,
            "args": self.args,
        }


#: TraceEvent ``ph`` -> flight entry kind.
_PH_KINDS = {"X": "span", "i": "event", "C": "counter"}


class FlightRecorder:
    """A bounded, sim-time-windowed ring buffer of recent entries."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 window_ns: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.enabled = False
        self.capacity = capacity
        self.window_ns = window_ns
        self._entries: Deque[FlightEntry] = deque(maxlen=capacity)
        self._clock = clock
        self._tick = 0
        #: metric key -> last seen value (baseline for note_metrics).
        self._metric_baseline: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self, clock: Optional[Callable[[], float]] = None) -> None:
        """Turn recording on, optionally binding a time source."""
        self.enabled = True
        if clock is not None:
            self._clock = clock

    def disable(self) -> None:
        self.enabled = False

    def use_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """(Re)bind the time source; ``None`` reverts to internal ticks."""
        self._clock = clock

    def clear(self) -> None:
        self._entries.clear()
        self._tick = 0
        self._metric_baseline = {}

    def now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        self._tick += 1
        return float(self._tick)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, kind: str, name: str, *,
               ts_ns: Optional[float] = None,
               tenant: Optional[int] = None,
               track: str = "main",
               args: Optional[Dict[str, Any]] = None) -> None:
        """Append one entry; evicts by capacity (deque) and sim age.

        ``args`` is an explicit dict (not ``**kwargs``) so payload keys
        can never collide with the entry's own fields.
        """
        if not self.enabled:
            return
        ts = self.now() if ts_ns is None else float(ts_ns)
        self._entries.append(
            FlightEntry(kind, name, ts, tenant, track,
                        dict(args) if args else {}))
        self._evict(ts)

    def record_trace(self, event: Any) -> None:
        """Mirror one tracer :class:`TraceEvent` into the ring.

        Installed as the tracer's ``mirror`` while the recorder is
        armed; only ever called from the tracer's *enabled* path, so it
        adds nothing to the zero-cost disabled contract.
        """
        if not self.enabled:
            return
        self._entries.append(FlightEntry(
            _PH_KINDS.get(event.ph, "event"), event.name,
            float(event.ts_ns), event.tenant, event.track,
            dict(event.args)))
        self._evict(float(event.ts_ns))

    def note_metrics(self, ts_ns: Optional[float] = None) -> int:
        """Record one ``metric`` entry per value changed since the last
        call (or since :meth:`clear`); returns how many were recorded."""
        if not self.enabled:
            return 0
        from repro.obs.metrics import get_registry

        ts = self.now() if ts_ns is None else float(ts_ns)
        recorded = 0
        baseline = self._metric_baseline
        for sample in get_registry().snapshot():
            labels = sample["labels"]
            key = str(sample["name"]) + "{" + ",".join(
                f"{k}={labels[k]}" for k in sorted(labels)) + "}"
            try:
                value = float(sample["value"])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            previous = baseline.get(key)
            if previous is None or value != previous:
                self._entries.append(FlightEntry(
                    "metric", key, ts, None, "metrics",
                    {"value": value,
                     "delta": value - (previous or 0.0)}))
                recorded += 1
            baseline[key] = value
        if recorded:
            self._evict(ts)
        return recorded

    def _evict(self, now_ns: float) -> None:
        """Drop entries older than the sim-time window (capacity is
        enforced by the deque's ``maxlen``)."""
        window = self.window_ns
        if window is None:
            return
        entries = self._entries
        floor = now_ns - window
        while entries and entries[0].ts_ns < floor:
            entries.popleft()

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[FlightEntry]:
        return list(self._entries)

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` entries (default: all), JSON-ready."""
        entries = list(self._entries)
        if n is not None:
            entries = entries[-n:]
        return [entry.as_dict() for entry in entries]


#: The default process-wide recorder every instrumentation hook targets.
_FLIGHT = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return _FLIGHT


def enable_flight_recording(
        clock: Optional[Callable[[], float]] = None,
        capacity: Optional[int] = None,
        window_ns: Optional[float] = None) -> FlightRecorder:
    """Arm the default recorder and mirror tracer events into it."""
    from repro.obs.tracer import get_tracer

    if capacity is not None and capacity != _FLIGHT.capacity:
        _FLIGHT.capacity = capacity
        _FLIGHT._entries = deque(_FLIGHT._entries, maxlen=capacity)
    if window_ns is not None:
        _FLIGHT.window_ns = window_ns
    _FLIGHT.enable(clock)
    get_tracer().mirror = _FLIGHT
    _refresh_emitter()
    return _FLIGHT


def disable_flight_recording() -> None:
    """Disarm the default recorder and detach the tracer mirror."""
    from repro.obs.tracer import get_tracer

    _FLIGHT.disable()
    if get_tracer().mirror is _FLIGHT:
        get_tracer().mirror = None
    _refresh_emitter()


def _refresh_emitter() -> None:
    """Keep the audit emitter's ``active`` flag in sync (lazy import —
    auditlog imports this module at load time)."""
    from repro.obs import auditlog

    auditlog.refresh_emitter()


def reset() -> None:
    """Return the default recorder to its import-time state (used by
    the bench/matrix ``_isolate`` discipline and the test fixtures)."""
    disable_flight_recording()
    _FLIGHT.use_clock(None)
    _FLIGHT.clear()
    _FLIGHT.window_ns = None
    if _FLIGHT.capacity != DEFAULT_CAPACITY:
        _FLIGHT.capacity = DEFAULT_CAPACITY
        _FLIGHT._entries = deque(maxlen=DEFAULT_CAPACITY)
