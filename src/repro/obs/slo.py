"""Per-tenant SLO model: objectives, evaluation, burn-rate alerting.

ROADMAP item 3's deliverable is a *judgement* layer: the repo can
already measure per-tenant latency (PR 1 histograms), attribute
interference to culprits (PR 4), and sweep arbiters at scale (PR 6),
but nothing says **pass or fail**.  This module supplies that:

* :class:`SLOSpec` — one frozen, validated objective.  Four kinds,
  each mapping to a claim the paper or its successors make:

  ========================  ==============================================
  kind                      meaning
  ========================  ==============================================
  ``p99_latency_ns``        at least ``target`` of requests complete
                            within ``threshold`` ns (OSMOSIS's tail-
                            latency QoS claim)
  ``throughput_floor``      completed/offered ≥ ``threshold`` (goodput
                            floor under co-tenancy)
  ``interference_budget_ns``  cross-tenant attributed wait over the run
                            ≤ ``threshold`` ns (S-NIC §4.5: temporal
                            partitioning owes exactly **0**)
  ``teardown_deadline_ns``  scrubbed teardown (§4.6) finishes within
                            ``threshold`` ns
  ========================  ==============================================

* :class:`TenantSLO` — a tenant's bundle of objectives, attachable to
  ``TenantSpec.slo`` and JSON round-trippable like every other spec.
* :func:`evaluate_tenant` — end-of-run scoring of cumulative state
  into :class:`ObjectiveResult` rows (the scorecard's cells).
* :class:`BurnRateAlerter` — SRE-style multi-window burn-rate alerting
  over :class:`~repro.obs.windows.WindowSnapshot` deltas: a *page*
  fires on a short/fast window pair burning ≥ 8× budget, a *ticket* on
  a longer pair burning ≥ 2×.  Alerts are edge-triggered (one alert
  per excursion, re-armed when the burn subsides), land as
  tenant-tagged tracer instants, and are witnessed as hash-chained
  audit records through the PR 7 :class:`~repro.obs.auditlog
  .AuditEmitter` facade — an SLO page is a security-relevant event in
  a paper whose §4.5 claim *is* an interference budget of zero.

Burn rates are dimensionless budget-consumption speeds: 1.0 means
"spending exactly the error budget", sustained.  For latency,
``burn = bad_fraction / (1 - target)``; for interference,
``burn = (window_wait / window_duration) / (threshold / horizon)``.
A zero error budget (``target == 1.0`` or ``threshold == 0``) makes
any violation burn at :data:`BURN_CAP` — capped, not ``inf``, so burn
values stay JSON-exact and comparable.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.auditlog import get_emitter
from repro.obs.metrics import Histogram
from repro.obs.tracer import get_tracer
from repro.obs.windows import WindowSnapshot

#: Objective kinds :class:`SLOSpec` validates against.
OBJECTIVE_KINDS = ("p99_latency_ns", "throughput_floor",
                   "interference_budget_ns", "teardown_deadline_ns")

#: Objective kinds the windowed alerter knows how to burn-rate.
ALERTABLE_KINDS = ("p99_latency_ns", "interference_budget_ns")

#: Burn-rate ceiling standing in for "infinite" when the error budget
#: is zero; finite so JSON round-trips exactly and averages stay sane.
BURN_CAP = 1e6

#: Histogram family the scorecard observes per-tenant latencies into.
LATENCY_METRIC = "slo_latency_ns"


class SLOError(ValueError):
    """An SLO specification failed validation."""


@dataclass(frozen=True)
class SLOSpec:
    """One objective: a kind, a threshold, and (for latency) a target.

    ``threshold`` carries the kind's unit (ns for latency/interference/
    teardown, a fraction for the throughput floor); ``target`` is the
    good-event fraction for ``p99_latency_ns`` and ignored elsewhere.
    """

    kind: str
    threshold: float
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise SLOError(f"unknown SLO kind {self.kind!r}; "
                           f"expected one of {OBJECTIVE_KINDS}")
        object.__setattr__(self, "threshold", float(self.threshold))
        object.__setattr__(self, "target", float(self.target))
        if self.kind == "throughput_floor":
            if not 0.0 < self.threshold <= 1.0:
                raise SLOError("throughput_floor threshold must be a "
                               "fraction in (0, 1]")
        elif self.kind == "interference_budget_ns":
            if self.threshold < 0.0:
                raise SLOError("interference budget must be >= 0 ns")
        elif self.threshold <= 0.0:
            raise SLOError(f"{self.kind} threshold must be positive")
        if not 0.0 < self.target <= 1.0:
            raise SLOError("SLO target must be a fraction in (0, 1]")

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "threshold": self.threshold,
                "target": self.target}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SLOSpec":
        return cls(kind=data["kind"], threshold=float(data["threshold"]),
                   target=float(data.get("target", 0.99)))


@dataclass(frozen=True)
class TenantSLO:
    """A tenant's objective bundle (at most one objective per kind)."""

    objectives: Tuple[SLOSpec, ...]

    def __post_init__(self) -> None:
        objectives = tuple(
            obj if isinstance(obj, SLOSpec) else SLOSpec.from_dict(obj)
            for obj in self.objectives)
        object.__setattr__(self, "objectives", objectives)
        if not objectives:
            raise SLOError("a TenantSLO needs at least one objective")
        kinds = [obj.kind for obj in objectives]
        if len(set(kinds)) != len(kinds):
            raise SLOError(f"duplicate SLO kinds: {sorted(kinds)}")

    def objective(self, kind: str) -> Optional[SLOSpec]:
        for obj in self.objectives:
            if obj.kind == kind:
                return obj
        return None

    def to_dict(self) -> Dict[str, object]:
        return {"objectives": [obj.to_dict() for obj in self.objectives]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantSLO":
        return cls(objectives=tuple(data.get("objectives", ())))


# ----------------------------------------------------------------------
# Burn-rate computation
# ----------------------------------------------------------------------


def bad_count_above(hist: Histogram, threshold: float) -> int:
    """Observations strictly above ``threshold``, bucket-resolved.

    Exact when ``threshold`` sits on a bucket bound (the scorecard
    aligns its thresholds with the default ladder); otherwise the
    partially-covered bucket counts as *good* — the conservative
    direction for an upper-latency objective.
    """
    edge = bisect_left(hist.bounds, threshold)
    return sum(hist.counts[edge + 1:])


def latency_burn(hist: Optional[Histogram], threshold: float,
                 target: float) -> float:
    """Budget-consumption speed of one window's latency deltas."""
    if hist is None or not hist.count:
        return 0.0
    bad_fraction = bad_count_above(hist, threshold) / hist.count
    budget = 1.0 - target
    if budget <= 0.0:
        return BURN_CAP if bad_fraction > 0.0 else 0.0
    return min(bad_fraction / budget, BURN_CAP)


def interference_burn(wait_ns: float, duration_ns: float,
                      threshold_ns: float, horizon_ns: float) -> float:
    """Budget-consumption speed of one window's cross-tenant wait."""
    if wait_ns <= 0.0 or duration_ns <= 0.0 or horizon_ns <= 0.0:
        return 0.0
    if threshold_ns <= 0.0:
        return BURN_CAP  # zero budget: any attributed wait is a page
    rate = wait_ns / duration_ns
    budget_rate = threshold_ns / horizon_ns
    return min(rate / budget_rate, BURN_CAP)


# ----------------------------------------------------------------------
# End-of-run evaluation (the scorecard's cells)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectiveResult:
    """One scored objective: what was required, what was measured."""

    kind: str
    threshold: float
    target: float
    measured: float
    passed: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "threshold": self.threshold,
                "target": self.target, "measured": self.measured,
                "passed": self.passed, "detail": self.detail}


def evaluate_tenant(slo: TenantSLO, *,
                    latency: Optional[Histogram] = None,
                    offered: int = 0, completed: int = 0,
                    cross_tenant_wait_ns: float = 0.0,
                    teardown_ns: Optional[float] = None,
                    ) -> List[ObjectiveResult]:
    """Score one tenant's cumulative run state against its objectives.

    Objective order follows the spec's declaration order, so two runs
    of the same scenario render byte-identical scorecards.
    """
    results: List[ObjectiveResult] = []
    for obj in slo.objectives:
        if obj.kind == "p99_latency_ns":
            if latency is None or not latency.count:
                measured, passed = 1.0, True
                detail = "no latency samples"
            else:
                bad = bad_count_above(latency, obj.threshold)
                measured = 1.0 - bad / latency.count
                passed = measured >= obj.target
                detail = (f"p99={latency.p99:.0f}ns "
                          f"bad={bad}/{latency.count}")
        elif obj.kind == "throughput_floor":
            measured = completed / offered if offered else 1.0
            passed = measured >= obj.threshold
            detail = f"completed={completed}/{offered}"
        elif obj.kind == "interference_budget_ns":
            measured = cross_tenant_wait_ns
            passed = measured <= obj.threshold
            detail = f"xwait={measured:.0f}ns"
        else:  # teardown_deadline_ns
            if teardown_ns is None:
                measured, passed = 0.0, True
                detail = "teardown not exercised"
            else:
                measured = teardown_ns
                passed = measured <= obj.threshold
                detail = f"teardown={measured:.0f}ns"
        results.append(ObjectiveResult(
            kind=obj.kind, threshold=obj.threshold, target=obj.target,
            measured=measured, passed=passed, detail=detail))
    return results


# ----------------------------------------------------------------------
# Multi-window burn-rate alerting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BurnRateTier:
    """One severity tier: a fast/slow window pair and its threshold.

    The SRE multi-window recipe: fire only when *both* the fast window
    (catches the excursion quickly) and the slow window (filters
    one-window blips) burn above ``burn_threshold``.
    """

    name: str
    fast_windows: int
    slow_windows: int
    burn_threshold: float

    def __post_init__(self) -> None:
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise SLOError("tier windows must satisfy "
                           "1 <= fast_windows <= slow_windows")
        if self.burn_threshold <= 0.0:
            raise SLOError("tier burn_threshold must be positive")


#: Scaled-down Google-SRE defaults: a page catches fast budget
#: exhaustion (≥ 8× over a 1/6-window pair), a ticket a slow leak
#: (≥ 2× over a 3/12-window pair).
DEFAULT_TIERS: Tuple[BurnRateTier, ...] = (
    BurnRateTier("page", fast_windows=1, slow_windows=6,
                 burn_threshold=8.0),
    BurnRateTier("ticket", fast_windows=3, slow_windows=12,
                 burn_threshold=2.0),
)


@dataclass(frozen=True)
class BurnRateAlert:
    """One fired alert (the edge of an excursion, not every window)."""

    tenant: int
    kind: str
    tier: str
    fast_burn: float
    slow_burn: float
    window_index: int
    ts_ns: float

    def as_dict(self) -> Dict[str, object]:
        return {"tenant": self.tenant, "kind": self.kind,
                "tier": self.tier, "fast_burn": self.fast_burn,
                "slow_burn": self.slow_burn,
                "window_index": self.window_index, "ts_ns": self.ts_ns}


class BurnRateAlerter:
    """Judge window snapshots against tenant SLOs, tier by tier.

    Attach as a :class:`~repro.obs.windows.WindowedAggregator`'s
    ``on_rotate`` callback (or feed snapshots to :meth:`observe`
    directly).  Only :data:`ALERTABLE_KINDS` are windowed — throughput
    floors and teardown deadlines are end-of-run judgements with no
    meaningful per-window rate.
    """

    def __init__(self, tenant_slos: Dict[int, TenantSLO],
                 horizon_ns: float,
                 tiers: Tuple[BurnRateTier, ...] = DEFAULT_TIERS) -> None:
        if horizon_ns <= 0.0:
            raise SLOError("alerting horizon_ns must be positive")
        self.tenant_slos = dict(tenant_slos)
        self.horizon_ns = float(horizon_ns)
        self.tiers = tuple(tiers)
        self.alerts: List[BurnRateAlert] = []
        depth = max((t.slow_windows for t in self.tiers), default=1)
        self._burns: Dict[Tuple[int, str], Deque[float]] = {}
        self._depth = depth
        #: ``(tenant, kind, tier) -> currently firing`` for edge
        #: triggering: one alert per excursion, re-armed on recovery.
        self._firing: Dict[Tuple[int, str, str], bool] = {}

    def _burn_for(self, tenant: int, obj: SLOSpec,
                  snapshot: WindowSnapshot,
                  xwait_by_victim: Dict[str, float]) -> float:
        if obj.kind == "p99_latency_ns":
            delta = snapshot.histogram(LATENCY_METRIC, tenant=tenant)
            return latency_burn(delta, obj.threshold, obj.target)
        wait = xwait_by_victim.get(str(tenant), 0.0)
        return interference_burn(wait, snapshot.duration_ns,
                                 obj.threshold, self.horizon_ns)

    def observe(self, snapshot: WindowSnapshot) -> List[BurnRateAlert]:
        """Judge one finished window; returns alerts fired by it."""
        fired: List[BurnRateAlert] = []
        xwait = snapshot.cross_tenant_wait_by_victim()
        for tenant in sorted(self.tenant_slos):
            slo = self.tenant_slos[tenant]
            for obj in slo.objectives:
                if obj.kind not in ALERTABLE_KINDS:
                    continue
                key = (tenant, obj.kind)
                burns = self._burns.get(key)
                if burns is None:
                    burns = deque(maxlen=self._depth)
                    self._burns[key] = burns
                burns.append(self._burn_for(tenant, obj, snapshot, xwait))
                for tier in self.tiers:
                    fired.extend(self._judge_tier(
                        tenant, obj.kind, tier, burns, snapshot))
        self.alerts.extend(fired)
        return fired

    def _judge_tier(self, tenant: int, kind: str, tier: BurnRateTier,
                    burns: Deque[float], snapshot: WindowSnapshot,
                    ) -> List[BurnRateAlert]:
        recent = list(burns)
        fast = recent[-tier.fast_windows:]
        slow = recent[-tier.slow_windows:]
        fast_burn = sum(fast) / len(fast)
        slow_burn = sum(slow) / len(slow)
        condition = (fast_burn >= tier.burn_threshold
                     and slow_burn >= tier.burn_threshold)
        firing_key = (tenant, kind, tier.name)
        was_firing = self._firing.get(firing_key, False)
        self._firing[firing_key] = condition
        if not condition or was_firing:
            return []
        alert = BurnRateAlert(
            tenant=tenant, kind=kind, tier=tier.name,
            fast_burn=fast_burn, slow_burn=slow_burn,
            window_index=snapshot.index, ts_ns=snapshot.end_ns)
        self._emit(alert)
        return [alert]

    def _emit(self, alert: BurnRateAlert) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "slo.burn_alert", ts_ns=alert.ts_ns, tenant=alert.tenant,
                track="slo", cat="slo", kind=alert.kind, tier=alert.tier,
                fast_burn=alert.fast_burn, slow_burn=alert.slow_burn)
        emitter = get_emitter()
        if emitter.active:
            emitter.emit(
                "slo.alert", tenant=alert.tenant, ts_ns=alert.ts_ns,
                objective=alert.kind, tier=alert.tier,
                fast_burn=alert.fast_burn, slow_burn=alert.slow_burn,
                window_index=alert.window_index)

    def alert_dicts(self) -> List[Dict[str, Any]]:
        return [alert.as_dict() for alert in self.alerts]
