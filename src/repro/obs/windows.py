"""Sim-time windowed aggregation of metrics registry state.

The registry (:mod:`repro.obs.metrics`) is cumulative: a counter or
histogram answers "what happened since the run began", which is the
right shape for end-of-run scorecards but useless for *rate* questions
— an SLO burn rate is "how fast is the error budget being consumed
**right now**", which needs per-window deltas.

:class:`WindowedAggregator` rides the event kernel exactly like
:class:`~repro.obs.timeseries.TimeSeriesSampler` (same cooperative
termination, same no-wall-clock discipline): every ``window_ns`` of
simulated time it *rotates*, snapshotting the delta of every tracked
instrument since the previous rotation into a :class:`WindowSnapshot`.
Deltas are first-class instruments, not flat numbers:

* counter deltas are floats (``value_now - value_at_window_start``);
* histogram deltas are real :class:`~repro.obs.metrics.Histogram`
  objects carrying the per-bucket count difference, so a window can
  answer percentile and threshold-exceedance questions on its own —
  and windows **compose**: merging every window's delta histogram via
  :meth:`Histogram.merge` reproduces the cumulative histogram
  bucket-for-bucket (the same primitive shard-merged metrics will use).

Phases of an experiment that advance time *outside* the kernel (the
contention rig drives the bus/DMA/DRAM models on hand-stepped
timestamps) rotate manually via :meth:`WindowedAggregator.rotate`, so
their interference counters still land in a window of their own.

Delta histograms inherit an approximation: the registry's cumulative
``min``/``max`` cannot be split per window, so a window's extrema are
reconstructed from its occupied buckets (lower edge of the first, upper
edge of the last, both clamped to the cumulative extrema).  Percentile
estimates inside a window are therefore bucket-resolution accurate —
the same resolution the cumulative histogram offers anyway.

Only instruments whose name starts with one of the configured
``prefixes`` are tracked (default: the ``slo_`` and ``interference_``
families), keeping rotation cost proportional to the telemetry the SLO
layer actually judges, not the whole hw-layer registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hw.events import Simulator
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
    get_registry,
)

#: Default tracked-name prefixes: the SLO layer's own instruments and
#: the interference attribution families it reads through.
DEFAULT_PREFIXES: Tuple[str, ...] = ("slo_", "interference_")

#: Upper bound on retained windows; long experiments drop the oldest.
DEFAULT_MAX_WINDOWS = 4096

InstrumentKey = Tuple[str, LabelKey]


def _labels_dict(labels: LabelKey) -> Dict[str, str]:
    return {k: v for k, v in labels}


class WindowSnapshot:
    """Everything that changed during one window of simulated time."""

    __slots__ = ("index", "start_ns", "end_ns", "counters", "histograms")

    def __init__(self, index: int, start_ns: float, end_ns: float,
                 counters: Dict[InstrumentKey, float],
                 histograms: Dict[InstrumentKey, Histogram]) -> None:
        self.index = index
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: ``(name, labels) -> delta`` for counters and gauges.
        self.counters = counters
        #: ``(name, labels) -> delta Histogram`` for histograms.
        self.histograms = histograms

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def counter(self, name: str, **labels: object) -> float:
        """This window's delta for one counter (0.0 when untouched)."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.counters.get(key, 0.0)

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        """This window's delta histogram, or ``None`` when untouched."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.histograms.get(key)

    def cross_tenant_wait_by_victim(self) -> Dict[str, float]:
        """Per-victim cross-tenant attributed wait in this window.

        The read-through into the PR 4 interference families: sums
        ``interference_wait_ns_total`` deltas where the ``tenant``
        (victim) and ``culprit`` labels differ, keyed by the victim's
        string label.  Deterministically sorted.
        """
        waits: Dict[str, float] = {}
        for (name, labels), delta in self.counters.items():
            if name != "interference_wait_ns_total" or delta <= 0.0:
                continue
            by = _labels_dict(labels)
            victim, culprit = by.get("tenant"), by.get("culprit")
            if victim is None or victim == culprit:
                continue
            waits[victim] = waits.get(victim, 0.0) + delta
        return dict(sorted(waits.items()))

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary (used by exporters and reports)."""
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "n_counters": len(self.counters),
            "n_histograms": len(self.histograms),
            "cross_tenant_wait_by_victim":
                self.cross_tenant_wait_by_victim(),
        }


def _delta_histogram(current: Histogram, base_counts: List[int],
                     base_count: int, base_sum: float) -> Histogram:
    """A fresh Histogram holding ``current``'s change since the base."""
    delta = Histogram(current.name, current.labels, bounds=current.bounds)
    total = 0
    first = last = -1
    for i, cumulative in enumerate(current.counts):
        diff = cumulative - base_counts[i]
        if diff:
            delta.counts[i] = diff
            total += diff
            if first < 0:
                first = i
            last = i
    delta.count = current.count - base_count
    delta.sum = current.sum - base_sum
    if delta.count:
        # Window extrema reconstructed at bucket resolution (see module
        # docstring): the cumulative min/max bound them on both sides.
        lower = current.bounds[first - 1] if first > 0 else 0.0
        upper = current.bounds[last] if last < len(current.bounds) \
            else current.max
        delta.min = max(lower, current.min)
        delta.max = min(upper, current.max) if last < len(current.bounds) \
            else current.max
    return delta


class WindowedAggregator:
    """Rotating delta snapshots of registry state on the event kernel.

    Usage::

        agg = WindowedAggregator(sim, window_ns=10_000)
        agg.start()
        ... run the kernel-driven workload ...
        agg.close()                # capture the final partial window
        for snap in agg.snapshots: ...
    """

    def __init__(self, sim: Simulator, window_ns: int,
                 registry: Optional[MetricsRegistry] = None,
                 prefixes: Sequence[str] = DEFAULT_PREFIXES,
                 max_windows: int = DEFAULT_MAX_WINDOWS,
                 on_rotate: Optional[Callable[[WindowSnapshot], None]]
                 = None) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if max_windows <= 0:
            raise ValueError("max_windows must be positive")
        self.sim = sim
        self.window_ns = int(window_ns)
        self.prefixes = tuple(prefixes)
        self.max_windows = max_windows
        #: Invoked with each finished :class:`WindowSnapshot` — the
        #: burn-rate alerter's attachment point.
        self.on_rotate = on_rotate
        self._registry = registry
        self.snapshots: List[WindowSnapshot] = []
        self.windows_dropped = 0
        self._window_start_ns = 0.0
        self._counter_base: Dict[InstrumentKey, float] = {}
        self._hist_base: Dict[InstrumentKey,
                              Tuple[List[int], int, float]] = {}
        self._handle = None
        self._closed = False

    def _resolve(self) -> MetricsRegistry:
        return self._registry if self._registry is not None \
            else get_registry()

    def _tracked(self) -> List[Tuple[InstrumentKey, object]]:
        """Tracked instruments in deterministic (name, labels) order."""
        out: List[Tuple[InstrumentKey, object]] = []
        for instrument in self._resolve().instruments():
            name = getattr(instrument, "name", "")
            if not name.startswith(self.prefixes):
                continue
            out.append(((name, instrument.labels), instrument))
        out.sort(key=lambda item: item[0])
        return out

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------

    def rotate(self, now_ns: Optional[float] = None) -> WindowSnapshot:
        """Close the current window at ``now_ns`` and start the next.

        Kernel-driven rotation calls this from the scheduled tick;
        phases advancing time outside the kernel (the contention rig)
        call it directly with their own timestamps.
        """
        now = float(self.sim.now_ns) if now_ns is None else float(now_ns)
        counters: Dict[InstrumentKey, float] = {}
        histograms: Dict[InstrumentKey, Histogram] = {}
        for key, instrument in self._tracked():
            if isinstance(instrument, Histogram):
                base = self._hist_base.get(
                    key, ([0] * len(instrument.counts), 0, 0.0))
                if instrument.count != base[1]:
                    histograms[key] = _delta_histogram(
                        instrument, base[0], base[1], base[2])
                self._hist_base[key] = (list(instrument.counts),
                                        instrument.count, instrument.sum)
            elif isinstance(instrument, (Counter, Gauge)):
                delta = instrument.value - self._counter_base.get(key, 0.0)
                if delta:
                    counters[key] = delta
                self._counter_base[key] = instrument.value
        snapshot = WindowSnapshot(
            index=len(self.snapshots) + self.windows_dropped,
            start_ns=self._window_start_ns, end_ns=now,
            counters=counters, histograms=histograms)
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.max_windows:
            del self.snapshots[0]
            self.windows_dropped += 1
        self._window_start_ns = now
        if self.on_rotate is not None:
            self.on_rotate(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Kernel scheduling (the TimeSeriesSampler discipline)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule rotations every ``window_ns`` of simulated time."""
        if self._handle is not None:
            raise RuntimeError("aggregator already started")
        self._window_start_ns = float(self.sim.now_ns)
        self._prime_bases()
        self._handle = self.sim.schedule(self.window_ns, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._handle is not None

    def _prime_bases(self) -> None:
        """Capture the pre-run state so window 0 holds only new work."""
        for key, instrument in self._tracked():
            if isinstance(instrument, Histogram):
                self._hist_base[key] = (list(instrument.counts),
                                        instrument.count, instrument.sum)
            elif isinstance(instrument, (Counter, Gauge)):
                self._counter_base[key] = instrument.value

    def _tick(self) -> None:
        self._handle = None
        self.rotate()
        if self.sim.pending > 0:
            # Cooperative shutdown: our own event already popped, so
            # ``pending`` counts only other work — don't keep a
            # drain-until-empty loop alive with our own rotations.
            self._handle = self.sim.schedule(self.window_ns, self._tick)

    def close(self, now_ns: Optional[float] = None) -> None:
        """Stop and capture any final partial window.

        Idempotent; the trailing window is recorded only when something
        changed after the last rotation (or when time advanced past it).
        """
        if self._closed:
            return
        self.stop()
        now = float(self.sim.now_ns) if now_ns is None else float(now_ns)
        probe = self.rotate(now_ns=max(now, self._window_start_ns))
        if not probe.counters and not probe.histograms \
                and probe.duration_ns <= 0.0:
            self.snapshots.pop()
        self._closed = True

    # ------------------------------------------------------------------
    # Composition (the merge primitive, exercised)
    # ------------------------------------------------------------------

    def merged_histogram(self, name: str, **labels: object) \
            -> Optional[Histogram]:
        """All windows' delta histograms merged back into one.

        By construction this equals the cumulative registry histogram's
        buckets/count/sum over the aggregation interval — the
        merge-then-percentile equivalence the tests pin down.
        """
        merged: Optional[Histogram] = None
        for snapshot in self.snapshots:
            delta = snapshot.histogram(name, **labels)
            if delta is None:
                continue
            if merged is None:
                merged = Histogram(delta.name, delta.labels,
                                   bounds=delta.bounds)
            merged.merge(delta)
        return merged

    def total_counter(self, name: str, **labels: object) -> float:
        """Sum of one counter's deltas across every retained window."""
        return sum(snapshot.counter(name, **labels)
                   for snapshot in self.snapshots)
