"""``repro.obs`` — unified observability for the whole simulation stack.

Three pieces, designed to be cheap enough to leave compiled into every
hot layer:

* :mod:`repro.obs.tracer` — a span/instant/counter event tracer with a
  no-op fast path when disabled.  Hooks live in ``hw.cache``,
  ``hw.bus``, ``hw.dma``, ``hw.accelerator``, ``core.snic`` and
  ``core.runtime``; events are tenant-tagged so per-tenant interference
  on shared resources is directly visible.
* :mod:`repro.obs.metrics` — a registry of labelled counters, gauges
  and fixed-bucket histograms that components instrument into instead
  of keeping ad-hoc ``hits``/``misses`` attributes (the old attribute
  names survive as read-through properties).
* exporters — Chrome ``trace_event`` JSON for Perfetto
  (:mod:`repro.obs.chrome_trace`), flat CSV/JSON metric dumps and a
  table printer (:mod:`repro.obs.export`).
* :mod:`repro.obs.profile` — a deterministic profiler attributing
  simulated nanoseconds and host wall-time to (layer, tenant,
  operation) frames, with flamegraph (collapsed-stack) and top-N
  report exporters.
* :mod:`repro.obs.bench` — the unified benchmark harness behind
  ``python -m repro bench``: runs every ``benchmarks/bench_*.py``
  scenario under a fresh registry and writes a schema-versioned
  ``BENCH_<timestamp>.json`` with wall-time, sim-time, and event-count
  telemetry, plus artifact diffing with regression flags.
* :mod:`repro.obs.interference` — per-tenant contention attribution:
  every shared hardware resource blames each nanosecond a victim
  waited on the co-tenant that caused it
  (``interference_wait_ns_total{resource, tenant, culprit}``), and
  :func:`blame_matrix` reconstructs who-made-whom-wait matrices.
* :mod:`repro.obs.timeseries` — a kernel-driven periodic sampler:
  ring-buffered, deterministic metric-over-sim-time series with
  CSV/JSON export, replacing ad-hoc per-benchmark sampling loops.
* :mod:`repro.obs.audit` — ``python -m repro audit``: the
  solo-vs-co-tenant isolation scorecard (interference matrices,
  slowdown deltas, side-channel capacities, noninterference verdict).
* :mod:`repro.obs.flight` — the flight recorder: a bounded,
  sim-time-windowed ring of recent audit events, mirrored trace
  events, and metric deltas; strictly no-op when disabled.
* :mod:`repro.obs.auditlog` — an append-only, sha256 hash-chained
  audit log of security-relevant events (attestation verdicts, page
  scrubs, TLB installs, cross-tenant denials, faults, recovery
  actions); flipping any serialized byte breaks the chain at a
  reported index.
* :mod:`repro.obs.postmortem` — forensics bundles assembled on
  isolation violations / watchdog timeouts / recovery exhaustion
  (flight tail, audit excerpt + chain head, metrics snapshot,
  interference attribution, active ScenarioSpec), plus the
  ``python -m repro postmortem`` pretty-print/verify/diff CLI.
* :mod:`repro.obs.slo` / :mod:`repro.obs.windows` /
  :mod:`repro.obs.openmetrics` / :mod:`repro.obs.scorecard` — the
  per-tenant SLO layer behind ``python -m repro slo``: frozen
  ``SLOSpec``/``TenantSLO`` objectives attached to scenario tenants,
  sim-time windowed delta aggregation, SRE multi-window burn-rate
  alerting (page/ticket tiers, audit-logged), an OpenMetrics text
  exporter + strict checker, and the arbiter-sweep scorecard CLI.

Quickstart::

    from repro import obs

    tracer = obs.enable_tracing(clock=lambda: sim.now_ns)
    ...  # run any experiment
    obs.write_chrome_trace(tracer, "trace.json")   # load in Perfetto
    print(obs.format_metrics_table(obs.get_registry()))

or run the packaged co-tenancy demo end to end::

    python -m repro trace -o snic_trace.json
"""

from repro.obs.auditlog import (
    GENESIS,
    AuditEmitter,
    AuditLog,
    disable_audit_log,
    enable_audit_log,
    get_audit_log,
    get_emitter,
    verify_records,
)
from repro.obs.chrome_trace import to_chrome_trace, write_chrome_trace
from repro.obs.flight import (
    FlightEntry,
    FlightRecorder,
    disable_flight_recording,
    enable_flight_recording,
    get_flight_recorder,
)
from repro.obs.interference import (
    InterferenceAccountant,
    blame_matrix,
    cross_tenant_events,
    cross_tenant_wait_ns,
    format_matrix,
    get_accountant,
)
from repro.obs.export import (
    format_metrics_table,
    metrics_rows,
    metrics_to_csv,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    instance_label,
)
from repro.obs.metrics import reset as reset_metrics
from repro.obs.postmortem import (
    build_bundle,
    diff_bundles,
    load_bundle,
    verify_bundle,
    write_bundle,
)
from repro.obs.openmetrics import render as render_openmetrics
from repro.obs.openmetrics import validate_text as validate_openmetrics
from repro.obs.openmetrics import write as write_openmetrics
from repro.obs.profile import Profiler, profile_cotenancy_scenario
from repro.obs.slo import (
    BurnRateAlert,
    BurnRateAlerter,
    BurnRateTier,
    ObjectiveResult,
    SLOError,
    SLOSpec,
    TenantSLO,
    evaluate_tenant,
)
from repro.obs.timeseries import Series, TimeSeriesSampler, sample_function
from repro.obs.windows import WindowedAggregator, WindowSnapshot
from repro.obs.tracer import (
    NOOP_SPAN,
    TraceEvent,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
)

__all__ = [
    "AuditEmitter",
    "AuditLog",
    "BurnRateAlert",
    "BurnRateAlerter",
    "BurnRateTier",
    "Counter",
    "FlightEntry",
    "FlightRecorder",
    "GENESIS",
    "Gauge",
    "Histogram",
    "InterferenceAccountant",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObjectiveResult",
    "Profiler",
    "SLOError",
    "SLOSpec",
    "Series",
    "TenantSLO",
    "TimeSeriesSampler",
    "TraceEvent",
    "Tracer",
    "WindowSnapshot",
    "WindowedAggregator",
    "blame_matrix",
    "build_bundle",
    "cross_tenant_events",
    "cross_tenant_wait_ns",
    "diff_bundles",
    "disable_audit_log",
    "disable_flight_recording",
    "disable_tracing",
    "enable_audit_log",
    "enable_flight_recording",
    "enable_tracing",
    "evaluate_tenant",
    "format_matrix",
    "format_metrics_table",
    "get_accountant",
    "get_audit_log",
    "get_emitter",
    "get_flight_recorder",
    "get_registry",
    "get_tracer",
    "instance_label",
    "load_bundle",
    "metrics_rows",
    "metrics_to_csv",
    "profile_cotenancy_scenario",
    "render_openmetrics",
    "reset_metrics",
    "sample_function",
    "to_chrome_trace",
    "validate_openmetrics",
    "verify_bundle",
    "verify_records",
    "write_bundle",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
    "write_openmetrics",
]
