"""Chrome ``trace_event`` JSON export.

Converts a :class:`~repro.obs.tracer.Tracer`'s event stream into the
JSON Object Format consumed by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): a top-level object with a ``traceEvents``
list whose entries carry ``ph``/``name``/``ts``/``pid``/``tid``.

Mapping:

* **tenant → pid.**  Each security domain becomes one Chrome process
  (named ``tenant-<nf_id>``); infrastructure events (tenant ``None``)
  land in pid 0, named ``nic-infra``.  Cross-tenant interference on a
  shared resource is then visible as same-named tracks in two process
  lanes overlapping in time.
* **track → tid.**  Each hardware layer (``bus``, ``l2``,
  ``dpi-cluster0`` …) becomes one thread per process, with
  ``thread_name`` metadata.
* ``ts``/``dur`` are microseconds per the spec; the tracer records
  nanoseconds, so values are divided by 1000 (fractional µs are legal
  and preserved).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.tracer import TraceEvent, Tracer

#: pid used for events with no tenant (NIC OS / infrastructure).
INFRA_PID = 0
INFRA_NAME = "nic-infra"


def _pid_for(tenant: Optional[int]) -> int:
    if tenant is None:
        return INFRA_PID
    # Shift tenants up so tenant 0 (if it ever exists) cannot collide
    # with the infrastructure pid.
    return int(tenant) + 1


def to_chrome_trace(source, metadata: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Build the Chrome JSON-object-format dict from a tracer (or a raw
    list of :class:`TraceEvent`)."""
    events: List[TraceEvent] = (
        source.events if isinstance(source, Tracer) else list(source)
    )
    trace_events: List[Dict[str, object]] = []
    tid_by_track: Dict[str, int] = {}
    seen_process: Dict[int, str] = {}
    seen_thread: set = set()

    def tid_for(track: str) -> int:
        tid = tid_by_track.get(track)
        if tid is None:
            tid = len(tid_by_track) + 1
            tid_by_track[track] = tid
        return tid

    for event in events:
        pid = _pid_for(event.tenant)
        tid = tid_for(event.track)
        if pid not in seen_process:
            name = INFRA_NAME if pid == INFRA_PID else f"tenant-{event.tenant}"
            seen_process[pid] = name
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        if (pid, tid) not in seen_thread:
            seen_thread.add((pid, tid))
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": event.track},
            })
        record: Dict[str, object] = {
            "ph": event.ph,
            "name": event.name,
            "cat": event.cat,
            "ts": event.ts_ns / 1000.0,
            "pid": pid,
            "tid": tid,
        }
        args = dict(event.args)
        if event.tenant is not None:
            args.setdefault("tenant", event.tenant)
        if args:
            record["args"] = args
        if event.ph == "X":
            record["dur"] = event.dur_ns / 1000.0
        if event.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)

    doc: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.obs", "time_unit_in": "ns"},
    }
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def write_chrome_trace(source, path: str,
                       metadata: Optional[Dict[str, object]] = None) -> str:
    """Serialise to ``path``; returns the path for convenience."""
    doc = to_chrome_trace(source, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return path
