"""``repro.obs.profile`` — deterministic (layer, tenant, operation) profiler.

The tracer (:mod:`repro.obs.tracer`) records *what happened*; this
module answers *where the time went*.  It attributes two different
clocks to named frames:

* **simulated nanoseconds** — consumed from the tracer's span stream.
  Every complete span carries a layer (its ``cat``: ``bus``, ``cache``,
  ``runtime`` …), a tenant (the paper's security domain, ``None`` for
  the NIC OS) and an operation (its ``name``).  Spans on the same
  (tenant, track) lane nest by interval containment, giving real call
  stacks: self time is a span's duration minus its children's, and the
  collapsed-stack export is directly flamegraph-compatible
  (``flamegraph.pl``, speedscope, inferno).
* **host wall nanoseconds** — measured live by hooking the
  discrete-event kernel (:meth:`repro.hw.events.Simulator.set_profiler`).
  Every executed event is timed with the host monotonic clock and
  attributed to its callback, so "which simulation layer is slow *to
  simulate*" is a first-class question rather than something inferred
  from counters.

Because both sources are deterministic functions of the simulation
(spans live on simulated time; kernel attribution is by callback
identity), two runs of the same scenario produce identical sim-time
profiles — which is what lets ``python -m repro bench --profile``
artifacts be diffed across commits.

Typical use::

    from repro.obs import profile

    prof = profile.Profiler()
    with prof.measure():            # wall-clock bracketing
        ...  # run a scenario with tracing enabled
    prof.ingest(obs.get_tracer())   # sim-time attribution
    prof.write_collapsed("run.collapsed")
    print(prof.format_report(top=15))

or the packaged one-call version over the co-tenancy demo::

    result = profile.profile_cotenancy_scenario("run.collapsed")
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.tracer import TraceEvent, Tracer

#: Frame used for spans whose tenant is ``None`` — NIC OS / shared
#: infrastructure work, the lane the paper treats as the trusted base.
INFRA_TENANT = "infra"


def layer_frame(cat: str) -> str:
    return f"layer:{cat or 'unknown'}"


def tenant_frame(tenant: Optional[int]) -> str:
    return f"tenant:{INFRA_TENANT if tenant is None else tenant}"


@dataclass
class FrameStat:
    """Aggregated timings for one unique stack of frames."""

    stack: Tuple[str, ...]
    self_ns: float = 0.0
    cumulative_ns: float = 0.0
    count: int = 0

    @property
    def leaf(self) -> str:
        return self.stack[-1]


@dataclass
class HostStat:
    """Host wall-time attributed to one kernel callback."""

    operation: str
    host_ns: int = 0
    sim_ns: int = 0
    events: int = 0


@dataclass
class _OpenSpan:
    end_ns: float
    name: str
    dur_ns: float
    self_ns: float
    stack: Tuple[str, ...]


class Profiler:
    """Attributes simulated ns and host wall ns to (layer, tenant, op).

    The profiler is append-only: :meth:`ingest` can be called repeatedly
    (e.g. once per scenario phase) and stats accumulate.  All derived
    views (:meth:`collapsed`, :meth:`report`, :meth:`coverage`) are
    computed on demand from the accumulated tables.
    """

    def __init__(self) -> None:
        self._stacks: Dict[Tuple[str, ...], FrameStat] = {}
        self._host: Dict[str, HostStat] = {}
        self._total_sim_ns = 0.0
        self._attributed_sim_ns = 0.0
        self._wall_ns = 0
        self._wall_started: Optional[int] = None
        self._instants = 0

    # ------------------------------------------------------------------
    # Wall-clock bracketing
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._wall_started = perf_counter_ns()

    def stop(self) -> None:
        if self._wall_started is not None:
            self._wall_ns += perf_counter_ns() - self._wall_started
            self._wall_started = None

    @contextmanager
    def measure(self):
        """``with prof.measure(): ...`` — accumulate host wall time."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    @property
    def wall_ns(self) -> int:
        return self._wall_ns

    # ------------------------------------------------------------------
    # Host-side attribution (event-kernel hook)
    # ------------------------------------------------------------------

    def attach_kernel(self, sim) -> None:
        """Time every event ``sim`` executes (detach with
        :meth:`detach_kernel`)."""
        sim.set_profiler(self)

    def detach_kernel(self, sim) -> None:
        sim.set_profiler(None)

    def on_kernel_event(self, callback, host_ns: int, sim_ns: int) -> None:
        """Called by :meth:`Simulator.step` for each executed event."""
        name = _callback_name(callback)
        stat = self._host.get(name)
        if stat is None:
            stat = self._host[name] = HostStat(operation=name)
        stat.host_ns += host_ns
        stat.sim_ns += sim_ns
        stat.events += 1

    # ------------------------------------------------------------------
    # Sim-side attribution (tracer span stream)
    # ------------------------------------------------------------------

    def ingest(self, source: Union[Tracer, Iterable[TraceEvent]]) -> int:
        """Fold a tracer's (or raw event list's) spans into the profile.

        Returns the number of complete spans consumed.  Spans are
        grouped into (tenant, track) lanes; within a lane they nest by
        interval containment, which turns the flat event stream into
        stacks rooted at ``layer:<cat>;tenant:<id>``.
        """
        events = source.events if isinstance(source, Tracer) else list(source)
        spans = [e for e in events if e.ph == "X"]
        self._instants += sum(1 for e in events if e.ph == "i")

        lanes: Dict[Tuple[Optional[int], str], List[TraceEvent]] = {}
        for span in spans:
            lanes.setdefault((span.tenant, span.track), []).append(span)

        for (tenant, _track), lane in sorted(
            lanes.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
        ):
            lane.sort(key=lambda e: (e.ts_ns, -e.dur_ns))
            open_spans: List[_OpenSpan] = []
            for span in lane:
                while open_spans and span.ts_ns >= open_spans[-1].end_ns:
                    self._close(open_spans.pop())
                base = (
                    open_spans[-1].stack
                    if open_spans
                    else (layer_frame(span.cat), tenant_frame(tenant))
                )
                if open_spans:
                    # Child time is the parent's cumulative, not self.
                    open_spans[-1].self_ns -= span.dur_ns
                else:
                    self._total_sim_ns += span.dur_ns
                    if span.cat and _is_named_lane(span.cat, tenant):
                        self._attributed_sim_ns += span.dur_ns
                open_spans.append(_OpenSpan(
                    end_ns=span.ts_ns + span.dur_ns,
                    name=span.name,
                    dur_ns=span.dur_ns,
                    self_ns=span.dur_ns,
                    stack=base + (span.name,),
                ))
            while open_spans:
                self._close(open_spans.pop())
        return len(spans)

    def _close(self, open_span: _OpenSpan) -> None:
        stat = self._stacks.get(open_span.stack)
        if stat is None:
            stat = self._stacks[open_span.stack] = FrameStat(open_span.stack)
        stat.self_ns += max(0.0, open_span.self_ns)
        stat.cumulative_ns += open_span.dur_ns
        stat.count += 1

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def total_sim_ns(self) -> float:
        """Total simulated time under root spans (all lanes)."""
        return self._total_sim_ns

    @property
    def attributed_sim_ns(self) -> float:
        """Root-span time attributed to a named (layer, tenant) lane."""
        return self._attributed_sim_ns

    def coverage(self) -> float:
        """Fraction of simulated time attributed to named frames."""
        if self._total_sim_ns <= 0:
            return 0.0
        return self._attributed_sim_ns / self._total_sim_ns

    def frame_stats(self) -> List[FrameStat]:
        return list(self._stacks.values())

    def cumulative_by_frame(self) -> Dict[str, float]:
        """Cumulative sim-ns per individual frame (any stack depth).

        A frame's cumulative time is the self time of every stack it
        appears in: each ns of self time lies under every enclosing
        frame exactly once, so this never double-counts recursion-free
        stacks (and counts each recursive frame once per stack thanks
        to the ``set``).
        """
        totals: Dict[str, float] = {}
        for stat in self._stacks.values():
            for frame in set(stat.stack):
                totals[frame] = totals.get(frame, 0.0) + stat.self_ns
        return totals

    def collapsed(self) -> List[str]:
        """Flamegraph collapsed-stack lines (value = self sim-ns)."""
        lines = []
        for stat in sorted(self._stacks.values(), key=lambda s: s.stack):
            value = int(round(stat.self_ns))
            if value > 0:
                lines.append(";".join(stat.stack) + f" {value}")
        return lines

    def write_collapsed(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write("\n".join(self.collapsed()) + "\n")
        return path

    def report(self, top: int = 20) -> List[Dict[str, object]]:
        """Top-``top`` stacks by self sim-time, with per-frame cumulative."""
        cumulative = self.cumulative_by_frame()
        rows = []
        for stat in sorted(
            self._stacks.values(), key=lambda s: -s.self_ns
        )[: top]:
            rows.append({
                "stack": ";".join(stat.stack),
                "leaf": stat.leaf,
                "count": stat.count,
                "self_ns": stat.self_ns,
                "self_pct": (100.0 * stat.self_ns / self._total_sim_ns
                             if self._total_sim_ns else 0.0),
                "cumulative_ns": cumulative.get(stat.leaf, stat.self_ns),
            })
        return rows

    def host_report(self, top: int = 20) -> List[Dict[str, object]]:
        """Top-``top`` kernel callbacks by host wall-time."""
        rows = []
        total = sum(s.host_ns for s in self._host.values()) or 1
        for stat in sorted(self._host.values(), key=lambda s: -s.host_ns)[:top]:
            rows.append({
                "operation": stat.operation,
                "events": stat.events,
                "host_ns": stat.host_ns,
                "host_pct": 100.0 * stat.host_ns / total,
                "sim_ns": stat.sim_ns,
            })
        return rows

    def format_report(self, top: int = 20) -> str:
        lines = [
            f"profile: {self._total_sim_ns:.0f} sim-ns under "
            f"{len(self._stacks)} stacks, "
            f"{self.coverage() * 100.0:.1f}% attributed to named "
            f"(layer, tenant) frames"
        ]
        if self._wall_ns:
            lines[0] += f", {self._wall_ns / 1e6:.1f} ms wall"
        lines.append(f"{'self sim-ns':>14}  {'self %':>7}  {'calls':>7}  stack")
        for row in self.report(top):
            lines.append(
                f"{row['self_ns']:>14.0f}  {row['self_pct']:>6.2f}%  "
                f"{row['count']:>7}  {row['stack']}"
            )
        host_rows = self.host_report(top)
        if host_rows:
            lines.append("")
            lines.append(
                f"{'host ns':>14}  {'host %':>7}  {'events':>7}  "
                "kernel callback"
            )
            for row in host_rows:
                lines.append(
                    f"{row['host_ns']:>14}  {row['host_pct']:>6.2f}%  "
                    f"{row['events']:>7}  {row['operation']}"
                )
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        """Machine-readable roll-up (embedded in BENCH artifacts)."""
        return {
            "total_sim_ns": self._total_sim_ns,
            "attributed_sim_ns": self._attributed_sim_ns,
            "coverage": self.coverage(),
            "stacks": len(self._stacks),
            "instants": self._instants,
            "wall_ns": self._wall_ns,
            "kernel_events_timed": sum(s.events for s in self._host.values()),
            "kernel_host_ns": sum(s.host_ns for s in self._host.values()),
        }


def _is_named_lane(cat: str, tenant: Optional[int]) -> bool:
    """A lane is *named* when its layer is a real category and its
    tenant resolves (a domain id, or the infra lane)."""
    return bool(cat) and (tenant is None or isinstance(tenant, int))


def _callback_name(callback) -> str:
    name = getattr(callback, "__qualname__", None)
    if name is None:
        return repr(callback)
    return name.replace(".<locals>", "")


def profile_cotenancy_scenario(
    collapsed_path: Optional[str] = None,
    n_packets: int = 60,
    top: int = 15,
) -> Dict[str, object]:
    """Run the packaged co-tenancy demo under the profiler.

    This is what ``python -m repro bench --profile`` executes: the
    scenario runs with tracing on and the event kernel hooked, the span
    stream is folded into (layer, tenant, operation) stacks, and the
    collapsed-stack file (if requested) is written for flamegraph
    tooling.  Returns ``{"profiler", "scenario", "collapsed_path"}``.
    """
    import os
    import tempfile

    from repro.obs import tracer as tracer_mod
    from repro.obs.scenario import run_cotenancy_scenario

    profiler = Profiler()
    with tempfile.TemporaryDirectory() as tmp:
        with profiler.measure():
            scenario = run_cotenancy_scenario(
                out_path=os.path.join(tmp, "profile_trace.json"),
                n_packets=n_packets,
                profiler=profiler,
            )
    profiler.ingest(tracer_mod.get_tracer())
    if collapsed_path:
        profiler.write_collapsed(collapsed_path)
    return {
        "profiler": profiler,
        "scenario": scenario,
        "collapsed_path": collapsed_path,
        "report": profiler.report(top),
        "summary": profiler.summary(),
    }
