"""Sim-time series sampling driven by the event kernel.

The Figure 7 monitor benchmark (and any experiment that wants "metric X
over simulated time") used to hand-roll its own stepping loop: advance
the clock, read a gauge, append to a list.  Each copy picked its own
cadence and its own output shape, and none of them composed with the
discrete-event experiments where time advances through
:class:`repro.hw.events.Simulator`.

:class:`TimeSeriesSampler` replaces those loops.  It schedules itself on
the event kernel at a fixed ``interval_ns``, evaluates a set of named
*probes* (zero-argument callables returning a number — a pull gauge, a
registry counter read, a model evaluated at ``now``), and appends one
aligned row per tick into per-series ring buffers.  Because the sampler
rides the same integer-nanosecond queue as the workload, its samples
are deterministic: same workload, same cadence, byte-identical CSV.

Termination is cooperative: on each tick the sampler only reschedules
itself while the simulation still has other pending work (or until an
explicit ``until_ns`` horizon), so a drain loop like
``while sim.pending: sim.step()`` cannot be kept alive forever by its
own telemetry.

For model-driven series with no event kernel at all (the monitor cost
model plots memory over *seconds* of host time), :func:`sample_function`
evaluates a function over a fixed grid into the same :class:`Series`
shape, so both kinds of experiment export through one CSV/JSON path.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.hw.events import Simulator

Probe = Callable[[], float]

#: Default ring capacity: enough for any packaged benchmark while
#: bounding memory if a sampler is left running on a long simulation.
DEFAULT_CAPACITY = 65536


class Series:
    """One named time series backed by a bounded ring buffer."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("series capacity must be positive")
        self.name = name
        self._times: Deque[float] = deque(maxlen=capacity)
        self._values: Deque[float] = deque(maxlen=capacity)

    def append(self, time_ns: float, value: float) -> None:
        self._times.append(time_ns)
        self._values.append(value)

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def latest(self) -> Optional[Tuple[float, float]]:
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Series({self.name!r}, n={len(self)})"


class TimeSeriesSampler:
    """Periodic, kernel-driven sampling of named probes.

    Usage::

        sampler = TimeSeriesSampler(sim, interval_ns=1000)
        sampler.watch("ring_occupancy", lambda: float(nic.rx_ring.depth))
        sampler.watch("cache_misses", lambda: misses.value)
        sampler.start()
        ... run the workload ...
        sampler.sample_now()          # final row after the drain
        sampler.write_csv("out.csv")
    """

    def __init__(self, sim: Simulator, interval_ns: int,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.interval_ns = int(interval_ns)
        self.capacity = capacity
        self._probes: Dict[str, Probe] = {}
        self._series: Dict[str, Series] = {}
        self._handle = None
        self._until_ns: Optional[int] = None
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def watch(self, name: str, probe: Probe) -> Series:
        """Register ``probe`` under ``name``; returns its series."""
        if name in self._probes:
            raise ValueError(f"duplicate series name {name!r}")
        self._probes[name] = probe
        series = Series(name, capacity=self.capacity)
        self._series[name] = series
        return series

    @property
    def names(self) -> List[str]:
        return list(self._probes)

    def series(self, name: str) -> Series:
        return self._series[name]

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_now(self) -> None:
        """Evaluate every probe once at the current simulated instant."""
        now = float(self.sim.now_ns)
        for name, probe in self._probes.items():
            self._series[name].append(now, float(probe()))
        self.samples_taken += 1

    def start(self, until_ns: Optional[int] = None,
              sample_immediately: bool = True) -> None:
        """Begin periodic sampling.

        Without ``until_ns`` the sampler stops by itself once the rest
        of the simulation goes idle; with it, sampling continues on the
        grid up to (and including) that horizon regardless of other
        pending work.
        """
        if self._handle is not None:
            raise RuntimeError("sampler already started")
        self._until_ns = until_ns
        if sample_immediately:
            self.sample_now()
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._handle is not None

    def _tick(self) -> None:
        self._handle = None
        if self._until_ns is not None and self.sim.now_ns > self._until_ns:
            return
        self.sample_now()
        next_time = self.sim.now_ns + self.interval_ns
        if self._until_ns is not None:
            if next_time <= self._until_ns:
                self._handle = self.sim.schedule(self.interval_ns, self._tick)
        elif self.sim.pending > 0:
            # Cooperative shutdown: our own event has already popped, so
            # ``pending`` counts only *other* work.  Nothing left means
            # the workload is done and rescheduling would keep a
            # drain-until-empty loop alive forever.
            self._handle = self.sim.schedule(self.interval_ns, self._tick)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def rows(self) -> Tuple[List[str], List[List[float]]]:
        """Aligned export: header + one row per tick.

        All probes are sampled on the same tick, so the per-series ring
        buffers stay aligned (a full ring drops the same oldest tick
        from every series).
        """
        header = ["time_ns"] + sorted(self._series)
        names = header[1:]
        if not names:
            return header, []
        times = self._series[names[0]].times
        columns = [self._series[n].values for n in names]
        out: List[List[float]] = []
        for i, t in enumerate(times):
            out.append([t] + [col[i] for col in columns])
        return header, out

    def to_csv(self) -> str:
        header, rows = self.rows()
        lines = [",".join(header)]
        for row in rows:
            lines.append(",".join(f"{v:g}" for v in row))
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval_ns": self.interval_ns,
            "samples": self.samples_taken,
            "series": {
                name: {"times": s.times, "values": s.values}
                for name, s in sorted(self._series.items())
            },
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def sample_function(fn: Callable[[float], float], start: float, stop: float,
                    step: float, name: str = "value") -> Series:
    """Evaluate ``fn`` over a fixed grid into a :class:`Series`.

    For model-driven series with no event kernel (e.g. the monitor
    memory model, which is a closed-form function of elapsed seconds).
    The grid is inclusive of ``stop`` modulo floating-point stepping,
    matching the historical ``while t <= stop`` loops it replaces.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    n_steps = int(round((stop - start) / step))
    series = Series(name, capacity=max(DEFAULT_CAPACITY, n_steps + 2))
    t = start
    i = 0
    while t <= stop + 1e-9:
        series.append(t, float(fn(t)))
        i += 1
        t = start + i * step
    return series


def merge_series_csv(series: Sequence[Series], time_label: str = "t") -> str:
    """CSV for a set of independently-gridded series sharing one grid.

    All series must have identical times (the :func:`sample_function`
    pattern with shared grid parameters); raises ``ValueError``
    otherwise rather than silently misaligning rows.
    """
    if not series:
        return time_label + "\n"
    times = series[0].times
    for s in series[1:]:
        if s.times != times:
            raise ValueError(
                f"series {s.name!r} is on a different time grid")
    header = [time_label] + [s.name for s in series]
    lines = [",".join(header)]
    columns = [s.values for s in series]
    for i, t in enumerate(times):
        row = [t] + [col[i] for col in columns]
        lines.append(",".join(f"{v:g}" for v in row))
    return "\n".join(lines) + "\n"
