"""OpenMetrics text exposition for the metrics registry and windows.

Everything the repo measures lives in :mod:`repro.obs.metrics`'s
registry with a private ``sample()`` shape.  This module renders that
state — plus the per-window delta series from
:mod:`repro.obs.windows` — in the OpenMetrics text format, the
industry-standard scrape surface, so scorecard runs can be diffed,
graphed, or ingested by anything that reads Prometheus exports.

Subset implemented (deliberately small, fully validated):

* one ``# TYPE family kind`` line per family, families sorted by name;
* counter samples named ``family_total`` (registry counters already
  follow the ``_total`` convention, so the family drops the suffix);
* gauge samples named after their family;
* histogram samples as cumulative ``family_bucket{le="..."}`` rows,
  a terminal ``le="+Inf"`` bucket, then ``family_count`` and
  ``family_sum``;
* a final ``# EOF`` terminator (what distinguishes OpenMetrics from
  the older Prometheus text format).

Rendering is pure string work over already-deterministic state: no
timestamps are emitted (sim time is carried by explicit ``*_ns``
families instead), labels render sorted, and values format through one
shared function — so same-seed runs export byte-identical text, which
CI ``cmp``s.

:func:`validate_text` is the matching checker: it re-parses an
exposition and reports structural violations (missing ``# EOF``,
samples without a ``# TYPE``, non-cumulative or ``+Inf``-less
histograms, counter samples not named ``_total`` …).  The CI
``slo-smoke`` job round-trips the scorecard's export through
``python -m repro.obs.openmetrics FILE``, which exits non-zero on the
first violation.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.windows import WindowSnapshot

#: ``(sample_name, labels, value)`` — one exposition line.
Sample = Tuple[str, Dict[str, str], float]

#: ``(family_name, family_type, samples)`` — one ``# TYPE`` block.
Family = Tuple[str, str, List[Sample]]


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _fmt_value(value: float) -> str:
    """Deterministic value text: integral floats render as integers."""
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"non-finite sample value {value!r} cannot be "
                         f"exported (cap before exporting)")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _family_name(name: str, kind: str) -> str:
    """OpenMetrics family name: counters drop their ``_total`` suffix."""
    if kind == "counter" and name.endswith("_total"):
        return name[:-len("_total")]
    return name


def registry_families(registry: Optional[MetricsRegistry] = None,
                      extra_labels: Optional[Dict[str, str]] = None,
                      ) -> List[Family]:
    """Group a registry's instruments into sorted exposition families.

    ``extra_labels`` (e.g. ``{"arbiter": "temporal"}``) are folded into
    every sample — how the scorecard stamps each arbiter's sweep.
    """
    registry = registry if registry is not None else get_registry()
    extra = dict(extra_labels or {})
    families: Dict[Tuple[str, str], List[Sample]] = {}
    for instrument in registry.instruments():
        labels = {k: v for k, v in instrument.labels}
        labels.update(extra)
        if isinstance(instrument, Histogram):
            family = _family_name(instrument.name, "histogram")
            rows = families.setdefault((family, "histogram"), [])
            cumulative = 0
            for bound, count in zip(instrument.bounds, instrument.counts):
                cumulative += count
                rows.append((family + "_bucket",
                             dict(labels, le=_fmt_value(bound)),
                             float(cumulative)))
            rows.append((family + "_bucket", dict(labels, le="+Inf"),
                         float(instrument.count)))
            rows.append((family + "_count", dict(labels),
                         float(instrument.count)))
            rows.append((family + "_sum", dict(labels),
                         float(instrument.sum)))
        elif isinstance(instrument, Counter):
            family = _family_name(instrument.name, "counter")
            families.setdefault((family, "counter"), []).append(
                (family + "_total", dict(labels), instrument.value))
        elif isinstance(instrument, Gauge):
            family = _family_name(instrument.name, "gauge")
            families.setdefault((family, "gauge"), []).append(
                (family, dict(labels), instrument.value))
    return [(name, kind, sorted(samples, key=_sample_sort_key))
            for (name, kind), samples in sorted(families.items())]


def _sample_sort_key(sample: Sample):
    name, labels, _ = sample
    # ``le`` must keep bucket order (numeric), not lexical order.
    le = labels.get("le")
    le_rank = (float("inf") if le in (None, "+Inf") else float(le))
    rest = sorted((k, v) for k, v in labels.items() if k != "le")
    return (name, rest, le_rank)


def window_families(snapshots: Sequence[WindowSnapshot],
                    extra_labels: Optional[Dict[str, str]] = None,
                    ) -> List[Family]:
    """Per-window series as gauge families.

    Three families, one sample per (window, instrument):

    * ``slo_window_end_ns`` — each window's closing sim timestamp;
    * ``slo_window_delta`` — every counter's in-window delta, labelled
      with the source ``metric`` name plus its own labels;
    * ``slo_window_p99_ns`` — each delta histogram's in-window p99.
    """
    extra = dict(extra_labels or {})
    ends: List[Sample] = []
    deltas: List[Sample] = []
    p99s: List[Sample] = []
    for snap in snapshots:
        window = str(snap.index)
        ends.append(("slo_window_end_ns", dict(extra, window=window),
                     float(snap.end_ns)))
        for (name, labels), delta in sorted(snap.counters.items()):
            row = dict(extra, window=window, metric=name)
            row.update({k: v for k, v in labels})
            deltas.append(("slo_window_delta", row, delta))
        for (name, labels), hist in sorted(snap.histograms.items()):
            row = dict(extra, window=window, metric=name)
            row.update({k: v for k, v in labels})
            p99s.append(("slo_window_p99_ns", row, hist.p99))
    families: List[Family] = [("slo_window_end_ns", "gauge", ends)]
    if deltas:
        families.append(("slo_window_delta", "gauge", deltas))
    if p99s:
        families.append(("slo_window_p99_ns", "gauge", p99s))
    return families


def merge_families(families: Iterable[Family]) -> List[Family]:
    """Merge family lists that share ``(name, kind)`` into one list.

    The scorecard exports one exposition covering several arbiter runs:
    each run contributes the same family names (distinguished by an
    ``arbiter`` sample label), and OpenMetrics forbids repeating a
    ``# TYPE`` line — so samples are concatenated per family and
    re-sorted.  A name registered with two different kinds is a hard
    error (the same rule the registry itself enforces).
    """
    merged: Dict[str, Tuple[str, List[Sample]]] = {}
    for name, kind, samples in families:
        known = merged.get(name)
        if known is None:
            merged[name] = (kind, list(samples))
        elif known[0] != kind:
            raise ValueError(f"family {name!r} is both {known[0]} and "
                             f"{kind}")
        else:
            known[1].extend(samples)
    return [(name, kind, sorted(samples, key=_sample_sort_key))
            for name, (kind, samples) in sorted(merged.items())]


def render_families(families: Iterable[Family]) -> str:
    lines: List[str] = []
    for name, kind, samples in families:
        lines.append(f"# TYPE {name} {kind}")
        for sample_name, labels, value in samples:
            lines.append(f"{sample_name}{_fmt_labels(labels)} "
                         f"{_fmt_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render(registry: Optional[MetricsRegistry] = None,
           windows: Optional[Sequence[WindowSnapshot]] = None,
           extra_labels: Optional[Dict[str, str]] = None) -> str:
    """One complete OpenMetrics exposition: registry, then windows."""
    families = registry_families(registry, extra_labels=extra_labels)
    if windows:
        families.extend(window_families(windows, extra_labels=extra_labels))
    return render_families(families)


def write(path: str, registry: Optional[MetricsRegistry] = None,
          windows: Optional[Sequence[WindowSnapshot]] = None,
          extra_labels: Optional[Dict[str, str]] = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render(registry, windows=windows,
                        extra_labels=extra_labels))


# ----------------------------------------------------------------------
# Validation (the CI checker)
# ----------------------------------------------------------------------

_SUFFIXES = {"histogram": ("_bucket", "_count", "_sum"),
             "counter": ("_total",), "gauge": ("",)}


def _parse_sample(line: str) -> Optional[Tuple[str, Dict[str, str], str]]:
    """``name{labels} value`` → parts, or ``None`` when malformed."""
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            return None
        name = line[:brace]
        label_text = line[brace + 1:close]
        rest = line[close + 1:].strip()
        labels: Dict[str, str] = {}
        if label_text:
            for part in label_text.split('",'):
                if "=" not in part:
                    return None
                key, _, raw = part.partition("=")
                labels[key.strip()] = raw.strip().strip('"')
    else:
        name, _, rest = line.partition(" ")
        labels = {}
        rest = rest.strip()
    if not name or not rest or " " in rest:
        return None
    return name, labels, rest


def validate_text(text: str) -> List[str]:
    """Structural OpenMetrics checks; returns a list of violations."""
    errors: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        errors.append("exposition must end with '# EOF'")
    if not text.endswith("\n"):
        errors.append("exposition must end with a trailing newline")
    types: Dict[str, str] = {}
    bucket_state: Dict[str, Tuple[float, float]] = {}
    seen_counts: Dict[str, bool] = {}
    for lineno, line in enumerate(lines, start=1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _SUFFIXES:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            if parts[2] in types:
                errors.append(f"line {lineno}: duplicate family "
                              f"{parts[2]!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        parsed = _parse_sample(line)
        if parsed is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, labels, value_text = parsed
        try:
            value = float(value_text)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value "
                          f"{value_text!r}")
            continue
        family = _resolve_family(name, types)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no "
                          f"preceding # TYPE")
            continue
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(f"line {lineno}: counter sample {name!r} "
                              f"must end in _total")
            if value < 0:
                errors.append(f"line {lineno}: negative counter")
        elif kind == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                errors.append(f"line {lineno}: histogram bucket without "
                              f"le label")
                continue
            series = family + _fmt_labels(
                {k: v for k, v in labels.items() if k != "le"})
            le_value = float("inf") if le == "+Inf" else float(le)
            prev_le, prev_cum = bucket_state.get(
                series, (float("-inf"), 0.0))
            if le_value <= prev_le:
                errors.append(f"line {lineno}: bucket le={le} out of "
                              f"order for {series}")
            if value < prev_cum:
                errors.append(f"line {lineno}: bucket counts not "
                              f"cumulative for {series}")
            bucket_state[series] = (le_value, value)
            if le == "+Inf":
                seen_counts[series] = True
    for series, (last_le, _) in bucket_state.items():
        if last_le != float("inf") or not seen_counts.get(series):
            errors.append(f"histogram {series} has no le=\"+Inf\" bucket")
    return errors


def _resolve_family(sample_name: str, types: Dict[str, str],
                    ) -> Optional[str]:
    for family, kind in types.items():
        for suffix in _SUFFIXES[kind]:
            if sample_name == family + suffix:
                return family
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.openmetrics FILE`` — the CI checker."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.obs.openmetrics FILE",
              file=sys.stderr)
        return 2
    with open(args[0], "r", encoding="utf-8") as fh:
        text = fh.read()
    errors = validate_text(text)
    for error in errors:
        print(f"openmetrics: {error}", file=sys.stderr)
    if not errors:
        samples = sum(1 for line in text.splitlines()
                      if line and not line.startswith("#"))
        print(f"openmetrics: OK ({samples} samples)")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
