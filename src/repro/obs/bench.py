"""``repro.obs.bench`` — the unified benchmark harness.

The evaluation used to be 22 one-off scripts under ``benchmarks/``,
each printing tables by hand, with no recorded performance trajectory:
a regression in the event kernel or the cache simulator would ship
silently.  This module makes the whole evaluation a single measured
unit:

* **discovery** — every ``benchmarks/bench_*.py`` that exposes a
  ``run(quick: bool) -> dict`` entry point is a *scenario*;
* **isolation** — each scenario runs under a freshly reset metrics
  registry (serial labels restart at ``#1``), a cleared/disabled
  tracer, and zeroed event-kernel counters, so scenarios can neither
  alias nor observe each other;
* **telemetry** — per scenario the harness records host wall-time,
  simulated nanoseconds advanced, discrete events executed, trace
  events recorded, registry size, and the scenario's own key model
  outputs (whatever its ``run`` returns);
* **artifact** — one schema-versioned ``BENCH_<timestamp>.json`` at the
  repo root per run;
* **regression detection** — :func:`compare` diffs two artifacts and
  flags wall-time regressions beyond a configurable threshold, plus
  sim-side drift (different event counts for the same scenario mean the
  *model* changed, not the machine).

CLI: ``python -m repro bench [--quick] [--profile] [--compare A B]``.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

SCHEMA = "repro.bench"
SCHEMA_VERSION = 1

#: Default wall-time regression threshold for :func:`compare` (fraction).
DEFAULT_THRESHOLD = 0.20


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------

def default_bench_dir() -> Path:
    """The repo's ``benchmarks/`` directory (source checkouts only)."""
    here = Path(__file__).resolve()
    for candidate in (here.parents[3] / "benchmarks",
                      Path.cwd() / "benchmarks"):
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError(
        "no benchmarks/ directory found; pass bench_dir explicitly")


def discover(bench_dir: Optional[Path] = None) -> List[Path]:
    """Every ``bench_*.py`` scenario file, sorted by name."""
    bench_dir = Path(bench_dir) if bench_dir else default_bench_dir()
    return sorted(bench_dir.glob("bench_*.py"))


def scenario_name(path: Path) -> str:
    return path.stem[len("bench_"):] if path.stem.startswith("bench_") \
        else path.stem


def load_scenario(path: Path):
    """Import one bench script as a module (``_common`` importable)."""
    import importlib.util

    bench_dir = str(path.parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    spec = importlib.util.spec_from_file_location(
        f"repro_bench.{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------

@dataclass
class BenchRecord:
    """One scenario's measured run."""

    name: str
    status: str = "ok"                  # "ok" | "error" | "skipped"
    wall_s: float = 0.0
    sim_time_ns: int = 0
    events_executed: int = 0
    trace_events: int = 0
    metrics_instruments: int = 0
    #: ``{metric{labels}: {count,p50,p95,p99}}`` for every histogram the
    #: scenario left in its registry — tail latency lands in the
    #: artifact without each bench script exporting it by hand.
    histograms: Optional[Dict[str, Dict[str, float]]] = None
    outputs: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "wall_s": self.wall_s,
            "sim_time_ns": self.sim_time_ns,
            "events_executed": self.events_executed,
            "trace_events": self.trace_events,
            "metrics_instruments": self.metrics_instruments,
            "histograms": self.histograms,
            "outputs": self.outputs,
            "error": self.error,
        }


def _isolate() -> None:
    """Reset every piece of process-global observability state."""
    from repro.hw import events as hw_events
    from repro.obs import auditlog, flight, metrics, tracer

    metrics.reset()
    hw_events.reset_kernel_stats()
    t = tracer.get_tracer()
    t.disable()
    t.use_clock(None)
    t.clear()
    t.mirror = None
    flight.reset()
    auditlog.reset()


def run_scenario(path: Path, quick: bool = False,
                 capture: bool = True) -> BenchRecord:
    """Run one bench script's ``run(quick)`` under full isolation."""
    from repro.hw import events as hw_events
    from repro.obs import metrics, tracer

    record = BenchRecord(name=scenario_name(path))
    _isolate()
    buffer = io.StringIO()
    started = time.perf_counter()  # snic: ignore[SNIC007] -- the bench harness *measures* host wall-time; BENCH artifacts are timestamped, not byte-compared
    try:
        with contextlib.redirect_stdout(buffer) if capture \
                else contextlib.nullcontext():
            module = load_scenario(path)
            run = getattr(module, "run", None)
            if run is None:
                record.status = "skipped"
                record.error = "no run(quick) entry point"
                return record
            outputs = run(quick=quick)
        record.outputs = jsonable(outputs if isinstance(outputs, dict)
                                  else {"result": outputs})
    except Exception:
        record.status = "error"
        tail = buffer.getvalue().splitlines()[-5:]
        record.error = traceback.format_exc(limit=8) + (
            "\n[stdout tail]\n" + "\n".join(tail) if tail else "")
    finally:
        record.wall_s = time.perf_counter() - started  # snic: ignore[SNIC007] -- wall_s is the bench regression signal; matrix cells leave it 0.0 instead
        stats = hw_events.kernel_stats()
        record.sim_time_ns = stats["sim_ns_advanced"]
        record.events_executed = stats["events_executed"]
        record.trace_events = len(tracer.get_tracer().events)
        record.metrics_instruments = len(metrics.get_registry())
        record.histograms = _histogram_percentiles(metrics.get_registry())
        _isolate()
    return record


def _histogram_percentiles(registry) -> Optional[Dict[str, Dict[str, float]]]:
    """Tail-latency summary of every populated histogram in ``registry``."""
    from repro.obs.export import _format_labels
    from repro.obs.metrics import Histogram

    out: Dict[str, Dict[str, float]] = {}
    for instrument in registry.instruments():
        if not isinstance(instrument, Histogram) or not instrument.count:
            continue
        key = instrument.name
        labels = _format_labels(dict(instrument.labels))
        if labels:
            key = f"{key}{{{labels}}}"
        out[key] = {
            "count": float(instrument.count),
            "p50": instrument.p50,
            "p95": instrument.p95,
            "p99": instrument.p99,
        }
    return dict(sorted(out.items())) or None


def run_benchmarks(
    bench_dir: Optional[Path] = None,
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    capture: bool = True,
    progress=None,
) -> Dict[str, object]:
    """Run every discovered scenario and build the artifact dict.

    ``only`` filters by scenario name (substring match); ``progress`` is
    an optional callable invoked with each finished :class:`BenchRecord`
    (the CLI uses it to print one line per scenario as it lands).
    """
    import platform

    import repro

    paths = discover(bench_dir)
    if only:
        paths = [p for p in paths
                 if any(pat in scenario_name(p) for pat in only)]
    records: List[BenchRecord] = []
    started = time.perf_counter()
    for path in paths:
        record = run_scenario(path, quick=quick, capture=capture)
        records.append(record)
        if progress is not None:
            progress(record)
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repro_version": getattr(repro, "__version__", "unknown"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "n_benchmarks": len(records),
        "n_ok": sum(1 for r in records if r.status == "ok"),
        "n_error": sum(1 for r in records if r.status == "error"),
        "total_wall_s": time.perf_counter() - started,
        "benchmarks": {r.name: r.as_dict() for r in records},
    }


def artifact_path(out_dir: Optional[Path] = None,
                  timestamp: Optional[str] = None) -> Path:
    out_dir = Path(out_dir) if out_dir else default_bench_dir().parent
    stamp = timestamp or time.strftime("%Y%m%d_%H%M%S")
    return out_dir / f"BENCH_{stamp}.json"


def write_artifact(artifact: Dict[str, object],
                   path: Optional[Path] = None) -> Path:
    path = Path(path) if path else artifact_path()
    path.write_text(json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return path


def load_artifact(path) -> Dict[str, object]:
    with open(path) as fh:
        artifact = json.load(fh)
    if artifact.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} artifact "
                         f"(schema={artifact.get('schema')!r})")
    if int(artifact.get("schema_version", 0)) > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {artifact['schema_version']} is newer "
            f"than this harness understands ({SCHEMA_VERSION})")
    return artifact


# ----------------------------------------------------------------------
# Comparison / regression detection
# ----------------------------------------------------------------------

def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Diff two artifacts; flag wall-time regressions beyond ``threshold``.

    A scenario *regresses* when its candidate wall-time exceeds the
    baseline by more than ``threshold`` (fractional, default 20%).
    Changed ``events_executed``/``sim_time_ns`` are reported as *model
    drift* — the simulation itself changed, so wall-time deltas for that
    scenario are expected rather than alarming.
    """
    base = baseline["benchmarks"]
    cand = candidate["benchmarks"]
    rows: List[Dict[str, object]] = []
    for name in sorted(set(base) | set(cand)):
        a, b = base.get(name), cand.get(name)
        if a is None or b is None:
            rows.append({
                "name": name,
                "status": "added" if a is None else "removed",
                "regressed": False,
            })
            continue
        wall_a, wall_b = a["wall_s"], b["wall_s"]
        delta = (wall_b - wall_a) / wall_a if wall_a > 0 else 0.0
        drift = (a["events_executed"] != b["events_executed"]
                 or a["sim_time_ns"] != b["sim_time_ns"])
        rows.append({
            "name": name,
            "status": "compared",
            "wall_s_baseline": wall_a,
            "wall_s_candidate": wall_b,
            "wall_delta_pct": 100.0 * delta,
            "model_drift": drift,
            "regressed": (a["status"] == "ok" and b["status"] == "ok"
                          and delta > threshold),
        })
    regressions = [r["name"] for r in rows if r.get("regressed")]
    return {
        "schema": f"{SCHEMA}.compare",
        "threshold_pct": 100.0 * threshold,
        "baseline_created": baseline.get("created_utc"),
        "candidate_created": candidate.get("created_utc"),
        "quick_mismatch": baseline.get("quick") != candidate.get("quick"),
        "n_compared": sum(1 for r in rows if r["status"] == "compared"),
        "n_regressions": len(regressions),
        "regressions": regressions,
        "rows": rows,
    }


def compare_paths(path_a, path_b,
                  threshold: float = DEFAULT_THRESHOLD) -> Dict[str, object]:
    return compare(load_artifact(path_a), load_artifact(path_b),
                   threshold=threshold)


def format_compare(report: Dict[str, object]) -> str:
    lines = [
        f"bench compare — threshold {report['threshold_pct']:.0f}%, "
        f"{report['n_compared']} scenarios, "
        f"{report['n_regressions']} regression(s)"
    ]
    if report.get("quick_mismatch"):
        lines.append("WARNING: artifacts mix --quick and full runs; "
                     "wall-time deltas are not comparable")
    lines.append(f"{'scenario':<28} {'base s':>9} {'cand s':>9} "
                 f"{'delta':>8}  flags")
    for row in report["rows"]:
        if row["status"] != "compared":
            lines.append(f"{row['name']:<28} {'—':>9} {'—':>9} {'—':>8}  "
                         f"{row['status']}")
            continue
        flags = []
        if row["regressed"]:
            flags.append("REGRESSION")
        if row["model_drift"]:
            flags.append("model-drift")
        lines.append(
            f"{row['name']:<28} {row['wall_s_baseline']:>9.4f} "
            f"{row['wall_s_candidate']:>9.4f} "
            f"{row['wall_delta_pct']:>+7.1f}%  {' '.join(flags)}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSON hygiene
# ----------------------------------------------------------------------

def jsonable(value):
    """Recursively coerce a scenario's outputs into JSON-safe types.

    numpy scalars become Python floats/ints, tuples become lists,
    non-string dict keys are stringified, and anything else opaque is
    rendered with ``repr`` rather than failing the whole artifact.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") \
            else repr(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    # numpy scalars (and anything else numeric) without importing numpy:
    for caster in (int, float):
        try:
            if isinstance(value, caster) or (
                    hasattr(value, "item") and
                    isinstance(value.item(), (int, float))):
                return jsonable(value.item() if hasattr(value, "item")
                                else caster(value))
        except Exception:
            pass
    return repr(value)
