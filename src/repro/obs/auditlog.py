"""Append-only, sha256 hash-chained audit log of security-relevant
events.

S-NIC's lifecycle guarantees (§4.6: attested launch, scrubbed teardown,
fresh-identity relaunch) are *enforced* by the simulation and IsoSan —
this module makes them *witnessed*.  Every security-relevant action
(attestation verdict, page scrub, TLB install/clear, denylist block,
cross-tenant denial, fault injection, watchdog/recovery action) appends
one record whose hash covers both its own canonical payload and the
previous record's hash, TNIC-style: flipping any byte anywhere in the
serialized log — payload, back-pointer, or digest — breaks the chain at
that index and :func:`verify_records` reports it.

Record shape (all JSON-able)::

    {"seq": 3, "ts_ns": 1200.0, "kind": "memory.scrub", "tenant": 2,
     "detail": {"pages": 4, "scrubbed": true},
     "prev": "<hex sha256 of record 2>",
     "hash": "<hex sha256 of prev || canonical(payload)>"}

where ``payload`` is the record minus ``prev``/``hash``, canonicalized
as compact sorted-key JSON, and record 0 chains from a fixed
:data:`GENESIS` anchor.  Hashing reuses :mod:`repro.crypto.sha256` (the
same primitive the attestation model uses) in its ``fast`` mode.

Emission sites go through the :class:`AuditEmitter` facade so each
instrumented module pays the usual zero-cost-when-off toll::

    _AUDIT = get_emitter()
    ...
    if _AUDIT.active:
        _AUDIT.emit("tlb.install", tenant=owner, vbase=..., size=...)

``active`` is a plain attribute (no property, no call) refreshed
whenever the audit log or flight recorder is enabled/disabled, so the
disabled path is one attribute load and a falsy branch — the same
discipline the tracer's <5% overhead test pins down.

Timestamps come from a bound simulation clock or a deterministic
internal tick — never the wall clock — so same-seed runs produce
byte-identical chains (CI ``cmp``s chaos post-mortem bundles).
"""

from __future__ import annotations

import copy
import json
from typing import Any, Callable, Dict, List, Optional

from repro.crypto.sha256 import sha256_hex
from repro.obs import flight as flight_mod

#: Chain anchor for the first record: a fixed, content-free digest so an
#: empty log still has a well-defined head.
GENESIS = sha256_hex(b"snic-audit-genesis")


def _canonical(payload: Dict[str, Any]) -> bytes:
    """Canonical byte serialization: compact, sorted-key JSON."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _jsonable(value: Any) -> Any:
    """Coerce a detail value to something JSON round-trips exactly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def record_hash(prev: str, payload: Dict[str, Any]) -> str:
    """The chained digest of one record: sha256(prev || canonical)."""
    return sha256_hex(prev.encode("ascii") + _canonical(payload))


def verify_records(records: List[Dict[str, Any]],
                   anchor: Optional[str] = GENESIS) -> Optional[int]:
    """Verify a hash chain; return the first offending index, or
    ``None`` if the chain is intact.

    With ``anchor`` set (the default :data:`GENESIS` for full logs) the
    first record's ``prev`` must equal it.  With ``anchor=None`` the
    first record's ``prev`` is trusted — the mode for verifying a tail
    excerpt inside a post-mortem bundle, where the chain's prefix was
    truncated away but every surviving link must still hold.
    """
    prev = anchor
    expected_seq: Optional[int] = None
    for index, record in enumerate(records):
        try:
            payload = {key: record[key]
                       for key in ("seq", "ts_ns", "kind", "tenant",
                                   "detail")}
            claimed_prev = record["prev"]
            claimed_hash = record["hash"]
        except (KeyError, TypeError):
            return index
        if prev is not None and claimed_prev != prev:
            return index
        if expected_seq is not None and payload["seq"] != expected_seq:
            return index
        if record_hash(claimed_prev, payload) != claimed_hash:
            return index
        prev = claimed_hash
        seq = payload["seq"]
        expected_seq = seq + 1 if isinstance(seq, int) else None
    return None


class AuditLog:
    """An append-only, hash-chained log of security-relevant records."""

    def __init__(self,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.enabled = False
        self.records: List[Dict[str, Any]] = []
        self._clock = clock
        self._tick = 0
        self._head = GENESIS

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.enabled = True
        if clock is not None:
            self._clock = clock

    def disable(self) -> None:
        self.enabled = False

    def use_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """(Re)bind the time source; ``None`` reverts to internal ticks."""
        self._clock = clock

    def clear(self) -> None:
        """Drop all records and restart the chain from genesis."""
        self.records = []
        self._tick = 0
        self._head = GENESIS

    def now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        self._tick += 1
        return float(self._tick)

    # ------------------------------------------------------------------
    # Appending and verification
    # ------------------------------------------------------------------

    def append(self, kind: str, *, tenant: Optional[int] = None,
               ts_ns: Optional[float] = None,
               **detail: Any) -> Dict[str, Any]:
        """Append one record, extending the hash chain; returns it."""
        payload = {
            "seq": len(self.records),
            "ts_ns": self.now() if ts_ns is None else float(ts_ns),
            "kind": kind,
            "tenant": tenant,
            "detail": {key: _jsonable(value)
                       for key, value in sorted(detail.items())},
        }
        record = dict(payload)
        record["prev"] = self._head
        record["hash"] = record_hash(self._head, payload)
        self.records.append(record)
        self._head = record["hash"]
        return record

    def head(self) -> str:
        """The hash of the last record (or :data:`GENESIS` when empty)."""
        return self._head

    def verify_chain(self) -> Optional[int]:
        """Walk the whole chain from genesis; return the first tampered
        index, or ``None`` when every link holds."""
        return verify_records(self.records, anchor=GENESIS)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` records (default: all), as deep copies
        whose embedded ``prev`` pointers let the excerpt self-verify
        (deep so callers can't corrupt the live chain through aliased
        ``detail`` dicts)."""
        records = self.records if n is None else self.records[-n:]
        return copy.deepcopy(records)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return self.tail(None)


class AuditEmitter:
    """The shared guard object instrumented modules route through.

    Holds the process-wide audit log and flight recorder; ``active`` is
    kept in sync by the module-level enable/disable helpers so call
    sites pay one attribute load when everything is off.
    """

    __slots__ = ("active", "_log", "_flight")

    def __init__(self, log: AuditLog,
                 flight: "flight_mod.FlightRecorder") -> None:
        self._log = log
        self._flight = flight
        self.active = False

    def refresh(self) -> None:
        self.active = self._log.enabled or self._flight.enabled

    def emit(self, kind: str, *, tenant: Optional[int] = None,
             ts_ns: Optional[float] = None, **detail: Any) -> None:
        """Route one security event to every armed sink."""
        log = self._log
        if log.enabled:
            record = log.append(kind, tenant=tenant, ts_ns=ts_ns,
                                **detail)
            if ts_ns is None:
                # Reuse the log's timestamp so both sinks agree.
                ts_ns = record["ts_ns"]
        flight = self._flight
        if flight.enabled:
            flight.record("audit", kind, ts_ns=ts_ns, tenant=tenant,
                          track="audit", args=detail)


#: Process-wide singletons: one log, one emitter facade over it and the
#: default flight recorder.  The emitter holds object *references*, so
#: state resets clear these instances in place rather than rebinding.
_AUDIT_LOG = AuditLog()
_EMITTER = AuditEmitter(_AUDIT_LOG, flight_mod.get_flight_recorder())


def get_audit_log() -> AuditLog:
    return _AUDIT_LOG


def get_emitter() -> AuditEmitter:
    return _EMITTER


def enable_audit_log(
        clock: Optional[Callable[[], float]] = None) -> AuditLog:
    _AUDIT_LOG.enable(clock)
    _EMITTER.refresh()
    return _AUDIT_LOG


def disable_audit_log() -> None:
    _AUDIT_LOG.disable()
    _EMITTER.refresh()


def refresh_emitter() -> None:
    """Recompute the emitter's ``active`` flag — call after toggling the
    flight recorder directly."""
    _EMITTER.refresh()


def reset() -> None:
    """Return the audit log to its import-time state (bench/matrix
    ``_isolate`` and the test fixtures call this between cells)."""
    _AUDIT_LOG.disable()
    _AUDIT_LOG.use_clock(None)
    _AUDIT_LOG.clear()
    _EMITTER.refresh()
