"""Deterministic post-mortem forensics bundles.

When an :class:`~repro.core.errors.IsolationViolation`,
:class:`~repro.core.errors.WatchdogTimeout`, or
:class:`~repro.core.errors.RecoveryExhausted` fires — or a chaos run
injects a fault into a cell — the harness assembles one JSON bundle
holding everything an investigator needs to reconstruct the incident:

* ``reason`` — the triggering exception (or injected-fault note);
* ``scenario`` — the active :class:`~repro.scenario.spec.ScenarioSpec`
  (``to_dict()``) plus its seed, so the incident replays exactly;
* ``flight`` — the flight-recorder tail (recent spans/events/metric
  deltas in the sim-time window before the failure);
* ``audit`` — the audit-log tail with each record's embedded ``prev``
  pointer plus the chain head, so the excerpt *self-verifies*: any
  tampered byte in the serialized bundle breaks a link and
  ``python -m repro postmortem BUNDLE --verify`` exits nonzero;
* ``metrics`` — the full registry snapshot at failure time;
* ``interference`` — the per-tenant blame matrix flattened to sorted
  JSON rows plus the headline cross-tenant wait.

Bundles are pure functions of the seed: no wall-clock reads, sorted
keys, sorted rows — two same-seed chaos runs produce byte-identical
files and CI ``cmp``s them (lint rule SNIC008 additionally forbids wall
clocks anywhere in flight/postmortem scope).

CLI::

    python -m repro postmortem BUNDLE            # pretty-print
    python -m repro postmortem BUNDLE --verify   # exit 1 on tampering
    python -m repro postmortem BUNDLE --diff B2  # field-level diff
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, TextIO

from repro.obs import auditlog as auditlog_mod
from repro.obs import flight as flight_mod
from repro.obs import metrics as metrics_mod
from repro.obs.interference import blame_matrix, cross_tenant_wait_ns

SCHEMA = "repro.postmortem"
SCHEMA_VERSION = 1

#: Default number of flight entries / audit records kept in a bundle.
DEFAULT_TAIL = 64


def _reason_dict(reason: Any) -> Dict[str, Any]:
    """Normalize the trigger into ``{"kind", "message"}``."""
    if isinstance(reason, dict):
        return {"kind": str(reason.get("kind", "unknown")),
                "message": str(reason.get("message", ""))}
    if isinstance(reason, BaseException):
        return {"kind": type(reason).__name__, "message": str(reason)}
    return {"kind": "note", "message": str(reason)}


def _interference_rows(
        matrix: Dict[str, Dict[Any, Dict[str, float]]]
) -> List[Dict[str, Any]]:
    """Flatten the blame matrix's tuple-keyed cells into sorted,
    JSON-able rows."""
    rows = []
    for resource in sorted(matrix):
        for (victim, culprit) in sorted(matrix[resource]):
            cell = matrix[resource][(victim, culprit)]
            rows.append({
                "resource": resource,
                "tenant": victim,
                "culprit": culprit,
                "wait_ns": cell.get("wait_ns", 0.0),
                "events": cell.get("events", 0.0),
            })
    return rows


def build_bundle(*, reason: Any,
                 spec: Any = None,
                 flight: Optional["flight_mod.FlightRecorder"] = None,
                 audit: Optional["auditlog_mod.AuditLog"] = None,
                 registry: Optional[Any] = None,
                 tail: int = DEFAULT_TAIL) -> Dict[str, Any]:
    """Assemble a deterministic forensics bundle from live state."""
    flight = flight or flight_mod.get_flight_recorder()
    audit = audit or auditlog_mod.get_audit_log()
    registry = registry or metrics_mod.get_registry()
    matrix = blame_matrix(registry)
    audit_tail = audit.tail(tail)
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "reason": _reason_dict(reason),
        "scenario": spec.to_dict() if spec is not None else None,
        "seed": getattr(spec, "seed", None),
        "flight": {
            "capacity": flight.capacity,
            "window_ns": flight.window_ns,
            "n_entries": len(flight),
            "entries": flight.tail(tail),
        },
        "audit": {
            "genesis": auditlog_mod.GENESIS,
            "n_records": len(audit),
            "chain_head": audit.head(),
            "records": audit_tail,
        },
        "metrics": registry.snapshot(),
        "interference": {
            "cross_tenant_wait_ns": cross_tenant_wait_ns(matrix),
            "rows": _interference_rows(matrix),
        },
    }


def write_bundle(bundle: Dict[str, Any], path: str) -> str:
    """Serialize a bundle deterministically (sorted keys, trailing
    newline) so same-seed bundles are byte-identical."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def bundle_path(directory: str, name: str) -> str:
    """The canonical on-disk name for a bundle (gitignored pattern)."""
    return f"{directory}/POSTMORTEM_{name}.json"


def verify_bundle(bundle: Dict[str, Any]) -> List[str]:
    """Check a bundle's integrity; return a list of problems (empty
    means the bundle verifies)."""
    problems: List[str] = []
    if bundle.get("schema") != SCHEMA:
        problems.append(
            f"unexpected schema {bundle.get('schema')!r} "
            f"(want {SCHEMA!r})")
        return problems
    audit = bundle.get("audit")
    if not isinstance(audit, dict):
        problems.append("missing audit section")
        return problems
    records = audit.get("records", [])
    # The tail's first record may sit mid-chain, so trust its embedded
    # prev pointer (anchor=None) — every subsequent link must hold.
    bad = auditlog_mod.verify_records(records, anchor=None)
    if bad is not None:
        problems.append(
            f"audit chain broken at tail index {bad} "
            f"(seq {records[bad].get('seq', '?')})"
            if isinstance(records[bad], dict)
            else f"audit chain broken at tail index {bad}")
    if records:
        last = records[-1]
        head = audit.get("chain_head")
        if isinstance(last, dict) and last.get("hash") != head:
            problems.append(
                "chain head does not match the last record's hash")
    elif audit.get("chain_head") != audit.get("genesis"):
        problems.append(
            "empty audit tail but chain head differs from genesis")
    return problems


def diff_bundles(a: Dict[str, Any], b: Dict[str, Any],
                 prefix: str = "") -> List[str]:
    """Recursive field-level diff; returns ``path: a != b`` lines."""
    diffs: List[str] = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                diffs.append(f"{path}: only in second bundle")
            elif key not in b:
                diffs.append(f"{path}: only in first bundle")
            else:
                diffs.extend(diff_bundles(a[key], b[key], path))
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            diffs.append(f"{prefix}: length {len(a)} != {len(b)}")
        for index, (va, vb) in enumerate(zip(a, b)):
            diffs.extend(diff_bundles(va, vb, f"{prefix}[{index}]"))
    elif a != b:
        diffs.append(f"{prefix}: {a!r} != {b!r}")
    return diffs


def format_bundle(bundle: Dict[str, Any], *,
                  tail: int = 10) -> str:
    """A human-oriented text rendering of a bundle."""
    lines: List[str] = []
    reason = bundle.get("reason", {})
    lines.append(f"post-mortem bundle (schema {bundle.get('schema')} "
                 f"v{bundle.get('schema_version')})")
    lines.append(f"reason: {reason.get('kind')}: "
                 f"{reason.get('message')}")
    scenario = bundle.get("scenario")
    if scenario:
        lines.append(f"scenario: {scenario.get('name', '?')} "
                     f"(seed {bundle.get('seed')})")
    else:
        lines.append("scenario: (none attached)")
    audit = bundle.get("audit", {})
    records = audit.get("records", [])
    lines.append(f"audit: {audit.get('n_records', 0)} records, "
                 f"head {str(audit.get('chain_head', ''))[:16]}…, "
                 f"tail of {len(records)}:")
    for record in records[-tail:]:
        detail = json.dumps(record.get("detail", {}), sort_keys=True)
        lines.append(
            f"  [{record.get('seq'):>4}] ts={record.get('ts_ns')} "
            f"{record.get('kind')} tenant={record.get('tenant')} "
            f"{detail}")
    flight = bundle.get("flight", {})
    entries = flight.get("entries", [])
    lines.append(f"flight: {flight.get('n_entries', 0)} entries "
                 f"(capacity {flight.get('capacity')}, window "
                 f"{flight.get('window_ns')}), tail of {len(entries)}:")
    for entry in entries[-tail:]:
        lines.append(
            f"  ts={entry.get('ts_ns')} {entry.get('kind')} "
            f"{entry.get('name')} tenant={entry.get('tenant')}")
    interference = bundle.get("interference", {})
    lines.append(f"interference: cross_tenant_wait_ns="
                 f"{interference.get('cross_tenant_wait_ns')}")
    for row in interference.get("rows", [])[:tail]:
        lines.append(
            f"  {row['resource']}: victim={row['tenant']} "
            f"culprit={row['culprit']} wait_ns={row['wait_ns']} "
            f"events={row['events']}")
    lines.append(f"metrics: {len(bundle.get('metrics', []))} samples")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None,
         stream: Optional[TextIO] = None) -> int:
    """``python -m repro postmortem`` entry point."""
    stream = stream or sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro postmortem",
        description="Inspect, verify, or diff post-mortem forensics "
                    "bundles written by `repro chaos`/`repro matrix`.")
    parser.add_argument("bundle", help="path to a POSTMORTEM_*.json")
    parser.add_argument("--verify", action="store_true",
                        help="verify the audit hash chain and bundle "
                             "integrity; exit 1 on any problem")
    parser.add_argument("--diff", metavar="OTHER",
                        help="diff against a second bundle; exit 1 if "
                             "they differ")
    parser.add_argument("--tail", type=int, default=10,
                        help="how many tail rows to pretty-print "
                             "(default 10)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)

    bundle = load_bundle(args.bundle)

    if args.verify:
        problems = verify_bundle(bundle)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=stream)
            return 1
        audit = bundle.get("audit", {})
        print(f"OK: audit chain intact "
              f"({len(audit.get('records', []))} records in tail, "
              f"head {str(audit.get('chain_head', ''))[:16]}…)",
              file=stream)
        return 0

    if args.diff:
        other = load_bundle(args.diff)
        diffs = diff_bundles(bundle, other)
        if diffs:
            for line in diffs:
                print(line, file=stream)
            print(f"{len(diffs)} differences", file=stream)
            return 1
        print("bundles are identical", file=stream)
        return 0

    if args.format == "json":
        json.dump(bundle, stream, indent=2, sort_keys=True)
        stream.write("\n")
    else:
        print(format_bundle(bundle, tail=args.tail), file=stream)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
