"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Every simulated component used to keep its own ad-hoc statistics
(``hits``/``misses`` attributes, ``bytes_by_client`` dicts).  This
module centralises them: components create labelled instruments in a
:class:`MetricsRegistry` and expose their historical attribute names as
thin read-through properties, so the registry is the single source of
truth while existing call sites keep working.

Design notes
------------

* Instruments are identified by ``(name, labels)``; asking the registry
  for the same pair returns the same instrument (get-or-create), which
  is how sibling components share a metric family while distinct
  instances stay separate.
* Component *instances* must not collide: two :class:`~repro.hw.cache.Cache`
  objects both named ``l2`` are different caches with different
  statistics.  :func:`instance_label` mints a unique per-instance label
  (``l2#7``) that components fold into their label sets.
* The hot-path cost of a counter increment is one bound-method call and
  one float add — deliberately no locks, no timestamps, no allocation.
* Histograms use fixed bucket upper bounds with linear interpolation
  inside the winning bucket for percentile estimation; the default
  bucket ladder is log-spaced and spans 1 ns … ~1 s, suitable for every
  latency the simulators produce.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def instance_label(prefix: str) -> str:
    """A unique label for one component instance, e.g. ``l2#7``.

    Serial numbers are shared across prefixes within the default
    registry so two caches created by two different NICs can never
    alias each other's counters.  The counter lives on the registry
    (not in a module global) so each shard worker's registry numbers
    its own instances independently — a shard-safety requirement.
    """
    return _REGISTRY.instance_label(prefix)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (resettable for teardown/tests)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def sample(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": "counter",
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that goes up and down (queue depth, occupancy, backlog)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def sample(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": "gauge",
            "labels": dict(self.labels),
            "value": self.value,
        }


def default_latency_buckets() -> Tuple[float, ...]:
    """Log-spaced nanosecond buckets: 1 ns … ~1 s, four per decade."""
    bounds: List[float] = []
    for decade in range(9):  # 1e0 .. 1e8
        for mantissa in (1.0, 1.8, 3.2, 5.6):
            bounds.append(mantissa * 10**decade)
    bounds.append(1e9)
    return tuple(bounds)


_DEFAULT_BUCKETS = default_latency_buckets()


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in a +inf overflow bucket whose percentile estimate is
    clamped to the observed maximum.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum",
                 "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds else _DEFAULT_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def p50(self) -> float:
        """Median estimate; see :meth:`percentile`."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile estimate; see :meth:`percentile`."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """Tail-latency estimate; see :meth:`percentile`."""
        return self.percentile(99)

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0–100), bucket-interpolated."""
        if not self.count:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count and cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        This is the composition primitive windowed aggregation and
        shard-merged metrics are built on: merging per-window (or
        per-shard) histograms must be indistinguishable from having
        observed every value into one histogram, so the bucket ladders
        have to be *identical* — close-but-different bounds would
        silently skew percentile estimates, hence the hard error.
        """
        if not isinstance(other, Histogram):
            raise TypeError(f"cannot merge {type(other).__name__} into a "
                            f"Histogram")
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket bounds "
                f"differ ({len(other.bounds)} bounds vs {len(self.bounds)})")
        for i, bucket_count in enumerate(other.counts):
            self.counts[i] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        return self

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def sample(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": "histogram",
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Process-wide store of labelled instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    ``(name, labels)`` pair always maps to the same instrument object.
    ``register_collector`` attaches a zero-overhead pull source: a
    callable invoked only at :meth:`snapshot` time, for components whose
    hot loops are too hot even for a counter increment.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}
        self._collectors: List[Callable[[], Iterable[Dict[str, object]]]] = []
        self._serial = itertools.count(1)

    def instance_label(self, prefix: str) -> str:
        """A unique per-instance label minted from this registry's
        serial stream, e.g. ``l2#7`` (shared numbering across
        prefixes)."""
        return f"{prefix}#{next(self._serial)}"

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, key[1], bounds=bounds)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{name}{dict(key[1])} already registered as "
                            f"{type(instrument).__name__}")
        return instrument

    def _get_or_create(self, cls, name: str, labels: Dict[str, object]):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(f"{name}{dict(key[1])} already registered as "
                            f"{type(instrument).__name__}")
        return instrument

    def register_collector(
        self, collector: Callable[[], Iterable[Dict[str, object]]]
    ) -> None:
        self._collectors.append(collector)

    def merge_from(self, other: "MetricsRegistry") -> int:
        """Fold every instrument of ``other`` into this registry.

        Counters and gauges add their values; histograms go through
        :meth:`Histogram.merge` (identical bucket bounds required).
        Instruments missing here are created with the same
        ``(name, labels)`` identity, so merging shard registries — or
        window snapshots rebuilt as registries — is associative and
        order-independent for counters/histograms.  A ``(name, labels)``
        pair registered as different instrument types on the two sides
        is a hard :class:`TypeError`: silently coercing would corrupt
        both families.  Returns the number of instruments merged.
        """
        merged = 0
        for key, theirs in other._instruments.items():
            mine = self._instruments.get(key)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(theirs.name, key[1],
                                     bounds=theirs.bounds)
                else:
                    mine = type(theirs)(theirs.name, key[1])
                self._instruments[key] = mine
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"{theirs.name}{dict(key[1])} is a "
                    f"{type(theirs).__name__} in the source registry but "
                    f"a {type(mine).__name__} here")
            if isinstance(theirs, Histogram):
                mine.merge(theirs)
            else:
                mine.value += theirs.value
            merged += 1
        return merged

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> List[object]:
        return list(self._instruments.values())

    def snapshot(self) -> List[Dict[str, object]]:
        """Every instrument (and collector output) as plain dicts."""
        samples = [inst.sample() for inst in self._instruments.values()]
        for collector in self._collectors:
            samples.extend(collector())
        samples.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
        return samples

    def reset(self) -> None:
        """Zero every instrument's value (instrument objects survive, so
        components holding references keep counting from zero)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument and collector entirely and restart the
        per-instance serial stream."""
        self._instruments.clear()
        self._collectors.clear()
        self._serial = itertools.count(1)


#: The default process-wide registry every component instruments into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def snapshot() -> List[Dict[str, object]]:
    """Convenience: :meth:`MetricsRegistry.snapshot` of the default
    registry."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Return the default registry to its import-time state.

    Drops every instrument and collector *and* restarts the per-instance
    serial counter, so two scenarios run back to back mint identical
    labels (``l2#1``, ``bus#2`` …) instead of the second run's instances
    continuing the first run's numbering.  This is what keeps
    consecutive benchmarks — and consecutive tests — from aliasing each
    other's per-instance metric families.

    Components constructed *before* a reset keep counting into their
    (now unregistered) instrument objects; construct fresh components
    after resetting, which is what the benchmark harness and the test
    fixture both do.
    """
    _REGISTRY.clear()
