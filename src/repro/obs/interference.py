"""Per-tenant contention attribution — *who made whom wait, and where*.

The paper's central claim is noninterference: with S-NIC partitioning
on, one tenant's activity must be invisible in another tenant's timing
(§4.5, §6).  The repo can *assert* that (IsoSan, the differential
harness in :mod:`repro.core.noninterference`) but until now could not
*measure or explain* it: when a victim slowed down, nothing said which
shared resource and which co-tenant caused the wait.

This module is the accounting layer every shared hardware resource
blames into.  Each time a request from ``victim`` is delayed because of
work attributable to ``culprit`` on ``resource``, the resource calls::

    get_accountant().blame(resource, victim=v, culprit=c, wait_ns=w)

which lands in two tenant-tagged counter families in the metrics
registry:

* ``interference_wait_ns_total{resource, tenant, culprit}`` —
  nanoseconds the victim (``tenant``) spent waiting behind the
  culprit's traffic;
* ``interference_events_total{resource, tenant, culprit}`` — how many
  of the victim's requests were delayed by that culprit.

``tenant == culprit`` entries are *self-interference* (a tenant queued
behind its own traffic, or temporal-partitioning epoch/dead-time
overhead — overhead the tenant would pay even running alone).  Entries
with ``tenant != culprit`` are **cross-tenant interference**: under the
commodity configs (FCFS bus, shared cache, shared DMA engine) they are
nonzero by construction, and under full S-NIC partitioning they must be
*exactly zero* — ``python -m repro audit`` turns that into a CI gate.

Sources of blame by resource (see the ``hw`` modules):

* ``bus``  — FCFS queueing behind other clients' in-flight transfers;
  under temporal partitioning, epoch-gap/dead-time waits (self only).
* ``cache`` — a shared-mode fill evicting another owner's line is
  remembered; when the victim later misses on that line, the refill
  latency is blamed on the evictor.
* ``dram`` — FCFS channel queueing (shared) vs per-tenant channel
  cursors (partitioned, self only).
* ``dma``  — a shared commodity DMA engine serializing all banks'
  transfers vs S-NIC's per-bank engines.
* ``cores`` — memory-stall cycles explicitly attributed by the caller
  (e.g. stalls caused by cross-tenant cache conflicts).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry

#: Canonical resource names, in scorecard display order.
RESOURCE_BUS = "bus"
RESOURCE_CACHE = "cache"
RESOURCE_DRAM = "dram"
RESOURCE_DMA = "dma"
RESOURCE_CORES = "cores"
RESOURCES: Tuple[str, ...] = (
    RESOURCE_BUS, RESOURCE_CACHE, RESOURCE_DRAM, RESOURCE_DMA,
    RESOURCE_CORES,
)

WAIT_METRIC = "interference_wait_ns_total"
EVENTS_METRIC = "interference_events_total"


class InterferenceAccountant:
    """The blame sink: resolves ``(resource, victim, culprit)`` to the
    registry's counter pair and adds to it.

    Instruments are resolved through the registry's get-or-create on
    every call (no caching), so the accountant stays correct across
    :func:`repro.obs.metrics.reset` — components hold the accountant,
    never the counters.  Blame events are orders of magnitude rarer
    than cache accesses, so two dict lookups per call is cheap enough.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry

    def _resolve(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def blame(
        self,
        resource: str,
        victim: Optional[int],
        culprit: Optional[int],
        wait_ns: float,
        events: int = 1,
    ) -> None:
        """Attribute ``wait_ns`` of the victim's delay to ``culprit``."""
        if wait_ns <= 0.0 and events <= 0:
            return
        registry = self._resolve()
        registry.counter(WAIT_METRIC, resource=resource,
                         tenant=victim, culprit=culprit).value += wait_ns
        registry.counter(EVENTS_METRIC, resource=resource,
                         tenant=victim, culprit=culprit).value += events

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def matrix(self, resource: Optional[str] = None) -> "BlameMatrix":
        return blame_matrix(self._resolve(), resource=resource)


#: One (victim, culprit) cell: attributed wait and blamed-event count.
Cell = Dict[str, float]
#: resource -> (victim, culprit) -> cell.
BlameMatrix = Dict[str, Dict[Tuple[str, str], Cell]]


def _tenant_key(value: object) -> str:
    """Labels come back from the registry stringified; keep them so."""
    return str(value)


def blame_matrix(registry: Optional[MetricsRegistry] = None,
                 resource: Optional[str] = None) -> BlameMatrix:
    """The interference matrices currently in the registry.

    Returns ``{resource: {(victim, culprit): {"wait_ns": w, "events": n}}}``
    with tenant ids as the registry's string labels.  Deterministically
    ordered (resources and cells sorted).
    """
    registry = registry if registry is not None else get_registry()
    matrix: BlameMatrix = {}
    for sample in registry.snapshot():
        name = sample["name"]
        if name not in (WAIT_METRIC, EVENTS_METRIC):
            continue
        labels = sample["labels"]
        res = str(labels.get("resource", "?"))
        if resource is not None and res != resource:
            continue
        key = (_tenant_key(labels.get("tenant")),
               _tenant_key(labels.get("culprit")))
        cell = matrix.setdefault(res, {}).setdefault(
            key, {"wait_ns": 0.0, "events": 0.0})
        field = "wait_ns" if name == WAIT_METRIC else "events"
        cell[field] += float(sample["value"])  # type: ignore[arg-type]
    return {
        res: dict(sorted(cells.items()))
        for res, cells in sorted(matrix.items())
    }


def cross_tenant_wait_ns(matrix: BlameMatrix,
                         resource: Optional[str] = None) -> float:
    """Total wait attributed across tenant boundaries (victim != culprit)."""
    total = 0.0
    for res, cells in matrix.items():
        if resource is not None and res != resource:
            continue
        for (victim, culprit), cell in cells.items():
            if victim != culprit:
                total += cell["wait_ns"]
    return total


def cross_tenant_events(matrix: BlameMatrix,
                        resource: Optional[str] = None) -> float:
    """Total blamed events across tenant boundaries."""
    total = 0.0
    for res, cells in matrix.items():
        if resource is not None and res != resource:
            continue
        for (victim, culprit), cell in cells.items():
            if victim != culprit:
                total += cell["events"]
    return total


def format_matrix(matrix: BlameMatrix,
                  title: str = "interference matrix") -> str:
    """Human-readable per-resource blame tables (victim rows, culprit
    columns, cells ``wait_ns/events``)."""
    lines: List[str] = [f"=== {title} ==="]
    if not matrix:
        lines.append("(no interference recorded)")
        return "\n".join(lines)
    for res, cells in matrix.items():
        victims = sorted({v for v, _ in cells})
        culprits = sorted({c for _, c in cells})
        lines.append(f"[{res}]")
        header = ["victim \\ culprit"] + culprits
        rows: List[List[str]] = []
        for victim in victims:
            row = [victim]
            for culprit in culprits:
                cell = cells.get((victim, culprit))
                if cell is None:
                    row.append("-")
                else:
                    row.append(f"{cell['wait_ns']:.0f}ns/"
                               f"{cell['events']:.0f}ev")
            rows.append(row)
        widths = [max(len(header[i]), *(len(r[i]) for r in rows))
                  for i in range(len(header))]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class FCFSWaitAttributor:
    """Shared bookkeeping for FCFS-style queues: who occupied the
    resource during the interval a new request had to wait through.

    The serving component appends one *busy segment* ``[start, end)``
    per granted request; when a later request issued at ``now`` cannot
    start before ``start``, :meth:`attribute` splits the wait interval
    ``[now, start)`` across the owners of the segments that cover it
    and blames each share on its owner.

    Segments are strictly sequential (each new one starts at the
    previous end or later), so only the head segment can straddle
    ``now`` — per-request cost is O(live clients), not O(queue length).
    """

    __slots__ = ("resource", "_accountant", "_segments", "_totals")

    def __init__(self, resource: str,
                 accountant: Optional[InterferenceAccountant] = None) -> None:
        self.resource = resource
        self._accountant = accountant or get_accountant()
        #: Sequential (start, end, client) busy segments not yet consumed.
        self._segments: List[Tuple[float, float, int]] = []
        #: client -> total live-segment duration (the O(1) running sum).
        self._totals: Dict[int, float] = {}

    def occupy(self, client: int, start: float, end: float) -> None:
        """Record that ``client`` holds the resource over ``[start, end)``."""
        if end <= start:
            return
        self._segments.append((start, end, client))
        self._totals[client] = self._totals.get(client, 0.0) + (end - start)

    def _prune(self, now_ns: float) -> None:
        consumed = 0
        for start, end, client in self._segments:
            if end > now_ns:
                break
            consumed += 1
            remaining = self._totals.get(client, 0.0) - (end - start)
            if remaining <= 1e-12:
                self._totals.pop(client, None)
            else:
                self._totals[client] = remaining
        if consumed:
            del self._segments[:consumed]

    def attribute(self, victim: int, now_ns: float, start_ns: float) -> None:
        """Blame the wait interval ``[now_ns, start_ns)`` on the owners
        of the busy segments covering it."""
        if start_ns <= now_ns:
            self._prune(now_ns)
            return
        self._prune(now_ns)
        if not self._segments:
            return
        shares = dict(self._totals)
        head_start, _head_end, head_client = self._segments[0]
        if head_start < now_ns:
            # The in-flight head segment is partially consumed already.
            shares[head_client] = shares.get(head_client, 0.0) \
                - (now_ns - head_start)
        for culprit in sorted(shares):
            wait = min(shares[culprit], start_ns - now_ns)
            if wait > 1e-12:
                self._accountant.blame(self.resource, victim=victim,
                                       culprit=culprit, wait_ns=wait)

    def reset(self) -> None:
        self._segments.clear()
        self._totals.clear()


#: The process-wide accountant every hardware model blames into.
_ACCOUNTANT = InterferenceAccountant()


def get_accountant() -> InterferenceAccountant:
    return _ACCOUNTANT
