"""``python -m repro audit`` — the isolation scorecard.

The paper's evaluation asks one question two ways: *does a co-tenant
change what a victim observes?* Figure 5 answers it with throughput
(solo vs co-tenant IPC), §6 answers it with security arguments.  The
audit runs the same solo-vs-co-tenant differential on every shared
hardware resource in the simulation — bus, cache, DRAM, DMA, cores —
under the **commodity** configuration (FCFS bus, shared LRU cache,
shared DMA engine, time-sliced cores) and under the **S-NIC**
configuration (temporal bus partitioning, hard cache ways, per-tenant
DRAM reservations, per-bank DMA engines, exclusive cores), and emits a
scorecard:

* per-resource interference matrices (who made whom wait, from the
  :mod:`repro.obs.interference` accountant);
* victim slowdown deltas (co-tenant metric / solo metric);
* side-channel capacity estimates (bus watermark, cache prime+probe,
  via :mod:`repro.commodity.sidechannels`);
* the differential noninterference harness verdict
  (:mod:`repro.core.noninterference`).

The **verdict** is the CI gate: commodity must show *nonzero*
cross-tenant attributed wait (the instrumentation works, the
interference is real) and S-NIC must show *exactly zero* (the paper's
isolation claim holds in the model, not approximately but
structurally).  Everything is deterministic — fixed seeds, fixed
workloads, sorted JSON — so two runs produce byte-identical scorecards
and any diff is a real behaviour change.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, TextIO

from repro.commodity.sidechannels import (
    bus_watermark_on_fcfs,
    bus_watermark_on_snic,
    cache_covert_channel,
    channel_capacity,
)
from repro.core.noninterference import check_noninterference
from repro.hw.bus import FCFSArbiter, TemporalPartitioningArbiter
from repro.hw.cache import HARD, Cache, CacheConfig
from repro.hw.cores import ProgrammableCore
from repro.hw.dma import DMAController, DMAWindow
from repro.hw.dram import DRAMChannel
from repro.hw.memory import HostMemory, PhysicalMemory
from repro.obs import metrics as metrics_mod
from repro.obs.interference import (
    RESOURCES,
    BlameMatrix,
    blame_matrix,
    cross_tenant_events,
    cross_tenant_wait_ns,
    format_matrix,
)
from repro.obs.metrics import Histogram, get_registry

SCHEMA_VERSION = 1

#: The two security domains every workload uses.
VICTIM = 1
AGGRESSOR = 2

#: Iterations per workload (full / --quick).
_SCALE = {"full": 200, "quick": 40}
_CHANNEL_BITS = {"full": 64, "quick": 24}
_NONINT_TRIALS = {"full": 6, "quick": 2}
_NONINT_STEPS = {"full": 30, "quick": 12}


# ----------------------------------------------------------------------
# Per-resource differential workloads.
#
# Each returns the victim's observed figure of merit (mean latency,
# miss rate, cycles per round) for one (config, tenancy) combination
# and leaves its blame trail in the metrics registry.  All are pure
# functions of their arguments: no wall clock, no unseeded randomness.
# ----------------------------------------------------------------------

def _bus_workload(snic: bool, cotenant: bool, rounds: int) -> float:
    """Victim mean bus latency (ns) for periodic 1500 B probes.

    Commodity: one FCFS arbiter; the aggressor's 48 kB burst at the
    start of each period backlogs the bus right when the victim probes.
    S-NIC: temporal partitioning — the aggressor can only spend its own
    epochs, so the victim's latency is identical with or without it.
    """
    arbiter: object
    if snic:
        arbiter = TemporalPartitioningArbiter(
            domains=[VICTIM, AGGRESSOR], bandwidth_bytes_per_ns=12.8,
            epoch_ns=1000.0, dead_time_ns=100.0)
    else:
        arbiter = FCFSArbiter(bandwidth_bytes_per_ns=12.8)
    period = 8000.0
    total = 0.0
    latency_hist = get_registry().histogram(
        "audit_victim_latency_ns", resource="bus", tenant=VICTIM)
    for i in range(rounds):
        t = i * period
        if cotenant:
            arbiter.request(AGGRESSOR, 48_000, t)  # type: ignore[attr-defined]
        probe_at = t + 100.0
        done = arbiter.request(VICTIM, 1500, probe_at)  # type: ignore[attr-defined]
        latency_hist.observe(done - probe_at)
        total += done - probe_at
    return total / rounds


def _cache_workload(snic: bool, cotenant: bool, rounds: int) -> float:
    """Victim steady-state miss rate on a resident working set.

    The victim's working set is two lines per set — exactly its hard
    partition share.  A co-tenant thrashing every way evicts it in
    shared mode (conflict misses, blamed on the evictor) but cannot
    reach the victim's ways under hard partitioning.
    """
    cache = Cache(CacheConfig(size_bytes=4096, line_bytes=64, ways=4),
                  name="audit-l2")
    if snic:
        cache.set_partitions({VICTIM: 2, AGGRESSOR: 2}, mode=HARD)
    line = cache.config.line_bytes
    n_sets = cache.config.n_sets
    stride = n_sets * line
    victim_ws = [s * line + k * stride
                 for s in range(n_sets) for k in range(2)]
    aggressor_ws = [s * line + (8 + k) * stride
                    for s in range(n_sets) for k in range(4)]
    for addr in victim_ws:  # warm: cold misses are not interference
        cache.access(addr, owner=VICTIM)
    stats = cache.stats[VICTIM]
    base_misses = stats.misses
    accesses = 0
    for _ in range(rounds):
        if cotenant:
            for addr in aggressor_ws:
                cache.access(addr, owner=AGGRESSOR)
        for addr in victim_ws:
            cache.access(addr, owner=VICTIM)
            accesses += 1
    return (stats.misses - base_misses) / accesses


def _dram_workload(snic: bool, cotenant: bool, rounds: int) -> float:
    """Victim mean DRAM access latency (ns) for single-line reads.

    Shared channel: the aggressor's 64 kB transfer occupies the channel
    when the victim's read arrives.  Partitioned: the victim's own
    bandwidth reservation serves it at a co-tenant-independent latency.
    """
    channel = DRAMChannel()
    if snic:
        channel.partition([VICTIM, AGGRESSOR])
    period = 16_000.0
    total = 0.0
    latency_hist = get_registry().histogram(
        "audit_victim_latency_ns", resource="dram", tenant=VICTIM)
    for i in range(rounds):
        t = i * period
        if cotenant:
            channel.access(AGGRESSOR, 64_000, t)
        issue = t + 10.0
        done = channel.access(VICTIM, 64, issue)
        latency_hist.observe(done - issue)
        total += done - issue
    return total / rounds


def _dma_workload(snic: bool, cotenant: bool, rounds: int) -> float:
    """Victim mean DMA completion latency (ns) for 4 kB downstream copies.

    Commodity: ``shared_engine=True`` — every bank's transfers funnel
    through one engine, so the aggressor's 32 kB copy delays the
    victim's.  S-NIC: one engine per bank (§4.2), so bank 0's service
    time is a function of bank 0's stream only.
    """
    controller = DMAController(2, shared_engine=not snic)
    host = HostMemory(1 << 20)
    nic = PhysicalMemory(1 << 20)
    window = 64 * 1024
    for bank_id, owner in ((0, VICTIM), (1, AGGRESSOR)):
        bank = controller.bank_for_core(bank_id)
        bank.configure(
            owner,
            nic_window=DMAWindow(base=bank_id * window, size=window),
            host_window=DMAWindow(base=(4 + bank_id) * window, size=window),
        )
    victim_bank = controller.bank_for_core(0)
    aggressor_bank = controller.bank_for_core(1)
    period = 12_000.0
    total = 0.0
    latency_hist = get_registry().histogram(
        "audit_victim_latency_ns", resource="dma", tenant=VICTIM)
    for i in range(rounds):
        t = i * period
        if cotenant:
            aggressor_bank.to_nic(host, nic, host_addr=5 * window,
                                  nic_addr=window, n_bytes=32_768, now_ns=t)
        issue = t + 5.0
        done = victim_bank.to_nic(host, nic, host_addr=4 * window,
                                  nic_addr=0, n_bytes=4096, now_ns=issue)
        assert done is not None  # timed call always returns completion
        latency_hist.observe(done - issue)
        total += done - issue
    return total / rounds


def _cores_workload(snic: bool, cotenant: bool, rounds: int) -> float:
    """Victim mean cycles per scheduling round.

    Commodity NICs time-slice firmware threads across shared cores, so
    a co-tenant's slice shows up as stall cycles the victim can do
    nothing about; those are blamed through
    :meth:`ProgrammableCore.record_stalls`.  S-NIC allocates cores
    exclusively (§4.1): the victim runs undisturbed and nothing is
    attributed.
    """
    core = ProgrammableCore(0, PhysicalMemory(64 * 1024))
    core.bind(VICTIM)
    run_cycles = 1000.0
    slice_cycles = 800.0
    total = 0.0
    for _ in range(rounds):
        if cotenant and not snic:
            core.record_stalls(slice_cycles, culprit=AGGRESSOR)
            total += slice_cycles
        total += run_cycles
    return total / rounds


_WORKLOADS: Dict[str, Callable[[bool, bool, int], float]] = {
    "bus": _bus_workload,
    "cache": _cache_workload,
    "dram": _dram_workload,
    "dma": _dma_workload,
    "cores": _cores_workload,
}

_METRIC_LABEL = {
    "bus": "mean latency (ns)",
    "cache": "miss rate",
    "dram": "mean latency (ns)",
    "dma": "mean latency (ns)",
    "cores": "cycles/round",
}


def _measure_resource(resource: str, snic: bool, rounds: int) -> Dict[str, object]:
    """One resource under one config: solo run, co-tenant run, blame."""
    workload = _WORKLOADS[resource]
    metrics_mod.reset()
    solo = workload(snic, False, rounds)
    metrics_mod.reset()
    cotenant = workload(snic, True, rounds)
    matrix = blame_matrix(get_registry(), resource=resource)
    cells = matrix.get(resource, {})
    percentiles = _victim_latency_percentiles()
    # A ratio is meaningless off a zero baseline (e.g. a 0% solo miss
    # rate); report null rather than a JSON-hostile Infinity.
    slowdown = cotenant / solo if solo > 0 else None
    return {
        "metric": _METRIC_LABEL[resource],
        "solo": solo,
        "cotenant": cotenant,
        "slowdown": slowdown,
        "cotenant_latency_percentiles": percentiles,
        "cross_tenant_wait_ns": cross_tenant_wait_ns(matrix),
        "cross_tenant_events": cross_tenant_events(matrix),
        "matrix": {f"{victim}->{culprit}": cell
                   for (victim, culprit), cell in sorted(cells.items())},
    }


def _victim_latency_percentiles() -> Optional[Dict[str, float]]:
    """p50/p95/p99 of the victim's co-tenant latency histogram, when the
    workload recorded one (latency-shaped resources only)."""
    for instrument in get_registry().instruments():
        if isinstance(instrument, Histogram) \
                and instrument.name == "audit_victim_latency_ns" \
                and instrument.count:
            return {"p50": instrument.p50, "p95": instrument.p95,
                    "p99": instrument.p99, "count": float(instrument.count)}
    return None


def _measure_config(snic: bool, rounds: int) -> Dict[str, object]:
    resources = {res: _measure_resource(res, snic, rounds)
                 for res in RESOURCES}
    return {
        "resources": resources,
        "cross_tenant_wait_ns": sum(
            float(r["cross_tenant_wait_ns"]) for r in resources.values()),  # type: ignore[arg-type]
        "cross_tenant_events": sum(
            float(r["cross_tenant_events"]) for r in resources.values()),  # type: ignore[arg-type]
    }


def _measure_side_channels(n_bits: int) -> Dict[str, object]:
    results = {
        "bus_watermark": {
            "commodity": bus_watermark_on_fcfs(n_bits=n_bits),
            "snic": bus_watermark_on_snic(n_bits=n_bits),
        },
        "cache_prime_probe": {
            "commodity": cache_covert_channel("shared", n_bits=n_bits),
            "snic": cache_covert_channel(HARD, n_bits=n_bits),
        },
    }
    out: Dict[str, object] = {}
    for channel, by_config in results.items():
        out[channel] = {
            config: {
                "accuracy": result.accuracy,
                "bits": result.bits,
                "capacity_bits_per_symbol": channel_capacity(result.accuracy),
                "closed": result.channel_closed,
            }
            for config, result in by_config.items()
        }
    return out


def run_audit(quick: bool = False) -> Dict[str, object]:
    """Run the full differential and build the scorecard dict."""
    scale = "quick" if quick else "full"
    rounds = _SCALE[scale]
    commodity = _measure_config(snic=False, rounds=rounds)
    snic = _measure_config(snic=True, rounds=rounds)
    metrics_mod.reset()  # leave no audit residue in the registry
    channels = _measure_side_channels(_CHANNEL_BITS[scale])
    violations = check_noninterference(
        n_trials=_NONINT_TRIALS[scale],
        steps_per_trial=_NONINT_STEPS[scale], seed=0)
    metrics_mod.reset()

    reasons: List[str] = []
    snic_cross = float(snic["cross_tenant_wait_ns"])  # type: ignore[arg-type]
    commodity_cross = float(commodity["cross_tenant_wait_ns"])  # type: ignore[arg-type]
    if snic_cross != 0.0:
        reasons.append(
            f"S-NIC config attributed {snic_cross:.1f} ns of cross-tenant "
            f"wait (must be exactly 0)")
    if commodity_cross <= 0.0:
        reasons.append(
            "commodity config attributed no cross-tenant wait "
            "(instrumentation is not seeing the interference)")
    for res in RESOURCES:
        report = commodity["resources"][res]  # type: ignore[index]
        if float(report["cross_tenant_wait_ns"]) <= 0.0:
            reasons.append(
                f"commodity {res} workload attributed no cross-tenant wait")
    for channel, by_config in channels.items():  # type: ignore[assignment]
        if not by_config["snic"]["closed"]:  # type: ignore[index]
            reasons.append(f"side channel {channel} is not closed under S-NIC")
    if violations:
        reasons.append(
            f"differential harness found {len(violations)} noninterference "
            f"violation(s)")

    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "rounds_per_workload": rounds,
        "tenants": {"victim": VICTIM, "aggressor": AGGRESSOR},
        "configs": {"commodity": commodity, "snic": snic},
        "side_channels": channels,
        "noninterference": {
            "trials": _NONINT_TRIALS[scale],
            "steps_per_trial": _NONINT_STEPS[scale],
            "violations": len(violations),
        },
        "verdict": {"pass": not reasons, "reasons": reasons},
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _fmt(value: float) -> str:
    return f"{value:.4g}"


def _slowdown_str(slowdown: Optional[float]) -> str:
    return f"x{slowdown:.2f}" if slowdown is not None else "x n/a"


def _config_matrix(scorecard: Dict[str, object], config: str) -> BlameMatrix:
    resources = scorecard["configs"][config]["resources"]  # type: ignore[index]
    matrix: BlameMatrix = {}
    for res, report in resources.items():
        cells = {}
        for key, cell in report["matrix"].items():
            victim, culprit = key.split("->", 1)
            cells[(victim, culprit)] = cell
        if cells:
            matrix[res] = cells
    return matrix


def format_scorecard_text(scorecard: Dict[str, object]) -> str:
    lines: List[str] = ["=== repro audit: isolation scorecard ==="]
    mode = "quick" if scorecard["quick"] else "full"
    lines.append(f"mode: {mode}  "
                 f"({scorecard['rounds_per_workload']} rounds/workload)")
    lines.append("")
    header = (f"{'resource':<9} {'metric':<17} {'commodity':>22} "
              f"{'s-nic':>22} {'x-tenant wait (ns)':>24}")
    lines.append(header)
    lines.append("-" * len(header))
    configs = scorecard["configs"]
    for res in RESOURCES:
        com = configs["commodity"]["resources"][res]  # type: ignore[index]
        sni = configs["snic"]["resources"][res]  # type: ignore[index]
        com_col = (f"{_fmt(com['solo'])} -> {_fmt(com['cotenant'])} "
                   f"({_slowdown_str(com['slowdown'])})")
        sni_col = (f"{_fmt(sni['solo'])} -> {_fmt(sni['cotenant'])} "
                   f"({_slowdown_str(sni['slowdown'])})")
        cross_col = (f"{_fmt(com['cross_tenant_wait_ns'])} vs "
                     f"{_fmt(sni['cross_tenant_wait_ns'])}")
        lines.append(f"{res:<9} {com['metric']:<17} {com_col:>22} "
                     f"{sni_col:>22} {cross_col:>24}")
    lines.append("")
    for config in ("commodity", "snic"):
        lines.append(format_matrix(
            _config_matrix(scorecard, config),
            title=f"{config} blame matrix (co-tenant runs)"))
        lines.append("")
    lines.append("--- victim co-tenant latency percentiles (ns) ---")
    for res in RESOURCES:
        com = configs["commodity"]["resources"][res]  # type: ignore[index]
        sni = configs["snic"]["resources"][res]  # type: ignore[index]
        com_pct = com.get("cotenant_latency_percentiles")
        sni_pct = sni.get("cotenant_latency_percentiles")
        if not com_pct or not sni_pct:
            continue
        lines.append(
            f"{res:<9} commodity p50/p95/p99 "
            f"{com_pct['p50']:.0f}/{com_pct['p95']:.0f}/{com_pct['p99']:.0f}"
            f"   s-nic {sni_pct['p50']:.0f}/{sni_pct['p95']:.0f}/"
            f"{sni_pct['p99']:.0f}")
    lines.append("")
    lines.append("--- side channels (accuracy / capacity bits/symbol) ---")
    for channel, by_config in scorecard["side_channels"].items():  # type: ignore[union-attr]
        com, sni = by_config["commodity"], by_config["snic"]
        lines.append(
            f"{channel:<18} commodity {com['accuracy']:.3f} / "
            f"{com['capacity_bits_per_symbol']:.3f}   "
            f"s-nic {sni['accuracy']:.3f} / "
            f"{sni['capacity_bits_per_symbol']:.3f} "
            f"({'closed' if sni['closed'] else 'OPEN'})")
    nonint = scorecard["noninterference"]
    lines.append(
        f"noninterference: {nonint['violations']} violation(s) over "  # type: ignore[index]
        f"{nonint['trials']} trials x {nonint['steps_per_trial']} steps")  # type: ignore[index]
    verdict = scorecard["verdict"]
    lines.append("")
    if verdict["pass"]:  # type: ignore[index]
        lines.append("VERDICT: PASS — commodity interferes, S-NIC attributes "
                     "exactly zero cross-tenant wait")
    else:
        lines.append("VERDICT: FAIL")
        for reason in verdict["reasons"]:  # type: ignore[index]
            lines.append(f"  - {reason}")
    return "\n".join(lines) + "\n"


def format_scorecard_markdown(scorecard: Dict[str, object]) -> str:
    lines: List[str] = ["# repro audit: isolation scorecard", ""]
    mode = "quick" if scorecard["quick"] else "full"
    lines.append(f"Mode: `{mode}` "
                 f"({scorecard['rounds_per_workload']} rounds per workload)")
    lines.append("")
    lines.append("| resource | metric | commodity solo→co (slowdown) | "
                 "S-NIC solo→co (slowdown) | cross-tenant wait ns "
                 "(commodity / S-NIC) |")
    lines.append("|---|---|---|---|---|")
    configs = scorecard["configs"]
    for res in RESOURCES:
        com = configs["commodity"]["resources"][res]  # type: ignore[index]
        sni = configs["snic"]["resources"][res]  # type: ignore[index]
        lines.append(
            f"| {res} | {com['metric']} "
            f"| {_fmt(com['solo'])} → {_fmt(com['cotenant'])} "
            f"({_slowdown_str(com['slowdown'])}) "
            f"| {_fmt(sni['solo'])} → {_fmt(sni['cotenant'])} "
            f"({_slowdown_str(sni['slowdown'])}) "
            f"| {_fmt(com['cross_tenant_wait_ns'])} / "
            f"{_fmt(sni['cross_tenant_wait_ns'])} |")
    lines.append("")
    lines.append("## Side channels")
    lines.append("")
    lines.append("| channel | commodity accuracy | commodity capacity | "
                 "S-NIC accuracy | S-NIC capacity | closed under S-NIC |")
    lines.append("|---|---|---|---|---|---|")
    for channel, by_config in scorecard["side_channels"].items():  # type: ignore[union-attr]
        com, sni = by_config["commodity"], by_config["snic"]
        lines.append(
            f"| {channel} | {com['accuracy']:.3f} "
            f"| {com['capacity_bits_per_symbol']:.3f} "
            f"| {sni['accuracy']:.3f} "
            f"| {sni['capacity_bits_per_symbol']:.3f} "
            f"| {'yes' if sni['closed'] else '**no**'} |")
    nonint = scorecard["noninterference"]
    verdict = scorecard["verdict"]
    lines.append("")
    lines.append(
        f"Noninterference harness: **{nonint['violations']} violations** "  # type: ignore[index]
        f"({nonint['trials']} trials × {nonint['steps_per_trial']} steps).")  # type: ignore[index]
    lines.append("")
    if verdict["pass"]:  # type: ignore[index]
        lines.append("**Verdict: PASS** — the commodity configuration "
                     "attributes nonzero cross-tenant wait on every shared "
                     "resource and the S-NIC configuration attributes "
                     "exactly zero.")
    else:
        lines.append("**Verdict: FAIL**")
        for reason in verdict["reasons"]:  # type: ignore[index]
            lines.append(f"- {reason}")
    return "\n".join(lines) + "\n"


def format_scorecard_json(scorecard: Dict[str, object]) -> str:
    return json.dumps(scorecard, indent=2, sort_keys=True) + "\n"


_FORMATTERS = {
    "text": format_scorecard_text,
    "json": format_scorecard_json,
    "markdown": format_scorecard_markdown,
}


def main(argv: Optional[List[str]] = None,
         stream: Optional[TextIO] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="Solo-vs-co-tenant isolation audit across every shared "
                    "hardware resource; exits 1 if the verdict fails.")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--format", choices=sorted(_FORMATTERS),
                        default="text", help="output format")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the scorecard to this file")
    args = parser.parse_args(argv)
    out = stream if stream is not None else sys.stdout
    scorecard = run_audit(quick=args.quick)
    rendered = _FORMATTERS[args.format](scorecard)
    out.write(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered)
    return 0 if scorecard["verdict"]["pass"] else 1  # type: ignore[index]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
