"""``python -m repro slo`` — the per-tenant SLO scorecard at scale.

ROADMAP item 3's deliverable, assembled from this PR's pieces: hundreds
of Zipf-skewed tenants run through the scenario front end
(:mod:`repro.scenario`) under each bus arbitration policy
({fcfs, temporal, drr}), with

* per-tenant latency observed into ``slo_latency_ns{tenant=}``
  histograms via the runtime's completion hook,
* sim-time window rotation (:class:`~repro.obs.windows
  .WindowedAggregator`) feeding SRE burn-rate alerting
  (:class:`~repro.obs.slo.BurnRateAlerter`) — kernel-scheduled through
  the traffic phase, hand-rotated per contention round,
* every tenant judged end-of-run against its spec-attached
  :class:`~repro.obs.slo.TenantSLO`,
* alerts witnessed in the hash-chained audit log, and
* the whole registry (plus per-window series) exportable as
  OpenMetrics text.

The report is a pure function of ``--seed``: no wall clock anywhere,
same arguments ⇒ byte-identical text/json/csv (CI ``cmp``s two runs).
The headline table is the paper's §4.5 story told as pass/fail:
temporal partitioning owes **zero** cross-tenant wait so every
interference objective passes; fcfs under the same load fails tenants
wholesale; DRR sits between.

``--violation-demo`` runs a small seeded scenario engineered to fire a
known alert set (one tenant with an impossible latency target, one with
a zero interference budget under fcfs) and exits non-zero unless
exactly those alerts fire — the alerting path's end-to-end self-test.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.slo import (
    LATENCY_METRIC,
    BurnRateAlerter,
    SLOSpec,
    TenantSLO,
    evaluate_tenant,
)
from repro.obs.windows import WindowedAggregator
from repro.scenario.spec import (
    ARBITER_POLICIES,
    ArbiterSpec,
    NFSpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
    TrafficSpec,
    derive_seed,
)

SCHEMA = "repro.slo"
SCHEMA_VERSION = 1

#: Arbiters the scorecard sweeps by default (ROADMAP item 3's axis).
DEFAULT_ARBITERS = ("fcfs", "temporal", "drr")

#: Window width for the kernel-driven traffic phase.
DEFAULT_WINDOW_NS = 50_000

#: Contention-phase round period (mirrors the builder's drive phase).
_ROUND_PERIOD_NS = 8_000.0

#: Scaled-down arbiter bandwidth: 2 KiB transfers take 512 ns against a
#: 200 ns issue spacing, so shared-bus queueing is real at scale (the
#: stock 12.8 B/ns leaves the bus idle between back-to-back tenants).
_SCORECARD_BANDWIDTH = 4.0


def default_tenant_slo() -> TenantSLO:
    """The objective bundle every scorecard tenant signs up for.

    Thresholds sit on the default histogram bucket ladder (so the
    latency good/bad split is bucket-exact) and are calibrated against
    the quick run: temporal partitioning passes all four objectives for
    every tenant; fcfs fails interference budgets wholesale.
    """
    return TenantSLO(objectives=(
        SLOSpec(kind="p99_latency_ns", threshold=10_000.0, target=0.99),
        SLOSpec(kind="throughput_floor", threshold=0.9),
        SLOSpec(kind="interference_budget_ns", threshold=10_000.0),
        SLOSpec(kind="teardown_deadline_ns", threshold=1_000_000.0),
    ))


def make_scorecard_spec(arbiter: str, n_tenants: int, seed: int,
                        quick: bool = False) -> ScenarioSpec:
    """One arbiter's cell: N Zipf-skewed single-core tenants on S-NIC.

    The S-NIC scale levers discovered empirically: the static L2
    partition needs one way per NF plus the OS's (``l2_ways``), and
    every NF reserves a 2 MiB aligned DRAM extent regardless of its
    nominal size (``dram_mb``).
    """
    tenants = tuple(
        TenantSpec(
            name=f"t{i + 1:03d}",
            nf=NFSpec(kind="monitor"),
            dst_prefix=f"10.{1 + i // 200}.{i % 200}.0/24",
            cores=1,
            memory_mb=1,
            slo=default_tenant_slo(),
        )
        for i in range(n_tenants))
    return ScenarioSpec(
        name=f"slo-{arbiter}-{n_tenants}t",
        seed=derive_seed(seed, "slo", arbiter, n_tenants),
        description=f"SLO scorecard cell: {n_tenants} Zipf tenants "
                    f"under the {arbiter} arbiter",
        tags=("slo", "scale"),
        topology=TopologySpec(
            nic_model="snic",
            n_cores=n_tenants,
            dram_mb=2 * n_tenants + 64,
            l2_ways=n_tenants + 8,
            arbiter=ArbiterSpec(
                policy=arbiter,
                bandwidth_bytes_per_ns=_SCORECARD_BANDWIDTH)),
        tenants=tenants,
        traffic=TrafficSpec(
            n_packets=n_tenants * (4 if quick else 8),
            payload_bytes=64,
            arrival_period_ns=800,
            pattern="zipf",
            zipf_skew=1.1),
    )


def make_violation_spec(seed: int) -> ScenarioSpec:
    """The seeded alert self-test scenario.

    Four tenants under fcfs: ``t1`` carries an unmeetable latency
    objective (1 µs threshold against multi-µs poll-loop latencies, so
    every window burns at the cap), ``t2`` a zero interference budget
    (S-NIC's own §4.5 contract — held to it under the *wrong* arbiter),
    ``t3``/``t4`` generous objectives that must stay quiet.
    """
    loose_latency = SLOSpec(kind="p99_latency_ns", threshold=1e9,
                            target=0.5)
    loose_budget = SLOSpec(kind="interference_budget_ns", threshold=1e12)
    slos = {
        "t1": TenantSLO(objectives=(
            SLOSpec(kind="p99_latency_ns", threshold=1_000.0,
                    target=0.99),
            loose_budget)),
        "t2": TenantSLO(objectives=(
            loose_latency,
            SLOSpec(kind="interference_budget_ns", threshold=0.0))),
        "t3": TenantSLO(objectives=(loose_latency, loose_budget)),
        "t4": TenantSLO(objectives=(loose_latency, loose_budget)),
    }
    tenants = tuple(
        TenantSpec(
            name=name,
            nf=NFSpec(kind="monitor"),
            dst_prefix=f"{20 + i}.0.0.0/8",
            cores=1,
            slo=slos[name])
        for i, name in enumerate(sorted(slos)))
    return ScenarioSpec(
        name="slo-violation-demo",
        seed=derive_seed(seed, "slo", "violation-demo"),
        description="seeded burn-rate alert self-test (t1 latency, "
                    "t2 interference; t3/t4 quiet)",
        tags=("slo", "demo"),
        topology=TopologySpec(
            nic_model="snic",
            n_cores=4,
            dram_mb=64,
            arbiter=ArbiterSpec(
                policy="fcfs",
                bandwidth_bytes_per_ns=_SCORECARD_BANDWIDTH)),
        tenants=tenants,
        traffic=TrafficSpec(
            n_packets=160,
            payload_bytes=64,
            arrival_period_ns=800,
            pattern="round_robin"),
    )


#: The exact alert multiset :func:`make_violation_spec` must produce:
#: one page + one ticket per engineered violation, nothing else.
EXPECTED_DEMO_ALERTS: Tuple[Tuple[str, str, str], ...] = (
    ("t1", "p99_latency_ns", "page"),
    ("t1", "p99_latency_ns", "ticket"),
    ("t2", "interference_budget_ns", "page"),
    ("t2", "interference_budget_ns", "ticket"),
)


# ----------------------------------------------------------------------
# Running one cell
# ----------------------------------------------------------------------


def _xwait_by_victim(matrix) -> Dict[str, float]:
    """Per-victim cross-tenant wait from a blame matrix, all resources."""
    waits: Dict[str, float] = {}
    for cells in matrix.values():
        for (victim, culprit), cell in cells.items():
            if victim != culprit:
                waits[victim] = waits.get(victim, 0.0) + cell["wait_ns"]
    return waits


def run_spec(spec: ScenarioSpec, quick: bool = False,
             sanitize: bool = False,
             window_ns: int = DEFAULT_WINDOW_NS,
             families_sink: Optional[List[object]] = None,
             packet_phase=None,
             ) -> Dict[str, object]:
    """Run one scorecard cell under full state isolation.

    Returns the per-arbiter result block: tenant rows in spec order,
    the fired alerts, window/audit bookkeeping.  With ``families_sink``
    given, the cell's OpenMetrics families (registry + windows, tagged
    with an ``arbiter`` label) are appended to it before the trailing
    isolation reset wipes the registry.  ``packet_phase`` forwards to
    :meth:`~repro.scenario.build.BuiltScenario.drive` — the shard
    worker's granted-injection seam.
    """
    from repro.analysis.isosan import sanitized
    from repro.obs import auditlog as auditlog_mod
    from repro.obs import openmetrics
    from repro.obs.bench import _isolate
    from repro.obs.interference import blame_matrix
    from repro.obs.metrics import get_registry
    from repro.scenario.build import build_scenario

    _isolate()
    auditlog_mod.enable_audit_log()
    rounds = 8 if quick else 16
    try:
        scope = sanitized() if sanitize else contextlib.nullcontext()
        with scope:
            with build_scenario(spec) as built:
                registry = get_registry()
                by_id: Dict[int, str] = {}
                slos: Dict[int, TenantSLO] = {}
                for tenant in spec.tenants:
                    nf_id = built.tenants[tenant.name]
                    by_id[nf_id] = tenant.name
                    if tenant.slo is not None:
                        slos[nf_id] = tenant.slo
                    # Mint every tenant's family up front so tenants
                    # with zero completions still render a row.
                    registry.histogram(LATENCY_METRIC, tenant=nf_id)

                def observe(nf_id: int, latency_ns: int,
                            _departure_ns: int) -> None:
                    registry.histogram(
                        LATENCY_METRIC,
                        tenant=nf_id).observe(float(latency_ns))

                built.runtime.on_complete = observe
                horizon_ns = float(
                    spec.traffic.n_packets * spec.traffic.arrival_period_ns
                    + rounds * _ROUND_PERIOD_NS)
                alerter = BurnRateAlerter(slos, horizon_ns=horizon_ns)
                aggregator = WindowedAggregator(
                    built.runtime.sim, window_ns=window_ns,
                    on_rotate=alerter.observe)
                aggregator.start()
                offered = _offered_by_tenant(spec, built)
                sim = built.runtime.sim
                outputs = built.drive(
                    quick=quick, rounds=rounds,
                    on_round=lambda _i, end_ns: aggregator.rotate(
                        now_ns=sim.now_ns + end_ns),
                    packet_phase=packet_phase)
                aggregator.stop()
                xwait = _xwait_by_victim(blame_matrix(registry))
                timing = built.snic.timing
                rows = []
                for tenant in spec.tenants:
                    nf_id = built.tenants[tenant.name]
                    rows.append(_tenant_row(
                        tenant, nf_id, registry, outputs, offered,
                        xwait, timing.nf_destroy_ms(
                            built.snic.record(nf_id).extent_bytes) * 1e6,
                        alerter))
                if families_sink is not None:
                    extra = {"arbiter": spec.topology.arbiter.policy}
                    families_sink.extend(openmetrics.registry_families(
                        registry, extra_labels=extra))
                    families_sink.extend(openmetrics.window_families(
                        aggregator.snapshots, extra_labels=extra))
        log = auditlog_mod.get_audit_log()
        alerts = []
        for alert in alerter.alert_dicts():
            alert = dict(alert)
            alert["tenant_name"] = by_id.get(alert["tenant"], "?")
            alerts.append(alert)
        return {
            "spec": spec.name,
            "arbiter": spec.topology.arbiter.policy,
            "n_tenants": len(spec.tenants),
            "windows": len(aggregator.snapshots),
            "packets_completed": outputs["packets_completed"],
            "packets_dropped": outputs["packets_dropped"],
            "cross_tenant_wait_ns": outputs["cross_tenant_wait_ns"],
            "tenants": rows,
            "alerts": alerts,
            "n_pass": sum(1 for r in rows if r["passed"]),
            "n_fail": sum(1 for r in rows if not r["passed"]),
            "audit": {
                "records": len(log),
                "chain_ok": log.verify_chain() is None,
            },
        }
    finally:
        auditlog_mod.reset()
        _isolate()


def _offered_by_tenant(spec: ScenarioSpec, built) -> Dict[str, int]:
    """Per-tenant offered load, from the deterministic packet list."""
    from repro.net.packet import ip_to_int

    by_dst = {ip_to_int(t.dst_ip()): t.name for t in spec.tenants}
    offered = {t.name: 0 for t in spec.tenants}
    for packet in built.make_packets():
        name = by_dst.get(packet.ip.dst_ip)
        if name is not None:
            offered[name] += 1
    return offered


def _tenant_row(tenant: TenantSpec, nf_id: int, registry, outputs,
                offered: Dict[str, int], xwait: Dict[str, float],
                teardown_ns: float, alerter: BurnRateAlerter,
                ) -> Dict[str, object]:
    latency = registry.histogram(LATENCY_METRIC, tenant=nf_id)
    completed = int(
        outputs["per_tenant_completed"].get(tenant.name, 0))
    tenant_offered = offered.get(tenant.name, 0)
    tenant_xwait = xwait.get(str(nf_id), 0.0)
    n_alerts = sum(1 for a in alerter.alerts if a.tenant == nf_id)
    row: Dict[str, object] = {
        "tenant": tenant.name,
        "nf_id": nf_id,
        "offered": tenant_offered,
        "completed": completed,
        "p99_latency_ns": round(latency.p99, 3),
        "cross_tenant_wait_ns": round(tenant_xwait, 3),
        "teardown_ns": round(teardown_ns, 3),
        "alerts": n_alerts,
    }
    if tenant.slo is None:
        row["objectives"] = []
        row["passed"] = True
        return row
    results = evaluate_tenant(
        tenant.slo, latency=latency, offered=tenant_offered,
        completed=completed, cross_tenant_wait_ns=tenant_xwait,
        teardown_ns=teardown_ns)
    row["objectives"] = [r.as_dict() for r in results]
    row["passed"] = all(r.passed for r in results)
    return row


# ----------------------------------------------------------------------
# The sweep and the demo
# ----------------------------------------------------------------------


def run_scorecard(n_tenants: int = 128, seed: int = 7,
                  quick: bool = False,
                  arbiters: Sequence[str] = DEFAULT_ARBITERS,
                  sanitize: bool = False,
                  window_ns: int = DEFAULT_WINDOW_NS,
                  openmetrics_path: Optional[str] = None,
                  ) -> Dict[str, object]:
    """Sweep the arbiter axis and assemble the scorecard report."""
    from repro.obs import openmetrics

    families: Optional[List[object]] = \
        [] if openmetrics_path is not None else None
    results: Dict[str, Dict[str, object]] = {}
    for arbiter in arbiters:
        spec = make_scorecard_spec(arbiter, n_tenants, seed, quick=quick)
        results[arbiter] = run_spec(
            spec, quick=quick, sanitize=sanitize, window_ns=window_ns,
            families_sink=families)
    if openmetrics_path is not None:
        text = openmetrics.render_families(
            openmetrics.merge_families(families))
        with open(openmetrics_path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "seed": seed,
        "n_tenants": n_tenants,
        "window_ns": window_ns,
        "isosan_active": bool(sanitize),
        "arbiters": results,
        "summary": [
            {
                "arbiter": arbiter,
                "n_pass": result["n_pass"],
                "n_fail": result["n_fail"],
                "pages": sum(1 for a in result["alerts"]
                             if a["tier"] == "page"),
                "tickets": sum(1 for a in result["alerts"]
                               if a["tier"] == "ticket"),
                "cross_tenant_wait_ns":
                    round(float(result["cross_tenant_wait_ns"]), 3),
                "packets_completed": result["packets_completed"],
            }
            for arbiter, result in results.items()
        ],
    }


def run_violation_demo(seed: int = 7, sanitize: bool = False,
                       window_ns: int = 20_000,
                       openmetrics_path: Optional[str] = None,
                       ) -> Dict[str, object]:
    """Run the seeded alert self-test and compare against expectation."""
    from repro.obs import openmetrics

    families: Optional[List[object]] = \
        [] if openmetrics_path is not None else None
    spec = make_violation_spec(seed)
    result = run_spec(spec, quick=True, sanitize=sanitize,
                      window_ns=window_ns, families_sink=families)
    if openmetrics_path is not None:
        text = openmetrics.render_families(
            openmetrics.merge_families(families))
        with open(openmetrics_path, "w", encoding="utf-8") as fh:
            fh.write(text)
    observed = sorted((a["tenant_name"], a["kind"], a["tier"])
                      for a in result["alerts"])
    expected = sorted(EXPECTED_DEMO_ALERTS)
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "mode": "violation-demo",
        "seed": seed,
        "window_ns": window_ns,
        "isosan_active": bool(sanitize),
        "arbiters": {spec.topology.arbiter.policy: result},
        "expected_alerts": [list(a) for a in expected],
        "observed_alerts": [list(a) for a in observed],
        "alerts_match": observed == expected,
        "summary": [],
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def format_json(report: Dict[str, object]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


_CSV_FIELDS = (
    "arbiter", "tenant", "nf_id", "offered", "completed",
    "p99_latency_ns", "cross_tenant_wait_ns", "teardown_ns", "alerts",
    "passed", "failed_objectives",
)


def format_csv(report: Dict[str, object]) -> str:
    """One row per (arbiter, tenant) — the spreadsheet-shaped scorecard."""
    buffer = io.StringIO()
    buffer.write(",".join(_CSV_FIELDS) + "\n")
    for arbiter in sorted(report["arbiters"]):
        result = report["arbiters"][arbiter]
        for row in result["tenants"]:
            failed = ";".join(obj["kind"] for obj in row["objectives"]
                              if not obj["passed"])
            values = [arbiter] + [
                str(row[field]) for field in _CSV_FIELDS[1:-1]
            ] + [failed]
            buffer.write(",".join(values) + "\n")
    return buffer.getvalue()


def format_text(report: Dict[str, object]) -> str:
    lines = [
        f"repro slo — {report['mode']} mode, seed {report['seed']}, "
        f"window {report['window_ns']} ns, "
        f"isosan {'on' if report['isosan_active'] else 'off'}",
        "",
    ]
    if report["summary"]:
        lines.append(
            f"{'arbiter':<9} {'pass':>5} {'fail':>5} {'pages':>6} "
            f"{'tickets':>8} {'xwait ns':>14} {'pkts':>6}")
        for row in report["summary"]:
            lines.append(
                f"{row['arbiter']:<9} {row['n_pass']:>5} "
                f"{row['n_fail']:>5} {row['pages']:>6} "
                f"{row['tickets']:>8} "
                f"{row['cross_tenant_wait_ns']:>14} "
                f"{row['packets_completed']:>6}")
        lines.append("")
    for arbiter in sorted(report["arbiters"]):
        result = report["arbiters"][arbiter]
        lines.append(
            f"[{arbiter}] {result['n_pass']} pass / "
            f"{result['n_fail']} fail, {len(result['alerts'])} alerts, "
            f"{result['windows']} windows, audit chain "
            f"{'ok' if result['audit']['chain_ok'] else 'BROKEN'} "
            f"({result['audit']['records']} records)")
        lines.append(
            f"  {'tenant':<6} {'off':>5} {'done':>5} {'p99 ns':>10} "
            f"{'xwait ns':>12} {'al':>3} verdict")
        for row in result["tenants"]:
            failed = ",".join(obj["kind"] for obj in row["objectives"]
                              if not obj["passed"])
            verdict = "PASS" if row["passed"] else f"FAIL({failed})"
            lines.append(
                f"  {row['tenant']:<6} {row['offered']:>5} "
                f"{row['completed']:>5} {row['p99_latency_ns']:>10} "
                f"{row['cross_tenant_wait_ns']:>12} {row['alerts']:>3} "
                f"{verdict}")
        for alert in result["alerts"]:
            lines.append(
                f"  alert: {alert['tier']} {alert['tenant_name']} "
                f"{alert['kind']} fast={alert['fast_burn']:.2f} "
                f"slow={alert['slow_burn']:.2f} "
                f"window={alert['window_index']}")
        lines.append("")
    if report["mode"] == "violation-demo":
        verdict = "MATCH" if report["alerts_match"] else "MISMATCH"
        lines.append(f"expected alerts: {report['expected_alerts']}")
        lines.append(f"observed alerts: {report['observed_alerts']}")
        lines.append(f"alert verdict: {verdict}")
        lines.append("")
    return "\n".join(lines)


_FORMATTERS = {"text": format_text, "json": format_json,
               "csv": format_csv}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    from repro.analysis.isosan import enabled_by_env

    stream = stream if stream is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro slo",
        description="Per-tenant SLO scorecard: run N Zipf-skewed "
                    "tenants under each bus arbiter, judge every "
                    "tenant against its SLOs, and report pass/fail "
                    "with burn-rate alerts.")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer packets/rounds; "
                             "default 128 tenants)")
    parser.add_argument("--tenants", type=int, default=None, metavar="N",
                        help="tenant count per arbiter (default: 128 "
                             "quick, 256 full)")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed; every cell seed derives from "
                             "it (default 7)")
    parser.add_argument("--arbiters", default=",".join(DEFAULT_ARBITERS),
                        metavar="LIST",
                        help="comma-separated arbiter policies "
                             "(default fcfs,temporal,drr)")
    parser.add_argument("--window-ns", type=int,
                        default=DEFAULT_WINDOW_NS,
                        help="aggregation window in simulated ns "
                             f"(default {DEFAULT_WINDOW_NS})")
    parser.add_argument("--format", choices=sorted(_FORMATTERS),
                        default="text",
                        help="report format (default text)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run every cell under the IsoSan runtime "
                             "sanitizer (also via REPRO_ISOSAN=1)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run each arbiter cell through the sharded "
                             "co-simulation engine on N worker processes "
                             "(reports are byte-identical for any N)")
    parser.add_argument("--violation-demo", action="store_true",
                        help="run the seeded alert self-test instead "
                             "of the sweep; exit 1 unless exactly the "
                             "expected alerts fire")
    parser.add_argument("--openmetrics", default=None, metavar="PATH",
                        help="also export the final registry + window "
                             "series as OpenMetrics text to PATH")
    parser.add_argument("-o", "--out", default=None, metavar="PATH",
                        help="also write the rendered report to PATH")
    args = parser.parse_args(argv)

    sanitize = args.sanitize or enabled_by_env(default=False)
    if args.shards is not None:
        if args.shards < 1:
            print("error: --shards must be >= 1", file=sys.stderr)
            return 2
        if args.violation_demo or args.openmetrics:
            print("error: --shards cannot combine with --violation-demo "
                  "or --openmetrics (both need the monolithic in-process "
                  "registry)", file=sys.stderr)
            return 2
    if args.violation_demo:
        report = run_violation_demo(
            seed=args.seed, sanitize=sanitize,
            openmetrics_path=args.openmetrics)
    else:
        n_tenants = args.tenants if args.tenants is not None \
            else (128 if args.quick else 256)
        arbiters = tuple(a for a in args.arbiters.split(",") if a)
        bad = [a for a in arbiters if a not in ARBITER_POLICIES]
        if not arbiters or bad:
            print(f"error: unknown arbiter(s) {bad or ['<empty>']}; "
                  f"expected a comma-separated subset of "
                  f"{','.join(ARBITER_POLICIES)}", file=sys.stderr)
            return 2
        if args.shards is not None:
            from repro.shard.engine import run_scorecard_sharded

            report = run_scorecard_sharded(
                n_tenants=n_tenants, seed=args.seed, quick=args.quick,
                arbiters=arbiters, sanitize=sanitize,
                window_ns=args.window_ns, workers=args.shards)
        else:
            report = run_scorecard(
                n_tenants=n_tenants, seed=args.seed, quick=args.quick,
                arbiters=arbiters, sanitize=sanitize,
                window_ns=args.window_ns,
                openmetrics_path=args.openmetrics)
    rendered = _FORMATTERS[args.format](report)
    stream.write(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered)
        print(f"slo report written to {args.out}",
              file=sys.stderr if stream is sys.stdout else stream)
    if args.openmetrics:
        print(f"openmetrics export written to {args.openmetrics}",
              file=sys.stderr if stream is sys.stdout else stream)
    if report["mode"] == "violation-demo":
        return 0 if report["alerts_match"] else 1
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via -m repro
    raise SystemExit(main())
