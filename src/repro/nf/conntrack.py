"""TCP connection tracking for the stateful firewall.

The paper's FW workload is "a stateful firewall"; beyond the verdict
cache, statefulness classically means a per-connection TCP state
machine.  This module implements the conntrack automaton the way
netfilter does, tracking both directions of a flow under one canonical
key:

    NEW --SYN--> SYN_SENT --SYN+ACK(reply)--> SYN_RECV
        --ACK(orig)--> ESTABLISHED --FIN--> FIN_WAIT
        --FIN(other dir)+ACK--> CLOSED;  RST from either side -> CLOSED

Packets that do not fit the automaton (e.g. an unsolicited mid-stream
ACK with no tracked connection) are flagged INVALID, which the strict
stateful firewall drops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.packet import (
    FiveTuple,
    PROTO_TCP,
    Packet,
    TCPHeader,
    TCP_FLAG_ACK,
    TCP_FLAG_FIN,
    TCP_FLAG_RST,
    TCP_FLAG_SYN,
)


class ConnState(enum.Enum):
    SYN_SENT = "syn-sent"
    SYN_RECV = "syn-recv"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSED = "closed"


class Verdict(enum.Enum):
    NEW = "new"          # first packet of a valid new connection
    VALID = "valid"      # fits the tracked connection's automaton
    INVALID = "invalid"  # no tracked connection / impossible transition


@dataclass
class Connection:
    """One tracked TCP connection."""

    originator: FiveTuple  # direction of the initial SYN
    state: ConnState = ConnState.SYN_SENT
    packets_orig: int = 0
    packets_reply: int = 0
    fin_seen_orig: bool = False
    fin_seen_reply: bool = False


def _canonical(five_tuple: FiveTuple) -> FiveTuple:
    """One key for both directions of the flow."""
    return min(five_tuple, five_tuple.reversed())


class ConnectionTracker:
    """The conntrack table."""

    def __init__(self, max_connections: int = 65_536) -> None:
        self.max_connections = max_connections
        self._table: Dict[FiveTuple, Connection] = {}
        self.invalid_packets = 0

    def __len__(self) -> int:
        return len(self._table)

    def connection_for(self, five_tuple: FiveTuple) -> Optional[Connection]:
        return self._table.get(_canonical(five_tuple))

    def state_of(self, five_tuple: FiveTuple) -> Optional[ConnState]:
        connection = self.connection_for(five_tuple)
        return connection.state if connection else None

    def update(self, packet: Packet) -> Verdict:
        """Run one packet through the automaton; returns its verdict."""
        if packet.ip.proto != PROTO_TCP or not isinstance(packet.l4, TCPHeader):
            return Verdict.VALID  # non-TCP is not tracked here
        flags = packet.l4.flags
        five_tuple = packet.five_tuple
        key = _canonical(five_tuple)
        connection = self._table.get(key)

        if connection is None:
            if flags & TCP_FLAG_SYN and not flags & TCP_FLAG_ACK:
                if len(self._table) >= self.max_connections:
                    self._evict_one_closed()
                self._table[key] = Connection(originator=five_tuple)
                self._table[key].packets_orig = 1
                return Verdict.NEW
            self.invalid_packets += 1
            return Verdict.INVALID

        from_originator = five_tuple == connection.originator
        if from_originator:
            connection.packets_orig += 1
        else:
            connection.packets_reply += 1

        if flags & TCP_FLAG_RST:
            connection.state = ConnState.CLOSED
            return Verdict.VALID

        state = connection.state
        if state is ConnState.SYN_SENT:
            if (not from_originator and flags & TCP_FLAG_SYN
                    and flags & TCP_FLAG_ACK):
                connection.state = ConnState.SYN_RECV
                return Verdict.VALID
            if from_originator and flags & TCP_FLAG_SYN:
                return Verdict.VALID  # SYN retransmission
        elif state is ConnState.SYN_RECV:
            if from_originator and flags & TCP_FLAG_ACK:
                connection.state = ConnState.ESTABLISHED
                return Verdict.VALID
            if not from_originator and flags & TCP_FLAG_SYN:
                return Verdict.VALID  # SYN+ACK retransmission
        elif state is ConnState.ESTABLISHED:
            if flags & TCP_FLAG_FIN:
                if from_originator:
                    connection.fin_seen_orig = True
                else:
                    connection.fin_seen_reply = True
                connection.state = ConnState.FIN_WAIT
            return Verdict.VALID
        elif state is ConnState.FIN_WAIT:
            if flags & TCP_FLAG_FIN:
                if from_originator:
                    connection.fin_seen_orig = True
                else:
                    connection.fin_seen_reply = True
            if connection.fin_seen_orig and connection.fin_seen_reply:
                connection.state = ConnState.CLOSED
            return Verdict.VALID
        elif state is ConnState.CLOSED:
            self.invalid_packets += 1
            return Verdict.INVALID

        self.invalid_packets += 1
        return Verdict.INVALID

    def purge_closed(self) -> int:
        """Drop CLOSED connections; returns how many were removed."""
        closed = [
            key for key, conn in self._table.items()
            if conn.state is ConnState.CLOSED
        ]
        for key in closed:
            del self._table[key]
        return len(closed)

    def _evict_one_closed(self) -> None:
        for key, connection in self._table.items():
            if connection.state is ConnState.CLOSED:
                del self._table[key]
                return
        raise MemoryError("conntrack table full with live connections")
