"""An explicitly-resizing hash map with observable memory behaviour.

The paper's NFs use Rust's ``HashMap``; its capacity-doubling resizes are
what produce the memory spikes in Figure 7 ("multiple HashMap resizings")
and the wasted preallocation in Table 8 ("for NAT and Monitor,
preallocation wastes around a third of the memory due to HashMap
resizing").

Python's ``dict`` hides its resizing, so we implement open-addressing
Robin-Hood-free linear probing with explicit capacity management.  The
map reports:

* ``table_bytes`` — current backing-table size,
* ``peak_transient_bytes`` — the worst instantaneous footprint including
  the old+new tables coexisting during a resize,
* a resize-event log, which the Figure 7 time-series model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_EMPTY = object()
_TOMBSTONE = object()


@dataclass(frozen=True)
class ResizeEvent:
    """One capacity-doubling: recorded for the memory time series."""

    at_insert: int
    old_capacity: int
    new_capacity: int


class ResizingHashMap(Generic[K, V]):
    """Open-addressing hash map with power-of-two capacity doubling."""

    def __init__(
        self,
        initial_capacity: int = 16,
        max_load_factor: float = 0.875,
        entry_bytes: int = 48,
    ) -> None:
        if initial_capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0 < max_load_factor < 1:
            raise ValueError("load factor must be in (0, 1)")
        capacity = 1
        while capacity < initial_capacity:
            capacity *= 2
        self._capacity = capacity
        self.max_load_factor = max_load_factor
        #: Modelled per-slot cost (key+value+control byte), for memory
        #: accounting.  Rust's HashMap<K, V> stores entries inline.
        self.entry_bytes = entry_bytes
        self._keys: List[object] = [_EMPTY] * capacity
        self._values: List[object] = [None] * capacity
        self._size = 0
        self._tombstones = 0
        self._inserts = 0
        self.resize_events: List[ResizeEvent] = []
        self._peak_transient = self.table_bytes

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def load_factor(self) -> float:
        return (self._size + self._tombstones) / self._capacity

    @property
    def table_bytes(self) -> int:
        return self._capacity * self.entry_bytes

    @property
    def peak_transient_bytes(self) -> int:
        """Worst instantaneous footprint ever (includes resize overlap)."""
        return self._peak_transient

    # ------------------------------------------------------------------

    def _probe(self, key: K) -> int:
        """Index of the slot holding ``key``, or the insertion slot."""
        mask = self._capacity - 1
        index = hash(key) & mask
        first_tombstone = -1
        for _ in range(self._capacity):
            slot_key = self._keys[index]
            if slot_key is _EMPTY:
                return first_tombstone if first_tombstone >= 0 else index
            if slot_key is _TOMBSTONE:
                if first_tombstone < 0:
                    first_tombstone = index
            elif slot_key == key:
                return index
            index = (index + 1) & mask
        if first_tombstone >= 0:
            return first_tombstone
        raise RuntimeError("hash table unexpectedly full")

    def _grow(self) -> None:
        old_capacity = self._capacity
        old_keys, old_values = self._keys, self._values
        new_capacity = old_capacity * 2
        # The transient: old and new tables alive simultaneously, like
        # Rust's HashMap reallocate-and-rehash.
        transient = (old_capacity + new_capacity) * self.entry_bytes
        self._peak_transient = max(self._peak_transient, transient)
        self.resize_events.append(
            ResizeEvent(
                at_insert=self._inserts,
                old_capacity=old_capacity,
                new_capacity=new_capacity,
            )
        )
        self._capacity = new_capacity
        self._keys = [_EMPTY] * new_capacity
        self._values = [None] * new_capacity
        self._size = 0
        self._tombstones = 0
        for key, value in zip(old_keys, old_values):
            if key is not _EMPTY and key is not _TOMBSTONE:
                self._insert_fresh(key, value)

    def _insert_fresh(self, key: K, value: V) -> None:
        index = self._probe(key)
        if self._keys[index] is _TOMBSTONE:
            self._tombstones -= 1
        self._keys[index] = key
        self._values[index] = value
        self._size += 1

    # ------------------------------------------------------------------

    def put(self, key: K, value: V) -> None:
        self._inserts += 1
        index = self._probe(key)
        existing = self._keys[index]
        if existing is not _EMPTY and existing is not _TOMBSTONE:
            self._values[index] = value
            return
        if existing is _TOMBSTONE:
            self._tombstones -= 1
        self._keys[index] = key
        self._values[index] = value
        self._size += 1
        if self.load_factor > self.max_load_factor:
            self._grow()
        self._peak_transient = max(self._peak_transient, self.table_bytes)

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        index = self._probe(key)
        existing = self._keys[index]
        if existing is _EMPTY or existing is _TOMBSTONE:
            return default
        return self._values[index]  # type: ignore[return-value]

    def __contains__(self, key: K) -> bool:
        index = self._probe(key)
        existing = self._keys[index]
        return existing is not _EMPTY and existing is not _TOMBSTONE

    def remove(self, key: K) -> bool:
        index = self._probe(key)
        existing = self._keys[index]
        if existing is _EMPTY or existing is _TOMBSTONE:
            return False
        self._keys[index] = _TOMBSTONE
        self._values[index] = None
        self._size -= 1
        self._tombstones += 1
        return True

    def items(self) -> Iterator[Tuple[K, V]]:
        for key, value in zip(self._keys, self._values):
            if key is not _EMPTY and key is not _TOMBSTONE:
                yield key, value  # type: ignore[misc]

    def clear(self) -> None:
        self._keys = [_EMPTY] * self._capacity
        self._values = [None] * self._capacity
        self._size = 0
        self._tombstones = 0
