"""A MazuNAT-derived network address translator (§5.1).

"The NAT uses a HashMap to cache frequently-used translations.  The
cache only records the translation results of the first 65,535 flows
that can be successfully assigned a distinct port number."

Outbound packets from the internal network are source-NATted to the
external address with a freshly allocated port; return traffic matches
the reverse binding and is rewritten back.  Flows beyond the port pool
pass through untranslated (the paper's cache-miss behaviour for the
66,536th flow onward).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.packet import FiveTuple, Packet, TCPHeader, UDPHeader, ip_to_int
from repro.nf.base import NetworkFunction
from repro.nf.hashmap import ResizingHashMap

#: Distinct port numbers available, hence the flow cap in the paper.
PORT_POOL_SIZE = 65_535
_FIRST_PORT = 1  # ports 1..65535


@dataclass(frozen=True)
class NATBinding:
    """One translation: internal (ip, port) <-> external port."""

    internal_ip: int
    internal_port: int
    external_port: int


class NAT(NetworkFunction):
    """Source NAT with hash-mapped bindings and a bounded port pool."""

    name = "NAT"

    def __init__(
        self,
        external_ip: str,
        internal_prefix: str = "10.0.0.0/8",
    ) -> None:
        super().__init__()
        from repro.net.rules import Prefix

        self.external_ip = ip_to_int(external_ip)
        self.internal_prefix = Prefix.parse(internal_prefix)
        # forward: internal 5-tuple -> binding; reverse: ext port -> binding
        self.forward: ResizingHashMap[FiveTuple, NATBinding] = ResizingHashMap(
            entry_bytes=64
        )
        self.reverse: Dict[int, NATBinding] = {}
        self._next_port = _FIRST_PORT
        self.translations = 0
        self.pool_exhausted = 0

    @property
    def active_bindings(self) -> int:
        return len(self.reverse)

    def _allocate_port(self) -> Optional[int]:
        if self._next_port > PORT_POOL_SIZE:
            return None
        port = self._next_port
        self._next_port += 1
        return port

    def handle(self, packet: Packet) -> Optional[Packet]:
        if not isinstance(packet.l4, (TCPHeader, UDPHeader)):
            return packet  # non-TCP/UDP traffic passes through
        if self.internal_prefix.contains(packet.ip.src_ip):
            return self._outbound(packet)
        if packet.ip.dst_ip == self.external_ip:
            return self._inbound(packet)
        return packet

    def _outbound(self, packet: Packet) -> Packet:
        key = packet.five_tuple
        binding = self.forward.get(key)
        if binding is None:
            port = self._allocate_port()
            if port is None:
                self.pool_exhausted += 1
                return packet  # pool exhausted: pass through untranslated
            binding = NATBinding(
                internal_ip=packet.ip.src_ip,
                internal_port=key.src_port,
                external_port=port,
            )
            self.forward.put(key, binding)
            self.reverse[port] = binding
        packet.ip.src_ip = self.external_ip
        packet.l4.src_port = binding.external_port
        packet.fill_l4_checksum()  # rewriting invalidates the checksum
        self.translations += 1
        return packet

    def _inbound(self, packet: Packet) -> Optional[Packet]:
        binding = self.reverse.get(packet.l4.dst_port)
        if binding is None:
            return None  # unsolicited inbound: drop (stateful NAT)
        packet.ip.dst_ip = binding.internal_ip
        packet.l4.dst_port = binding.internal_port
        packet.fill_l4_checksum()
        self.translations += 1
        return packet

    def state_bytes(self) -> int:
        return self.forward.table_bytes + len(self.reverse) * 48

    def reset(self) -> None:
        super().reset()
        self.forward = ResizingHashMap(entry_bytes=64)
        self.reverse = {}
        self._next_port = _FIRST_PORT
        self.translations = 0
        self.pool_exhausted = 0
