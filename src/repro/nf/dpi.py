"""Deep packet inspection: Aho–Corasick multi-pattern matching.

The paper's DPI workload (§5.1) is "a pattern-matching application that
uses the Aho-Corasick algorithm ... 33,471 patterns extracted from six
open source rulesets".  The same automaton ("DPI graph") is the operand
of the DPI *accelerator* (§3.3, §4.3, Figure 3): functions write the
graph to DRAM and the accelerator walks it.

We implement Aho–Corasick from scratch: trie construction, BFS failure
links, and output-set merging.  ``graph_bytes`` reports the automaton's
modelled in-memory size, which is what the accelerator TLB sizing of
Table 7 is based on (97 MB for the 33 K-rule graph).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.packet import Packet
from repro.nf.base import NetworkFunction

#: Pattern count from the paper (six open-source rulesets).
PAPER_PATTERN_COUNT = 33_471


class AhoCorasick:
    """A from-scratch Aho–Corasick automaton over byte strings."""

    def __init__(self, patterns: Sequence[bytes]) -> None:
        if not patterns:
            raise ValueError("need at least one pattern")
        for p in patterns:
            if not p:
                raise ValueError("empty patterns are not allowed")
        self.patterns: List[bytes] = list(patterns)
        # State 0 is the root.  goto is a list of dicts byte -> state.
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[Set[int]] = [set()]
        self._build_trie()
        self._build_failure_links()

    def _build_trie(self) -> None:
        for pattern_id, pattern in enumerate(self.patterns):
            state = 0
            for byte in pattern:
                nxt = self._goto[state].get(byte)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto.append({})
                    self._fail.append(0)
                    self._output.append(set())
                    self._goto[state][byte] = nxt
                state = nxt
            self._output[state].add(pattern_id)

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            current = queue.popleft()
            for byte, nxt in self._goto[current].items():
                queue.append(nxt)
                fallback = self._fail[current]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, 0)
                if self._fail[nxt] == nxt:  # root self-loop guard
                    self._fail[nxt] = 0
                self._output[nxt] |= self._output[self._fail[nxt]]

    @property
    def n_states(self) -> int:
        return len(self._goto)

    def graph_bytes(self, bytes_per_state: int = 64) -> int:
        """Modelled DRAM size of the automaton graph.

        Hardware DPI engines store a node record per state (transitions
        compressed + output list head); 64 B/state is representative and
        puts the paper's 33 K-pattern ruleset near its reported 97 MB.
        """
        return self.n_states * bytes_per_state

    def step(self, state: int, byte: int) -> int:
        """One transition, following failure links on mismatch."""
        while state and byte not in self._goto[state]:
            state = self._fail[state]
        return self._goto[state].get(byte, 0)

    def search(self, haystack: bytes) -> List[Tuple[int, int]]:
        """All matches as ``(end_offset, pattern_id)`` pairs."""
        matches: List[Tuple[int, int]] = []
        state = 0
        for offset, byte in enumerate(haystack):
            state = self.step(state, byte)
            for pattern_id in self._output[state]:
                matches.append((offset + 1, pattern_id))
        return matches

    def contains_any(self, haystack: bytes) -> bool:
        """Early-exit membership test (what an IDS fast path does)."""
        state = 0
        for byte in haystack:
            state = self.step(state, byte)
            if self._output[state]:
                return True
        return False


class DPIEngine(NetworkFunction):
    """The DPI network function: scan payloads, flag/drop matches."""

    name = "DPI"

    def __init__(self, patterns: Sequence[bytes], drop_on_match: bool = False) -> None:
        super().__init__()
        self.automaton = AhoCorasick(patterns)
        self.drop_on_match = drop_on_match
        self.alerts: int = 0

    def handle(self, packet: Packet) -> Optional[Packet]:
        if self.automaton.contains_any(packet.payload):
            self.alerts += 1
            if self.drop_on_match:
                return None
        return packet

    def state_bytes(self) -> int:
        return self.automaton.graph_bytes()


def make_snort_like_patterns(
    n_patterns: int = 2_000,
    seed: int = 13,
    min_len: int = 4,
    max_len: int = 24,
) -> List[bytes]:
    """Synthetic threat-signature patterns (Snort/ET community shape).

    Real rulesets are not redistributable here; we generate byte-string
    signatures with the same length distribution: mostly short ASCII-ish
    tokens plus some binary shellcode-like strings.  Defaults generate a
    smaller set than the paper's 33,471 for test speed; benchmarks that
    size the DPI graph pass ``n_patterns=PAPER_PATTERN_COUNT``.
    """
    rng = random.Random(seed)
    keywords = [
        b"cmd.exe", b"/etc/passwd", b"SELECT", b"UNION", b"<script>",
        b"powershell", b"wget http", b"eval(", b"\x90\x90\x90\x90",
        b"admin' --", b"..%2f..%2f", b"bash -i", b"nc -e", b"xp_cmdshell",
    ]
    patterns: Set[bytes] = set()
    while len(patterns) < n_patterns:
        if rng.random() < 0.2:
            base = rng.choice(keywords)
            suffix = bytes(rng.randrange(33, 127) for _ in range(rng.randrange(0, 6)))
            candidate = base + suffix
        else:
            length = rng.randrange(min_len, max_len + 1)
            if rng.random() < 0.7:
                candidate = bytes(rng.randrange(33, 127) for _ in range(length))
            else:
                candidate = bytes(rng.randrange(0, 256) for _ in range(length))
        if candidate:
            patterns.add(candidate)
    return sorted(patterns)
