"""The six network functions of §5.1, implemented with real algorithms.

* :class:`~repro.nf.firewall.Firewall` — stateful firewall: ordered rule
  scan with an LRU flow cache (Open vSwitch's 200 k cached-flow limit).
* :class:`~repro.nf.dpi.DPIEngine` — Aho–Corasick multi-pattern matcher
  built from scratch.
* :class:`~repro.nf.nat.NAT` — MazuNAT-style source NAT with a port pool
  capped at 65,535 flows.
* :class:`~repro.nf.loadbalancer.MaglevLoadBalancer` — Google Maglev
  consistent hashing with connection tracking.
* :class:`~repro.nf.lpm.DIR24_8` — longest-prefix matching with the
  DIR-24-8 two-level table.
* :class:`~repro.nf.monitor.Monitor` — per-5-tuple packet counting on an
  explicitly-resizing hash map (whose resize transients drive Figure 7).
"""

from repro.nf.base import NetworkFunction, NFStats
from repro.nf.hashmap import ResizingHashMap
from repro.nf.conntrack import ConnectionTracker, ConnState, Verdict
from repro.nf.firewall import (
    Firewall,
    StatefulFirewall,
    make_emerging_threats_rules,
)
from repro.nf.dpi import AhoCorasick, DPIEngine, make_snort_like_patterns
from repro.nf.nat import NAT, NATBinding
from repro.nf.loadbalancer import Backend, MaglevLoadBalancer
from repro.nf.lpm import DIR24_8, make_random_routes
from repro.nf.monitor import Monitor

__all__ = [
    "AhoCorasick",
    "Backend",
    "ConnState",
    "ConnectionTracker",
    "DIR24_8",
    "DPIEngine",
    "Firewall",
    "StatefulFirewall",
    "Verdict",
    "Monitor",
    "NAT",
    "NATBinding",
    "NFStats",
    "NetworkFunction",
    "MaglevLoadBalancer",
    "ResizingHashMap",
    "make_emerging_threats_rules",
    "make_random_routes",
    "make_snort_like_patterns",
]

#: Canonical short names used across cost profiles and benchmarks,
#: in the paper's presentation order.
NF_NAMES = ("FW", "DPI", "NAT", "LB", "LPM", "Mon")
