"""Stateful firewall (the paper's FW workload, §5.1).

"A stateful firewall that drops packets by scanning a list of rules.
Recently-accessed rules are cached in a HashMap ... We limit the cache
size to 200,000 entries, which is the cached flow limit in Open vSwitch.
... We configure the function with 643 rules, as in the SafeBricks
paper."

The fast path is a flow-cache lookup on the packet's 5-tuple; a miss
scans the ordered rule list and installs the verdict in the cache with
LRU eviction at the Open vSwitch limit.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Optional

from repro.net.packet import FiveTuple, PROTO_TCP, PROTO_UDP, Packet
from repro.net.rules import MatchRule, PortRange, Prefix, RuleAction, RuleTable
from repro.nf.base import NetworkFunction

#: Open vSwitch's cached-flow limit, used by the paper.
OVS_FLOW_CACHE_LIMIT = 200_000

#: Rule count from the SafeBricks evaluation, used by the paper.
SAFEBRICKS_RULE_COUNT = 643


class Firewall(NetworkFunction):
    """Ordered-rule-scan firewall with an LRU verdict cache."""

    name = "FW"

    def __init__(
        self,
        rules: RuleTable,
        cache_capacity: int = OVS_FLOW_CACHE_LIMIT,
        default_action: RuleAction = RuleAction.ACCEPT,
    ) -> None:
        super().__init__()
        self.rules = rules
        self.cache_capacity = cache_capacity
        self.default_action = default_action
        self._cache: "OrderedDict[FiveTuple, RuleAction]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def handle(self, packet: Packet) -> Optional[Packet]:
        verdict = self._verdict(packet.five_tuple, packet.vni)
        return packet if verdict is RuleAction.ACCEPT else None

    def _verdict(self, five_tuple: FiveTuple, vni: Optional[int]) -> RuleAction:
        cached = self._cache.get(five_tuple)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(five_tuple)
            return cached
        self.cache_misses += 1
        rule = self.rules.lookup(five_tuple, vni)
        action = rule.action if rule is not None else self.default_action
        self._cache[five_tuple] = action
        if len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return action

    @property
    def cached_flows(self) -> int:
        return len(self._cache)

    def flush_cache(self) -> None:
        """Drop all cached verdicts (e.g. after a ruleset update)."""
        self._cache.clear()

    def state_bytes(self) -> int:
        # ~48 B per cached flow entry + ~64 B per installed rule.
        return len(self._cache) * 48 + len(self.rules) * 64

    def reset(self) -> None:
        super().reset()
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0


class StatefulFirewall(Firewall):
    """Firewall with full TCP connection tracking.

    On top of the rule verdicts, TCP packets must fit the conntrack
    automaton (:mod:`repro.nf.conntrack`): unsolicited mid-stream
    segments and packets on closed connections are dropped even when a
    rule would accept them — netfilter's ``-m state --state
    ESTABLISHED,RELATED`` discipline.
    """

    name = "FW"

    def __init__(
        self,
        rules: RuleTable,
        cache_capacity: int = OVS_FLOW_CACHE_LIMIT,
        default_action: RuleAction = RuleAction.ACCEPT,
        max_connections: int = 65_536,
    ) -> None:
        super().__init__(rules, cache_capacity, default_action)
        from repro.nf.conntrack import ConnectionTracker

        self.conntrack = ConnectionTracker(max_connections=max_connections)
        self.invalid_drops = 0

    def handle(self, packet: Packet) -> Optional[Packet]:
        from repro.nf.conntrack import Verdict as ConnVerdict

        verdict = self._verdict(packet.five_tuple, packet.vni)
        if verdict is not RuleAction.ACCEPT:
            return None
        if self.conntrack.update(packet) is ConnVerdict.INVALID:
            self.invalid_drops += 1
            return None
        return packet

    def state_bytes(self) -> int:
        return super().state_bytes() + len(self.conntrack) * 96

    def reset(self) -> None:
        super().reset()
        from repro.nf.conntrack import ConnectionTracker

        self.conntrack = ConnectionTracker(
            max_connections=self.conntrack.max_connections
        )
        self.invalid_drops = 0


def make_emerging_threats_rules(
    n_rules: int = SAFEBRICKS_RULE_COUNT,
    seed: int = 7,
    drop_fraction: float = 0.6,
) -> RuleTable:
    """A synthetic stand-in for the Emerging Threats firewall ruleset.

    The real ruleset is a list of drop rules over suspicious prefixes and
    ports; we generate the same shape: mostly DROP rules on /16–/32
    source prefixes and well-known destination ports, with some ACCEPT
    carve-outs.  Rule *content* does not matter to any experiment — only
    the scan length and the match distribution do.
    """
    rng = random.Random(seed)
    table = RuleTable()
    for i in range(n_rules):
        prefix_len = rng.choice([16, 24, 24, 32])
        base = rng.randrange(0, 1 << 32)
        mask = 0 if prefix_len == 0 else (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
        action = (
            RuleAction.DROP if rng.random() < drop_fraction else RuleAction.ACCEPT
        )
        dst_port = rng.choice([22, 23, 80, 443, 445, 1433, 3306, 3389, 8080])
        table.add(
            MatchRule(
                src_prefix=Prefix(base & mask, prefix_len),
                proto=rng.choice([PROTO_TCP, PROTO_TCP, PROTO_UDP]),
                dst_ports=PortRange(dst_port, dst_port),
                action=action,
                priority=0,
            )
        )
    return table
