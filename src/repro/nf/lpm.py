"""Longest-prefix matching with DIR-24-8 (§5.1).

"Longest prefix matching using the DIR-24-8 algorithm for IP packet
routing.  Like NetBricks, we generate 16,000 random rules to construct
the lookup table."

DIR-24-8 (Gupta, Lin, McKeown, INFOCOM 1998) resolves prefixes of length
<= 24 with a single index into a 2^24-entry table (tbl24); longer
prefixes chain to 256-entry second-level tables (tbl8 pools).  We use the
real layout: tbl24 entries are 16-bit values whose top bit selects
"next-hop" vs "tbl8 index", exactly like DPDK's implementation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import numpy as np

from repro.net.packet import Packet
from repro.net.rules import Prefix
from repro.nf.base import NetworkFunction

#: Rule count used by the paper (from NetBricks).
PAPER_ROUTE_COUNT = 16_000

_VALID_FLAG = 0x8000  # entry holds a tbl8 index rather than a next hop
_TBL24_SIZE = 1 << 24
_TBL8_GROUP = 256
_MAX_NEXT_HOP = 0x7FFF


class DIR24_8(NetworkFunction):
    """The DIR-24-8 two-level longest-prefix-match table."""

    name = "LPM"

    def __init__(self, max_tbl8_groups: int = 256) -> None:
        super().__init__()
        self.tbl24 = np.zeros(_TBL24_SIZE, dtype=np.uint16)
        self.tbl8 = np.zeros(max_tbl8_groups * _TBL8_GROUP, dtype=np.uint16)
        self.max_tbl8_groups = max_tbl8_groups
        self._tbl8_used = 0
        # Track installed prefix lengths per tbl24 slot so shorter
        # prefixes never clobber longer ones during insertion.
        self._depth24 = np.zeros(_TBL24_SIZE, dtype=np.uint8)
        self._depth8 = np.zeros(max_tbl8_groups * _TBL8_GROUP, dtype=np.uint8)
        self.routes: List[Tuple[Prefix, int]] = []

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def add_route(self, prefix: Prefix, next_hop: int) -> None:
        """Install ``prefix -> next_hop`` (next hops are 1..0x7FFE).

        Next hop 0 is reserved as "no route".
        """
        if not 1 <= next_hop < _MAX_NEXT_HOP:
            raise ValueError("next hop must be in [1, 0x7FFE]")
        self.routes.append((prefix, next_hop))
        if prefix.length <= 24:
            self._insert_short(prefix, next_hop)
        else:
            self._insert_long(prefix, next_hop)

    def _insert_short(self, prefix: Prefix, next_hop: int) -> None:
        base = (prefix.address & prefix.mask) >> 8
        count = 1 << (24 - prefix.length)
        span = slice(base, base + count)
        depth = prefix.length
        # Only overwrite slots covered by an equal-or-shorter prefix.
        takeover = self._depth24[span] <= depth
        plain = (self.tbl24[span] & _VALID_FLAG) == 0
        idx = np.nonzero(takeover & plain)[0] + base
        self.tbl24[idx] = next_hop
        self._depth24[idx] = depth
        # Slots that chain to tbl8 groups: update in-group entries too.
        chained = np.nonzero(takeover & ~plain)[0] + base
        for slot in chained:
            group = int(self.tbl24[slot]) & ~_VALID_FLAG
            gspan = slice(group * _TBL8_GROUP, (group + 1) * _TBL8_GROUP)
            inner = self._depth8[gspan] <= depth
            gidx = np.nonzero(inner)[0] + group * _TBL8_GROUP
            self.tbl8[gidx] = next_hop
            self._depth8[gidx] = depth

    def _insert_long(self, prefix: Prefix, next_hop: int) -> None:
        slot = (prefix.address & prefix.mask) >> 8
        entry = int(self.tbl24[slot])
        if entry & _VALID_FLAG:
            group = entry & ~_VALID_FLAG
        else:
            group = self._allocate_tbl8()
            gspan = slice(group * _TBL8_GROUP, (group + 1) * _TBL8_GROUP)
            # Seed the new group with the existing shorter-prefix next hop.
            self.tbl8[gspan] = entry
            self._depth8[gspan] = self._depth24[slot]
            self.tbl24[slot] = _VALID_FLAG | group
        low = prefix.address & 0xFF & ((0xFF << (32 - prefix.length)) & 0xFF)
        count = 1 << (32 - prefix.length)
        start = group * _TBL8_GROUP + low
        depth = prefix.length
        inner = self._depth8[start : start + count] <= depth
        idx = np.nonzero(inner)[0] + start
        self.tbl8[idx] = next_hop
        self._depth8[idx] = depth

    def _allocate_tbl8(self) -> int:
        if self._tbl8_used >= self.max_tbl8_groups:
            raise MemoryError("out of tbl8 groups")
        group = self._tbl8_used
        self._tbl8_used += 1
        return group

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, ip: int) -> Optional[int]:
        """Next hop for ``ip``, or None when no route matches."""
        entry = int(self.tbl24[ip >> 8])
        if entry & _VALID_FLAG:
            entry = int(self.tbl8[(entry & ~_VALID_FLAG) * _TBL8_GROUP + (ip & 0xFF)])
        return entry if entry else None

    def lookup_linear(self, ip: int) -> Optional[int]:
        """Reference longest-prefix match by scanning all routes.

        Quadratic and only for validation: property tests check that the
        table agrees with this oracle on random addresses.
        """
        best: Optional[Tuple[int, int]] = None
        for prefix, next_hop in self.routes:
            if prefix.contains(ip):
                if best is None or prefix.length > best[0]:
                    best = (prefix.length, next_hop)
        return best[1] if best else None

    def handle(self, packet: Packet) -> Optional[Packet]:
        next_hop = self.lookup(packet.ip.dst_ip)
        if next_hop is None:
            return None  # no route: drop
        packet.ip.ttl = max(0, packet.ip.ttl - 1)
        return packet if packet.ip.ttl else None

    def state_bytes(self) -> int:
        return self.tbl24.nbytes + self._tbl8_used * _TBL8_GROUP * 2


def make_random_routes(
    n_routes: int = PAPER_ROUTE_COUNT, seed: int = 5
) -> List[Tuple[Prefix, int]]:
    """NetBricks-style random route table (16,000 rules by default)."""
    rng = random.Random(seed)
    routes: List[Tuple[Prefix, int]] = []
    seen = set()
    while len(routes) < n_routes:
        length = rng.choices(
            [8, 16, 20, 24, 28, 32], weights=[2, 10, 20, 50, 10, 8]
        )[0]
        addr = rng.randrange(0, 1 << 32)
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        key = (addr & mask, length)
        if key in seen:
            continue
        seen.add(key)
        routes.append((Prefix(addr & mask, length), rng.randrange(1, 0x7FFE)))
    return routes
