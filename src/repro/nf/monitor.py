"""Flow monitor: per-5-tuple packet counting (§5.1).

"Uses a HashMap to record the number of packets for each 5-tuple flow."

The Monitor is the paper's memory stress case: its state grows with the
number of distinct flows, and its HashMap resizes produce the memory
spikes of Figure 7 and the largest TLB budget in Table 6 (183 entries
for 361 MB).  We use the explicitly-resizing map so those dynamics are
observable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packet import FiveTuple, Packet
from repro.nf.base import NetworkFunction
from repro.nf.hashmap import ResizingHashMap


class Monitor(NetworkFunction):
    """Counts packets per flow; forwards everything unchanged."""

    name = "Mon"

    def __init__(self, entry_bytes: int = 56) -> None:
        super().__init__()
        self.counts: ResizingHashMap[FiveTuple, int] = ResizingHashMap(
            entry_bytes=entry_bytes
        )

    def handle(self, packet: Packet) -> Optional[Packet]:
        key = packet.five_tuple
        self.counts.put(key, (self.counts.get(key) or 0) + 1)
        return packet

    @property
    def distinct_flows(self) -> int:
        return len(self.counts)

    def top_flows(self, k: int = 10) -> List[Tuple[FiveTuple, int]]:
        """The ``k`` heaviest flows (heavy-hitter report)."""
        return sorted(self.counts.items(), key=lambda kv: kv[1], reverse=True)[:k]

    def count_of(self, five_tuple: FiveTuple) -> int:
        return self.counts.get(five_tuple) or 0

    def state_bytes(self) -> int:
        return self.counts.table_bytes

    def peak_state_bytes(self) -> int:
        """Worst instantaneous footprint, including resize transients."""
        return self.counts.peak_transient_bytes

    def reset(self) -> None:
        super().reset()
        self.counts = ResizingHashMap(entry_bytes=self.counts.entry_bytes)
