"""Maglev consistent-hashing load balancer (§5.1).

"Google's software load balancer called Maglev.  This function uses
consistent hashing to distribute flows."

We implement the real Maglev table-population algorithm (Eisenbud et
al., NSDI 2016 §3.4): each backend gets a permutation of table slots
derived from two hashes (``offset``, ``skip``); backends take turns
claiming their next unclaimed slot until the table is full.  Lookup is a
single hash + table index, plus a connection-tracking map so in-flight
flows stick to their backend across table rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.crypto.sha256 import sha256
from repro.net.packet import FiveTuple, Packet
from repro.nf.base import NetworkFunction

#: Default Maglev table size; must be prime (the paper's Maglev uses
#: 65537 for small setups).
DEFAULT_TABLE_SIZE = 65_537


@dataclass(frozen=True)
class Backend:
    """A load-balanced backend endpoint."""

    name: str
    ip: str
    weight: int = 1


def _hash64(data: bytes, salt: bytes) -> int:
    return int.from_bytes(sha256(salt + data)[:8], "big")


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


class MaglevLoadBalancer(NetworkFunction):
    """Consistent-hashing LB with Maglev table population."""

    name = "LB"

    def __init__(
        self,
        backends: Sequence[Backend],
        table_size: int = DEFAULT_TABLE_SIZE,
        track_connections: bool = True,
    ) -> None:
        super().__init__()
        if not backends:
            raise ValueError("need at least one backend")
        if not _is_prime(table_size):
            raise ValueError("Maglev table size must be prime")
        if len(set(b.name for b in backends)) != len(backends):
            raise ValueError("backend names must be unique")
        self.backends: List[Backend] = list(backends)
        self.table_size = table_size
        self.track_connections = track_connections
        self.connections: Dict[FiveTuple, str] = {}
        self.table: List[int] = self._populate()

    # ------------------------------------------------------------------
    # Maglev §3.4: permutation generation + table population
    # ------------------------------------------------------------------

    def _permutation_params(self, backend: Backend) -> tuple:
        name = backend.name.encode()
        offset = _hash64(name, b"maglev-offset") % self.table_size
        skip = _hash64(name, b"maglev-skip") % (self.table_size - 1) + 1
        return offset, skip

    def _populate(self) -> List[int]:
        m = self.table_size
        n = len(self.backends)
        params = [self._permutation_params(b) for b in self.backends]
        next_index = [0] * n
        entry = [-1] * m
        filled = 0
        # Weighted backends take proportionally more turns.
        turns: List[int] = []
        for i, backend in enumerate(self.backends):
            turns.extend([i] * max(1, backend.weight))
        while True:
            for i in turns:
                offset, skip = params[i]
                # Find backend i's next preferred slot that is unclaimed.
                while True:
                    candidate = (offset + next_index[i] * skip) % m
                    next_index[i] += 1
                    if entry[candidate] < 0:
                        entry[candidate] = i
                        filled += 1
                        break
                if filled == m:
                    return entry

    # ------------------------------------------------------------------

    def backend_for(self, five_tuple: FiveTuple) -> Backend:
        """The backend this flow maps to (connection table first)."""
        if self.track_connections:
            name = self.connections.get(five_tuple)
            if name is not None:
                for backend in self.backends:
                    if backend.name == name:
                        return backend
        key = str(five_tuple.as_tuple()).encode()
        index = _hash64(key, b"maglev-lookup") % self.table_size
        backend = self.backends[self.table[index]]
        if self.track_connections:
            self.connections[five_tuple] = backend.name
        return backend

    def handle(self, packet: Packet) -> Optional[Packet]:
        backend = self.backend_for(packet.five_tuple)
        from repro.net.packet import ip_to_int

        packet.ip.dst_ip = ip_to_int(backend.ip)
        return packet

    def distribution(self) -> Dict[str, int]:
        """Table slots per backend — nearly equal by Maglev's design."""
        counts: Dict[str, int] = {b.name: 0 for b in self.backends}
        for index in self.table:
            counts[self.backends[index].name] += 1
        return counts

    def remove_backend(self, name: str) -> None:
        """Remove a backend and rebuild (minimal-disruption property)."""
        remaining = [b for b in self.backends if b.name != name]
        if len(remaining) == len(self.backends):
            raise KeyError(f"no backend named {name!r}")
        if not remaining:
            raise ValueError("cannot remove the last backend")
        self.backends = remaining
        self.table = self._populate()
        self.connections = {
            ft: n for ft, n in self.connections.items() if n != name
        }

    def state_bytes(self) -> int:
        return self.table_size * 2 + len(self.connections) * 48

    def reset(self) -> None:
        super().reset()
        self.connections = {}
