"""The network-function interface.

A network function is "a piece of code which manipulates packets" (§1).
Every NF in this package consumes one packet at a time and returns the
(possibly rewritten) packet, or ``None`` to drop it.  NFs are plain
Python objects so they can run in three contexts: directly (unit tests
and benchmarks), on a commodity-NIC model's cores, or inside an S-NIC
virtual NIC.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.net.packet import Packet


@dataclass
class NFStats:
    """Uniform counters every NF maintains."""

    received: int = 0
    forwarded: int = 0
    dropped: int = 0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.received if self.received else 0.0


class NetworkFunction(abc.ABC):
    """Base class for packet-processing functions."""

    #: Canonical short name (matches the paper's tables: FW, DPI, ...).
    name: str = "nf"

    def __init__(self) -> None:
        self.stats = NFStats()

    @abc.abstractmethod
    def handle(self, packet: Packet) -> Optional[Packet]:
        """Process one packet.  Return the output packet or ``None``."""

    def process(self, packet: Packet) -> Optional[Packet]:
        """``handle`` plus bookkeeping; the entry point callers use."""
        self.stats.received += 1
        result = self.handle(packet)
        if result is None:
            self.stats.dropped += 1
        else:
            self.stats.forwarded += 1
        return result

    def process_many(self, packets: Iterable[Packet]) -> List[Packet]:
        """Process a stream; returns the surviving packets in order."""
        out: List[Packet] = []
        for packet in packets:
            result = self.process(packet)
            if result is not None:
                out.append(result)
        return out

    def state_bytes(self) -> int:
        """Approximate size of the NF's mutable state, in bytes.

        Used by the memory-model layer; subclasses with interesting state
        override this.  The paper-calibrated footprints used by the cost
        experiments live in :mod:`repro.cost.profiles` (the paper
        profiled Rust binaries, not these Python objects).
        """
        return 0

    def reset(self) -> None:
        """Drop mutable state (between experiment runs)."""
        self.stats = NFStats()
