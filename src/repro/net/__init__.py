"""Packet substrate: packets, headers, match rules, VXLAN, flows, traces.

This subpackage provides the networking building blocks used by every other
part of the reproduction: packet construction and parsing
(:mod:`repro.net.packet`), 5-tuple match rules and switching rules
(:mod:`repro.net.rules`), VXLAN encapsulation (:mod:`repro.net.vxlan`), and
synthetic flow/trace generation (:mod:`repro.net.flows`,
:mod:`repro.net.traces`).
"""

from repro.net.packet import (
    EthernetHeader,
    FiveTuple,
    IPv4Header,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
    ip_to_int,
    ip_to_str,
)
from repro.net.rules import MatchRule, RuleAction, RuleTable, SwitchingRule
from repro.net.vxlan import VXLANHeader, vxlan_decapsulate, vxlan_encapsulate
from repro.net.flows import Flow, FlowGenerator
from repro.net.traces import (
    SyntheticTrace,
    TraceConfig,
    make_caida_like_trace,
    make_ictf_like_trace,
)

__all__ = [
    "EthernetHeader",
    "FiveTuple",
    "Flow",
    "FlowGenerator",
    "IPv4Header",
    "MatchRule",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "RuleAction",
    "RuleTable",
    "SwitchingRule",
    "SyntheticTrace",
    "TCPHeader",
    "TraceConfig",
    "UDPHeader",
    "VXLANHeader",
    "ip_to_int",
    "ip_to_str",
    "make_caida_like_trace",
    "make_ictf_like_trace",
    "vxlan_decapsulate",
    "vxlan_encapsulate",
]
