"""Flow generation: seeded synthetic 5-tuple flows with Zipf popularity.

The paper's performance experiments (§5.3) drive NFs with packet streams
drawn from "a pool of 100,000 flows ... with a Zipf distribution with a
skewness of 1.1".  This module provides the flow pool and the bounded-Zipf
sampler used to pick which flow each packet belongs to.

All randomness is seeded so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.net.packet import FiveTuple, PROTO_TCP, PROTO_UDP, Packet


@dataclass(frozen=True)
class Flow:
    """A flow: a 5-tuple plus the packet-size distribution it uses."""

    five_tuple: FiveTuple
    mean_packet_size: int = 256

    def make_packet(self, payload: bytes = b"", arrival_ns: int = 0) -> Packet:
        """Build one packet of this flow carrying ``payload``."""
        ft = self.five_tuple
        packet = Packet.make(
            src_ip=_int_to_dq(ft.src_ip),
            dst_ip=_int_to_dq(ft.dst_ip),
            proto=ft.proto,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            payload=payload,
        )
        packet.arrival_ns = arrival_ns
        return packet


def _int_to_dq(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized bounded-Zipf weights: P(rank k) ∝ 1 / k**skew."""
    if n <= 0:
        raise ValueError("need at least one rank")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


class FlowGenerator:
    """A seeded pool of distinct flows with a Zipf popularity law.

    Parameters mirror the paper's setup: ``n_flows=100_000`` and
    ``zipf_skew=1.1`` reproduce the §5.3 workload; the CAIDA-like trace of
    §5.1 uses a much larger pool.
    """

    def __init__(
        self,
        n_flows: int,
        zipf_skew: float = 1.1,
        seed: int = 2024,
        tcp_fraction: float = 0.85,
        subnets: Optional[Sequence[str]] = None,
    ) -> None:
        if n_flows <= 0:
            raise ValueError("n_flows must be positive")
        self.n_flows = n_flows
        self.zipf_skew = zipf_skew
        self.seed = seed
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(seed)
        self._weights = zipf_weights(n_flows, zipf_skew)
        self._cumulative = np.cumsum(self._weights)
        self._subnets = list(subnets) if subnets else ["10.0.0.0", "172.16.0.0"]
        self.flows: List[Flow] = self._make_flows(tcp_fraction)

    def _make_flows(self, tcp_fraction: float) -> List[Flow]:
        flows: List[Flow] = []
        seen = set()
        base_addrs = [
            sum(int(p) << s for p, s in zip(sub.split("."), (24, 16, 8, 0)))
            for sub in self._subnets
        ]
        while len(flows) < self.n_flows:
            src_base = self._rng.choice(base_addrs)
            dst_base = self._rng.choice(base_addrs)
            ft = FiveTuple(
                src_ip=src_base + self._rng.randrange(1, 1 << 20),
                dst_ip=dst_base + self._rng.randrange(1, 1 << 20),
                proto=PROTO_TCP if self._rng.random() < tcp_fraction else PROTO_UDP,
                src_port=self._rng.randrange(1024, 65536),
                dst_port=self._rng.choice([80, 443, 22, 53, 8080, 3306]),
            )
            if ft in seen:
                continue
            seen.add(ft)
            size = max(64, int(self._rng.gauss(256, 128)))
            flows.append(Flow(five_tuple=ft, mean_packet_size=size))
        return flows

    def sample_indices(self, n_packets: int) -> np.ndarray:
        """Sample ``n_packets`` flow indices from the Zipf popularity law."""
        uniform = self._np_rng.random(n_packets)
        return np.searchsorted(self._cumulative, uniform, side="right")

    def packets(
        self, n_packets: int, payload_size: Optional[int] = None
    ) -> Iterator[Packet]:
        """Yield ``n_packets`` packets, flows chosen Zipf-popularly.

        ``payload_size`` forces a fixed payload length; otherwise each
        flow's own mean size is used.
        """
        indices = self.sample_indices(n_packets)
        clock_ns = 0
        for index in indices:
            flow = self.flows[int(index)]
            size = payload_size if payload_size is not None else flow.mean_packet_size
            clock_ns += self._rng.randrange(200, 2000)
            yield flow.make_packet(payload=bytes(size), arrival_ns=clock_ns)

    def subsample(self, n: int, seed: Optional[int] = None) -> "FlowGenerator":
        """A new generator over a uniform sample of ``n`` of these flows.

        Mirrors §5.1: "we randomly sampled 100,000 flows" from the ICTF
        trace, with packets still drawn Zipf(1.1) over the sample.
        """
        if n > self.n_flows:
            raise ValueError("cannot subsample more flows than exist")
        rng = random.Random(self.seed if seed is None else seed)
        child = FlowGenerator.__new__(FlowGenerator)
        child.n_flows = n
        child.zipf_skew = self.zipf_skew
        child.seed = self.seed if seed is None else seed
        child._rng = rng
        child._np_rng = np.random.default_rng(child.seed)
        child._weights = zipf_weights(n, self.zipf_skew)
        child._cumulative = np.cumsum(child._weights)
        child._subnets = self._subnets
        child.flows = rng.sample(self.flows, n)
        return child
