"""VXLAN (RFC 7348) encapsulation for tenant virtual L2 networks.

Section 4.4 of the paper: S-NIC lets a network function act as a VXLAN
endpoint, so that switching rules can mention Virtual Network Identifiers
(VNIs) in addition to MAC addresses and 5-tuple data.  We implement the
real VXLAN frame layout: an outer Ethernet/IPv4/UDP transport around an
8-byte VXLAN header carrying a 24-bit VNI, wrapping the inner L2 frame.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    PROTO_UDP,
    Packet,
    UDPHeader,
    UDP_HEADER_LEN,
)

VXLAN_UDP_PORT = 4789
VXLAN_HEADER_LEN = 8
_VXLAN_FLAG_VALID_VNI = 0x08


@dataclass(frozen=True)
class VXLANHeader:
    """The 8-byte VXLAN header: flags byte + 24-bit VNI."""

    vni: int
    flags: int = _VXLAN_FLAG_VALID_VNI

    def __post_init__(self) -> None:
        if not 0 <= self.vni < (1 << 24):
            raise ValueError(f"VNI out of 24-bit range: {self.vni}")

    def pack(self) -> bytes:
        return struct.pack("!B3xI", self.flags, self.vni << 8)

    @classmethod
    def unpack(cls, data: bytes) -> "VXLANHeader":
        if len(data) < VXLAN_HEADER_LEN:
            raise ValueError("buffer too short for VXLAN header")
        flags, packed = struct.unpack_from("!B3xI", data)
        if not flags & _VXLAN_FLAG_VALID_VNI:
            raise ValueError("VXLAN header without a valid VNI flag")
        return cls(vni=packed >> 8, flags=flags)


def vxlan_encapsulate(
    inner: Packet,
    vni: int,
    outer_src_ip: int,
    outer_dst_ip: int,
    outer_src_port: int = 49152,
) -> Packet:
    """Wrap ``inner`` in a VXLAN transport frame addressed VTEP-to-VTEP.

    The inner frame travels as the payload of an outer UDP datagram on the
    IANA VXLAN port.  The returned packet's ``vni`` attribute is *not* set;
    it describes the outer transport, whose payload carries the VNI.
    """
    inner_bytes = inner.to_bytes()
    header = VXLANHeader(vni=vni)
    payload = header.pack() + inner_bytes
    outer = Packet(
        eth=EthernetHeader(),
        ip=IPv4Header(src_ip=outer_src_ip, dst_ip=outer_dst_ip, proto=PROTO_UDP),
        l4=UDPHeader(
            src_port=outer_src_port,
            dst_port=VXLAN_UDP_PORT,
            length=UDP_HEADER_LEN + len(payload),
        ),
        payload=payload,
    )
    return outer


def vxlan_decapsulate(outer: Packet) -> Tuple[int, Packet]:
    """Strip the VXLAN wrapper; return ``(vni, inner_packet)``.

    The inner packet's ``vni`` field is populated so that downstream
    switching rules can match on it (§4.4).
    """
    if not isinstance(outer.l4, UDPHeader) or outer.l4.dst_port != VXLAN_UDP_PORT:
        raise ValueError("not a VXLAN transport packet")
    header = VXLANHeader.unpack(outer.payload)
    inner = Packet.from_bytes(outer.payload[VXLAN_HEADER_LEN:])
    inner.vni = header.vni
    inner.arrival_ns = outer.arrival_ns
    return header.vni, inner
