"""Synthetic packet traces standing in for CAIDA-2016 and iCTF-2010.

The paper evaluates with two traces (§5.1):

* a one-hour anonymized CAIDA trace from 2016 (26.7 M TCP flows,
  1.34 G packets), used for memory profiling of the Monitor NF in
  five-minute windows (Table 6, Figure 7); and
* the 2010 UCSB iCTF capture-the-flag trace, from which 100 k flows were
  uniformly sampled; the resulting packet streams follow Zipf(1.1)
  (§5.3, Figure 5).

Neither trace is redistributable, so this module generates seeded
synthetic traces with the same reported statistics (flow counts, Zipf
skew, TCP dominance, packet-size mix).  The substitution is documented in
DESIGN.md; the downstream code paths (flow tables, caches, NF state
growth) only depend on these statistics.

Traces are *scaled*: generating 1.34 G packets in Python is pointless, so
a trace carries a ``scale`` factor and exposes both the scaled
(generated) counts and the full-size counts it models, letting memory
models extrapolate faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.net.flows import Flow, FlowGenerator
from repro.net.packet import Packet

#: Statistics the paper reports for the real traces.
CAIDA_2016_FLOWS = 26_700_000
CAIDA_2016_PACKETS = 1_340_000_000
CAIDA_2016_DURATION_S = 3600
ICTF_2010_SAMPLED_FLOWS = 100_000
ZIPF_SKEW = 1.1


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a synthetic trace.

    ``modeled_flows``/``modeled_packets`` are the full-size counts being
    modeled; ``scale`` shrinks what is actually generated.
    """

    name: str
    modeled_flows: int
    modeled_packets: int
    duration_s: int
    scale: float = 1.0
    zipf_skew: float = ZIPF_SKEW
    seed: int = 2016

    @property
    def generated_flows(self) -> int:
        return max(1, int(self.modeled_flows * self.scale))

    @property
    def generated_packets(self) -> int:
        return max(1, int(self.modeled_packets * self.scale))


@dataclass
class SyntheticTrace:
    """A generated trace: a flow pool plus a packet stream over it."""

    config: TraceConfig
    generator: FlowGenerator = field(init=False)

    def __post_init__(self) -> None:
        self.generator = FlowGenerator(
            n_flows=self.config.generated_flows,
            zipf_skew=self.config.zipf_skew,
            seed=self.config.seed,
        )

    @property
    def flows(self) -> List[Flow]:
        return self.generator.flows

    def packets(self, n_packets: int = 0, payload_size: int = None) -> Iterator[Packet]:
        """Yield packets; default count is the trace's generated size."""
        count = n_packets or self.config.generated_packets
        return self.generator.packets(count, payload_size=payload_size)

    def window_flow_counts(self, n_windows: int) -> List[int]:
        """Distinct-flow counts per time window (Monitor profiling, §5.2).

        Splits the packet stream into ``n_windows`` equal windows and
        counts distinct flows in each, mimicking the paper's five-minute
        CAIDA windows used to size the Monitor NF.
        """
        total = self.config.generated_packets
        per_window = max(1, total // n_windows)
        counts: List[int] = []
        indices = self.generator.sample_indices(total)
        for w in range(n_windows):
            window = indices[w * per_window : (w + 1) * per_window]
            counts.append(len(set(window.tolist())))
        return counts


def make_caida_like_trace(scale: float = 2e-4, seed: int = 2016) -> SyntheticTrace:
    """A scaled synthetic stand-in for the CAIDA 2016 one-hour trace."""
    config = TraceConfig(
        name="caida-2016-like",
        modeled_flows=CAIDA_2016_FLOWS,
        modeled_packets=CAIDA_2016_PACKETS,
        duration_s=CAIDA_2016_DURATION_S,
        scale=scale,
        seed=seed,
    )
    return SyntheticTrace(config)


def make_ictf_like_trace(
    n_flows: int = ICTF_2010_SAMPLED_FLOWS,
    packets_per_flow: float = 20.0,
    scale: float = 0.01,
    seed: int = 2010,
) -> SyntheticTrace:
    """A scaled synthetic stand-in for the sampled iCTF 2010 trace.

    The full-size model is the paper's 100 k-flow uniform sample with
    Zipf(1.1) packet popularity.
    """
    config = TraceConfig(
        name="ictf-2010-like",
        modeled_flows=n_flows,
        modeled_packets=int(n_flows * packets_per_flow),
        duration_s=8 * 3600,
        scale=scale,
        seed=seed,
    )
    return SyntheticTrace(config)
