"""Packet structures: Ethernet / IPv4 / TCP / UDP headers and 5-tuples.

The reproduction's packets are real byte buffers: every header can be
serialized to wire format and parsed back, checksums are computed with the
standard one's-complement algorithm, and the 5-tuple abstraction used by
switching rules (§3.1 of the paper) is derived from parsed headers.

Packets are deliberately mutable: the packet-corruption attack of §3.3
rewrites header bytes inside a victim's buffers, and NFs such as the NAT
rewrite addresses and ports in place.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100

_ETH_FMT = "!6s6sH"
_IPV4_FMT = "!BBHHHBBH4s4s"
_TCP_FMT = "!HHIIBBHHH"
_UDP_FMT = "!HHHH"

ETH_HEADER_LEN = struct.calcsize(_ETH_FMT)
IPV4_HEADER_LEN = struct.calcsize(_IPV4_FMT)
TCP_HEADER_LEN = struct.calcsize(_TCP_FMT)
UDP_HEADER_LEN = struct.calcsize(_UDP_FMT)


def ip_to_int(ip: str) -> int:
    """Convert dotted-quad ``"a.b.c.d"`` to a 32-bit integer."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_bytes(mac: str) -> bytes:
    """Convert ``"aa:bb:cc:dd:ee:ff"`` to 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {mac!r}")
    return bytes(int(p, 16) for p in parts)


def mac_to_str(raw: bytes) -> str:
    """Convert 6 raw bytes to colon-separated hex notation."""
    if len(raw) != 6:
        raise ValueError("MAC address must be exactly 6 bytes")
    return ":".join(f"{b:02x}" for b in raw)


def ones_complement_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum over ``data`` (odd lengths zero-padded)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True, order=True)
class FiveTuple:
    """The classic flow identifier used by NIC switching rules (§3.1).

    Ordering and hashing are derived from the field tuple so that a
    ``FiveTuple`` can key hash maps (flow caches, NAT tables, monitors)
    exactly the way the paper's NFs use it.
    """

    src_ip: int
    dst_ip: int
    proto: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        """The 5-tuple of the reverse direction of this flow."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            proto=self.proto,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.src_ip, self.dst_ip, self.proto, self.src_port, self.dst_port)

    def __str__(self) -> str:
        return (
            f"{ip_to_str(self.src_ip)}:{self.src_port} -> "
            f"{ip_to_str(self.dst_ip)}:{self.dst_port} proto={self.proto}"
        )


@dataclass
class EthernetHeader:
    """Layer-2 header. MACs are stored as 6-byte strings."""

    dst_mac: bytes = b"\xff\xff\xff\xff\xff\xff"
    src_mac: bytes = b"\x00\x00\x00\x00\x00\x00"
    ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        return struct.pack(_ETH_FMT, self.dst_mac, self.src_mac, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        dst, src, etype = struct.unpack_from(_ETH_FMT, data)
        return cls(dst_mac=dst, src_mac=src, ethertype=etype)


@dataclass
class IPv4Header:
    """Layer-3 header with checksum support (options unsupported, IHL=5)."""

    src_ip: int = 0
    dst_ip: int = 0
    proto: int = PROTO_TCP
    ttl: int = 64
    total_length: int = IPV4_HEADER_LEN
    identification: int = 0
    dscp: int = 0
    flags_fragment: int = 0
    checksum: int = 0

    def pack(self, fill_checksum: bool = True) -> bytes:
        version_ihl = (4 << 4) | 5
        header = struct.pack(
            _IPV4_FMT,
            version_ihl,
            self.dscp,
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.proto,
            0,
            self.src_ip.to_bytes(4, "big"),
            self.dst_ip.to_bytes(4, "big"),
        )
        checksum = ones_complement_checksum(header) if fill_checksum else self.checksum
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        (
            version_ihl,
            dscp,
            total_length,
            identification,
            flags_fragment,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack_from(_IPV4_FMT, data)
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        return cls(
            src_ip=int.from_bytes(src, "big"),
            dst_ip=int.from_bytes(dst, "big"),
            proto=proto,
            ttl=ttl,
            total_length=total_length,
            identification=identification,
            dscp=dscp,
            flags_fragment=flags_fragment,
            checksum=checksum,
        )

    def verify_checksum(self, raw_header: bytes) -> bool:
        """True when the checksum over the raw 20-byte header is valid."""
        return ones_complement_checksum(raw_header[:IPV4_HEADER_LEN]) == 0


TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10


@dataclass
class TCPHeader:
    """Layer-4 TCP header (no options, data offset = 5)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = TCP_FLAG_ACK
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    def pack(self) -> bytes:
        offset_reserved = 5 << 4
        return struct.pack(
            _TCP_FMT,
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_reserved,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        (
            src_port,
            dst_port,
            seq,
            ack,
            _offset,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack_from(_TCP_FMT, data)
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )


@dataclass
class UDPHeader:
    """Layer-4 UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = UDP_HEADER_LEN
    checksum: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _UDP_FMT, self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        src_port, dst_port, length, checksum = struct.unpack_from(_UDP_FMT, data)
        return cls(
            src_port=src_port, dst_port=dst_port, length=length, checksum=checksum
        )


@dataclass
class Packet:
    """A parsed, mutable packet.

    ``Packet`` keeps structured headers plus an opaque payload.  The wire
    representation is produced on demand by :meth:`to_bytes` and packets can
    be reconstructed with :meth:`from_bytes`, which round-trips exactly for
    option-less TCP/UDP-over-IPv4-over-Ethernet frames (the only frames the
    paper's NFs manipulate).
    """

    eth: EthernetHeader = field(default_factory=EthernetHeader)
    ip: IPv4Header = field(default_factory=IPv4Header)
    l4: Optional[object] = None  # TCPHeader | UDPHeader | None
    payload: bytes = b""
    vni: Optional[int] = None  # populated by VXLAN decapsulation
    arrival_ns: int = 0

    @classmethod
    def make(
        cls,
        src_ip: str,
        dst_ip: str,
        proto: int = PROTO_TCP,
        src_port: int = 0,
        dst_port: int = 0,
        payload: bytes = b"",
        **kwargs,
    ) -> "Packet":
        """Convenience constructor from human-readable fields."""
        ip_header = IPv4Header(
            src_ip=ip_to_int(src_ip), dst_ip=ip_to_int(dst_ip), proto=proto
        )
        l4: Optional[object]
        if proto == PROTO_TCP:
            l4 = TCPHeader(src_port=src_port, dst_port=dst_port)
        elif proto == PROTO_UDP:
            l4 = UDPHeader(
                src_port=src_port,
                dst_port=dst_port,
                length=UDP_HEADER_LEN + len(payload),
            )
        else:
            l4 = None
        packet = cls(ip=ip_header, l4=l4, payload=payload, **kwargs)
        packet._fix_lengths()
        return packet

    def _fix_lengths(self) -> None:
        l4_len = 0
        if isinstance(self.l4, TCPHeader):
            l4_len = TCP_HEADER_LEN
        elif isinstance(self.l4, UDPHeader):
            l4_len = UDP_HEADER_LEN
            self.l4.length = UDP_HEADER_LEN + len(self.payload)
        self.ip.total_length = IPV4_HEADER_LEN + l4_len + len(self.payload)

    @property
    def five_tuple(self) -> FiveTuple:
        src_port = getattr(self.l4, "src_port", 0)
        dst_port = getattr(self.l4, "dst_port", 0)
        return FiveTuple(
            src_ip=self.ip.src_ip,
            dst_ip=self.ip.dst_ip,
            proto=self.ip.proto,
            src_port=src_port,
            dst_port=dst_port,
        )

    def __len__(self) -> int:
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Serialize the packet to its wire format."""
        self._fix_lengths()
        parts = [self.eth.pack(), self.ip.pack()]
        if self.l4 is not None:
            parts.append(self.l4.pack())
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse a wire-format frame back into a structured packet."""
        if len(data) < ETH_HEADER_LEN + IPV4_HEADER_LEN:
            raise ValueError("frame too short for Ethernet + IPv4")
        eth = EthernetHeader.unpack(data)
        if eth.ethertype != ETHERTYPE_IPV4:
            raise ValueError(f"unsupported ethertype 0x{eth.ethertype:04x}")
        offset = ETH_HEADER_LEN
        ip = IPv4Header.unpack(data[offset:])
        offset += IPV4_HEADER_LEN
        l4: Optional[object] = None
        if ip.proto == PROTO_TCP:
            l4 = TCPHeader.unpack(data[offset:])
            offset += TCP_HEADER_LEN
        elif ip.proto == PROTO_UDP:
            l4 = UDPHeader.unpack(data[offset:])
            offset += UDP_HEADER_LEN
        payload_len = max(0, ip.total_length - (offset - ETH_HEADER_LEN))
        payload = bytes(data[offset : offset + payload_len])
        return cls(eth=eth, ip=ip, l4=l4, payload=payload)

    def copy(self) -> "Packet":
        """Deep copy via wire round-trip (preserves vni and arrival)."""
        clone = Packet.from_bytes(self.to_bytes())
        clone.vni = self.vni
        clone.arrival_ns = self.arrival_ns
        return clone

    # ------------------------------------------------------------------
    # L4 checksums (RFC 793/768 pseudo-header)
    # ------------------------------------------------------------------

    def _pseudo_header(self, l4_length: int) -> bytes:
        return (
            self.ip.src_ip.to_bytes(4, "big")
            + self.ip.dst_ip.to_bytes(4, "big")
            + bytes([0, self.ip.proto])
            + l4_length.to_bytes(2, "big")
        )

    def compute_l4_checksum(self) -> int:
        """The correct TCP/UDP checksum for the current header fields.

        Includes the IPv4 pseudo-header, so it changes whenever a NAT
        rewrites addresses or ports.  Returns 0 for other protocols.
        """
        if not isinstance(self.l4, (TCPHeader, UDPHeader)):
            return 0
        self._fix_lengths()
        saved = self.l4.checksum
        self.l4.checksum = 0
        try:
            segment = self.l4.pack() + self.payload
        finally:
            self.l4.checksum = saved
        checksum = ones_complement_checksum(
            self._pseudo_header(len(segment)) + segment
        )
        if isinstance(self.l4, UDPHeader) and checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted as all-ones
        return checksum

    def fill_l4_checksum(self) -> None:
        """Stamp the correct L4 checksum into the header."""
        if isinstance(self.l4, (TCPHeader, UDPHeader)):
            self.l4.checksum = self.compute_l4_checksum()

    def l4_checksum_ok(self) -> bool:
        """True when the stored L4 checksum matches the packet."""
        if not isinstance(self.l4, (TCPHeader, UDPHeader)):
            return True
        return self.l4.checksum == self.compute_l4_checksum()
