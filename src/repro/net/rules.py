"""Match rules: 5-tuple predicates and NIC switching rules.

Section 3.1 of the paper describes how a smart NIC's packet input module
uses management-configured switching rules — predicates over a packet's
5-tuple — to decide which network function receives an incoming packet.
Section 4.4 extends those rules with VXLAN Virtual Network Identifiers so
that a tenant's virtual L2 flows can be directed to specific functions.

:class:`MatchRule` is also the rule format consumed by the stateful
firewall NF (§5.1), which scans an ordered list of these rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.net.packet import FiveTuple, Packet, ip_to_int


class RuleAction(enum.Enum):
    """What to do with a matching packet."""

    ACCEPT = "accept"
    DROP = "drop"
    FORWARD = "forward"


def _parse_prefix(cidr: str) -> "Prefix":
    """Parse ``"a.b.c.d/len"`` (or a bare address = /32) into a Prefix."""
    if "/" in cidr:
        addr, length_text = cidr.split("/", 1)
        length = int(length_text)
    else:
        addr, length = cidr, 32
    if not 0 <= length <= 32:
        raise ValueError(f"bad prefix length in {cidr!r}")
    return Prefix(ip_to_int(addr), length)


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix: ``address`` with the top ``length`` bits significant."""

    address: int
    length: int

    @classmethod
    def parse(cls, cidr: str) -> "Prefix":
        return _parse_prefix(cidr)

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains(self, ip: int) -> bool:
        return (ip & self.mask) == (self.address & self.mask)

    def __str__(self) -> str:
        from repro.net.packet import ip_to_str

        return f"{ip_to_str(self.address)}/{self.length}"


@dataclass(frozen=True)
class PortRange:
    """An inclusive L4 port range; ``PortRange(0, 65535)`` matches any port."""

    low: int = 0
    high: int = 65535

    def contains(self, port: int) -> bool:
        return self.low <= port <= self.high


ANY_PORTS = PortRange()


@dataclass(frozen=True)
class MatchRule:
    """A predicate over a packet's 5-tuple (plus optional VNI).

    ``None`` fields are wildcards.  Rules are evaluated in priority order by
    :class:`RuleTable`; the firewall NF evaluates them in list order, which
    matches how Emerging-Threats-style rulesets are applied.
    """

    src_prefix: Optional[Prefix] = None
    dst_prefix: Optional[Prefix] = None
    proto: Optional[int] = None
    src_ports: PortRange = ANY_PORTS
    dst_ports: PortRange = ANY_PORTS
    vni: Optional[int] = None
    action: RuleAction = RuleAction.ACCEPT
    priority: int = 0

    def matches(self, five_tuple: FiveTuple, vni: Optional[int] = None) -> bool:
        if self.proto is not None and five_tuple.proto != self.proto:
            return False
        if self.src_prefix is not None and not self.src_prefix.contains(
            five_tuple.src_ip
        ):
            return False
        if self.dst_prefix is not None and not self.dst_prefix.contains(
            five_tuple.dst_ip
        ):
            return False
        if not self.src_ports.contains(five_tuple.src_port):
            return False
        if not self.dst_ports.contains(five_tuple.dst_port):
            return False
        if self.vni is not None and vni != self.vni:
            return False
        return True

    def matches_packet(self, packet: Packet) -> bool:
        return self.matches(packet.five_tuple, packet.vni)


@dataclass(frozen=True)
class SwitchingRule:
    """A NIC switching rule: a :class:`MatchRule` bound to a destination NF.

    The packet input module consults these to pick the DRAM region (i.e.,
    network function) an arriving packet is copied into (§3.1, §4.4).
    """

    match: MatchRule
    nf_id: int

    def matches_packet(self, packet: Packet) -> bool:
        return self.match.matches_packet(packet)


class RuleTable:
    """An ordered rule list with first-match semantics.

    This is the structure scanned by the firewall NF and by the packet
    input module.  Rules are kept sorted by descending priority (ties keep
    insertion order), and :meth:`lookup` returns the first match.
    """

    def __init__(self, rules: Iterable[MatchRule] = ()) -> None:
        self._rules: List[MatchRule] = []
        for rule in rules:
            self.add(rule)

    def add(self, rule: MatchRule) -> None:
        # Insertion sort on descending priority keeps ties stable.
        index = len(self._rules)
        while index > 0 and self._rules[index - 1].priority < rule.priority:
            index -= 1
        self._rules.insert(index, rule)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def lookup(
        self, five_tuple: FiveTuple, vni: Optional[int] = None
    ) -> Optional[MatchRule]:
        """Return the first rule matching ``five_tuple`` (linear scan)."""
        for rule in self._rules:
            if rule.matches(five_tuple, vni):
                return rule
        return None

    def lookup_packet(self, packet: Packet) -> Optional[MatchRule]:
        return self.lookup(packet.five_tuple, packet.vni)
