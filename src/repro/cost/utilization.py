"""The §4.8 underutilization study: what strict isolation strands.

"S-NIC provides a virtual NIC with strong isolation ... However, this
strong isolation may lead to underutilization of physical resources.
[A function] cannot return pages to the OS ... cannot temporarily
relinquish one of the programmable cores ... The tension between strong
isolation and underutilization is fundamental ... physical utilization
should be kept high by creating or destroying functions in response to
time-varying load."

This module quantifies that tension with a fleet simulator: function
requests arrive over time, hold (cores, memory) for a duration, and
depart.  Two allocators are compared:

* **snic** — the paper's model: whole cores, preallocated peak memory,
  nothing returned mid-lifetime (allocation = the request's peak);
* **ideal** — a hypothetical elastic allocator that tracks each
  function's *instantaneous* demand (fractional cores, current memory).

The gap between the two is the price of isolation; the MURs of Table 8
(how much of the preallocation is actually used) drive the memory side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cost.profiles import NF_PROFILES

MB = 1024 * 1024


@dataclass(frozen=True)
class FunctionRequest:
    """One tenant function's lifetime on the NIC."""

    nf_type: str
    cores: int
    memory_bytes: int
    mur: float  # steady usage / preallocation (Table 8)
    core_utilization: float  # busy fraction of its cores
    arrival_s: float
    duration_s: float

    @property
    def departure_s(self) -> float:
        return self.arrival_s + self.duration_s


def generate_workload(
    n_requests: int = 200,
    mean_interarrival_s: float = 30.0,
    mean_duration_s: float = 600.0,
    seed: int = 7,
) -> List[FunctionRequest]:
    """A fleet of function launches drawn from the six NF profiles."""
    rng = random.Random(seed)
    names = list(NF_PROFILES)
    requests: List[FunctionRequest] = []
    clock = 0.0
    for _ in range(n_requests):
        clock += rng.expovariate(1.0 / mean_interarrival_s)
        profile = NF_PROFILES[rng.choice(names)]
        requests.append(
            FunctionRequest(
                nf_type=profile.name,
                cores=rng.choice([1, 1, 2, 4]),
                memory_bytes=profile.total,
                mur=profile.mur,
                core_utilization=rng.uniform(0.3, 1.0),
                arrival_s=clock,
                duration_s=rng.expovariate(1.0 / mean_duration_s),
            )
        )
    return requests


@dataclass
class UtilizationResult:
    """Time-averaged utilization + admission outcome for one policy."""

    policy: str
    core_utilization: float       # used / allocated (or / capacity)
    memory_utilization: float
    allocated_core_fraction: float  # allocated / capacity
    rejected: int
    admitted: int

    @property
    def admission_rate(self) -> float:
        total = self.admitted + self.rejected
        return self.admitted / total if total else 1.0


def _events(requests: Sequence[FunctionRequest]):
    events: List[Tuple[float, int, FunctionRequest]] = []
    for request in requests:
        events.append((request.arrival_s, 1, request))
        events.append((request.departure_s, -1, request))
    events.sort(key=lambda e: (e[0], -e[1]))
    return events


def simulate_allocator(
    requests: Sequence[FunctionRequest],
    n_cores: int = 48,
    memory_bytes: int = 8 * 1024 * MB,
    policy: str = "snic",
) -> UtilizationResult:
    """Replay the workload under one allocation policy.

    ``snic`` admits a function only when whole cores + its full
    preallocation fit, and holds both until departure.  ``ideal`` admits
    on instantaneous demand (cores × busy-fraction, memory × MUR).
    """
    if policy not in ("snic", "ideal"):
        raise ValueError(f"unknown policy {policy!r}")
    live: Dict[int, FunctionRequest] = {}
    admitted_ids: set = set()
    admitted = rejected = 0
    area_alloc_cores = area_used_cores = 0.0
    area_alloc_mem = area_used_mem = 0.0
    last_time = 0.0

    def demand(request: FunctionRequest) -> Tuple[float, float]:
        if policy == "snic":
            return float(request.cores), float(request.memory_bytes)
        return (
            request.cores * request.core_utilization,
            request.memory_bytes * request.mur,
        )

    for time_s, kind, request in _events(requests):
        dt = time_s - last_time
        if dt > 0 and live:
            alloc_cores = sum(demand(r)[0] for r in live.values())
            used_cores = sum(
                r.cores * r.core_utilization for r in live.values()
            )
            alloc_mem = sum(demand(r)[1] for r in live.values())
            used_mem = sum(r.memory_bytes * r.mur for r in live.values())
            area_alloc_cores += alloc_cores * dt
            area_used_cores += used_cores * dt
            area_alloc_mem += alloc_mem * dt
            area_used_mem += used_mem * dt
        last_time = time_s

        key = id(request)
        if kind == 1:
            want_cores, want_mem = demand(request)
            have_cores = sum(demand(r)[0] for r in live.values())
            have_mem = sum(demand(r)[1] for r in live.values())
            if (
                have_cores + want_cores <= n_cores
                and have_mem + want_mem <= memory_bytes
            ):
                live[key] = request
                admitted_ids.add(key)
                admitted += 1
            else:
                rejected += 1
        else:
            if key in admitted_ids:
                live.pop(key, None)

    return UtilizationResult(
        policy=policy,
        core_utilization=(
            area_used_cores / area_alloc_cores if area_alloc_cores else 1.0
        ),
        memory_utilization=(
            area_used_mem / area_alloc_mem if area_alloc_mem else 1.0
        ),
        allocated_core_fraction=(
            area_alloc_cores / (n_cores * last_time) if last_time else 0.0
        ),
        rejected=rejected,
        admitted=admitted,
    )


def isolation_price(
    requests: Optional[Sequence[FunctionRequest]] = None,
    n_cores: int = 48,
    memory_bytes: int = 8 * 1024 * MB,
) -> Dict[str, UtilizationResult]:
    """Both policies over the same workload (the §4.8 comparison)."""
    requests = requests if requests is not None else generate_workload()
    return {
        policy: simulate_allocator(requests, n_cores, memory_bytes, policy)
        for policy in ("snic", "ideal")
    }
