"""Cost modelling: area/power (mini-McPAT), page packing, profiles, TCO.

* :mod:`repro.cost.mcpat` — a parametric fully-associative-CAM TLB
  area/power model at 28 nm, calibrated against the McPAT outputs the
  paper publishes (Tables 2–4); reproduces the headline +8.89% area /
  +11.45% power aggregation.
* :mod:`repro.cost.pages` — the variable-page-size packing allocator
  behind Tables 5–7 (Equal / Flex-low / Flex-high menus).
* :mod:`repro.cost.profiles` — NF and accelerator memory profiles
  (Tables 6–8) plus the Monitor memory time-series model (Figure 7).
* :mod:`repro.cost.tco` — the three-year per-core TCO analysis (§5.2).
"""

from repro.cost.mcpat import (
    A9_BASELINE,
    CamCalibration,
    CORE_TLB_CAL,
    IO_TLB_CAL,
    TLBCostModel,
    snic_headline_overheads,
)
from repro.cost.pages import (
    EQUAL_MENU,
    FLEX_HIGH_MENU,
    FLEX_LOW_MENU,
    KB,
    MB,
    PageMenu,
    pack_region,
    pack_sizes,
)
from repro.cost.profiles import (
    ACCEL_PROFILES,
    AcceleratorProfile,
    DMA_REGIONS,
    MonitorMemoryModel,
    NF_PROFILES,
    NFMemoryProfile,
    VPP_REGIONS,
)
from repro.cost.tco import DeviceCost, TCOAnalysis, paper_tco_analysis

__all__ = [
    "A9_BASELINE",
    "ACCEL_PROFILES",
    "AcceleratorProfile",
    "CORE_TLB_CAL",
    "CamCalibration",
    "DMA_REGIONS",
    "DeviceCost",
    "EQUAL_MENU",
    "FLEX_HIGH_MENU",
    "FLEX_LOW_MENU",
    "IO_TLB_CAL",
    "KB",
    "MB",
    "MonitorMemoryModel",
    "NF_PROFILES",
    "NFMemoryProfile",
    "PageMenu",
    "TCOAnalysis",
    "TLBCostModel",
    "VPP_REGIONS",
    "pack_region",
    "pack_sizes",
    "paper_tco_analysis",
    "snic_headline_overheads",
]
