"""Memory profiles: NFs (Table 6), accelerators (Table 7), MURs
(Table 8), and the Monitor memory time series (Figure 7).

The region sizes below are the paper's measurements of its Rust/DPDK
binaries (Appendix B).  They are treated as calibrated inputs: the
page-packing allocator (:mod:`repro.cost.pages`) regenerates the TLB
entry counts of Tables 5–7 *from these sizes*, and the MURs of Table 8
follow from preallocated-vs-steady usage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs.timeseries import Series

from repro.cost.pages import (
    EQUAL_MENU,
    KB,
    MB,
    PageMenu,
    entries_for,
)


@dataclass(frozen=True)
class NFMemoryProfile:
    """One NF's memory regions, in bytes (Table 6), plus steady usage."""

    name: str
    text: int
    data: int
    code: int
    heap_stack: int
    steady_used: int

    @property
    def regions(self) -> Tuple[int, int, int, int]:
        """Separately-placed regions, in packing order."""
        return (self.text, self.data, self.code, self.heap_stack)

    @property
    def total(self) -> int:
        return sum(self.regions)

    @property
    def mur(self) -> float:
        """Memory utilization ratio: used / preallocated (Table 8)."""
        return self.steady_used / self.total

    def tlb_entries(self, menu: PageMenu) -> int:
        return entries_for(self.regions, menu)


def _mb(value: float) -> int:
    return int(round(value * MB))


#: Table 6 / Table 8, in the paper's row order.
NF_PROFILES: Dict[str, NFMemoryProfile] = {
    "FW": NFMemoryProfile("FW", _mb(0.87), _mb(0.08), _mb(2.50), _mb(13.75), _mb(17.20)),
    "DPI": NFMemoryProfile("DPI", _mb(1.34), _mb(0.56), _mb(2.59), _mb(46.65), _mb(51.14)),
    "NAT": NFMemoryProfile("NAT", _mb(0.86), _mb(0.05), _mb(2.49), _mb(40.48), _mb(31.72)),
    "LB": NFMemoryProfile("LB", _mb(0.86), _mb(0.05), _mb(2.49), _mb(10.40), _mb(4.16)),
    "LPM": NFMemoryProfile("LPM", _mb(0.86), _mb(0.06), _mb(2.51), _mb(64.90), _mb(68.33)),
    "Mon": NFMemoryProfile("Mon", _mb(0.85), _mb(0.05), _mb(2.48), _mb(357.15), _mb(246.31)),
}


@dataclass(frozen=True)
class AcceleratorProfile:
    """An accelerator's buffer regions, in bytes (Table 7)."""

    name: str
    regions: Tuple[Tuple[str, int], ...]

    @property
    def total(self) -> int:
        return sum(size for _, size in self.regions)

    @property
    def region_sizes(self) -> Tuple[int, ...]:
        return tuple(size for _, size in self.regions)

    def tlb_entries(self, menu: PageMenu = EQUAL_MENU) -> int:
        return entries_for(self.region_sizes, menu)


#: Table 7.  IQ = instruction queue, PktDB = packet descriptor buffers,
#: PktB = packet buffers, ResB = result buffers, ParaB = parameter
#: buffers, OutB = output buffers, SGP = scatter-gather-pointer buffers.
ACCEL_PROFILES: Dict[str, AcceleratorProfile] = {
    "DPI": AcceleratorProfile(
        "DPI",
        (
            ("IQ", 256 * KB),
            ("PktDB", 128 * KB),
            ("PktB", 2 * MB),
            ("ResB", 2 * MB),
            ("ParaB", 256 * KB),
            ("Graph", int(97.28 * MB)),
        ),
    ),
    "ZIP": AcceleratorProfile(
        "ZIP",
        (
            ("IQ", 64 * KB),
            ("PktDB", 128 * KB),
            ("PktB", 2 * MB),
            ("ResB", 24 * KB),
            ("OutB", 2 * MB),
            ("SGP", 128 * MB),
            ("Dict", 32 * KB),
        ),
    ),
    "RAID": AcceleratorProfile(
        "RAID",
        (
            ("IQ", 4 * MB),
            ("PktDB", 128 * KB),
            ("PktB", 2 * MB),
            ("OutB", 2 * MB),
        ),
    ),
}

#: §5.2 "Sizing the TLB for a virtual packet pipeline and DMA controller":
#: LiquidIO buffer sizes — PB 2 MB, PDB 128 KB, ODB 1 MB → 3 entries;
#: DMA needs the PB (2 MB) + a 256 KB instruction queue → 2 entries.
VPP_REGIONS: Tuple[int, ...] = (2 * MB, 128 * KB, 1 * MB)
DMA_REGIONS: Tuple[int, ...] = (2 * MB, 256 * KB)


def mur_table() -> Dict[str, Dict[str, float]]:
    """Table 8 rows: preallocated MB, used MB, MUR per NF."""
    return {
        name: {
            "prealloc_mb": profile.total / MB,
            "used_mb": profile.steady_used / MB,
            "mur": profile.mur,
        }
        for name, profile in NF_PROFILES.items()
    }


# ----------------------------------------------------------------------
# Figure 7: the Monitor memory time series
# ----------------------------------------------------------------------


@dataclass
class MonitorMemoryModel:
    """Mechanistic model of Monitor's memory usage over a 5-minute trace.

    Components (all called out in the paper's Figure 7 discussion):

    * static image (text+data+code, ≈3.38 MB from Table 6);
    * DPDK hugepage initialisation — a transient *doubling* early on,
      because "DPDK allocates a temporary normal memory block for
      storing the hugepage data, and then writes all that data into the
      hugepage memory";
    * the flow-counting HashMap — grows with distinct flows and doubles
      its table capacity when the load factor is exceeded; during a
      resize the old and new tables coexist (a +50 % spike of the new
      table size).

    The DPDK block size and final table size are calibrated so the
    series tops out at the paper's preallocation minimum (360.54 MB)
    and settles at its steady state (246.31 MB); everything else
    (spike times, staircase shape) emerges from the flow-arrival curve.
    """

    duration_s: float = 150.0
    static_mb: float = 0.85 + 0.05 + 2.48  # Monitor's text+data+code
    steady_target_mb: float = 246.31
    peak_target_mb: float = 360.54
    hugepage_init_at_s: float = 2.0
    load_factor: float = 0.875
    n_doublings: int = 6  # table growth steps observed within the window

    def __post_init__(self) -> None:
        # Peak = last resize transient = static + dpdk + 1.5 * final table.
        # Steady = static + dpdk + final table.  Solve both.
        self.final_table_mb = 2.0 * (self.peak_target_mb - self.steady_target_mb)
        self.dpdk_mb = self.steady_target_mb - self.static_mb - self.final_table_mb
        if self.dpdk_mb <= 0:
            raise ValueError("calibration targets are inconsistent")

    def _distinct_flow_fraction(self, t: float) -> float:
        """Fraction of the window's distinct flows seen by time ``t``.

        Distinct-flow accumulation over a trace is concave (heavy flows
        arrive early); 1 - exp decay is the standard shape.
        """
        rate = 3.0 / self.duration_s
        return (1.0 - math.exp(-rate * t)) / (1.0 - math.exp(-3.0))

    def table_mb_at(self, t: float) -> float:
        """Current (post-resize) table size at time ``t``."""
        fraction = self._distinct_flow_fraction(t)
        needed = fraction * self.final_table_mb
        level = self.final_table_mb / (2 ** self.n_doublings)
        while level < needed / self.load_factor and level < self.final_table_mb:
            level *= 2
        return min(level, self.final_table_mb)

    def resize_times(self) -> List[float]:
        """Instants at which the table doubles (bisected from the curve)."""
        times: List[float] = []
        previous = self.table_mb_at(0.0)
        step = self.duration_s / 3000.0
        t = step
        while t <= self.duration_s:
            current = self.table_mb_at(t)
            if current > previous:
                times.append(t)
                previous = current
            t += step
        return times

    def memory_mb_at(self, t: float,
                     _resizes: Optional[List[float]] = None) -> float:
        """Instantaneous memory footprint at time ``t``, spikes included.

        ``_resizes`` lets grid samplers pass the (expensively bisected)
        resize instants once instead of per point.
        """
        resizes = _resizes if _resizes is not None else self.resize_times()
        usage = self.static_mb
        if t >= self.hugepage_init_at_s:
            usage += self.dpdk_mb
        # Hugepage-init transient: temporary normal block + hugepages.
        if self.hugepage_init_at_s <= t < self.hugepage_init_at_s + 1.0:
            usage += self.dpdk_mb
        table = self.table_mb_at(t)
        usage += table
        # Resize transient: old (table/2) + new (table) coexist.
        for rt in resizes:
            if rt <= t < rt + 0.5:
                usage += table / 2.0
                break
        return usage

    def sample(self, step_s: float = 0.5) -> "Series":
        """The memory curve as a :class:`repro.obs.timeseries.Series`
        (the shape every other sampled experiment exports through)."""
        from repro.obs.timeseries import sample_function

        resizes = self.resize_times()
        return sample_function(
            lambda t: self.memory_mb_at(t, _resizes=resizes),
            start=0.0, stop=self.duration_s, step=step_s,
            name="monitor_memory_mb")

    def series(self, step_s: float = 0.5) -> List[Tuple[float, float]]:
        """(time_s, memory_mb) samples; historical list-of-pairs view
        over :meth:`sample`."""
        return self.sample(step_s=step_s).points()

    def summary(self) -> Dict[str, float]:
        samples = self.series()
        peak = max(m for _, m in samples)
        steady = samples[-1][1]
        return {
            "prealloc_min_mb": peak,
            "steady_mb": steady,
            "dpdk_mb": self.dpdk_mb,
            "final_table_mb": self.final_table_mb,
            "n_resizes": len(self.resize_times()),
        }
