"""A mini-McPAT: area and power for S-NIC's TLB hardware (Tables 2–4).

The paper extends an ARM Cortex-A9 (28 nm, 2.0 GHz) and estimates the
cost of S-NIC's additional TLBs with the McPAT framework.  We reproduce
those estimates with a parametric fully-associative-CAM model:

    bank_cost(n) = max(FLOOR, BASE + n * PER_ENTRY * s(n))
    s(n)         = 1 + ALPHA * max(0, n - 256) / 256

* ``BASE`` — fixed peripherals per bank (decoder, sense amps, control);
* ``PER_ENTRY`` — CAM cells + matchline segment per entry;
* ``s(n)`` — superlinear matchline/banking overhead beyond 256 entries
  (visible in the paper's own 512-entry row);
* ``FLOOR`` — minimum realizable bank (McPAT's own note in Table 4:
  "2 TLB entries have the same cost estimation as 3 TLB entries").

Two calibrations are published because the paper's numbers imply two CAM
organizations: :data:`CORE_TLB_CAL` is fitted to Table 2 (programmable-
core TLBs) and :data:`IO_TLB_CAL` to Tables 3–4 (accelerator / VPP / DMA
TLB banks).  Fitted points reproduce the quoted values to ≤1% (most are
exact); the constants and residuals are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CamCalibration:
    """Calibration constants for one CAM organization."""

    name: str
    area_base_mm2: float
    area_per_entry_mm2: float
    area_alpha: float
    area_floor_mm2: float
    power_base_w: float
    power_per_entry_w: float
    power_alpha: float
    power_floor_w: float

    def _scale(self, entries: int, alpha: float) -> float:
        return 1.0 + alpha * max(0, entries - 256) / 256.0

    def bank_area_mm2(self, entries: int) -> float:
        if entries <= 0:
            raise ValueError("a TLB bank needs at least one entry")
        linear = (
            self.area_base_mm2
            + entries * self.area_per_entry_mm2 * self._scale(entries, self.area_alpha)
        )
        return max(self.area_floor_mm2, linear)

    def bank_power_w(self, entries: int) -> float:
        if entries <= 0:
            raise ValueError("a TLB bank needs at least one entry")
        linear = (
            self.power_base_w
            + entries
            * self.power_per_entry_w
            * self._scale(entries, self.power_alpha)
        )
        return max(self.power_floor_w, linear)


#: Fitted to Table 2 (programmable-core TLBs; exact at 183/256/512 entries).
CORE_TLB_CAL = CamCalibration(
    name="core-tlb",
    area_base_mm2=0.00185,
    area_per_entry_mm2=5.137e-5,
    area_alpha=0.479,
    area_floor_mm2=0.0031,
    power_base_w=0.00086,
    power_per_entry_w=3.082e-5,
    power_alpha=0.34,
    power_floor_w=0.001417,
)

#: Fitted to Tables 3–4 (accelerator / VPP / DMA banks; exact at the
#: DPI-54, ZIP-70, RAID-5 and VPP/DMA floor points).
IO_TLB_CAL = CamCalibration(
    name="io-tlb",
    area_base_mm2=0.0010394,
    area_per_entry_mm2=6.640e-5,
    area_alpha=0.0,
    area_floor_mm2=0.0031,
    power_base_w=0.000836,
    power_per_entry_w=2.734e-5,
    power_alpha=0.0,
    power_floor_w=0.0014375,
)


@dataclass(frozen=True)
class A9Baseline:
    """The 4-core Cortex-A9 reference point, back-derived from Table 2.

    All three Table 2 rows are consistent with one baseline: total minus
    S-NIC TLB cost gives 4.939 mm² / 1.883 W in every row.
    """

    area_mm2: float = 4.939
    power_w: float = 1.883
    cores: int = 4

    def total_with_tlbs(self, tlb_area_mm2: float, tlb_power_w: float) -> Tuple[float, float]:
        return (self.area_mm2 + tlb_area_mm2, self.power_w + tlb_power_w)


A9_BASELINE = A9Baseline()

#: Per-core memory sizes studied in Table 2 and the TLB entries they
#: need at 2 MB pages (366 MB is the Monitor-driven sizing, Appendix B).
TABLE2_MEMORY_CONFIGS: Dict[str, int] = {
    "366MB": 183,
    "512MB": 256,
    "1024MB": 512,
}

TABLE2_CORE_COUNTS: Tuple[int, ...] = (4, 8, 16, 48)


class TLBCostModel:
    """Convenience layer answering each table's question."""

    def __init__(
        self,
        core_cal: CamCalibration = CORE_TLB_CAL,
        io_cal: CamCalibration = IO_TLB_CAL,
        baseline: A9Baseline = A9_BASELINE,
    ) -> None:
        self.core_cal = core_cal
        self.io_cal = io_cal
        self.baseline = baseline

    # --- Table 2 -------------------------------------------------------

    def core_tlbs(self, entries_per_core: int, n_cores: int) -> Tuple[float, float]:
        """(area mm², power W) of TLBs across ``n_cores`` cores."""
        return (
            n_cores * self.core_cal.bank_area_mm2(entries_per_core),
            n_cores * self.core_cal.bank_power_w(entries_per_core),
        )

    def core_tlbs_relative(self, entries_per_core: int) -> Tuple[float, float]:
        """Relative overhead vs the 4-core A9 *total* (Table 2's %s)."""
        area, power = self.core_tlbs(entries_per_core, self.baseline.cores)
        total_area, total_power = self.baseline.total_with_tlbs(area, power)
        return (area / total_area, power / total_power)

    # --- Tables 3 & 4 ----------------------------------------------------

    def io_tlb_banks(self, entries_per_bank: int, n_banks: int) -> Tuple[float, float]:
        """(area, power) of ``n_banks`` accelerator/VPP/DMA TLB banks."""
        return (
            n_banks * self.io_cal.bank_area_mm2(entries_per_bank),
            n_banks * self.io_cal.bank_power_w(entries_per_bank),
        )


def snic_headline_overheads(
    model: TLBCostModel = None,
    core_entries: int = 512,
    accel_entries: Dict[str, int] = None,
    accel_clusters: int = 16,
    n_cores: int = 48,
    cores_per_nf: int = 4,
) -> Dict[str, float]:
    """The §5.2 headline aggregation: "+8.89% area, +11.45% power".

    Components, matching the paper's accounting (all relative to the
    4-core A9 *with* 512-entry TLBs, i.e. 5.102 mm² / 1.971 W):

    * programmable-core TLBs for 4 cores at ``core_entries``;
    * accelerator TLB banks (DPI 54, ZIP 70, RAID 5) × 16 clusters;
    * VPP (3-entry) and DMA (2-entry) banks, one per programmable core /
      function pairing (12 each for 48 cores at 4 cores per NF).
    """
    model = model or TLBCostModel()
    accel_entries = accel_entries or {"DPI": 54, "ZIP": 70, "RAID": 5}
    core_area, core_power = model.core_tlbs(core_entries, model.baseline.cores)
    accel_area = accel_power = 0.0
    for entries in accel_entries.values():
        a, p = model.io_tlb_banks(entries, accel_clusters)
        accel_area += a
        accel_power += p
    n_vpps = n_cores // cores_per_nf
    vpp_area, vpp_power = model.io_tlb_banks(3, n_vpps)
    dma_area, dma_power = model.io_tlb_banks(2, n_vpps)
    total_area = core_area + accel_area + vpp_area + dma_area
    total_power = core_power + accel_power + vpp_power + dma_power
    base_area, base_power = model.baseline.total_with_tlbs(core_area, core_power)
    return {
        "core_tlb_area_mm2": core_area,
        "core_tlb_power_w": core_power,
        "accel_tlb_area_mm2": accel_area,
        "accel_tlb_power_w": accel_power,
        "vpp_dma_area_mm2": vpp_area + dma_area,
        "vpp_dma_power_w": vpp_power + dma_power,
        "total_added_area_mm2": total_area,
        "total_added_power_w": total_power,
        "area_overhead_pct": 100.0 * total_area / base_area,
        "power_overhead_pct": 100.0 * total_power / base_power,
    }
