"""Variable-page-size packing: the allocator behind Tables 5–7.

S-NIC covers a function's address space with a handful of locked TLB
entries using variable page sizes (§4.2).  The paper studies three page
menus:

* **Equal** — 2 MB pages only;
* **Flex-low** — 128 KB, 2 MB, 64 MB;
* **Flex-high** — 2 MB, 32 MB, 128 MB.

"When allocating pages for a function's code, static data, heap, and
stack regions, we try to minimize the amount of wasted memory"
(Table 6 caption).  Because each menu's sizes divide one another, the
optimal strategy is exact: round the region up to the smallest page
granularity (that fixes the minimal waste), then emit pages greedily
largest-first (that minimises the entry count for the fixed total).
The test suite checks both optimality properties against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class PageMenu:
    """An ordered set of allowed page sizes (ascending)."""

    name: str
    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("menu needs at least one page size")
        if list(self.sizes) != sorted(set(self.sizes)):
            raise ValueError("sizes must be strictly ascending")
        for small, big in zip(self.sizes, self.sizes[1:]):
            if big % small:
                raise ValueError(
                    "each page size must be a multiple of the previous "
                    "(greedy packing relies on this)"
                )

    @property
    def smallest(self) -> int:
        return self.sizes[0]


EQUAL_MENU = PageMenu("Equal", (2 * MB,))
FLEX_LOW_MENU = PageMenu("Flex-low", (128 * KB, 2 * MB, 64 * MB))
FLEX_HIGH_MENU = PageMenu("Flex-high", (2 * MB, 32 * MB, 128 * MB))

PAPER_MENUS = (EQUAL_MENU, FLEX_LOW_MENU, FLEX_HIGH_MENU)


def pack_region(size_bytes: int, menu: PageMenu) -> List[int]:
    """Pages covering a ``size_bytes`` region: minimal waste, then fewest
    entries.  Returns the chosen page sizes, largest first.
    """
    if size_bytes < 0:
        raise ValueError("negative region size")
    if size_bytes == 0:
        return []
    smallest = menu.smallest
    rounded = ((size_bytes + smallest - 1) // smallest) * smallest
    pages: List[int] = []
    remaining = rounded
    for size in reversed(menu.sizes):
        count, remaining = divmod(remaining, size)
        pages.extend([size] * count)
    assert remaining == 0  # sizes divide each other, so this is exact
    return pages


def pack_sizes(region_sizes: Iterable[int], menu: PageMenu) -> List[int]:
    """Pack several regions independently; returns all pages used.

    Regions are packed separately because they are placed at different
    (aligned) virtual bases — a page cannot span two regions.
    """
    pages: List[int] = []
    for size in region_sizes:
        pages.extend(pack_region(size, menu))
    return pages


def entries_for(region_sizes: Iterable[int], menu: PageMenu) -> int:
    """The TLB entry count for a set of regions under ``menu``."""
    return len(pack_sizes(region_sizes, menu))


def waste_bytes(region_sizes: Iterable[int], menu: PageMenu) -> int:
    """Internal fragmentation: allocated minus requested."""
    total_requested = 0
    total_allocated = 0
    for size in region_sizes:
        total_requested += size
        total_allocated += sum(pack_region(size, menu))
    return total_allocated - total_requested


def layout_regions(
    region_sizes: Sequence[int], menu: PageMenu, base: int = 0
) -> List[Tuple[int, int]]:
    """Place pages for all regions at aligned addresses from ``base``.

    Returns ``(address, page_size)`` pairs.  Each page is aligned to its
    own size (a hardware TLB requirement); ``base`` must be aligned to
    the largest page used.  Packing emits larger pages first, and sizes
    divide one another, so advancing the cursor never breaks alignment
    within a region; between regions the cursor is re-aligned upward.
    """
    placements: List[Tuple[int, int]] = []
    cursor = base
    for size in region_sizes:
        pages = pack_region(size, menu)
        if not pages:
            continue
        largest = pages[0]
        cursor = ((cursor + largest - 1) // largest) * largest
        for page in pages:
            if cursor % page:
                cursor = ((cursor + page - 1) // page) * page
            placements.append((cursor, page))
            cursor += page
    return placements
