"""The total-cost-of-ownership analysis of §5.2.

Reproduces the paper's arithmetic exactly:

* 12-core Marvell LiquidIO: 24.7 W peak, $420 → $38.97/core over 3 years;
* 12-core Intel E5-2680 v3 host: 113 W, $1745 → $163.56/core;
* S-NIC-extended LiquidIO (+8.89 % area → purchase cost, +11.45 % power)
  → $42.53/core;
* the *TCO advantage* is the host/NIC per-core ratio, which drops from
  4.20× to 3.85× — an 8.37 % reduction, i.e. 91.6 % of the benefit is
  preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Average U.S. datacenter electricity price used by the paper.
US_DATACENTER_USD_PER_KWH = 0.0733

#: Hours per year (365.25 days) — matches the paper's arithmetic.
HOURS_PER_YEAR = 8766.0


@dataclass(frozen=True)
class DeviceCost:
    """Purchase price + power envelope of one device."""

    name: str
    power_w: float
    price_usd: float
    cores: int

    def energy_cost_usd(
        self,
        years: float = 3.0,
        usd_per_kwh: float = US_DATACENTER_USD_PER_KWH,
    ) -> float:
        kwh = self.power_w * years * HOURS_PER_YEAR / 1000.0
        return kwh * usd_per_kwh

    def tco_per_core(
        self,
        years: float = 3.0,
        usd_per_kwh: float = US_DATACENTER_USD_PER_KWH,
    ) -> float:
        total = self.price_usd + self.energy_cost_usd(years, usd_per_kwh)
        return total / self.cores

    def with_snic_overheads(
        self, area_overhead_pct: float, power_overhead_pct: float
    ) -> "DeviceCost":
        """The S-NIC-extended variant: chip area scales purchase cost,
        and power draw scales energy cost (the paper's worst case)."""
        return DeviceCost(
            name=f"{self.name}+S-NIC",
            power_w=self.power_w * (1.0 + power_overhead_pct / 100.0),
            price_usd=self.price_usd * (1.0 + area_overhead_pct / 100.0),
            cores=self.cores,
        )


LIQUIDIO_12CORE = DeviceCost("LiquidIO", power_w=24.7, price_usd=420.0, cores=12)
XEON_E5_2680V3 = DeviceCost("E5-2680v3", power_w=113.0, price_usd=1745.0, cores=12)


@dataclass(frozen=True)
class TCOAnalysis:
    """The full §5.2 comparison."""

    nic: DeviceCost
    host: DeviceCost
    area_overhead_pct: float
    power_overhead_pct: float
    years: float = 3.0
    usd_per_kwh: float = US_DATACENTER_USD_PER_KWH

    def results(self) -> Dict[str, float]:
        nic_tco = self.nic.tco_per_core(self.years, self.usd_per_kwh)
        host_tco = self.host.tco_per_core(self.years, self.usd_per_kwh)
        snic = self.nic.with_snic_overheads(
            self.area_overhead_pct, self.power_overhead_pct
        )
        snic_tco = snic.tco_per_core(self.years, self.usd_per_kwh)
        advantage_before = host_tco / nic_tco
        advantage_after = host_tco / snic_tco
        reduction = (advantage_before - advantage_after) / advantage_before
        return {
            "nic_tco_per_core": nic_tco,
            "host_tco_per_core": host_tco,
            "snic_tco_per_core": snic_tco,
            "advantage_before": advantage_before,
            "advantage_after": advantage_after,
            "advantage_reduction_pct": 100.0 * reduction,
            "benefit_preserved_pct": 100.0 * (1.0 - reduction),
        }


def paper_tco_analysis(
    area_overhead_pct: float = 8.89, power_overhead_pct: float = 11.45
) -> TCOAnalysis:
    """The analysis with the paper's devices and headline overheads."""
    return TCOAnalysis(
        nic=LIQUIDIO_12CORE,
        host=XEON_E5_2680V3,
        area_overhead_pct=area_overhead_pct,
        power_overhead_pct=power_overhead_pct,
    )
