"""Appendix-B-style profiling of *this reproduction's own* NFs.

Table 6 profiles the paper's Rust/DPDK binaries; those numbers are
calibrated inputs in :mod:`repro.cost.profiles`.  This module applies
the same methodology to the Python NF implementations in
:mod:`repro.nf`: drive each NF with a trace, record its modelled state
footprint (``state_bytes``), and size its locked-TLB budget with the
same page-packing allocator.

Absolute sizes differ from the paper (different substrate, scaled
traces); what carries over — and is asserted in the tests — is the
*structure*: Monitor grows without bound with distinct flows, NAT caps
at its port pool, LB/LPM are small and flat, and the TLB budgets order
the same way as Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cost.pages import EQUAL_MENU, PageMenu, entries_for
from repro.net.packet import Packet
from repro.net.rules import Prefix
from repro.net.traces import make_ictf_like_trace
from repro.nf import (
    Backend,
    DIR24_8,
    DPIEngine,
    Firewall,
    MaglevLoadBalancer,
    Monitor,
    NAT,
    make_emerging_threats_rules,
    make_random_routes,
    make_snort_like_patterns,
)
from repro.nf.base import NetworkFunction

#: A fixed per-NF image overhead (text+data+code) so the packing has a
#: second region, mirroring Table 6's layout.
IMAGE_BYTES = 3 * 1024 * 1024


@dataclass
class PyNFProfile:
    """One NF's measured profile."""

    name: str
    packets: int
    peak_state_bytes: int
    final_state_bytes: int
    samples: List[Tuple[int, int]]  # (packets seen, state bytes)

    def tlb_entries(self, menu: PageMenu = EQUAL_MENU) -> int:
        return entries_for([IMAGE_BYTES, max(1, self.peak_state_bytes)], menu)

    @property
    def growth_ratio(self) -> float:
        """final/first-sample state — >1 means the NF keeps growing."""
        first = next((s for _, s in self.samples if s > 0), 1)
        return self.final_state_bytes / first


def build_default_nfs() -> Dict[str, NetworkFunction]:
    """The six NFs with scaled-down §5.1 parameters."""
    lpm = DIR24_8(max_tbl8_groups=1024)
    for prefix, hop in make_random_routes(1_000):
        lpm.add_route(prefix, hop)
    lpm.add_route(Prefix.parse("0.0.0.0/0"), 1)
    return {
        "FW": Firewall(make_emerging_threats_rules(643)),
        "DPI": DPIEngine(make_snort_like_patterns(300)),
        "NAT": NAT("100.0.0.1"),
        "LB": MaglevLoadBalancer(
            [Backend(f"b{i}", f"1.0.0.{i + 1}") for i in range(4)],
            table_size=65537,
        ),
        "LPM": lpm,
        "Mon": Monitor(),
    }


def profile_nf(
    name: str,
    nf: NetworkFunction,
    packets: Iterable[Packet],
    sample_every: int = 200,
) -> PyNFProfile:
    """Run ``nf`` over ``packets`` recording its state growth."""
    peak = nf.state_bytes()
    samples: List[Tuple[int, int]] = [(0, peak)]
    count = 0
    for packet in packets:
        nf.process(packet)
        count += 1
        if count % sample_every == 0:
            state = nf.state_bytes()
            peak = max(peak, state)
            samples.append((count, state))
    final = nf.state_bytes()
    peak = max(peak, final)
    samples.append((count, final))
    return PyNFProfile(
        name=name,
        packets=count,
        peak_state_bytes=peak,
        final_state_bytes=final,
        samples=samples,
    )


def profile_all(
    n_packets: int = 3_000,
    payload_size: int = 64,
    seed: int = 2010,
    nfs: Optional[Dict[str, NetworkFunction]] = None,
) -> Dict[str, PyNFProfile]:
    """Profile every NF over the same synthetic ICTF-like stream."""
    nfs = nfs or build_default_nfs()
    profiles = {}
    for name, nf in nfs.items():
        trace = make_ictf_like_trace(scale=0.01, seed=seed)
        stream = trace.packets(n_packets, payload_size=payload_size)
        profiles[name] = profile_nf(name, nf, stream)
    return profiles
