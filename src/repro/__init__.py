"""S-NIC reproduction: SmartNIC security isolation in the cloud.

A from-scratch Python reproduction of *SmartNIC Security Isolation in
the Cloud with S-NIC* (Zhou, Wilkening, Mickens, Yu — EuroSys 2024),
including every substrate the paper's evaluation depends on.

Subpackages
-----------

``repro.core``
    The S-NIC design itself: trusted instructions
    (``nf_launch``/``nf_attest``/``nf_teardown``), memory denylisting,
    virtualized accelerators, virtual packet pipelines, bus/cache
    isolation policies, attestation, and secure constellations.
``repro.hw``
    The hardware simulation substrate (the role gem5 plays in the
    paper): memory, MMU/TLBs, caches, DRAM/bus, cores, accelerators,
    packet IO, DMA.
``repro.commodity``
    Behavioral models of LiquidIO / Agilio / BlueField and the three
    §3.3 proof-of-concept attacks.
``repro.nf``
    The six evaluation network functions with real algorithms
    (Aho–Corasick, Maglev, DIR-24-8, ...).
``repro.net``
    Packets, rules, VXLAN, and synthetic trace generation.
``repro.crypto``
    From-scratch SHA-256 / RSA / Diffie–Hellman and the EK/AK key
    hierarchy.
``repro.cost``
    The mini-McPAT area/power model, page packing, memory profiles, and
    the TCO analysis (Tables 2–8, Figure 7).
``repro.perf``
    The Figure 5 IPC-degradation experiments (Che's approximation +
    trace-driven cross-validation).
``repro.obs``
    Unified observability: a tenant-tagged span/event tracer hooked
    into every hardware layer, a metrics registry (counters, gauges,
    histograms), and Chrome ``trace_event`` / CSV / JSON exporters
    (``python -m repro trace``).
``repro.faults``
    Deterministic fault injection: seeded fault plans, interposition-
    based injectors over the hardware and core models, sim-time
    watchdog/retry/restart recovery, and the commodity-vs-S-NIC
    blast-radius matrix (``python -m repro chaos``).
``repro.scenario``
    Declarative experiments: frozen, validated ``ScenarioSpec`` objects, the
    ``@scenario("name")`` registry, the spec-to-simulation builder, and
    the axis-product sweep runner (``python -m repro matrix``).

Quickstart
----------

>>> from repro.core import SNIC, NICOS, NFConfig
>>> snic = SNIC()
>>> nic_os = NICOS(snic)
>>> vnic = nic_os.NF_create(NFConfig(name="fw", core_ids=(0,),
...                                  memory_bytes=4 * 1024 * 1024))
>>> vnic.nf_id
1
"""

__version__ = "1.0.0"

__all__ = [
    "commodity",
    "core",
    "cost",
    "crypto",
    "faults",
    "hw",
    "net",
    "nf",
    "obs",
    "perf",
    "scenario",
]
